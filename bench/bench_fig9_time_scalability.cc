// Figure 9: query execution time as the Book dataset is duplicated 1–6
// times, for one query of each class: Q1 (linear), Q5 (restricted
// predicate), Q9 (full XP{/,//,*,[]}).
//
// Expected shape (paper, section 5.4): TwigM's execution time grows slowly
// and linearly with data size for simple and complex queries alike; the
// non-streaming DomEval grows super-linearly and the enumeration engine
// degrades/aborts on the complex query.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/datasets.h"

namespace twigm::bench {
namespace {

const data::QuerySpec& QueryByName(const char* name) {
  for (const data::QuerySpec& q : data::BookQueries()) {
    if (q.name == name) return q;
  }
  std::abort();
}

void RunCell(benchmark::State& state, const char* query_name, System system) {
  const data::QuerySpec& query = QueryByName(query_name);
  const int copies = static_cast<int>(state.range(0));
  const std::string& doc = BookDatasetCopies(copies);
  for (auto _ : state) {
    const RunResult result = RunSystem(system, query.text, doc);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(result.results));
  }
  state.counters["doc_MB"] =
      benchmark::Counter(static_cast<double>(doc.size()) / 1048576.0);
}

void RegisterAll() {
  const struct {
    const char* query;
    System system;
  } kCells[] = {
      {"Q1", System::kTwigM},  {"Q1", System::kLazyDfa},
      {"Q1", System::kNaiveEnum}, {"Q1", System::kDomEval},
      {"Q5", System::kTwigM},  {"Q5", System::kNaiveEnum},
      {"Q5", System::kDomEval},
      {"Q9", System::kTwigM},  {"Q9", System::kNaiveEnum},
      {"Q9", System::kDomEval},
  };
  for (const auto& cell : kCells) {
    const std::string name =
        std::string("Fig9/") + cell.query + "/" + SystemName(cell.system);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [cell](benchmark::State& state) {
          RunCell(state, cell.query, cell.system);
        })
        ->Unit(benchmark::kMillisecond)
        ->DenseRange(1, 6, 1)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
