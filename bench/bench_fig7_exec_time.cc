// Figure 7 (a,b,c): query execution time for all systems on the Book,
// Benchmark (auction) and Protein datasets, over the Figure 6 query sets.
//
// Each google-benchmark entry is one (dataset, query, system) cell of the
// figure; unsupported combinations are skipped with an explanatory message,
// mirroring the paper's missing bars ("Systems that are not shown in the
// legend do not support this query"). A Figure 6 query listing is printed
// at startup.
//
// Expected shape (paper, section 5.2): LazyDFA (XMLTK) fastest on the
// linear queries Q1–Q4; TwigM fastest elsewhere and stable everywhere;
// NaiveEnum (XSQ) and DomEval (Galax) degrade — dramatically so on the
// recursive Book data where candidates have multiple pattern matches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "obs/instrumentation.h"

namespace twigm::bench {
namespace {

struct DatasetRef {
  const char* name;
  const std::string& (*get)();
  const std::vector<data::QuerySpec>& (*queries)();
};

const DatasetRef kDatasets[] = {
    {"Book", &BookDataset, &data::BookQueries},
    {"Benchmark", &AuctionDataset, &data::AuctionQueries},
    {"Protein", &ProteinDataset, &data::ProteinQueries},
};

constexpr System kSystems[] = {System::kTwigM, System::kLazyDfa,
                               System::kNaiveEnum, System::kDomEval};

void RunCell(benchmark::State& state, const DatasetRef& dataset,
             const data::QuerySpec& query, System system) {
  const std::string& doc = dataset.get();
  for (auto _ : state) {
    const RunResult result = RunSystem(system, query.text, doc);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(result.results));
    state.counters["state_KB"] = benchmark::Counter(
        static_cast<double>(result.state_bytes) / 1024.0);
    BenchRecord record;
    record.bench = "fig7_exec_time";
    record.params = {{"dataset", dataset.name},
                     {"query", query.name},
                     {"system", SystemName(system)}};
    record.wall_ms = result.seconds * 1e3;
    record.metrics = {
        {"results", static_cast<double>(result.results)},
        {"state_bytes", static_cast<double>(result.state_bytes)},
        {"doc_bytes", static_cast<double>(doc.size())}};
    BenchJson::Get().Add(std::move(record));
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(doc.size()) / 1048576.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

// ---------------------------------------------------------------------------
// Instrumentation-overhead pair. Three variants stream the same Book query:
//   handwired  — parser -> driver -> TwigMachine, no processor wrapper (the
//                shape the engine had before the observability layer);
//   obs_off    — XPathStreamProcessor with instrumentation == nullptr;
//   obs_on     — processor with a live Instrumentation (for reference only).
// scripts/check_obs_overhead.py compares obs_off against handwired and fails
// if the null-instrumentation path regresses by more than 5%.

constexpr char kOverheadQuery[] = "//section[title]//figure";

void AddOverheadRecord(const char* variant, double wall_ms, uint64_t results,
                       size_t doc_bytes) {
  BenchRecord record;
  record.bench = "fig7_exec_time";
  record.params = {
      {"group", "overhead"}, {"dataset", "Book"}, {"variant", variant}};
  record.wall_ms = wall_ms;
  record.metrics = {{"results", static_cast<double>(results)},
                    {"doc_bytes", static_cast<double>(doc_bytes)}};
  BenchJson::Get().Add(std::move(record));
}

void BM_OverheadHandwired(benchmark::State& state) {
  const std::string& doc = BookDataset();
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(kOverheadQuery);
  if (!tree.ok()) {
    state.SkipWithError(tree.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    core::CountingResultSink sink;
    Result<std::unique_ptr<core::TwigMachine>> machine =
        core::TwigMachine::Create(tree.value(), &sink);
    if (!machine.ok()) {
      state.SkipWithError(machine.status().ToString().c_str());
      return;
    }
    xml::EventDriver driver(machine.value().get());
    xml::SaxParser parser(&driver);
    Stopwatch sw;
    Status s = parser.Consume({doc, false});
    if (s.ok()) s = parser.Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    AddOverheadRecord("handwired", wall_ms, sink.count(), doc.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void BM_OverheadProcessor(benchmark::State& state, bool instrumented) {
  const std::string& doc = BookDataset();
  for (auto _ : state) {
    core::CountingResultSink sink;
    obs::Instrumentation instr;
    core::EvaluatorOptions options;
    options.engine = core::EngineKind::kTwigM;
    options.instrumentation = instrumented ? &instr : nullptr;
    Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
        core::XPathStreamProcessor::Create(kOverheadQuery, &sink, options);
    if (!proc.ok()) {
      state.SkipWithError(proc.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = proc.value()->Consume({doc, false});
    if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    AddOverheadRecord(instrumented ? "obs_on" : "obs_off", wall_ms,
                      sink.count(), doc.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void RegisterOverheadPair() {
  benchmark::RegisterBenchmark("Overhead/handwired", BM_OverheadHandwired)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
  benchmark::RegisterBenchmark(
      "Overhead/obs_off",
      [](benchmark::State& state) { BM_OverheadProcessor(state, false); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
  benchmark::RegisterBenchmark(
      "Overhead/obs_on",
      [](benchmark::State& state) { BM_OverheadProcessor(state, true); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
}

void RegisterAll() {
  for (const DatasetRef& dataset : kDatasets) {
    for (const data::QuerySpec& query : dataset.queries()) {
      for (System system : kSystems) {
        const std::string name = std::string("Fig7/") + dataset.name + "/" +
                                 query.name + "/" + SystemName(system);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&dataset, &query, system](benchmark::State& state) {
              RunCell(state, dataset, query, system);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintFigure6() {
  std::printf("Figure 6: query sets\n");
  for (const DatasetRef& dataset : kDatasets) {
    for (const data::QuerySpec& query : dataset.queries()) {
      std::printf("  %-10s %-5s %-18s %s\n", dataset.name,
                  query.name.c_str(), query.language.c_str(),
                  query.text.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  twigm::bench::PrintFigure6();
  twigm::bench::RegisterAll();
  twigm::bench::RegisterOverheadPair();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  twigm::bench::BenchJson::Get().Write();
  benchmark::Shutdown();
  return 0;
}
