// Figure 7 (a,b,c): query execution time for all systems on the Book,
// Benchmark (auction) and Protein datasets, over the Figure 6 query sets.
//
// Each google-benchmark entry is one (dataset, query, system) cell of the
// figure; unsupported combinations are skipped with an explanatory message,
// mirroring the paper's missing bars ("Systems that are not shown in the
// legend do not support this query"). A Figure 6 query listing is printed
// at startup.
//
// Expected shape (paper, section 5.2): LazyDFA (XMLTK) fastest on the
// linear queries Q1–Q4; TwigM fastest elsewhere and stable everywhere;
// NaiveEnum (XSQ) and DomEval (Galax) degrade — dramatically so on the
// recursive Book data where candidates have multiple pattern matches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"

namespace twigm::bench {
namespace {

struct DatasetRef {
  const char* name;
  const std::string& (*get)();
  const std::vector<data::QuerySpec>& (*queries)();
};

const DatasetRef kDatasets[] = {
    {"Book", &BookDataset, &data::BookQueries},
    {"Benchmark", &AuctionDataset, &data::AuctionQueries},
    {"Protein", &ProteinDataset, &data::ProteinQueries},
};

constexpr System kSystems[] = {System::kTwigM, System::kLazyDfa,
                               System::kNaiveEnum, System::kDomEval};

void RunCell(benchmark::State& state, const DatasetRef& dataset,
             const data::QuerySpec& query, System system) {
  const std::string& doc = dataset.get();
  for (auto _ : state) {
    const RunResult result = RunSystem(system, query.text, doc);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(result.results));
    state.counters["state_KB"] = benchmark::Counter(
        static_cast<double>(result.state_bytes) / 1024.0);
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(doc.size()) / 1048576.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

void RegisterAll() {
  for (const DatasetRef& dataset : kDatasets) {
    for (const data::QuerySpec& query : dataset.queries()) {
      for (System system : kSystems) {
        const std::string name = std::string("Fig7/") + dataset.name + "/" +
                                 query.name + "/" + SystemName(system);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&dataset, &query, system](benchmark::State& state) {
              RunCell(state, dataset, query, system);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintFigure6() {
  std::printf("Figure 6: query sets\n");
  for (const DatasetRef& dataset : kDatasets) {
    for (const data::QuerySpec& query : dataset.queries()) {
      std::printf("  %-10s %-5s %-18s %s\n", dataset.name,
                  query.name.c_str(), query.language.c_str(),
                  query.text.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::PrintFigure6();
  twigm::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
