// Indexed vs streaming execution on the Figure 7 corpora: builds a
// persistent structural index once per dataset (cold ingest: parse + label
// + serialize + mmap reload), then compares warm indexed re-query against
// re-streaming the document for every query.
//
// The interesting regime is *stored* corpora queried repeatedly: streaming
// pays the full parse on every query, the index pays it once at build time
// and afterwards touches only the relevant postings. The committed gate
// (scripts/check_indexed.py vs bench/BENCH_indexed_baseline.json) requires
// the warm indexed re-query to beat re-streaming by >= 10x on the Book
// corpus predicate queries Q5-Q10, with identical match counts.
//
// Protocol per query: one warm-up Evaluate (scratch vectors reach
// capacity), then best-of-5 timed Evaluates; re-streaming is best-of-3
// full TwigM runs (create + parse + emit, the steady cost of answering the
// query without an index). Run with `--json BENCH_indexed.json` for
// machine-readable records.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/result_sink.h"
#include "index/index_builder.h"
#include "index/index_reader.h"
#include "index/indexed_evaluator.h"

namespace twigm::bench {
namespace {

constexpr int kIndexedPasses = 5;
constexpr int kStreamPasses = 3;

struct BuiltIndex {
  std::unique_ptr<index::IndexReader> reader;
  double build_seconds = 0;
  uint64_t index_bytes = 0;
};

// Cold ingest: one chunked pass over the document into the builder plus
// serialization — everything between "file on disk" and "queryable index".
BuiltIndex BuildIndex(const std::string& doc) {
  BuiltIndex built;
  Stopwatch sw;
  index::IndexBuilder builder;
  constexpr size_t kChunk = 1 << 16;
  for (size_t pos = 0; pos < doc.size(); pos += kChunk) {
    const size_t len = std::min(kChunk, doc.size() - pos);
    Status s = builder.Consume({std::string_view(doc).substr(pos, len), false});
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
      return built;
    }
  }
  if (!builder.Consume({std::string_view(), true}).ok()) return built;
  std::string image;
  if (!builder.Serialize(&image).ok()) return built;
  built.build_seconds = sw.ElapsedSeconds();
  built.index_bytes = image.size();
  Result<std::unique_ptr<index::IndexReader>> reader =
      index::IndexReader::OpenBytes(std::move(image));
  if (!reader.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", reader.status().ToString().c_str());
    return built;
  }
  built.reader = std::move(reader).value();
  return built;
}

struct QueryCell {
  bool ok = false;
  double indexed_ms = 0;
  double stream_ms = 0;
  uint64_t indexed_results = 0;
  uint64_t stream_results = 0;
  uint64_t postings_touched = 0;
  uint64_t join_steps = 0;
};

QueryCell MeasureQuery(const index::IndexReader& reader,
                       const std::string& query, const std::string& doc) {
  QueryCell cell;
  Result<std::unique_ptr<index::IndexedEvaluator>> eval =
      index::IndexedEvaluator::Create(query, &reader);
  if (!eval.ok()) return cell;

  // Warm indexed re-query: evaluator and mapping are hot, scratch reused.
  core::CountingResultSink warmup;
  if (!eval.value()->Evaluate(&warmup).ok()) return cell;
  double best = 1e100;
  for (int pass = 0; pass < kIndexedPasses; ++pass) {
    core::CountingResultSink sink;
    Stopwatch sw;
    if (!eval.value()->Evaluate(&sink).ok()) return cell;
    best = std::min(best, sw.ElapsedSeconds());
    cell.indexed_results = sink.count();
  }
  cell.indexed_ms = best * 1e3;
  cell.postings_touched = eval.value()->stats().postings_touched;
  cell.join_steps = eval.value()->stats().join_steps;

  // Re-streaming: the full per-query cost without an index.
  best = 1e100;
  for (int pass = 0; pass < kStreamPasses; ++pass) {
    const RunResult run = RunSystem(System::kTwigM, query, doc);
    if (!run.status.ok()) return cell;
    best = std::min(best, run.seconds);
    cell.stream_results = run.results;
  }
  cell.stream_ms = best * 1e3;
  cell.ok = true;
  return cell;
}

int Main() {
  struct DatasetRef {
    const char* name;
    const std::string& (*get)();
    const std::vector<data::QuerySpec>& (*queries)();
    int first_query;  // 0-based index into queries()
  };
  // Book runs the gated predicate set Q5-Q10; the other corpora run their
  // predicate queries too (recorded, gated only for count equality).
  const DatasetRef datasets[] = {
      {"Book", &BookDataset, &data::BookQueries, 4},
      {"Benchmark", &AuctionDataset, &data::AuctionQueries, 3},
      {"Protein", &ProteinDataset, &data::ProteinQueries, 4},
  };

  for (const DatasetRef& dataset : datasets) {
    const std::string& doc = dataset.get();
    const BuiltIndex built = BuildIndex(doc);
    if (built.reader == nullptr) return 1;
    const double build_gb_per_sec =
        built.build_seconds > 0 ? doc.size() / built.build_seconds / 1e9 : 0;
    std::printf(
        "%s: %zu bytes, index %llu bytes (%.2fx), built in %.3fs "
        "(%.3f GB/s)\n",
        dataset.name, doc.size(),
        static_cast<unsigned long long>(built.index_bytes),
        static_cast<double>(built.index_bytes) / doc.size(),
        built.build_seconds, build_gb_per_sec);

    BenchRecord build_record;
    build_record.bench = "indexed_build";
    build_record.params = {{"dataset", dataset.name}};
    build_record.wall_ms = built.build_seconds * 1e3;
    build_record.metrics = {
        {"document_bytes", static_cast<double>(doc.size())},
        {"index_bytes", static_cast<double>(built.index_bytes)},
        {"build_gb_per_sec", build_gb_per_sec},
    };
    BenchJson::Get().Add(std::move(build_record));

    std::printf("%-6s %12s %12s %9s %10s\n", "query", "indexed ms",
                "stream ms", "speedup", "results");
    const std::vector<data::QuerySpec>& queries = dataset.queries();
    for (size_t qi = static_cast<size_t>(dataset.first_query);
         qi < queries.size(); ++qi) {
      const data::QuerySpec& spec = queries[qi];
      const QueryCell cell = MeasureQuery(*built.reader, spec.text, doc);
      if (!cell.ok) {
        std::printf("%-6s (skipped: unsupported)\n", spec.name.c_str());
        continue;
      }
      const double speedup =
          cell.indexed_ms > 0 ? cell.stream_ms / cell.indexed_ms : 0;
      std::printf("%-6s %12.4f %12.4f %8.1fx %10llu  (%llu postings, %llu steps)\n",
                  spec.name.c_str(), cell.indexed_ms, cell.stream_ms, speedup,
                  static_cast<unsigned long long>(cell.indexed_results),
                  static_cast<unsigned long long>(cell.postings_touched),
                  static_cast<unsigned long long>(cell.join_steps));
      if (cell.indexed_results != cell.stream_results) {
        std::fprintf(
            stderr, "FATAL: %s/%s match count mismatch (%llu vs %llu)\n",
            dataset.name, spec.name.c_str(),
            static_cast<unsigned long long>(cell.indexed_results),
            static_cast<unsigned long long>(cell.stream_results));
        return 1;
      }

      BenchRecord record;
      record.bench = "indexed_vs_stream";
      record.params = {{"dataset", dataset.name}, {"query", spec.name}};
      record.wall_ms = cell.indexed_ms;
      record.metrics = {
          {"indexed_ms", cell.indexed_ms},
          {"stream_ms", cell.stream_ms},
          {"speedup", speedup},
          {"results_indexed", static_cast<double>(cell.indexed_results)},
          {"results_stream", static_cast<double>(cell.stream_results)},
      };
      BenchJson::Get().Add(std::move(record));
    }
  }
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  const int rc = twigm::bench::Main();
  twigm::bench::BenchJson::Get().Write();
  return rc;
}
