// Complexity sanity checks for Theorem 4.4, O((|Q| + R·B)·|Q|·|D|), plus
// microbenchmarks of the library's hot kernels:
//   * time vs. document depth R (fixed |D|): deep-recursion documents;
//   * time vs. query size |Q| (fixed document);
//   * SAX parsing throughput (the |D| factor's constant);
//   * candidate-set union (the B factor's constant).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/twig_machine.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::bench {
namespace {

// A document of `total` elements arranged as chains of depth `depth`
// hanging under a root: |D| constant, R varies.
std::string DepthControlledDoc(int total, int depth) {
  std::string doc = "<r>";
  int emitted = 0;
  while (emitted < total) {
    const int chain = std::min(depth, total - emitted);
    for (int i = 0; i < chain; ++i) doc += "<a>";
    doc += "<c/>";
    for (int i = 0; i < chain; ++i) doc += "</a>";
    emitted += chain + 1;
  }
  doc += "</r>";
  return doc;
}

void BM_TimeVsDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const std::string doc = DepthControlledDoc(40000, depth);
  for (auto _ : state) {
    const RunResult result = RunSystem(System::kTwigM, "//a[c]//c", doc);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(result.results));
  }
}
BENCHMARK(BM_TimeVsDepth)->RangeMultiplier(4)->Range(4, 1024)
    ->Unit(benchmark::kMillisecond);

// Query-size sweep: //a//a//...//a (k steps) over a deep a-chain.
void BM_TimeVsQuerySize(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  std::string query;
  for (int i = 0; i < steps; ++i) query += "//a";
  std::string doc;
  const int depth = 400;
  for (int i = 0; i < depth; ++i) doc += "<a>";
  for (int i = 0; i < depth; ++i) doc += "</a>";
  for (auto _ : state) {
    const RunResult result = RunSystem(System::kTwigM, query, doc);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_TimeVsQuerySize)->DenseRange(1, 13, 3)
    ->Unit(benchmark::kMillisecond);

// SAX throughput on the Book dataset (discarding events).
void BM_SaxThroughput(benchmark::State& state) {
  const std::string& doc = BookDataset();
  xml::SaxHandler null_handler;
  for (auto _ : state) {
    xml::SaxParser parser(&null_handler);
    if (!parser.ParseAll(doc).ok()) {
      state.SkipWithError("parse failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_SaxThroughput)->Unit(benchmark::kMillisecond);

// Candidate-set union kernel.
void BM_UnionSortedIds(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<xml::NodeId> interleaved_a;
  std::vector<xml::NodeId> interleaved_b;
  for (size_t i = 0; i < n; ++i) {
    interleaved_a.push_back(2 * i);
    interleaved_b.push_back(2 * i + 1);
  }
  for (auto _ : state) {
    std::vector<xml::NodeId> dst = interleaved_a;
    benchmark::DoNotOptimize(
        core::UnionSortedIds(interleaved_b, &dst));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_UnionSortedIds)->Range(64, 65536);

// Append-only fast path of the union (the common case in document order).
void BM_UnionSortedIdsFastPath(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<xml::NodeId> low;
  std::vector<xml::NodeId> high;
  for (size_t i = 0; i < n; ++i) {
    low.push_back(i);
    high.push_back(n + i);
  }
  for (auto _ : state) {
    std::vector<xml::NodeId> dst = low;
    benchmark::DoNotOptimize(core::UnionSortedIds(high, &dst));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_UnionSortedIdsFastPath)->Range(64, 65536);

}  // namespace
}  // namespace twigm::bench

BENCHMARK_MAIN();
