// Result latency: how much of the stream must pass before results reach
// the consumer? This quantifies the incrementality contrast of section 6 —
// TwigM delivers results as membership is proven, while the XAOS-style
// end-of-stream engine holds everything until the document closes.
//
// The harness feeds the Book dataset in 64 KB chunks and records, for each
// engine, the stream position (percent of bytes) at which the first result
// and the median result were delivered.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/eos_engine.h"
#include "bench/bench_util.h"
#include "core/evaluator.h"
#include "data/datasets.h"
#include "xml/sax_parser.h"

namespace twigm::bench {
namespace {

struct LatencyResult {
  uint64_t results = 0;
  double first_pct = 100.0;   // stream position of the first result
  double median_pct = 100.0;  // stream position of the median result
};

// A sink that asks the harness where the stream currently is.
class PositionSink : public core::MatchObserver {
 public:
  void OnResult(const core::MatchInfo&) override {
    positions_.push_back(*current_pct_);
  }
  void set_position_source(const double* pct) { current_pct_ = pct; }
  const std::vector<double>& positions() const { return positions_; }

 private:
  const double* current_pct_ = nullptr;
  std::vector<double> positions_;
};

LatencyResult Summarize(const std::vector<double>& positions) {
  LatencyResult out;
  out.results = positions.size();
  if (!positions.empty()) {
    out.first_pct = positions.front();
    out.median_pct = positions[positions.size() / 2];
  }
  return out;
}

template <typename FeedFn, typename FinishFn>
LatencyResult Drive(const std::string& doc, PositionSink* sink, FeedFn feed,
                    FinishFn finish) {
  constexpr size_t kChunk = 64 * 1024;
  double pct = 0.0;
  sink->set_position_source(&pct);
  for (size_t pos = 0; pos < doc.size(); pos += kChunk) {
    pct = 100.0 * static_cast<double>(std::min(pos + kChunk, doc.size())) /
          static_cast<double>(doc.size());
    if (!feed(std::string_view(doc).substr(pos, kChunk)).ok()) {
      return LatencyResult{};
    }
  }
  pct = 100.0;
  if (!finish().ok()) return LatencyResult{};
  return Summarize(sink->positions());
}

LatencyResult TwigLatency(const std::string& query, const std::string& doc) {
  PositionSink sink;
  auto proc = core::XPathStreamProcessor::Create(query, &sink);
  if (!proc.ok()) return LatencyResult{};
  return Drive(
      doc, &sink,
      [&](std::string_view chunk) { return proc.value()->Consume({chunk, false}); },
      [&] { return proc.value()->Consume({std::string_view(), true}); });
}

LatencyResult EosLatency(const std::string& query, const std::string& doc) {
  PositionSink sink;
  auto engine = baselines::EosEngine::Create(query, &sink);
  if (!engine.ok()) return LatencyResult{};
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  return Drive(
      doc, &sink,
      [&](std::string_view chunk) { return parser.Consume({chunk, false}); },
      [&] { return parser.Consume({std::string_view(), true}); });
}

int Main() {
  const std::string& doc = BookDataset();
  std::printf("Result latency on Book (%zu KB, 64 KB chunks): stream "
              "position of first/median result\n\n",
              doc.size() / 1024);
  std::printf("%-6s %-42s %10s %16s %16s\n", "query", "text", "results",
              "TwigM f/med", "EndOfStream f/med");
  for (const data::QuerySpec& spec : data::BookQueries()) {
    const LatencyResult twig = TwigLatency(spec.text, doc);
    const LatencyResult eos = EosLatency(spec.text, doc);
    std::printf("%-6s %-42s %10llu %7.1f%%/%6.1f%% %7.1f%%/%6.1f%%\n",
                spec.name.c_str(), spec.text.c_str(),
                static_cast<unsigned long long>(twig.results),
                twig.first_pct, twig.median_pct, eos.first_pct,
                eos.median_pct);
  }
  std::printf("\n(TwigM delivers results mid-stream; the end-of-stream "
              "engine always at 100%%)\n");
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main() { return twigm::bench::Main(); }
