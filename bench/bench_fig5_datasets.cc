// Figure 5: features of the experimental datasets (size, number of element
// nodes, attributes, depth, recursion). Prints the table the paper reports;
// absolute sizes are scaled by TWIGM_BENCH_SCALE (see bench_util.h).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "data/datasets.h"

namespace twigm::bench {
namespace {

void Report(const char* name, const std::string& doc) {
  Result<data::DatasetFeatures> features = data::ComputeFeatures(doc);
  if (!features.ok()) {
    std::printf("%-10s ERROR: %s\n", name, features.status().ToString().c_str());
    return;
  }
  const data::DatasetFeatures& f = features.value();
  std::printf("%-10s %12s %12s %12s %6d  %s\n", name,
              HumanBytes(f.bytes).c_str(), WithThousands(f.elements).c_str(),
              WithThousands(f.attributes).c_str(), f.max_depth,
              f.recursive ? "yes" : "no");
}

int Main() {
  std::printf("Figure 5: dataset features (scale %.2f; paper sizes: "
              "Book 9 MB, Benchmark 34 MB, Protein 75 MB)\n\n",
              BenchScale());
  std::printf("%-10s %12s %12s %12s %6s  %s\n", "dataset", "size", "elements",
              "attrs", "depth", "recursive");
  Report("Book", BookDataset());
  Report("Benchmark", AuctionDataset());
  Report("Protein", ProteinDataset());
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main() { return twigm::bench::Main(); }
