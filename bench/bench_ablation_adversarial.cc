// Ablation on the Figure 1 family: compact stack encoding vs. explicit
// pattern-match enumeration, and the effect of static-failure pruning.
//
// Query //a[d]//b[e]//c over a_1(..a_n(b_1(..b_n(c), e)), d):
//   * TwigM stores ~2n stack entries for the n² pattern matches — time and
//     state grow LINEARLY in n (section 3.3's claim);
//   * NaiveEnum materializes all ~n² matches — quadratic state, and the
//     engine aborts once the match cap is hit.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/adversarial.h"

namespace twigm::bench {
namespace {

constexpr const char* kQuery = "//a[d]//b[e]//c";

std::string AdversarialDoc(int n) {
  data::AdversarialOptions options;
  options.n = n;
  return data::GenerateAdversarial(options);
}

void BM_TwigM(benchmark::State& state) {
  const std::string doc = AdversarialDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunResult result = RunSystem(System::kTwigM, kQuery, doc);
    if (!result.status.ok() || result.results != 1) {
      state.SkipWithError("unexpected TwigM outcome");
      return;
    }
    state.counters["peak_entries"] =
        benchmark::Counter(static_cast<double>(result.state_items));
  }
}
BENCHMARK(BM_TwigM)->RangeMultiplier(2)->Range(8, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_TwigM_NoPrune(benchmark::State& state) {
  // Same run with the paper's literal push rule (no static pruning); on
  // this family attribute tests do not occur, so the difference is pure
  // option overhead — included to show the ablation knob exists and is
  // behaviour-neutral here.
  const std::string doc = AdversarialDoc(static_cast<int>(state.range(0)));
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  options.twig.prune_static_failures = false;
  for (auto _ : state) {
    Result<std::vector<xml::NodeId>> ids =
        core::EvaluateToIds(kQuery, doc, options);
    if (!ids.ok() || ids.value().size() != 1) {
      state.SkipWithError("unexpected outcome");
      return;
    }
  }
}
BENCHMARK(BM_TwigM_NoPrune)->RangeMultiplier(2)->Range(8, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveEnum(benchmark::State& state) {
  const std::string doc = AdversarialDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const RunResult result = RunSystem(System::kNaiveEnum, kQuery, doc);
    if (result.status.code() == StatusCode::kResourceExhausted) {
      state.SkipWithError("match explosion: live-match cap exceeded");
      return;
    }
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    state.counters["peak_matches"] =
        benchmark::Counter(static_cast<double>(result.state_items));
  }
}
BENCHMARK(BM_NaiveEnum)->RangeMultiplier(2)->Range(8, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace twigm::bench

BENCHMARK_MAIN();
