// Filter-engine scalability benchmark: one stream, many queries. Compares
// the shared-prefix FilterEngine (src/filter/) against the product
// construction of MultiQueryProcessor as the query set grows 16 -> 4096,
// on the Book and Auction datasets. The product's per-event cost is linear
// in the number of queries; the filter's is bounded by the number of
// distinct active location steps, so the gap widens with the set size.
//
// BM_ShardedServe extends the sweep to 1M queries through the multi-core
// subscription service (src/serve/), with the shard count as a second
// dimension (1/2/4/8): the query set is partitioned across shard workers,
// so aggregate events/sec scales with cores on multi-core hardware.
//
// Run with `--json BENCH_filter_scalability.json` for machine-readable
// records (wall time, peak RSS, result counts, trie sharing stats; the
// sharded records add aggregate events/sec and per-shard utilization).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/dtd_structure.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "core/multi_query.h"
#include "data/book.h"
#include "dtd/dtd_parser.h"
#include "filter/analyzed_engine.h"
#include "filter/filter_engine.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace twigm::bench {
namespace {

struct Vocabulary {
  const char* name;
  std::vector<std::string> tags;
  std::vector<std::string> attrs;
};

const Vocabulary& BookVocabulary() {
  static const Vocabulary* kVocab = new Vocabulary{
      "book",
      {"collection", "book", "title", "author", "section", "p", "figure",
       "image"},
      {"id", "short", "difficulty"}};
  return *kVocab;
}

const Vocabulary& AuctionVocabulary() {
  static const Vocabulary* kVocab = new Vocabulary{
      "auction",
      {"site", "regions", "item", "description", "parlist", "listitem",
       "text", "people", "person", "name", "open_auctions", "open_auction",
       "bidder", "increase", "seller", "price", "category"},
      {"id", "category"}};
  return *kVocab;
}

// Synthesizes a filtering workload over the dataset vocabulary: ~75%
// linear queries (the dominant publish/subscribe class), the rest with one
// structural or attribute predicate on the last step. Duplicates and
// shared prefixes arise naturally from the small vocabulary.
std::vector<std::string> MakeWorkload(const Vocabulary& vocab, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int steps = 2 + static_cast<int>(rng.Below(3));  // 2..4
    std::string q;
    for (int s = 0; s < steps; ++s) {
      q += (s == 0 || rng.Below(100) < 35) ? "//" : "/";
      if (rng.Below(100) < 8) {
        q += "*";
      } else {
        q += vocab.tags[rng.Below(vocab.tags.size())];
      }
    }
    if (rng.Below(100) >= 75) {
      if (rng.Below(2) == 0) {
        q += "[@" + vocab.attrs[rng.Below(vocab.attrs.size())] + "]";
      } else {
        q += "[" + vocab.tags[rng.Below(vocab.tags.size())] + "]";
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

// Queries the static analyzer can prune on each dataset: provably
// unsatisfiable under the Book DTD, equivalent pairs (branch order), and
// redundant predicate branches. MakeAnalyzableWorkload mixes these in at
// ~25% so the analyzed engine has something to show.
std::vector<std::string> PrunableQueries(int dataset) {
  if (dataset == 0) {
    return {"//section/book",        "//title/author",
            "//figure/p",            "//section[title][title]",
            "//section[figure][p]",  "//section[p][figure]",
            "//book[author][author]"};
  }
  // No DTD for Auction: only the rewrite passes (dedup/equivalence/
  // minimization) can prune here.
  return {"//person[name][name]",
          "//open_auction[bidder][seller]",
          "//open_auction[seller][bidder]",
          "//site//item/description",
          "//site//item/description"};
}

// Base workload diluted with ~25% deliberately analyzer-prunable queries.
// Note that on Book the DTD proofs prune far more than that 25%: random
// tag chains over a strict DTD are usually unsatisfiable (e.g.
// //collection/title), which is exactly the publish/subscribe scenario
// where static analysis pays off.
std::vector<std::string> MakeAnalyzableWorkload(const Vocabulary& vocab,
                                                size_t count, uint64_t seed,
                                                int dataset) {
  const std::vector<std::string> prunable = PrunableQueries(dataset);
  std::vector<std::string> out = MakeWorkload(vocab, count - count / 4, seed);
  for (size_t i = 0; i < count / 4; ++i) {
    out.push_back(prunable[i % prunable.size()]);
  }
  return out;
}

// DTD summary for the Book dataset (the generator wraps multiple books in
// a synthetic <collection> root, so declare it too). Null for Auction —
// the repo carries no XMark DTD.
const analysis::DtdStructure* StructureFor(int dataset) {
  if (dataset != 0) return nullptr;
  static const analysis::DtdStructure* kStructure = [] {
    const std::string text =
        std::string("<!ELEMENT collection (book*)>\n") + data::kBookDtd;
    Result<dtd::Dtd> dtd = dtd::ParseDtd(text);
    if (!dtd.ok()) return static_cast<analysis::DtdStructure*>(nullptr);
    Result<analysis::DtdStructure> s =
        analysis::DtdStructure::Build(dtd.value());
    if (!s.ok()) return static_cast<analysis::DtdStructure*>(nullptr);
    return new analysis::DtdStructure(std::move(s).value());
  }();
  return kStructure;
}

const Vocabulary& VocabularyFor(int dataset) {
  return dataset == 0 ? BookVocabulary() : AuctionVocabulary();
}

const std::string& DatasetFor(int dataset) {
  return dataset == 0 ? BookDataset() : AuctionDataset();
}

class CountingSink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t, const core::MatchInfo&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

void BM_FilterEngine(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int dataset = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(dataset);
  const std::vector<std::string> query_set =
      MakeWorkload(VocabularyFor(dataset), queries, 2006 + dataset);
  for (auto _ : state) {
    CountingSink sink;
    auto engine = filter::FilterEngine::Create(query_set, &sink);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = engine.value()->Consume({doc, false});
    if (s.ok()) s = engine.value()->Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    const filter::FilterIndexStats& istats = engine.value()->index().stats();
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    state.counters["trie_nodes"] =
        benchmark::Counter(static_cast<double>(istats.trie_node_count));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", "filter"},
                     {"queries", std::to_string(queries)},
                     {"dataset", VocabularyFor(dataset).name}};
    record.wall_ms = wall_ms;
    record.metrics = {
        {"results", static_cast<double>(sink.count())},
        {"trie_node_count", static_cast<double>(istats.trie_node_count)},
        {"total_steps", static_cast<double>(istats.total_steps)},
        {"linear_queries", static_cast<double>(istats.linear_query_count)},
        {"tail_queries", static_cast<double>(istats.tail_query_count)}};
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void BM_ProductConstruction(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int dataset = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(dataset);
  const std::vector<std::string> query_set =
      MakeWorkload(VocabularyFor(dataset), queries, 2006 + dataset);
  for (auto _ : state) {
    CountingSink sink;
    auto proc = core::MultiQueryProcessor::Create(query_set, &sink);
    if (!proc.ok()) {
      state.SkipWithError(proc.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = proc.value()->Consume({doc, false});
    if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", "product"},
                     {"queries", std::to_string(queries)},
                     {"dataset", VocabularyFor(dataset).name}};
    record.wall_ms = wall_ms;
    record.metrics = {{"results", static_cast<double>(sink.count())}};
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

// FilterEngine behind the static analyzer: unsatisfiable and equivalent
// queries are pruned before streaming, and (on Book, which has a DTD)
// level windows suppress impossible stack pushes. The "analysis.*"
// counters land in the JSON record via the metrics registry. With
// `mode` = kOn ("analyzed_filter_early"), earliest-decision tables are
// compiled too and the record adds the filter.* skip counters.
void RunAnalyzedFilter(benchmark::State& state, core::EarlyDecisionMode mode,
                       const char* system_name) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int dataset = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(dataset);
  const std::vector<std::string> query_set = MakeAnalyzableWorkload(
      VocabularyFor(dataset), queries, 2006 + dataset, dataset);
  for (auto _ : state) {
    CountingSink sink;
    filter::AnalyzedEngine::Options options;
    options.dtd = StructureFor(dataset);
    options.evaluator.enable_early_decisions = mode;
    auto engine = filter::AnalyzedEngine::Create(query_set, &sink, options);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = engine.value()->Consume({doc, false});
    if (s.ok()) s = engine.value()->Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    obs::MetricsRegistry registry;
    engine.value()->ExportMetrics(&registry);
    const auto& stats = engine.value()->analysis_stats();
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    state.counters["queries_pruned"] =
        benchmark::Counter(static_cast<double>(stats.queries_pruned()));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", system_name},
                     {"queries", std::to_string(queries)},
                     {"dataset", VocabularyFor(dataset).name}};
    record.wall_ms = wall_ms;
    record.metrics = {{"results", static_cast<double>(sink.count())}};
    for (const obs::MetricValue& metric : registry.Snapshot()) {
      if (metric.name.rfind("analysis.", 0) == 0 ||
          (mode != core::EarlyDecisionMode::kOff &&
           metric.name.rfind("filter.", 0) == 0)) {
        record.metrics.emplace_back(metric.name, metric.value);
      }
    }
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void BM_AnalyzedFilter(benchmark::State& state) {
  RunAnalyzedFilter(state, core::EarlyDecisionMode::kOff, "analyzed_filter");
}

void BM_AnalyzedFilterEarly(benchmark::State& state) {
  RunAnalyzedFilter(state, core::EarlyDecisionMode::kOn,
                    "analyzed_filter_early");
}

// Subscription workload for the sharded service: ~90% linear, and the
// first step is always a *named* tag — a wildcard first step would mark its
// shard take-all and defeat the per-symbol routing this benchmark measures
// (real publish/subscribe workloads are anchored the same way). Longer
// chains (3-5 steps) keep per-query selectivity low so the measurement is
// dominated by per-event trie work, not delivery fan-out.
std::vector<std::string> MakeServeWorkload(const Vocabulary& vocab,
                                           size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int steps = 3 + static_cast<int>(rng.Below(3));  // 3..5
    std::string q;
    for (int s = 0; s < steps; ++s) {
      q += (s == 0 || rng.Below(100) < 35) ? "//" : "/";
      if (s > 0 && rng.Below(100) < 10) {
        q += "*";
      } else {
        q += vocab.tags[rng.Below(vocab.tags.size())];
      }
    }
    if (rng.Below(100) >= 90) {
      if (rng.Below(2) == 0) {
        q += "[@" + vocab.attrs[rng.Below(vocab.attrs.size())] + "]";
      } else {
        q += "[" + vocab.tags[rng.Below(vocab.tags.size())] + "]";
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

// The sharded subscription service: the same workload partitioned across
// N shard workers, fed through one routing session. Aggregate events/sec =
// modified-SAX events processed across all shards per second of wall time;
// on multi-core hardware it scales with the shard count (per-shard
// utilization in the JSON record shows the partition balance). Notification
// delivery runs in callback mode so the measurement excludes Poll()
// contention.
void BM_ShardedServe(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(0);  // Book
  const std::vector<std::string> query_set =
      MakeServeWorkload(BookVocabulary(), queries, 2006);
  constexpr int kTimedDocs = 3;
  for (auto _ : state) {
    serve::SubscriptionServer::Options options;
    options.num_shards = shards;
    options.ring_capacity = 4096;
    std::atomic<uint64_t> delivered{0};
    options.on_batch = [&delivered](std::vector<serve::Notification>&& batch) {
      delivered.fetch_add(batch.size(), std::memory_order_relaxed);
    };
    auto server = serve::SubscriptionServer::Create(options);
    if (!server.ok()) {
      state.SkipWithError(server.status().ToString().c_str());
      return;
    }
    for (const std::string& q : query_set) {
      auto id = server.value()->Subscribe(q);
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    auto stream = server.value()->OpenStream();
    // Warm-up document: shard engines fold (compile) outside the timing.
    if (!stream->FeedDocument(doc).ok()) {
      state.SkipWithError("warm-up document failed");
      return;
    }
    std::vector<uint64_t> events_before(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      events_before[static_cast<size_t>(s)] =
          server.value()->shard(s).counters().events.load();
    }
    const uint64_t delivered_before = delivered.load();
    Stopwatch sw;
    for (int k = 0; k < kTimedDocs; ++k) {
      if (!stream->FeedDocument(doc).ok()) {
        state.SkipWithError("timed document failed");
        return;
      }
    }
    const double seconds = sw.ElapsedSeconds();
    uint64_t total_events = 0;
    std::vector<uint64_t> shard_events(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      shard_events[static_cast<size_t>(s)] =
          server.value()->shard(s).counters().events.load() -
          events_before[static_cast<size_t>(s)];
      total_events += shard_events[static_cast<size_t>(s)];
    }
    const double events_per_sec =
        seconds > 0 ? static_cast<double>(total_events) / seconds : 0;
    state.counters["events_per_sec"] = benchmark::Counter(events_per_sec);
    state.counters["deliveries"] = benchmark::Counter(
        static_cast<double>(delivered.load() - delivered_before));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", "sharded_serve"},
                     {"queries", std::to_string(queries)},
                     {"shards", std::to_string(shards)},
                     {"dataset", "book"}};
    record.wall_ms = seconds * 1e3;
    record.metrics = {
        {"events_per_sec", events_per_sec},
        {"aggregate_events", static_cast<double>(total_events)},
        {"deliveries",
         static_cast<double>(delivered.load() - delivered_before)},
        {"documents", static_cast<double>(kTimedDocs)},
        {"host_cpus",
         static_cast<double>(std::thread::hardware_concurrency())}};
    for (int s = 0; s < shards; ++s) {
      const double ev = static_cast<double>(shard_events[static_cast<size_t>(s)]);
      record.metrics.emplace_back("shard" + std::to_string(s) + ".events", ev);
      record.metrics.emplace_back(
          "shard" + std::to_string(s) + ".utilization",
          total_events ? ev / static_cast<double>(total_events) : 0);
    }
    BenchJson::Get().Add(std::move(record));
    stream.reset();  // close the session before the server goes down
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()) * kTimedDocs);
}

void RegisterSweep() {
  for (auto* bench : {benchmark::RegisterBenchmark("BM_FilterEngine",
                                                   BM_FilterEngine),
                      benchmark::RegisterBenchmark("BM_AnalyzedFilter",
                                                   BM_AnalyzedFilter),
                      benchmark::RegisterBenchmark("BM_AnalyzedFilterEarly",
                                                   BM_AnalyzedFilterEarly),
                      benchmark::RegisterBenchmark("BM_ProductConstruction",
                                                   BM_ProductConstruction)}) {
    bench->ArgNames({"queries", "dataset"});
    for (int dataset : {0, 1}) {
      for (int queries : {16, 64, 256, 1024, 4096}) {
        bench->Args({queries, dataset});
      }
    }
    bench->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  auto* sharded =
      benchmark::RegisterBenchmark("BM_ShardedServe", BM_ShardedServe);
  sharded->ArgNames({"queries", "shards"});
  for (int queries : {4096, 65536, 262144, 1048576}) {
    for (int shards : {1, 2, 4, 8}) {
      sharded->Args({queries, shards});
    }
  }
  sharded->Unit(benchmark::kMillisecond)->Iterations(1);
}

// Cross-checks the two systems before the timed runs: they must emit the
// same number of (query, id) results on the same workload.
bool SanityCheck() {
  for (int dataset : {0, 1}) {
    const std::vector<std::string> query_set =
        MakeWorkload(VocabularyFor(dataset), 64, 2006 + dataset);
    const std::string& doc = DatasetFor(dataset);
    CountingSink product_sink;
    auto proc = core::MultiQueryProcessor::Create(query_set, &product_sink);
    if (!proc.ok() || !proc.value()->Consume({doc, false}).ok() ||
        !proc.value()->Consume({std::string_view(), true}).ok()) {
      std::fprintf(stderr, "sanity: product construction failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    CountingSink filter_sink;
    auto engine = filter::FilterEngine::Create(query_set, &filter_sink);
    if (!engine.ok() || !engine.value()->Consume({doc, false}).ok() ||
        !engine.value()->Consume({std::string_view(), true}).ok()) {
      std::fprintf(stderr, "sanity: filter engine failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    if (product_sink.count() != filter_sink.count()) {
      std::fprintf(stderr,
                   "sanity: result mismatch on %s: product=%llu filter=%llu\n",
                   VocabularyFor(dataset).name,
                   static_cast<unsigned long long>(product_sink.count()),
                   static_cast<unsigned long long>(filter_sink.count()));
      return false;
    }
    // The analyzed engine must agree with the product construction on the
    // enriched workload despite pruning/minimizing queries.
    const std::vector<std::string> analyzable = MakeAnalyzableWorkload(
        VocabularyFor(dataset), 64, 2006 + dataset, dataset);
    CountingSink base_sink;
    auto base = core::MultiQueryProcessor::Create(analyzable, &base_sink);
    filter::AnalyzedEngine::Options options;
    options.dtd = StructureFor(dataset);
    CountingSink analyzed_sink;
    auto analyzed =
        filter::AnalyzedEngine::Create(analyzable, &analyzed_sink, options);
    if (!base.ok() || !base.value()->Consume({doc, false}).ok() ||
        !base.value()->Consume({std::string_view(), true}).ok() || !analyzed.ok() ||
        !analyzed.value()->Consume({doc, false}).ok() ||
        !analyzed.value()->Consume({std::string_view(), true}).ok()) {
      std::fprintf(stderr, "sanity: analyzed engine failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    if (base_sink.count() != analyzed_sink.count()) {
      std::fprintf(
          stderr, "sanity: analyzed mismatch on %s: product=%llu analyzed=%llu\n",
          VocabularyFor(dataset).name,
          static_cast<unsigned long long>(base_sink.count()),
          static_cast<unsigned long long>(analyzed_sink.count()));
      return false;
    }
    // Earliest decisions must not change result counts (the documents are
    // DTD-valid by construction, so the static proofs are sound here).
    options.evaluator.enable_early_decisions = core::EarlyDecisionMode::kOn;
    CountingSink early_sink;
    auto early =
        filter::AnalyzedEngine::Create(analyzable, &early_sink, options);
    if (!early.ok() || !early.value()->Consume({doc, false}).ok() ||
        !early.value()->Consume({std::string_view(), true}).ok()) {
      std::fprintf(stderr, "sanity: early-decision engine failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    if (base_sink.count() != early_sink.count()) {
      std::fprintf(
          stderr, "sanity: early mismatch on %s: product=%llu early=%llu\n",
          VocabularyFor(dataset).name,
          static_cast<unsigned long long>(base_sink.count()),
          static_cast<unsigned long long>(early_sink.count()));
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!twigm::bench::SanityCheck()) return 1;
  twigm::bench::RegisterSweep();
  benchmark::RunSpecifiedBenchmarks();
  twigm::bench::BenchJson::Get().Write();
  return 0;
}
