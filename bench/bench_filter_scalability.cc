// Filter-engine scalability benchmark: one stream, many queries. Compares
// the shared-prefix FilterEngine (src/filter/) against the product
// construction of MultiQueryProcessor as the query set grows 16 -> 4096,
// on the Book and Auction datasets. The product's per-event cost is linear
// in the number of queries; the filter's is bounded by the number of
// distinct active location steps, so the gap widens with the set size.
//
// Run with `--json BENCH_filter_scalability.json` for machine-readable
// records (wall time, peak RSS, result counts, trie sharing stats).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/multi_query.h"
#include "filter/filter_engine.h"

namespace twigm::bench {
namespace {

struct Vocabulary {
  const char* name;
  std::vector<std::string> tags;
  std::vector<std::string> attrs;
};

const Vocabulary& BookVocabulary() {
  static const Vocabulary* kVocab = new Vocabulary{
      "book",
      {"collection", "book", "title", "author", "section", "p", "figure",
       "image"},
      {"id", "short", "difficulty"}};
  return *kVocab;
}

const Vocabulary& AuctionVocabulary() {
  static const Vocabulary* kVocab = new Vocabulary{
      "auction",
      {"site", "regions", "item", "description", "parlist", "listitem",
       "text", "people", "person", "name", "open_auctions", "open_auction",
       "bidder", "increase", "seller", "price", "category"},
      {"id", "category"}};
  return *kVocab;
}

// Synthesizes a filtering workload over the dataset vocabulary: ~75%
// linear queries (the dominant publish/subscribe class), the rest with one
// structural or attribute predicate on the last step. Duplicates and
// shared prefixes arise naturally from the small vocabulary.
std::vector<std::string> MakeWorkload(const Vocabulary& vocab, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int steps = 2 + static_cast<int>(rng.Below(3));  // 2..4
    std::string q;
    for (int s = 0; s < steps; ++s) {
      q += (s == 0 || rng.Below(100) < 35) ? "//" : "/";
      if (rng.Below(100) < 8) {
        q += "*";
      } else {
        q += vocab.tags[rng.Below(vocab.tags.size())];
      }
    }
    if (rng.Below(100) >= 75) {
      if (rng.Below(2) == 0) {
        q += "[@" + vocab.attrs[rng.Below(vocab.attrs.size())] + "]";
      } else {
        q += "[" + vocab.tags[rng.Below(vocab.tags.size())] + "]";
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

const Vocabulary& VocabularyFor(int dataset) {
  return dataset == 0 ? BookVocabulary() : AuctionVocabulary();
}

const std::string& DatasetFor(int dataset) {
  return dataset == 0 ? BookDataset() : AuctionDataset();
}

class CountingSink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t, const core::MatchInfo&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

void BM_FilterEngine(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int dataset = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(dataset);
  const std::vector<std::string> query_set =
      MakeWorkload(VocabularyFor(dataset), queries, 2006 + dataset);
  for (auto _ : state) {
    CountingSink sink;
    auto engine = filter::FilterEngine::Create(query_set, &sink);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = engine.value()->Feed(doc);
    if (s.ok()) s = engine.value()->Finish();
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    const filter::FilterIndexStats& istats = engine.value()->index().stats();
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    state.counters["trie_nodes"] =
        benchmark::Counter(static_cast<double>(istats.trie_node_count));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", "filter"},
                     {"queries", std::to_string(queries)},
                     {"dataset", VocabularyFor(dataset).name}};
    record.wall_ms = wall_ms;
    record.metrics = {
        {"results", static_cast<double>(sink.count())},
        {"trie_node_count", static_cast<double>(istats.trie_node_count)},
        {"total_steps", static_cast<double>(istats.total_steps)},
        {"linear_queries", static_cast<double>(istats.linear_query_count)},
        {"tail_queries", static_cast<double>(istats.tail_query_count)}};
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void BM_ProductConstruction(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const int dataset = static_cast<int>(state.range(1));
  const std::string& doc = DatasetFor(dataset);
  const std::vector<std::string> query_set =
      MakeWorkload(VocabularyFor(dataset), queries, 2006 + dataset);
  for (auto _ : state) {
    CountingSink sink;
    auto proc = core::MultiQueryProcessor::Create(query_set, &sink);
    if (!proc.ok()) {
      state.SkipWithError(proc.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = proc.value()->Feed(doc);
    if (s.ok()) s = proc.value()->Finish();
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    BenchRecord record;
    record.bench = "filter_scalability";
    record.params = {{"system", "product"},
                     {"queries", std::to_string(queries)},
                     {"dataset", VocabularyFor(dataset).name}};
    record.wall_ms = wall_ms;
    record.metrics = {{"results", static_cast<double>(sink.count())}};
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}

void RegisterSweep() {
  for (auto* bench : {benchmark::RegisterBenchmark("BM_FilterEngine",
                                                   BM_FilterEngine),
                      benchmark::RegisterBenchmark("BM_ProductConstruction",
                                                   BM_ProductConstruction)}) {
    bench->ArgNames({"queries", "dataset"});
    for (int dataset : {0, 1}) {
      for (int queries : {16, 64, 256, 1024, 4096}) {
        bench->Args({queries, dataset});
      }
    }
    bench->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

// Cross-checks the two systems before the timed runs: they must emit the
// same number of (query, id) results on the same workload.
bool SanityCheck() {
  for (int dataset : {0, 1}) {
    const std::vector<std::string> query_set =
        MakeWorkload(VocabularyFor(dataset), 64, 2006 + dataset);
    const std::string& doc = DatasetFor(dataset);
    CountingSink product_sink;
    auto proc = core::MultiQueryProcessor::Create(query_set, &product_sink);
    if (!proc.ok() || !proc.value()->Feed(doc).ok() ||
        !proc.value()->Finish().ok()) {
      std::fprintf(stderr, "sanity: product construction failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    CountingSink filter_sink;
    auto engine = filter::FilterEngine::Create(query_set, &filter_sink);
    if (!engine.ok() || !engine.value()->Feed(doc).ok() ||
        !engine.value()->Finish().ok()) {
      std::fprintf(stderr, "sanity: filter engine failed (%s)\n",
                   VocabularyFor(dataset).name);
      return false;
    }
    if (product_sink.count() != filter_sink.count()) {
      std::fprintf(stderr,
                   "sanity: result mismatch on %s: product=%llu filter=%llu\n",
                   VocabularyFor(dataset).name,
                   static_cast<unsigned long long>(product_sink.count()),
                   static_cast<unsigned long long>(filter_sink.count()));
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!twigm::bench::SanityCheck()) return 1;
  twigm::bench::RegisterSweep();
  benchmark::RunSpecifiedBenchmarks();
  twigm::bench::BenchJson::Get().Write();
  return 0;
}
