// Figure 10: memory usage for Q10 as the Book dataset is duplicated 1–6
// times.
//
// Expected shape (paper, section 5.5): the streaming engines' memory is
// constant as the data grows (TwigM ≈ 1 MB in the paper); the non-streaming
// DomEval grows faster than the data size (DOM + memo tables).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "data/datasets.h"

namespace twigm::bench {
namespace {

int Main() {
  const data::QuerySpec* q10 = nullptr;
  for (const data::QuerySpec& q : data::BookQueries()) {
    if (q.name == "Q10") q10 = &q;
  }
  std::printf("Figure 10: memory usage for Q10 (%s) as Book data grows\n\n",
              q10->text.c_str());
  std::printf("%-7s %10s %12s %12s %12s\n", "copies", "doc size", "TwigM",
              "NaiveEnum", "DomEval");
  for (int copies = 1; copies <= 6; ++copies) {
    const std::string& doc = BookDatasetCopies(copies);
    std::printf("%-7d %10s", copies, HumanBytes(doc.size()).c_str());
    for (System system :
         {System::kTwigM, System::kNaiveEnum, System::kDomEval}) {
      const RunResult result = RunSystem(system, q10->text, doc);
      if (result.status.ok()) {
        std::printf(" %12s", HumanBytes(result.state_bytes).c_str());
      } else if (result.status.code() == StatusCode::kNotSupported) {
        std::printf(" %12s", "n/s");
      } else {
        std::printf(" %12s", "abort");
      }
    }
    std::printf("\n");
  }
  std::printf("\n(streaming rows stay flat; DomEval grows with the data)\n");
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main() { return twigm::bench::Main(); }
