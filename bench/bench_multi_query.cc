// Filtering-workload benchmark (related work, section 6: YFilter/XTrie
// match many queries against one stream). Measures single-pass throughput
// as the number of simultaneously evaluated queries grows, for the product
// construction of MultiQueryProcessor (no common-prefix sharing): per-event
// cost should grow roughly linearly in the number of queries.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/multi_query.h"

namespace twigm::bench {
namespace {

// Synthesizes a workload of Book-vocabulary queries of mixed classes.
std::vector<std::string> MakeQuerySet(size_t count, uint64_t seed) {
  static const char* kTemplates[] = {
      "//section/title",
      "//section//figure",
      "//section[title]/figure",
      "//figure[image]/title",
      "//section[@id]//p",
      "//book//section[p]//title",
      "//section/*/image",
      "//*[title]//p",
  };
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(kTemplates[rng.Below(8)]);
  }
  return out;
}

class NullMultiSink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t, const core::MatchInfo&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

void BM_MultiQuery(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const std::string& doc = BookDataset();
  const std::vector<std::string> query_set = MakeQuerySet(queries, 99);
  for (auto _ : state) {
    NullMultiSink sink;
    auto proc = core::MultiQueryProcessor::Create(query_set, &sink);
    if (!proc.ok()) {
      state.SkipWithError(proc.status().ToString().c_str());
      return;
    }
    Stopwatch sw;
    Status s = proc.value()->Consume({doc, false});
    if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
    const double wall_ms = sw.ElapsedSeconds() * 1e3;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.counters["results"] =
        benchmark::Counter(static_cast<double>(sink.count()));
    BenchRecord record;
    record.bench = "multi_query";
    record.params = {{"queries", std::to_string(queries)},
                     {"dataset", "book"}};
    record.wall_ms = wall_ms;
    record.metrics = {{"results", static_cast<double>(sink.count())}};
    BenchJson::Get().Add(std::move(record));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_MultiQuery)->RangeMultiplier(4)->Range(1, 64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  twigm::bench::BenchJson::Get().Write();
  return 0;
}
