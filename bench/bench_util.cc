#include "bench/bench_util.h"

#include <cstring>

#include "common/mem_stats.h"
#include "xml/sax_event.h"

namespace twigm::bench {

namespace {

const std::string* GenerateOrDie(Result<std::string> doc, const char* what) {
  if (!doc.ok()) {
    std::fprintf(stderr, "failed to generate %s dataset: %s\n", what,
                 doc.status().ToString().c_str());
    std::exit(1);
  }
  return new std::string(std::move(doc).value());
}

}  // namespace

const std::string& BookDataset() {
  static const std::string* kDoc = [] {
    data::BookOptions options;
    options.seed = 2006;
    options.min_bytes = BookBytes();
    return GenerateOrDie(data::GenerateBook(options), "book");
  }();
  return *kDoc;
}

const std::string& AuctionDataset() {
  static const std::string* kDoc = [] {
    data::XmarkOptions options;
    options.seed = 2006;
    options.people = 200;
    options.min_bytes = AuctionBytes();
    return GenerateOrDie(data::GenerateXmark(options), "auction");
  }();
  return *kDoc;
}

const std::string& ProteinDataset() {
  static const std::string* kDoc = [] {
    data::ProteinOptions options;
    options.seed = 2006;
    options.min_bytes = ProteinBytes();
    return GenerateOrDie(data::GenerateProtein(options), "protein");
  }();
  return *kDoc;
}

const std::string& BookDatasetCopies(int copies) {
  static std::map<int, const std::string*>* kCache =
      new std::map<int, const std::string*>();
  auto it = kCache->find(copies);
  if (it != kCache->end()) return *it->second;
  data::BookOptions options;
  options.seed = 2006;
  // Per-copy size ~ BookBytes(): generate one sized book, then duplicate.
  // GenerateBook's copies mode duplicates a single-instance book, so use a
  // custom assembly from the size-targeted document.
  options.min_bytes = BookBytes();
  Result<std::string> base = data::GenerateBook(options);
  if (!base.ok()) {
    std::fprintf(stderr, "book generation failed\n");
    std::exit(1);
  }
  // The size-targeted book is <collection>...</collection>; concatenate its
  // children `copies` times under a new root.
  const std::string& text = base.value();
  const size_t open = text.find("<collection>");
  const size_t close = text.rfind("</collection>");
  std::string inner = text.substr(open + 12, close - open - 12);
  std::string doc = "<collection>";
  for (int i = 0; i < copies; ++i) doc += inner;
  doc += "</collection>";
  const std::string* stored = new std::string(std::move(doc));
  (*kCache)[copies] = stored;
  return *stored;
}

BenchJson& BenchJson::Get() {
  static BenchJson* kInstance = new BenchJson();
  return *kInstance;
}

void BenchJson::StripJsonFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path_ = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path_ = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

void BenchJson::Add(BenchRecord record) {
  if (record.peak_rss_bytes == 0) {
    record.peak_rss_bytes = ReadProcessMemory().peak_rss_bytes;
  }
  records_.push_back(std::move(record));
}

namespace {

// Minimal JSON string escaping: the values we emit are benchmark and
// parameter names, never arbitrary user text.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void BenchJson::Write() const {
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    std::fprintf(f, "  {\"bench\": \"%s\", \"params\": {",
                 JsonEscape(r.bench).c_str());
    for (size_t p = 0; p < r.params.size(); ++p) {
      std::fprintf(f, "%s\"%s\": \"%s\"", p > 0 ? ", " : "",
                   JsonEscape(r.params[p].first).c_str(),
                   JsonEscape(r.params[p].second).c_str());
    }
    std::fprintf(f, "}, \"wall_ms\": %.3f, \"peak_rss_bytes\": %llu",
                 r.wall_ms, static_cast<unsigned long long>(r.peak_rss_bytes));
    for (const auto& [name, value] : r.metrics) {
      std::fprintf(f, ", \"%s\": %.3f", JsonEscape(name).c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "bench json: wrote %zu records to %s\n",
               records_.size(), path_.c_str());
}

RunResult RunSystem(System system, const std::string& query,
                    const std::string& doc) {
  RunResult out;
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  if (!tree.ok()) {
    out.status = tree.status();
    return out;
  }

  switch (system) {
    case System::kTwigM: {
      core::VectorResultSink sink;
      core::EvaluatorOptions options;
      options.engine = core::EngineKind::kTwigM;
      Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
          core::XPathStreamProcessor::Create(query, &sink, options);
      if (!proc.ok()) {
        out.status = proc.status();
        return out;
      }
      Stopwatch sw;
      Status s = proc.value()->Consume({doc, false});
      if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
      out.seconds = sw.ElapsedSeconds();
      out.status = s;
      out.results = proc.value()->stats().results;
      out.state_bytes = proc.value()->stats().peak_state_bytes;
      out.state_items = proc.value()->stats().peak_stack_entries;
      return out;
    }
    case System::kLazyDfa: {
      core::VectorResultSink sink;
      Result<std::unique_ptr<baselines::LazyDfaEngine>> engine =
          baselines::LazyDfaEngine::Create(tree.value(), &sink);
      if (!engine.ok()) {
        out.status = engine.status();
        return out;
      }
      xml::EventDriver driver(engine.value().get());
      xml::SaxParser parser(&driver);
      Stopwatch sw;
      out.status = parser.ParseAll(doc);
      out.seconds = sw.ElapsedSeconds();
      out.results = engine.value()->stats().results;
      out.state_bytes = engine.value()->ApproximateMemoryBytes();
      out.state_items = engine.value()->stats().dfa_states;
      return out;
    }
    case System::kNaiveEnum: {
      core::VectorResultSink sink;
      baselines::NaiveEnumOptions options;
      // Benchmarks cap the enumeration earlier than the library default so
      // aborting runs (the paper's XSQ errors/timeouts) fail fast instead of
      // thrashing in O(live matches) garbage collection.
      options.max_live_matches = 300'000;
      options.max_work = 200'000'000;
      Result<std::unique_ptr<baselines::NaiveEnumEngine>> engine =
          baselines::NaiveEnumEngine::Create(tree.value(), &sink, options);
      if (!engine.ok()) {
        out.status = engine.status();
        return out;
      }
      xml::EventDriver driver(engine.value().get());
      xml::SaxParser parser(&driver);
      Stopwatch sw;
      Status s = parser.ParseAll(doc);
      out.seconds = sw.ElapsedSeconds();
      out.status = s.ok() ? engine.value()->status() : s;
      out.results = engine.value()->stats().results;
      out.state_items = engine.value()->stats().peak_live_matches;
      // Each live match stores an id and a level per machine node.
      out.state_bytes = out.state_items * tree.value().node_count() *
                        (sizeof(xml::NodeId) + sizeof(int));
      return out;
    }
    case System::kDomEval: {
      baselines::DomEvalStats stats;
      Stopwatch sw;
      Result<std::vector<xml::NodeId>> result =
          baselines::EvaluateOnDom(tree.value(), doc, &stats);
      out.seconds = sw.ElapsedSeconds();
      if (!result.ok()) {
        out.status = result.status();
        return out;
      }
      out.results = result.value().size();
      out.state_bytes = stats.dom_bytes + stats.memo_bytes;
      out.state_items = stats.subtree_checks;
      return out;
    }
  }
  out.status = Status::Internal("unknown system");
  return out;
}

}  // namespace twigm::bench
