// Shared infrastructure for the figure-reproduction benchmarks.
//
// Dataset sizes default to CI-friendly scales; set TWIGM_BENCH_SCALE (a
// positive float, default 1.0) to multiply them — e.g. TWIGM_BENCH_SCALE=8
// approximates the paper's 9 MB Book / 34 MB Auction / 75 MB Protein sizes.

#ifndef TWIGM_BENCH_BENCH_UTIL_H_
#define TWIGM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/dom_eval.h"
#include "baselines/lazy_dfa.h"
#include "baselines/naive_enum.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/evaluator.h"
#include "data/book.h"
#include "data/datasets.h"
#include "data/protein.h"
#include "data/xmark.h"
#include "xml/sax_parser.h"

namespace twigm::bench {

inline double BenchScale() {
  const char* env = std::getenv("TWIGM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

/// Base sizes (bytes) at scale 1. The paper's sizes are 9 MB / 34 MB /
/// 75 MB; defaults are ~1/8 of that so the full suite runs in minutes.
inline size_t BookBytes() {
  return static_cast<size_t>(1.2e6 * BenchScale());
}
inline size_t AuctionBytes() {
  return static_cast<size_t>(4.25e6 * BenchScale());
}
inline size_t ProteinBytes() {
  return static_cast<size_t>(9.4e6 * BenchScale());
}

/// Lazily generated, process-cached datasets.
const std::string& BookDataset();
const std::string& AuctionDataset();
const std::string& ProteinDataset();
/// Book dataset duplicated `copies` times (for Figs. 9 and 10).
const std::string& BookDatasetCopies(int copies);

/// The systems compared in section 5. Names follow the roles of the
/// paper's systems (see DESIGN.md for the mapping).
enum class System {
  kTwigM,      // this paper
  kLazyDfa,    // XMLTK-style (XP{/,//,*} only)
  kNaiveEnum,  // XSQ-style explicit enumeration
  kDomEval,    // Galax / XMLTaskForce-style non-streaming
};

inline const char* SystemName(System s) {
  switch (s) {
    case System::kTwigM: return "TwigM";
    case System::kLazyDfa: return "LazyDFA";
    case System::kNaiveEnum: return "NaiveEnum";
    case System::kDomEval: return "DomEval";
  }
  return "?";
}

/// Outcome of one (system, query, document) run.
struct RunResult {
  Status status;            // non-OK: unsupported query or aborted run
  double seconds = 0;
  uint64_t results = 0;
  uint64_t state_bytes = 0;  // engine-owned state at peak (internal count)
  uint64_t state_items = 0;  // entries / matches / DFA states
};

/// Runs `query` over `doc` on the given system, measuring wall time and the
/// engine's internal memory accounting.
RunResult RunSystem(System system, const std::string& query,
                    const std::string& doc);

/// One measurement for machine-readable benchmark output (the `--json`
/// flag): benchmark name, its parameters, wall time, and peak RSS.
struct BenchRecord {
  std::string bench;  // e.g. "multi_query"
  std::vector<std::pair<std::string, std::string>> params;
  double wall_ms = 0;
  uint64_t peak_rss_bytes = 0;  // filled from /proc/self/status when 0
  /// Extra numeric fields inlined into the record (results, trie nodes, …).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Collects BenchRecords and, when the binary was started with
/// `--json <path>` (or `--json=<path>`), writes them as a JSON array to
/// `<path>` — by convention `BENCH_<name>.json`, so the perf trajectory of
/// a benchmark is machine-readable across PRs. Usage in a bench main():
///
///   twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
///   benchmark::Initialize(&argc, argv);
///   benchmark::RunSpecifiedBenchmarks();
///   twigm::bench::BenchJson::Get().Write();
///
/// Without the flag, Add/Write are cheap no-ops on the output side (records
/// are still collected; Write simply skips the file).
class BenchJson {
 public:
  static BenchJson& Get();

  /// Removes `--json <path>` / `--json=<path>` from argv before
  /// google-benchmark sees (and rejects) the unknown flag.
  void StripJsonFlag(int* argc, char** argv);

  /// Records one measurement; peak_rss_bytes defaults to the process
  /// high-water mark at the time of the call.
  void Add(BenchRecord record);

  /// Writes the collected records to the requested path (no-op without
  /// `--json`). Prints the destination to stderr on success.
  void Write() const;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace twigm::bench

#endif  // TWIGM_BENCH_BENCH_UTIL_H_
