// Raw structural-scan throughput: GB/s of the build-selected SIMD/SWAR
// kernel (ScanStructural) vs the one-byte-at-a-time reference loop
// (ScanStructuralScalar) over the Figure 7 corpora. The interesting number
// is the speedup ratio — on a real SIMD build it must stay >= 2x, gated by
// scripts/check_rawscan.py against bench/BENCH_rawscan_baseline.json.
//
// Protocol per (dataset, kernel) cell: one warm-up pass (grows the mark
// vector to capacity), then best-of-5 timed passes over the whole document.
// Run with `--json BENCH_rawscan.json` for machine-readable records.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "xml/structural_scan.h"

namespace twigm::bench {
namespace {

constexpr int kTimedPasses = 5;

// Throughput is measured over a cache-resident window from the middle of
// each corpus, re-scanned until ~the document size has been covered. This
// matches the parser's access pattern — ScanAppended() runs over bytes the
// Consume() call just copied into the buffer, so scan input is L1/L2-warm,
// not streamed cold from DRAM — and keeps the measurement from degenerating
// into a DRAM-bandwidth test on multi-megabyte corpora.
constexpr size_t kSliceBytes = 256 * 1024;

struct ScanCell {
  double gb_per_sec = 0;
  uint64_t marks = 0;
};

ScanCell Measure(const std::string& doc, bool scalar) {
  xml::StructuralIndex index;
  const size_t slice = std::min(doc.size(), kSliceBytes);
  const size_t from = (doc.size() - slice) / 2;
  const size_t to = from + slice;
  const size_t reps = (doc.size() + slice - 1) / slice;
  auto scan = [&] {
    if (scalar) {
      xml::ScanStructuralScalar(doc, from, to, &index);
    } else {
      xml::ScanStructural(doc, from, to, &index);
    }
  };
  // Warm-up pass: mark vector reaches capacity, window is pulled into cache.
  for (size_t r = 0; r < reps; ++r) {
    index.Clear();
    scan();
  }
  double best = 0;
  for (int pass = 0; pass < kTimedPasses; ++pass) {
    Stopwatch sw;
    for (size_t r = 0; r < reps; ++r) {
      index.Clear();
      scan();
    }
    const double seconds = sw.ElapsedSeconds();
    const double bytes = static_cast<double>(slice * reps);
    best = std::max(best, seconds > 0 ? bytes / seconds / 1e9 : 0);
  }
  // Correctness + mark count: one full-document scan (the differential
  // conformance suite checks mark equality in depth; this catches gross
  // drift between the kernels on the real corpora).
  index.Clear();
  if (scalar) {
    xml::ScanStructuralScalar(doc, 0, doc.size(), &index);
  } else {
    xml::ScanStructural(doc, 0, doc.size(), &index);
  }
  ScanCell cell;
  cell.gb_per_sec = best;
  cell.marks = index.marks.size();
  return cell;
}

int Main() {
  std::printf("bench_rawscan: fast path = %s\n", xml::StructuralScanKind());
  std::printf("%-10s %10s  %12s  %12s  %8s\n", "dataset", "bytes",
              "fast GB/s", "scalar GB/s", "speedup");

  struct DatasetRef {
    const char* name;
    const std::string& (*get)();
  };
  const DatasetRef datasets[] = {
      {"Book", &BookDataset},
      {"Benchmark", &AuctionDataset},
      {"Protein", &ProteinDataset},
  };

  for (const DatasetRef& dataset : datasets) {
    const std::string& doc = dataset.get();
    const ScanCell fast = Measure(doc, /*scalar=*/false);
    const ScanCell scalar = Measure(doc, /*scalar=*/true);
    const double speedup =
        scalar.gb_per_sec > 0 ? fast.gb_per_sec / scalar.gb_per_sec : 0;
    std::printf("%-10s %10zu  %12.3f  %12.3f  %7.2fx\n", dataset.name,
                doc.size(), fast.gb_per_sec, scalar.gb_per_sec, speedup);
    if (fast.marks != scalar.marks) {
      std::fprintf(stderr, "FATAL: mark count mismatch on %s (%llu vs %llu)\n",
                   dataset.name,
                   static_cast<unsigned long long>(fast.marks),
                   static_cast<unsigned long long>(scalar.marks));
      return 1;
    }

    BenchRecord record;
    record.bench = "rawscan";
    record.params = {{"dataset", dataset.name},
                     {"scan_kind", xml::StructuralScanKind()}};
    record.wall_ms = 0;
    record.metrics = {
        {"bytes", static_cast<double>(doc.size())},
        {"marks", static_cast<double>(fast.marks)},
        {"fast_gb_per_sec", fast.gb_per_sec},
        {"scalar_gb_per_sec", scalar.gb_per_sec},
        {"speedup", speedup},
        {"is_simd", xml::StructuralScanIsSimd() ? 1.0 : 0.0},
    };
    BenchJson::Get().Add(std::move(record));
  }
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  const int rc = twigm::bench::Main();
  twigm::bench::BenchJson::Get().Write();
  return rc;
}
