// Section 5.6's closing claim: "We have also tested benchmark queries over
// data that is over 1GB in size, and found that the memory usage remains at
// 1MB."
//
// This harness streams a large document through TwigM WITHOUT ever
// materializing it: one generated <book> is serialized once and its bytes
// are fed repeatedly (as siblings under a synthetic root), so the only
// memory in play is the engine's. Default volume is 128 MB so the default
// bench sweep stays fast; set TWIGM_GIGABYTE=1 to run the full 1 GB.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/mem_stats.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/evaluator.h"
#include "data/book.h"

namespace twigm::bench {
namespace {

int Main() {
  const bool full = std::getenv("TWIGM_GIGABYTE") != nullptr;
  const uint64_t target_bytes =
      full ? uint64_t{1} << 30 : uint64_t{128} << 20;

  // One moderately sized book, serialized once.
  data::BookOptions options;
  options.seed = 555;
  Result<std::string> book = data::GenerateBook(options);
  if (!book.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  // Strip any XML declaration so the chunk can repeat mid-document.
  std::string chunk = book.value();
  const size_t start = chunk.find("<book");
  chunk.erase(0, start);

  const char* kQuery = "//section[title]//figure";
  core::CountingResultSink sink;
  core::EvaluatorOptions eval_options;
  eval_options.engine = core::EngineKind::kTwigM;
  auto proc =
      core::XPathStreamProcessor::Create(kQuery, &sink, eval_options);
  if (!proc.ok()) {
    std::fprintf(stderr, "%s\n", proc.status().ToString().c_str());
    return 1;
  }

  const ProcessMemory before = ReadProcessMemory();
  Stopwatch sw;
  uint64_t fed = 0;
  Status s = proc.value()->Consume({"<stream>", false});
  while (s.ok() && fed < target_bytes) {
    s = proc.value()->Consume({chunk, false});
    fed += chunk.size();
  }
  if (s.ok()) s = proc.value()->Consume({"</stream>", false});
  if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
  if (!s.ok()) {
    std::fprintf(stderr, "stream error: %s\n", s.ToString().c_str());
    return 1;
  }
  const double seconds = sw.ElapsedSeconds();
  const ProcessMemory after = ReadProcessMemory();

  const core::EngineStats& stats = proc.value()->stats();
  std::printf("Section 5.6 claim: large-stream memory (query %s)\n\n",
              kQuery);
  std::printf("streamed:          %s in %.1f s (%.1f MB/s)\n",
              HumanBytes(fed).c_str(), seconds,
              static_cast<double>(fed) / 1048576.0 / seconds);
  std::printf("results:           %s\n",
              WithThousands(sink.count()).c_str());
  std::printf("engine state peak: %s (%s stack entries)\n",
              HumanBytes(stats.peak_state_bytes).c_str(),
              WithThousands(stats.peak_stack_entries).c_str());
  std::printf("process RSS:       %s before, %s after (delta %s)\n",
              HumanBytes(before.rss_bytes).c_str(),
              HumanBytes(after.rss_bytes).c_str(),
              HumanBytes(after.rss_bytes > before.rss_bytes
                             ? after.rss_bytes - before.rss_bytes
                             : 0)
                  .c_str());
  std::printf("\n(paper: memory remains ~1 MB at 1 GB of data; run with "
              "TWIGM_GIGABYTE=1 for the full volume)\n");
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main() { return twigm::bench::Main(); }
