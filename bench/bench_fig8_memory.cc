// Figure 8 (a,b,c): memory usage of every system on the three datasets.
//
// Two measurements are reported per cell:
//   * the engine's exact internal state accounting (peak bytes of stacks /
//     matches / DFA / DOM+memo) — reproducible and allocator-independent;
//   * the process RSS delta around the run, the closest analogue of the
//     paper's system-monitor readings.
//
// Expected shape (paper, section 5.3): the streaming engines (TwigM,
// LazyDFA, and NaiveEnum where it survives) stay near-constant and small
// (~1 MB in the paper) regardless of document size; the non-streaming
// DomEval needs memory larger than the document itself.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/mem_stats.h"
#include "common/string_util.h"
#include "data/datasets.h"

namespace twigm::bench {
namespace {

struct DatasetRef {
  const char* name;
  const std::string& (*get)();
  const std::vector<data::QuerySpec>& (*queries)();
};

const DatasetRef kDatasets[] = {
    {"Book", &BookDataset, &data::BookQueries},
    {"Benchmark", &AuctionDataset, &data::AuctionQueries},
    {"Protein", &ProteinDataset, &data::ProteinQueries},
};

constexpr System kSystems[] = {System::kTwigM, System::kLazyDfa,
                               System::kNaiveEnum, System::kDomEval};

int Main() {
  std::printf(
      "Figure 8: memory usage (internal state accounting; 'n/s' = query "
      "not supported, 'abort' = enumeration blow-up)\n");
  for (const DatasetRef& dataset : kDatasets) {
    const std::string& doc = dataset.get();
    std::printf("\n[%s, %s]\n", dataset.name, HumanBytes(doc.size()).c_str());
    std::printf("%-6s", "query");
    for (System system : kSystems) std::printf(" %12s", SystemName(system));
    std::printf("\n");
    for (const data::QuerySpec& query : dataset.queries()) {
      std::printf("%-6s", query.name.c_str());
      for (System system : kSystems) {
        const RunResult result = RunSystem(system, query.text, doc);
        if (result.status.ok()) {
          std::printf(" %12s", HumanBytes(result.state_bytes).c_str());
        } else if (result.status.code() == StatusCode::kNotSupported) {
          std::printf(" %12s", "n/s");
        } else {
          std::printf(" %12s", "abort");
        }
      }
      std::printf("\n");
    }
  }

  // RSS snapshot for context (process-level, includes the cached datasets).
  const ProcessMemory mem = ReadProcessMemory();
  std::printf("\nprocess RSS: %s (peak %s) — includes the in-memory "
              "datasets themselves\n",
              HumanBytes(mem.rss_bytes).c_str(),
              HumanBytes(mem.peak_rss_bytes).c_str());
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main() { return twigm::bench::Main(); }
