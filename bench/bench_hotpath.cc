// Hot-path microbenchmark: events/sec and steady-state allocations per
// event for TwigM over the Figure 7 workloads and for the shared-prefix
// FilterEngine over a synthesized filtering workload.
//
// Protocol per cell: build the processor once, stream the document once to
// reach steady state (pools, interner, and stack capacity warm), then
// Reset() and re-stream — three timed passes (best-of) for events/sec and
// one counted pass for heap allocations, measured through the linked
// alloc hook (src/obs/alloc_hook.h). `scripts/check_hotpath.py` gates on
// the resulting BENCH_hotpath.json: events/sec must not regress >5%
// against the committed baseline and steady-state allocs/event must be 0.
//
// Run with `--json BENCH_hotpath.json` for machine-readable records.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/decision_analysis.h"
#include "analysis/dtd_structure.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/evaluator.h"
#include "core/multi_query.h"
#include "data/book.h"
#include "data/datasets.h"
#include "dtd/dtd_parser.h"
#include "filter/filter_engine.h"
#include "obs/alloc_hook.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::bench {
namespace {

constexpr int kTimedPasses = 3;

struct CellResult {
  double best_seconds = 0;
  uint64_t events = 0;        // startElement + endElement per pass
  uint64_t results = 0;       // per pass
  uint64_t steady_allocs = 0; // operator-new calls during the counted pass

  double events_per_sec() const {
    return best_seconds > 0 ? static_cast<double>(events) / best_seconds : 0;
  }
  double allocs_per_event() const {
    return events > 0
               ? static_cast<double>(steady_allocs) / static_cast<double>(events)
               : 0;
  }
};

// Counts modified-SAX events of a document (for engines whose stats do not
// expose event totals). Cached per dataset by the callers.
uint64_t CountDocumentEvents(const std::string& doc) {
  class Counter : public xml::StreamEventSink {
   public:
    void StartElement(const xml::TagToken&, int, xml::NodeId,
                      const std::vector<xml::Attribute>&) override {
      ++events;
    }
    void EndElement(const xml::TagToken&, int) override { ++events; }
    void Text(std::string_view, int) override {}
    void EndDocument() override {}
    uint64_t events = 0;
  };
  Counter counter;
  xml::EventDriver driver(&counter);
  xml::SaxParser parser(&driver);
  Status s = parser.Consume({doc, false});
  if (s.ok()) s = parser.Consume({std::string_view(), true});
  if (!s.ok()) {
    std::fprintf(stderr, "event count parse failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  return counter.events;
}

void AddRecord(const char* group, const char* dataset,
               const std::string& workload, const CellResult& cell) {
  BenchRecord record;
  record.bench = "hotpath";
  record.params = {
      {"group", group}, {"dataset", dataset}, {"workload", workload}};
  record.wall_ms = cell.best_seconds * 1e3;
  record.metrics = {
      {"events", static_cast<double>(cell.events)},
      {"events_per_sec", cell.events_per_sec()},
      {"results", static_cast<double>(cell.results)},
      {"steady_allocs", static_cast<double>(cell.steady_allocs)},
      {"allocs_per_event", cell.allocs_per_event()}};
  BenchJson::Get().Add(std::move(record));
}

void PrintCell(const char* group, const char* dataset,
               const std::string& workload, const CellResult& cell) {
  std::printf("%-7s %-9s %-28s %9.2f ms  %12.0f ev/s  %6llu allocs\n", group,
              dataset, workload.c_str(), cell.best_seconds * 1e3,
              cell.events_per_sec(),
              static_cast<unsigned long long>(cell.steady_allocs));
}

// ---------------------------------------------------------------------------
// TwigM over the Figure 7 (dataset, query) cells.

struct DatasetRef {
  const char* name;
  const std::string& (*get)();
  const std::vector<data::QuerySpec>& (*queries)();
};

const DatasetRef kDatasets[] = {
    {"Book", &BookDataset, &data::BookQueries},
    {"Benchmark", &AuctionDataset, &data::AuctionQueries},
    {"Protein", &ProteinDataset, &data::ProteinQueries},
};

bool RunTwigCell(const DatasetRef& dataset, const data::QuerySpec& query,
                 CellResult* out) {
  const std::string& doc = dataset.get();
  core::CountingResultSink sink;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
      core::XPathStreamProcessor::Create(query.text, &sink, options);
  if (!proc.ok()) {
    std::fprintf(stderr, "skip %s/%s: %s\n", dataset.name, query.name.c_str(),
                 proc.status().ToString().c_str());
    return false;
  }
  core::XPathStreamProcessor& p = *proc.value();

  auto stream_once = [&]() -> Status {
    Status s = p.Consume({doc, false});
    if (s.ok()) s = p.Consume({std::string_view(), true});
    return s;
  };

  // Warm pass: grows pools/stacks/interner to their steady-state footprint.
  Status s = stream_once();
  for (int i = 0; s.ok() && i < kTimedPasses; ++i) {
    p.Reset();
    Stopwatch sw;
    s = stream_once();
    const double seconds = sw.ElapsedSeconds();
    if (out->best_seconds == 0 || seconds < out->best_seconds) {
      out->best_seconds = seconds;
    }
  }
  if (s.ok()) {
    p.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    s = stream_once();
    out->steady_allocs = obs::AllocHookNewCalls() - before;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "run %s/%s failed: %s\n", dataset.name,
                 query.name.c_str(), s.ToString().c_str());
    return false;
  }
  out->events = p.stats().start_events + p.stats().end_events;
  out->results = p.stats().results;
  return true;
}

// ---------------------------------------------------------------------------
// Earliest-query-answering cells: TwigM over the predicate-heavy Book
// queries in each EarlyDecisionMode, with decision tables compiled from the
// Book DTD. Reports the emission-gap counters alongside throughput so
// scripts/check_emission_gap.py can gate the gap reduction and the live
// candidate high-water mark.

struct EarlyStats {
  double gap_mean_bytes = 0;
  uint64_t gap_max_bytes = 0;
  uint64_t early_emitted = 0;
  uint64_t early_dropped = 0;
  uint64_t states_skipped = 0;
  uint64_t peak_candidates = 0;
};

const char* ModeName(core::EarlyDecisionMode mode) {
  switch (mode) {
    case core::EarlyDecisionMode::kOff: return "off";
    case core::EarlyDecisionMode::kObserve: return "observe";
    case core::EarlyDecisionMode::kOn: return "on";
  }
  return "?";
}

bool RunEarlyCell(const analysis::DtdStructure& dtds,
                  core::EarlyDecisionMode mode, const data::QuerySpec& query,
                  const std::string& doc, CellResult* out, EarlyStats* extra) {
  core::CountingResultSink sink;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  options.enable_early_decisions = mode;
  Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
      core::XPathStreamProcessor::Create(query.text, &sink, options);
  if (!proc.ok()) {
    std::fprintf(stderr, "skip early/%s: %s\n", query.name.c_str(),
                 proc.status().ToString().c_str());
    return false;
  }
  core::XPathStreamProcessor& p = *proc.value();
  if (mode != core::EarlyDecisionMode::kOff) {
    analysis::EnableEarlyDecisions(&p, dtds);
  }

  auto stream_once = [&]() -> Status {
    Status s = p.Consume({doc, false});
    if (s.ok()) s = p.Consume({std::string_view(), true});
    return s;
  };

  Status s = stream_once();
  for (int i = 0; s.ok() && i < kTimedPasses; ++i) {
    p.Reset();
    Stopwatch sw;
    s = stream_once();
    const double seconds = sw.ElapsedSeconds();
    if (out->best_seconds == 0 || seconds < out->best_seconds) {
      out->best_seconds = seconds;
    }
  }
  if (s.ok()) {
    p.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    s = stream_once();
    out->steady_allocs = obs::AllocHookNewCalls() - before;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "run early/%s/%s failed: %s\n", query.name.c_str(),
                 ModeName(mode), s.ToString().c_str());
    return false;
  }
  const core::EngineStats& stats = p.stats();
  out->events = stats.start_events + stats.end_events;
  out->results = stats.results;
  extra->gap_mean_bytes =
      stats.gap_count > 0 ? static_cast<double>(stats.gap_sum_bytes) /
                                static_cast<double>(stats.gap_count)
                          : 0;
  extra->gap_max_bytes = stats.gap_max_bytes;
  extra->early_emitted = stats.early_emitted;
  extra->early_dropped = stats.early_dropped;
  extra->states_skipped = stats.states_skipped;
  extra->peak_candidates = stats.peak_candidates;
  return true;
}

void RunEarlyGroup() {
  const std::string collection_dtd =
      std::string("<!ELEMENT collection (book*)>\n") + data::kBookDtd;
  Result<dtd::Dtd> dtd = dtd::ParseDtd(collection_dtd);
  if (!dtd.ok()) {
    std::fprintf(stderr, "early group: DTD parse failed: %s\n",
                 dtd.status().ToString().c_str());
    return;
  }
  Result<analysis::DtdStructure> dtds =
      analysis::DtdStructure::Build(dtd.value());
  if (!dtds.ok()) {
    std::fprintf(stderr, "early group: DTD summary failed: %s\n",
                 dtds.status().ToString().c_str());
    return;
  }
  const std::string& doc = BookDataset();
  constexpr core::EarlyDecisionMode kModes[] = {
      core::EarlyDecisionMode::kOff, core::EarlyDecisionMode::kObserve,
      core::EarlyDecisionMode::kOn};
  for (const data::QuerySpec& query : data::BookQueries()) {
    if (query.language == "XP{/,//,*}") continue;  // predicate-heavy only
    for (core::EarlyDecisionMode mode : kModes) {
      CellResult cell;
      EarlyStats extra;
      if (!RunEarlyCell(dtds.value(), mode, query, doc, &cell, &extra)) {
        continue;
      }
      const std::string workload = query.name + "/" + ModeName(mode);
      BenchRecord record;
      record.bench = "hotpath";
      record.params = {{"group", "early"},
                       {"dataset", "Book"},
                       {"workload", workload},
                       {"query", query.name},
                       {"mode", ModeName(mode)}};
      record.wall_ms = cell.best_seconds * 1e3;
      record.metrics = {
          {"events", static_cast<double>(cell.events)},
          {"events_per_sec", cell.events_per_sec()},
          {"results", static_cast<double>(cell.results)},
          {"steady_allocs", static_cast<double>(cell.steady_allocs)},
          {"allocs_per_event", cell.allocs_per_event()},
          {"gap_mean_bytes", extra.gap_mean_bytes},
          {"gap_max_bytes", static_cast<double>(extra.gap_max_bytes)},
          {"early_emitted", static_cast<double>(extra.early_emitted)},
          {"early_dropped", static_cast<double>(extra.early_dropped)},
          {"states_skipped", static_cast<double>(extra.states_skipped)},
          {"peak_candidates", static_cast<double>(extra.peak_candidates)}};
      BenchJson::Get().Add(std::move(record));
      PrintCell("early", "Book", workload, cell);
      std::printf(
          "%-7s %-9s %-28s gap mean %8.0f B  max %8llu B  early %llu  "
          "dropped %llu  skipped %llu  peak-cand %llu\n",
          "", "", "", extra.gap_mean_bytes,
          static_cast<unsigned long long>(extra.gap_max_bytes),
          static_cast<unsigned long long>(extra.early_emitted),
          static_cast<unsigned long long>(extra.early_dropped),
          static_cast<unsigned long long>(extra.states_skipped),
          static_cast<unsigned long long>(extra.peak_candidates));
    }
  }
}

// ---------------------------------------------------------------------------
// FilterEngine over a synthesized publish/subscribe workload (same shape as
// bench_filter_scalability's MakeWorkload).

struct FilterVocabulary {
  const char* name;
  std::vector<std::string> tags;
  std::vector<std::string> attrs;
};

std::vector<std::string> MakeFilterWorkload(const FilterVocabulary& vocab,
                                            size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int steps = 2 + static_cast<int>(rng.Below(3));  // 2..4
    std::string q;
    for (int s = 0; s < steps; ++s) {
      q += (s == 0 || rng.Below(100) < 35) ? "//" : "/";
      if (rng.Below(100) < 8) {
        q += "*";
      } else {
        q += vocab.tags[rng.Below(vocab.tags.size())];
      }
    }
    if (rng.Below(100) >= 75) {
      if (rng.Below(2) == 0) {
        q += "[@" + vocab.attrs[rng.Below(vocab.attrs.size())] + "]";
      } else {
        q += "[" + vocab.tags[rng.Below(vocab.tags.size())] + "]";
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

bool RunFilterCell(const char* dataset_name, const std::string& doc,
                   const std::vector<std::string>& queries,
                   uint64_t doc_events, CellResult* out) {
  class CountingSink : public core::MultiQueryResultSink {
   public:
    void OnResult(size_t, const core::MatchInfo&) override { ++count; }
    uint64_t count = 0;
  };
  CountingSink sink;
  Result<std::unique_ptr<filter::FilterEngine>> engine =
      filter::FilterEngine::Create(queries, &sink);
  if (!engine.ok()) {
    std::fprintf(stderr, "filter create failed on %s: %s\n", dataset_name,
                 engine.status().ToString().c_str());
    return false;
  }
  filter::FilterEngine& e = *engine.value();

  auto stream_once = [&]() -> Status {
    Status s = e.Consume({doc, false});
    if (s.ok()) s = e.Consume({std::string_view(), true});
    return s;
  };

  Status s = stream_once();
  const uint64_t warm_results = sink.count;
  for (int i = 0; s.ok() && i < kTimedPasses; ++i) {
    e.Reset();
    Stopwatch sw;
    s = stream_once();
    const double seconds = sw.ElapsedSeconds();
    if (out->best_seconds == 0 || seconds < out->best_seconds) {
      out->best_seconds = seconds;
    }
  }
  if (s.ok()) {
    e.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    s = stream_once();
    out->steady_allocs = obs::AllocHookNewCalls() - before;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "filter run failed on %s: %s\n", dataset_name,
                 s.ToString().c_str());
    return false;
  }
  out->events = doc_events;
  out->results = warm_results;
  return true;
}

int Main() {
  std::printf("bench_hotpath: alloc hook %s\n",
              obs::AllocHookActive() ? "active" : "MISSING");
  std::printf("%-7s %-9s %-28s %12s  %15s  %s\n", "group", "dataset",
              "workload", "best", "throughput", "steady-state");

  for (const DatasetRef& dataset : kDatasets) {
    for (const data::QuerySpec& query : dataset.queries()) {
      CellResult cell;
      if (!RunTwigCell(dataset, query, &cell)) continue;
      AddRecord("twigm", dataset.name, query.name, cell);
      PrintCell("twigm", dataset.name, query.name, cell);
    }
  }

  const FilterVocabulary book_vocab{
      "book",
      {"collection", "book", "title", "author", "section", "p", "figure",
       "image"},
      {"id", "short", "difficulty"}};
  const FilterVocabulary auction_vocab{
      "auction",
      {"site", "regions", "item", "description", "parlist", "listitem",
       "text", "people", "person", "name", "open_auctions", "open_auction",
       "bidder", "increase", "seller", "price", "category"},
      {"id", "category"}};

  struct FilterCell {
    const char* dataset;
    const std::string& (*get)();
    const FilterVocabulary* vocab;
    size_t queries;
  };
  const FilterCell filter_cells[] = {
      {"Book", &BookDataset, &book_vocab, 128},
      {"Benchmark", &AuctionDataset, &auction_vocab, 128},
  };
  for (const FilterCell& fc : filter_cells) {
    const std::string& doc = fc.get();
    const uint64_t doc_events = CountDocumentEvents(doc);
    const std::vector<std::string> queries =
        MakeFilterWorkload(*fc.vocab, fc.queries, /*seed=*/7);
    CellResult cell;
    if (!RunFilterCell(fc.dataset, doc, queries, doc_events, &cell)) continue;
    const std::string workload = "filter" + std::to_string(fc.queries);
    AddRecord("filter", fc.dataset, workload, cell);
    PrintCell("filter", fc.dataset, workload, cell);
  }

  RunEarlyGroup();
  return 0;
}

}  // namespace
}  // namespace twigm::bench

int main(int argc, char** argv) {
  twigm::bench::BenchJson::Get().StripJsonFlag(&argc, argv);
  const int rc = twigm::bench::Main();
  twigm::bench::BenchJson::Get().Write();
  return rc;
}
