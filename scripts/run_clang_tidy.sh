#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
# The build dir must have been configured with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# so compile_commands.json exists. Exits non-zero on any warning, which is
# what the CI lint job keys off.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "${ROOT}/${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# A suppression without a named check and a reason is a silent hole in the
# lint wall: reject bare `// NOLINT`, empty check lists, and missing ': why'
# text before even invoking clang-tidy. (NOLINTEND only closes a region and
# needs no reason of its own.)
cd "${ROOT}"
BAD_NOLINT=$(grep -rnE 'NOLINT' src examples tests --include='*.cc' --include='*.h' \
  | grep -vE 'NOLINTEND\(' \
  | grep -vE 'NOLINT(NEXTLINE|BEGIN)?\([a-z][a-z0-9,* -]*\).*: ' \
  || true)
if [[ -n "${BAD_NOLINT}" ]]; then
  echo "error: NOLINT suppressions must name their check and give a reason," >&2
  echo "e.g. // NOLINT(concurrency-mt-unsafe): single-threaded init path" >&2
  echo "${BAD_NOLINT}" >&2
  exit 1
fi

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "error: clang-tidy not installed" >&2
  exit 2
fi

# run-clang-tidy parallelises across translation units when available.
RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy.py || true)"
cd "${ROOT}"
FILES=$(find src -name '*.cc' | sort)

if [[ -n "${RUNNER}" ]]; then
  # shellcheck disable=SC2086
  "${RUNNER}" -p "${BUILD_DIR}" -quiet ${FILES}
else
  # shellcheck disable=SC2086
  "${TIDY}" -p "${BUILD_DIR}" --quiet ${FILES}
fi
