#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
# The build dir must have been configured with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# so compile_commands.json exists. Exits non-zero on any warning, which is
# what the CI lint job keys off.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "${ROOT}/${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "error: clang-tidy not installed" >&2
  exit 2
fi

# run-clang-tidy parallelises across translation units when available.
RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy.py || true)"
cd "${ROOT}"
FILES=$(find src -name '*.cc' | sort)

if [[ -n "${RUNNER}" ]]; then
  # shellcheck disable=SC2086
  "${RUNNER}" -p "${BUILD_DIR}" -quiet ${FILES}
else
  # shellcheck disable=SC2086
  "${TIDY}" -p "${BUILD_DIR}" --quiet ${FILES}
fi
