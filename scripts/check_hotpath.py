#!/usr/bin/env python3
"""Gate the event hot path: throughput vs baseline and zero steady allocs.

Reads a BENCH_hotpath.json produced by `bench_hotpath --json <path>` and
compares it cell-by-cell against the committed baseline
(bench/BENCH_hotpath_baseline.json by default). Fails when

  * any cell's events_per_sec drops more than --threshold (default 5%)
    below the baseline cell, or
  * any cell performed a nonzero number of steady-state heap allocations
    (steady_allocs after warm-up + Reset must be exactly 0).

Cells present on only one side are reported but never gate, so adding or
retiring a workload does not require touching this script.

The committed baseline records each cell's *minimum* events/sec observed
across several runs (a conservative noise-floor envelope) — single-run
throughput jitters by several percent, and gating against a lucky run
would flap. Refresh it by taking the cell-wise min over >= 3 fresh
`bench_hotpath --json` runs on a quiet machine.

Usage: check_hotpath.py BENCH_hotpath.json [--baseline path] [--threshold 0.05]
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        records = json.load(f)
    cells = {}
    for r in records:
        if r.get("bench") != "hotpath":
            continue
        p = r.get("params", {})
        key = (p.get("group"), p.get("dataset"), p.get("workload"))
        cells[key] = {
            "events_per_sec": r["events_per_sec"],
            "steady_allocs": r["steady_allocs"],
        }
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BenchJson output of bench_hotpath")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_hotpath_baseline.json",
        help="committed baseline (default bench/BENCH_hotpath_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max allowed relative events/sec regression (default 0.05)",
    )
    args = parser.parse_args()

    current = load_cells(args.json_path)
    baseline = load_cells(args.baseline)
    if not current:
        print(f"error: no hotpath records in {args.json_path}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no hotpath records in {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for key in sorted(current):
        name = "/".join(str(k) for k in key)
        cell = current[key]
        allocs = cell["steady_allocs"]
        if allocs > 0:
            failures.append(f"{name}: {allocs:.0f} steady-state allocations (must be 0)")
        base = baseline.get(key)
        if base is None:
            print(f"note: {name} has no baseline cell (not gated)")
            continue
        ratio = cell["events_per_sec"] / base["events_per_sec"]
        status = "ok"
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: events/sec {cell['events_per_sec']:.0f} is "
                f"{1.0 - ratio:.2%} below baseline {base['events_per_sec']:.0f}"
            )
            status = "FAIL"
        print(
            f"{name:40s} {cell['events_per_sec']:14.0f} ev/s "
            f"(x{ratio:.3f} vs baseline)  allocs={allocs:.0f}  {status}"
        )
    for key in sorted(set(baseline) - set(current)):
        print(f"note: baseline cell {'/'.join(str(k) for k in key)} missing from run")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: all cells within {args.threshold:.2%} of baseline, 0 steady allocs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
