#!/usr/bin/env python3
"""Fail if the null-instrumentation processor path regresses vs handwired.

Reads a BENCH_*.json file produced by `bench_fig7_exec_time --json <path>`
and compares the `group=overhead` records: the best (minimum) wall time of
the `obs_off` variant (XPathStreamProcessor with instrumentation == nullptr)
must be within --threshold (default 5%) of the best `handwired` variant
(parser -> driver -> machine with no processor wrapper). The `obs_on`
variant is reported for reference but never gates.

Usage: check_obs_overhead.py BENCH_fig7_exec_time.json [--threshold 0.05]
"""

import argparse
import json
import sys


def best_wall_ms(records, variant):
    times = [
        r["wall_ms"]
        for r in records
        if r.get("params", {}).get("group") == "overhead"
        and r["params"].get("variant") == variant
    ]
    return min(times) if times else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BenchJson output of bench_fig7_exec_time")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max allowed relative overhead of obs_off vs handwired (default 0.05)",
    )
    args = parser.parse_args()

    with open(args.json_path) as f:
        records = json.load(f)

    baseline = best_wall_ms(records, "handwired")
    obs_off = best_wall_ms(records, "obs_off")
    obs_on = best_wall_ms(records, "obs_on")
    if baseline is None or obs_off is None:
        print(
            "error: no overhead records found — run bench_fig7_exec_time "
            "with --benchmark_filter=Overhead --json <path>",
            file=sys.stderr,
        )
        return 2

    overhead = (obs_off - baseline) / baseline
    print(f"handwired (baseline): {baseline:.3f} ms")
    print(f"obs_off  (processor): {obs_off:.3f} ms  ({overhead:+.2%} vs baseline)")
    if obs_on is not None:
        on_overhead = (obs_on - baseline) / baseline
        print(f"obs_on   (reference): {obs_on:.3f} ms  ({on_overhead:+.2%} vs baseline)")

    if overhead > args.threshold:
        print(
            f"FAIL: instrumentation-off overhead {overhead:.2%} exceeds "
            f"threshold {args.threshold:.2%}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: within {args.threshold:.2%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
