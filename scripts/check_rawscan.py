#!/usr/bin/env python3
"""Gate the structural-scan kernel: SIMD speedup and throughput vs baseline.

Reads a BENCH_rawscan.json produced by `bench_rawscan --json <path>` and
checks, per dataset cell:

  * when the build's fast path is real SIMD (is_simd == 1), the speedup of
    ScanStructural over the scalar byte loop must be >= --min-speedup
    (default 2.0) — the headline claim of the structural-index PR;
  * fast_gb_per_sec must not drop more than --threshold (default 0.25)
    below the committed baseline cell (bench/BENCH_rawscan_baseline.json).
    Raw-scan throughput is memory-bound and jitters more than the event
    hot path, hence the wider envelope.

Cells present on only one side are reported but never gate. SWAR-only
builds (is_simd == 0, e.g. -DTWIGM_FORCE_SCALAR_SCAN=ON) skip the speedup
gate entirely: the SWAR kernel typically beats the byte loop, but by a
word-width factor the gate should not encode.

The committed baseline records each cell's *minimum* fast_gb_per_sec over
>= 3 fresh runs on a quiet machine (a conservative noise floor). Refresh
it the same way.

Usage: check_rawscan.py BENCH_rawscan.json [--baseline path]
                        [--threshold 0.25] [--min-speedup 2.0]
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        records = json.load(f)
    cells = {}
    for r in records:
        if r.get("bench") != "rawscan":
            continue
        cells[r.get("params", {}).get("dataset")] = {
            "fast_gb_per_sec": r["fast_gb_per_sec"],
            "scalar_gb_per_sec": r["scalar_gb_per_sec"],
            "speedup": r["speedup"],
            "is_simd": r.get("is_simd", 0),
            "scan_kind": r.get("params", {}).get("scan_kind", "?"),
        }
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BenchJson output of bench_rawscan")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_rawscan_baseline.json",
        help="committed baseline (default bench/BENCH_rawscan_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed relative fast-GB/s regression (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required fast/scalar ratio on SIMD builds (default 2.0)",
    )
    args = parser.parse_args()

    current = load_cells(args.json_path)
    baseline = load_cells(args.baseline)
    if not current:
        print(f"error: no rawscan records in {args.json_path}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no rawscan records in {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for name in sorted(current):
        cell = current[name]
        simd = cell["is_simd"] >= 1
        status = "ok"
        if simd and cell["speedup"] < args.min_speedup:
            failures.append(
                f"{name}: {cell['scan_kind']} speedup {cell['speedup']:.2f}x "
                f"below required {args.min_speedup:.1f}x"
            )
            status = "FAIL"
        base = baseline.get(name)
        ratio_note = "no baseline (not gated)"
        if base is not None:
            ratio = cell["fast_gb_per_sec"] / base["fast_gb_per_sec"]
            ratio_note = f"x{ratio:.3f} vs baseline"
            if ratio < 1.0 - args.threshold:
                failures.append(
                    f"{name}: fast scan {cell['fast_gb_per_sec']:.3f} GB/s is "
                    f"{1.0 - ratio:.2%} below baseline "
                    f"{base['fast_gb_per_sec']:.3f} GB/s"
                )
                status = "FAIL"
        print(
            f"{name:12s} {cell['scan_kind']:5s} "
            f"fast={cell['fast_gb_per_sec']:7.3f} GB/s "
            f"scalar={cell['scalar_gb_per_sec']:7.3f} GB/s "
            f"speedup={cell['speedup']:6.2f}x  ({ratio_note})  {status}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline cell {name} missing from run")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    speedup_gate = (
        f">= {args.min_speedup:.1f}x speedup"
        if any(c["is_simd"] >= 1 for c in current.values())
        else "speedup gate skipped (SWAR build)"
    )
    print(f"\nOK: all cells within {args.threshold:.2%} of baseline, {speedup_gate}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
