#!/usr/bin/env python3
"""AST-based project-invariant analyzer (DESIGN.md §14).

Replaces the retired regex lint (scripts/project_lint.py) with checks that
run over a real token stream and a per-function statement tree with
dominating-branch analysis, so a guard in an enclosing `if` is recognised
and a guard in an unrelated function is not.

Frontend: a self-contained C++ lexer + micro-parser (functions, nested
blocks, if/else dominance). The container image bakes in the C++ toolchain
but not the libclang Python bindings, so the frontend is bundled rather
than imported; it needs no compiler and no include paths, which also keeps
the fixture self-tests hermetic. The file list comes from
compile_commands.json when `-p <build-dir>` is given (CMake exports it),
plus the headers the build can't name.

Checks (`--list-checks` prints this table):

  hotpath-alloc    A function annotated `// hotpath` on the line above its
                   signature must not allocate anywhere in its body: any
                   spelling of operator new, make_unique/make_shared,
                   malloc/calloc/realloc, std::to_string, std::string
                   construction (including temporaries), or declaring a
                   local owning container (growth of a local vector is a
                   per-event allocation by construction; *member* container
                   growth is the sanctioned pooled/amortized path that
                   bench_hotpath gates at runtime).
                   `// lint: allow-alloc(<why>)` exempts one line.
  instr-guard      Every dereference of an instrumentation pointer (instr,
                   instr_, instrumentation_) must be dominated by a null
                   test: same-statement `x != nullptr` (ternary/&&), an
                   enclosing `if (x != nullptr)` branch, or an earlier
                   `if (x == nullptr) return;` early-out in a dominating
                   block. Disjunctive guards are not trusted
                   (`if (x != nullptr || y)` proves nothing in the branch).
  sv-string-copy   Event-scope functions (StartElement/EndElement/Text/
                   EndDocument/On* /Dispatch) must not construct a
                   std::string — attributes and tag text are string_views
                   into the parse buffer and copying them per event is the
                   allocation the hot path was rebuilt to avoid. DOM
                   builders (files matching *dom*) are exempt: the DOM is
                   the sanctioned materialization point.
                   `// lint: allow-string-copy(<why>)` exempts one line.
  symbol-compare   Tag comparisons in machine transition functions
                   (StartElement/EndElement/TryStartNode/CloseNode/... in
                   src/core and src/filter) must use interned SymbolId
                   equality, not string equality on tag.text/.label —
                   unless the comparison is on a code path that already
                   tested symbol availability (tag.symbol == kNoSymbol
                   fallback paths are legal and required).
  atomic-order     Every std::atomic load/store/RMW/compare-exchange must
                   pass an explicit std::memory_order, and declared atomic
                   variables must not be touched through implicitly-seq_cst
                   operators (=, ++, --, +=, ...). Defaulted orders hide
                   the strongest barrier in the program behind the
                   quietest syntax.
  pairs-with       Every acquire/release/acq_rel atomic op must carry a
                   `// pairs-with: <file>:<qualified-symbol>` comment
                   naming its counterpart, and the named site must exist
                   and have the opposite role (release names an acquire
                   load, acquire names a release store; acq_rel satisfies
                   both). This is the machine-checked half of the
                   happens-before argument in DESIGN.md §14.
  mutex-wrapper    src/serve must not declare raw std::mutex /
                   std::condition_variable: use the capability-annotated
                   twigm::common::Mutex / CondVar wrappers
                   (src/common/thread_annotations.h) so clang's
                   -Wthread-safety leg can see every critical section.

Findings print as `file:line: [check-name] message`; exit status is 1 when
there are findings, 2 on usage errors.
"""

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# ---------------------------------------------------------------------------
# Lexer

PUNCT = [
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<",
    ">>", "##",
]

IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
IDENT_CONT = IDENT_START | set("0123456789")


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int


class Lexed:
    """Token stream plus the comment/annotation side tables."""

    def __init__(self):
        self.tokens = []
        # line -> concatenated comment text starting on that line.
        self.comments = {}
        # Lines that contain at least one token (code lines).
        self.code_lines = set()


def lex(text):
    out = Lexed()
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.comments.setdefault(line, []).append(text[i + 2:j].strip())
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            body = text[i + 2:j]
            out.comments.setdefault(line, []).append(body.strip())
            line += body.count("\n")
            i = j + 2
            continue
        if c == "#":
            # Preprocessor directive: skip to end of (continued) line.
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                if text[j - 1] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        if c == 'R' and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^\s()\\]*)\(', text[i:])
            if m:
                delim = m.group(1)
                endmark = ")" + delim + '"'
                j = text.find(endmark, i + m.end())
                j = n - len(endmark) if j == -1 else j
                out.tokens.append(Token("str", "<raw>", line))
                out.code_lines.add(line)
                line += text[i:j].count("\n")
                i = j + len(endmark)
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.tokens.append(
                Token("str" if quote == '"' else "chr", "<lit>", line))
            out.code_lines.add(line)
            i = j + 1
            continue
        if c in IDENT_START:
            j = i + 1
            while j < n and text[j] in IDENT_CONT:
                j += 1
            out.tokens.append(Token("id", text[i:j], line))
            out.code_lines.add(line)
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in IDENT_CONT or text[j] in ".'+-"
                             and text[j - 1] in "eEpP"):
                j += 1
            out.tokens.append(Token("num", text[i:j], line))
            out.code_lines.add(line)
            i = j
            continue
        for p in PUNCT:
            if text.startswith(p, i):
                out.tokens.append(Token("punct", p, line))
                out.code_lines.add(line)
                i += len(p)
                break
        else:
            out.tokens.append(Token("punct", c, line))
            out.code_lines.add(line)
            i += 1
    return out


# ---------------------------------------------------------------------------
# Function extraction

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "do", "else", "return",
                    "case", "default", "try", "catch"}
FUNC_TAIL_OK = {")", "const", "noexcept", "override", "final", "mutable",
                "default"}


@dataclass
class Function:
    name: str          # unqualified, e.g. "CommitPush"
    qualname: str      # e.g. "SpscRing::CommitPush"
    header_line: int   # line of the first header token
    body_start: int    # token index just after '{'
    body_end: int      # token index of matching '}'
    is_hotpath: bool = False


def match_brace(tokens, open_idx):
    """Index of the '}' matching tokens[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens) - 1


def header_name(recent):
    """Function name from the header tokens (everything before '{')."""
    # Find the parameter-list '(' : the first '(' not directly preceded by
    # an identifier that is itself preceded by 'class'/'struct' etc. In
    # practice: the first top-level '(' whose preceding token is an
    # identifier, 'operator'-form, or '~'.
    depth = 0
    first_paren = None
    for i, t in enumerate(recent):
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth = max(0, depth - 1)
        elif t.text == "(" and depth == 0:
            first_paren = i
            break
    if first_paren is None or first_paren == 0:
        return "", ""
    # Walk back over the id / '::' / '~' / 'operator xx' chain.
    parts = []
    i = first_paren - 1
    while i >= 0:
        t = recent[i]
        if t.kind == "id" or t.text in ("::", "~"):
            parts.append(t.text)
            i -= 1
        else:
            break
    parts.reverse()
    if not parts:
        return "", ""
    if "operator" in parts:
        k = parts.index("operator")
        qual = "".join(parts[:k]) + "operator " + " ".join(parts[k + 1:])
    else:
        qual = "".join(parts)
    # Drop a leading return type that got glued on (e.g. "voidFoo::Bar"
    # cannot happen: the walk stops at non-id/:: tokens, but a plain
    # "uint64_tCurrentEpoch" can when the return type directly precedes the
    # name). Heuristic: the chain must alternate id/:: — if two ids are
    # adjacent the first is the return type.
    toks = [p for p in parts]
    cleaned = []
    prev_id = False
    for p in toks:
        if p == "::" or p == "~":
            cleaned.append(p)
            prev_id = False
        else:
            if prev_id:
                cleaned = []  # everything so far was the return type
            cleaned.append(p)
            prev_id = True
    qual = "".join(cleaned)
    unqual = cleaned[-1] if cleaned else ""
    return qual, unqual


def extract_functions(lx):
    """Functions plus (class-scope) context, via a single token walk."""
    tokens = lx.tokens
    funcs = []
    scope = []  # list of (kind, name, close_idx)
    recent = []  # header tokens since last top-level ';' '{' '}'
    paren = 0
    i = 0
    while i < len(tokens):
        t = tokens[i]
        while scope and i >= scope[-1][2]:
            scope.pop()
        if t.text == "(":
            paren += 1
        elif t.text == ")":
            paren = max(0, paren - 1)
        if paren > 0:
            recent.append(t)
            i += 1
            continue
        if t.text == ";" or t.text == "}":
            recent = []
            i += 1
            continue
        if t.text != "{":
            recent.append(t)
            i += 1
            continue

        # Classify the '{'.
        sig = [x for x in recent]
        # Strip a leading template<...> prefix.
        if sig and sig[0].text == "template":
            d, k = 0, 1
            while k < len(sig):
                if sig[k].text == "<":
                    d += 1
                elif sig[k].text == ">":
                    d -= 1
                    if d == 0:
                        k += 1
                        break
                k += 1
            sig = sig[k:]
        texts = [x.text for x in sig]
        close = match_brace(tokens, i)
        if "namespace" in texts:
            scope.append(("namespace", "", close))
            recent = []
            i += 1
            continue
        if texts and texts[0] in ("class", "struct", "union") \
                and "=" not in texts:
            # Name: first identifier after the keyword that is not a
            # macro call (identifier directly followed by '(').
            name = ""
            k = 1
            while k < len(sig):
                if sig[k].kind == "id":
                    if k + 1 < len(sig) and sig[k + 1].text == "(":
                        d = 0
                        while k + 1 < len(sig):
                            k += 1
                            if sig[k].text == "(":
                                d += 1
                            elif sig[k].text == ")":
                                d -= 1
                                if d == 0:
                                    break
                        k += 1
                        continue
                    name = sig[k].text
                    break
                if sig[k].text in (":", "{"):
                    break
                k += 1
            scope.append(("class", name, close))
            recent = []
            i += 1
            continue
        if "enum" in texts or "=" in texts or not texts \
                or texts[0] in CONTROL_KEYWORDS \
                or texts[-1] not in FUNC_TAIL_OK and "(" not in texts:
            # Braced initializer / enum / stray block: skip wholesale.
            i = close + 1
            recent = []
            continue
        if texts[-1] in FUNC_TAIL_OK or texts[-1] == ">":
            qual, unqual = header_name(sig)
            if unqual:
                classes = "::".join(n for k, n in
                                    [(s[0], s[1]) for s in scope]
                                    if k == "class" and n)
                full = qual if "::" in qual else (
                    classes + "::" + qual if classes else qual)
                hdr_line = sig[0].line if sig else t.line
                hot = any("hotpath" in c
                          for ln in (hdr_line - 1, hdr_line)
                          for c in lx.comments.get(ln, [])
                          if re.match(r"^\s*hotpath\b", c))
                funcs.append(Function(unqual, full, hdr_line, i + 1, close,
                                      hot))
                i = close + 1
                recent = []
                continue
        # Unrecognised block: descend into it (do not skip — it may hold
        # function definitions, e.g. an extern block).
        recent = []
        i += 1
    return funcs


# ---------------------------------------------------------------------------
# Statement tree + dominance

@dataclass
class Stmt:
    kind: str          # 'simple' | 'if' | 'loop' | 'block'
    line: int
    tokens: list = field(default_factory=list)       # simple: own tokens
    cond: list = field(default_factory=list)         # if/loop condition
    children: list = field(default_factory=list)     # then / body
    orelse: list = field(default_factory=list)       # else


def parse_stmts(tokens, i, end):
    stmts = []
    while i < end:
        t = tokens[i]
        if t.text == ";":
            i += 1
            continue
        if t.text == "{":
            close = match_brace(tokens, i)
            body, _ = parse_stmts(tokens, i + 1, close)
            stmts.append(Stmt("block", t.line, children=body))
            i = close + 1
            continue
        if t.kind == "id" and t.text in ("if", "while", "for", "switch"):
            kind = "if" if t.text == "if" else "loop"
            j = i + 1
            if j < end and tokens[j].text == "constexpr":
                j += 1
            cond = []
            if j < end and tokens[j].text == "(":
                d = 0
                while j < end:
                    if tokens[j].text == "(":
                        d += 1
                    elif tokens[j].text == ")":
                        d -= 1
                        if d == 0:
                            break
                    cond.append(tokens[j])
                    j += 1
                cond = cond[1:]  # drop the '('
                j += 1
            body, j = parse_one(tokens, j, end)
            orelse = []
            if kind == "if" and j < end and tokens[j].text == "else":
                orelse, j = parse_one(tokens, j + 1, end)
            stmts.append(Stmt(kind, t.line, cond=cond, children=body,
                              orelse=orelse))
            i = j
            continue
        if t.kind == "id" and t.text == "do":
            body, j = parse_one(tokens, i + 1, end)
            # Consume the trailing while (...) ;
            cond = []
            if j < end and tokens[j].text == "while":
                d = 0
                j += 1
                while j < end:
                    if tokens[j].text == "(":
                        d += 1
                    elif tokens[j].text == ")":
                        d -= 1
                        if d == 0:
                            j += 1
                            break
                    cond.append(tokens[j])
                    j += 1
                if j < end and tokens[j].text == ";":
                    j += 1
            stmts.append(Stmt("loop", t.line, cond=cond, children=body))
            i = j
            continue
        if t.kind == "id" and t.text == "else":
            # Dangling else of a brace-less if we mis-nested; treat its
            # statement as a sibling.
            i += 1
            continue
        # Simple statement: up to ';' at paren/brace depth 0 (lambda and
        # braced-init bodies are swallowed into the statement).
        own = []
        pd = bd = 0
        while i < end:
            tt = tokens[i]
            if tt.text == "(":
                pd += 1
            elif tt.text == ")":
                pd = max(0, pd - 1)
            elif tt.text == "{":
                bd += 1
            elif tt.text == "}":
                bd -= 1
                if bd < 0:
                    break
            own.append(tt)
            i += 1
            if tt.text == ";" and pd == 0 and bd == 0:
                break
        stmts.append(Stmt("simple", own[0].line if own else t.line,
                          tokens=own))
    return stmts, i


def parse_one(tokens, i, end):
    """One statement (possibly a block) starting at i."""
    if i >= end:
        return [], i
    stmts, j = parse_stmts_single(tokens, i, end)
    return stmts, j


def parse_stmts_single(tokens, i, end):
    if tokens[i].text == "{":
        close = match_brace(tokens, i)
        body, _ = parse_stmts(tokens, i + 1, close)
        return body, close + 1
    # Parse exactly one statement via parse_stmts on a narrowed range:
    stmts, j = parse_stmts_first(tokens, i, end)
    return stmts, j


def parse_stmts_first(tokens, i, end):
    before = i
    stmts, j = parse_stmts(tokens, i, end)
    if not stmts:
        return [], before + 1
    # parse_stmts consumes to `end`; re-run but stop after one statement.
    # Cheaper: re-parse incrementally.
    one, k = _parse_single(tokens, before, end)
    return one, k


def _parse_single(tokens, i, end):
    stmts, j = [], i
    # Reuse parse_stmts machinery by parsing the whole range and tracking
    # the end of the first statement: simplest is to call parse_stmts with
    # a custom stop, so replicate its dispatch for one iteration.
    sub, k = parse_stmts(tokens, i, end)
    if not sub:
        return [], i + 1
    first = sub[0]
    # Find where the first statement ended by re-walking.
    return [first], _stmt_end(tokens, i, end)


def _stmt_end(tokens, i, end):
    t = tokens[i]
    if t.text == "{":
        return match_brace(tokens, i) + 1
    if t.kind == "id" and t.text in ("if", "while", "for", "switch"):
        j = i + 1
        if j < end and tokens[j].text == "constexpr":
            j += 1
        if j < end and tokens[j].text == "(":
            d = 0
            while j < end:
                if tokens[j].text == "(":
                    d += 1
                elif tokens[j].text == ")":
                    d -= 1
                    if d == 0:
                        j += 1
                        break
                j += 1
        j = _stmt_end(tokens, j, end)
        if t.text == "if" and j < end and tokens[j].text == "else":
            j = _stmt_end(tokens, j + 1, end)
        return j
    if t.kind == "id" and t.text == "do":
        j = _stmt_end(tokens, i + 1, end)
        d = 0
        while j < end:
            if tokens[j].text == "(":
                d += 1
            elif tokens[j].text == ")":
                d -= 1
            if tokens[j].text == ";" and d == 0:
                return j + 1
            j += 1
        return j
    pd = bd = 0
    j = i
    while j < end:
        tt = tokens[j].text
        if tt == "(":
            pd += 1
        elif tt == ")":
            pd = max(0, pd - 1)
        elif tt == "{":
            bd += 1
        elif tt == "}":
            bd -= 1
            if bd < 0:
                return j
        j += 1
        if tt == ";" and pd == 0 and bd == 0:
            return j
    return j


def stmt_text(stmt):
    return " ".join(t.text for t in stmt.tokens)


def cond_text(stmt):
    return " ".join(t.text for t in stmt.cond)


def always_exits(stmts):
    """True when the statement list cannot fall through."""
    for s in stmts:
        if s.kind == "simple" and s.tokens and s.tokens[0].text in (
                "return", "continue", "break", "throw", "goto"):
            return True
        if s.kind == "block" and always_exits(s.children):
            return True
    return False


def walk(stmts, dom, seen, visit):
    """Depth-first walk carrying dominating conditions.

    dom:  list of (condition-text, negated) dominating the current point.
    seen: list of every condition text encountered so far on the walk
          (used for the lenient symbol-compare context test).
    """
    extra = []
    for s in stmts:
        here = dom + extra
        visit(s, here, seen)
        if s.kind == "if":
            c = cond_text(s)
            seen.append(c)
            walk(s.children, here + [(c, False)], seen, visit)
            walk(s.orelse, here + [(c, True)], seen, visit)
            if not s.orelse and always_exits(s.children):
                extra = extra + [(c, True)]
            elif s.orelse and always_exits(s.orelse) \
                    and not always_exits(s.children):
                extra = extra + [(c, False)]
        elif s.kind == "loop":
            c = cond_text(s)
            if c:
                seen.append(c)
            walk(s.children, here + ([(c, False)] if c else []), seen,
                 visit)
        elif s.kind == "block":
            walk(s.children, here, seen, visit)


# ---------------------------------------------------------------------------
# Checks

@dataclass
class Finding:
    file: str
    line: int
    check: str
    message: str

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"


ALL_CHECKS = ["hotpath-alloc", "instr-guard", "sv-string-copy",
              "symbol-compare", "atomic-order", "pairs-with",
              "mutex-wrapper"]

EVENT_FNS = {"StartElement", "EndElement", "Text", "EndDocument",
             "OnStartElement", "OnEndElement", "OnText", "Dispatch"}
TRANSITION_FNS = {"StartElement", "EndElement", "Text", "OnStartElement",
                  "OnEndElement", "OnText", "TryStartNode",
                  "TryStartPosition", "PopNode", "PopPosition", "CloseNode",
                  "ConsiderChild", "MatchesTag"}
INSTR_IDENTS = ("instr", "instr_", "instrumentation_")

ATOMIC_OPS = {"load", "store", "exchange", "fetch_add", "fetch_sub",
              "fetch_and", "fetch_or", "fetch_xor",
              "compare_exchange_weak", "compare_exchange_strong"}
ORDER_NAMES = {"memory_order_relaxed", "memory_order_consume",
               "memory_order_acquire", "memory_order_release",
               "memory_order_acq_rel", "memory_order_seq_cst"}
ACQ_ORDERS = {"memory_order_acquire", "memory_order_consume",
              "memory_order_acq_rel"}
REL_ORDERS = {"memory_order_release", "memory_order_acq_rel"}
RMW_OPS = ATOMIC_OPS - {"load", "store"}

ALLOC_FN_IDS = {"make_unique", "make_shared", "malloc", "calloc", "realloc",
                "strdup", "to_string"}
OWNING_CONTAINERS = {"vector", "deque", "list", "map", "set",
                     "unordered_map", "unordered_set", "basic_string",
                     "multimap", "multiset"}


def line_has_marker(lx, line, marker):
    """Marker on the line itself or in the comment block directly above."""
    if any(marker in c for c in lx.comments.get(line, [])):
        return True
    ln = line - 1
    while ln > 0 and ln in lx.comments and ln not in lx.code_lines:
        if any(marker in c for c in lx.comments.get(ln, [])):
            return True
        ln -= 1
    return False


@dataclass
class AtomicSite:
    line: int
    op: str
    order: str
    qualname: str  # enclosing function


class FileAnalysis:
    """Per-file lexing, parsing, and raw-site collection."""

    def __init__(self, path, display):
        self.path = path
        self.display = display
        self.text = path.read_text(errors="replace")
        self.lx = lex(self.text)
        self.functions = extract_functions(self.lx)
        self.sites = []  # AtomicSite list (any explicit-order op)

    def enclosing(self, line):
        best = ""
        for f in self.functions:
            t = self.lx.tokens
            if f.body_start - 1 < len(t):
                start = f.header_line
                endl = t[f.body_end].line if f.body_end < len(t) else line
                if start <= line <= endl:
                    best = f.qualname
        return best


class Analyzer:
    def __init__(self, files, checks=None, serve_scope=None):
        self.files = files
        self.checks = set(checks or ALL_CHECKS)
        self.serve_scope = serve_scope or r"(^|/)serve"
        self.findings = []

    def run(self):
        analyses = []
        for path, display in self.files:
            try:
                analyses.append(FileAnalysis(path, display))
            except OSError as e:
                print(f"warning: cannot read {display}: {e}",
                      file=sys.stderr)
        for fa in analyses:
            self._collect_atomic_sites(fa)
        for fa in analyses:
            if "atomic-order" in self.checks:
                self._check_atomic_order(fa)
            if "mutex-wrapper" in self.checks:
                self._check_mutex_wrapper(fa)
            self._check_functions(fa)
        if "pairs-with" in self.checks:
            self._check_pairs(analyses)
        self.findings.sort(key=lambda f: (f.file, f.line, f.check))
        return self.findings

    def report(self, file, line, check, message):
        self.findings.append(Finding(file, line, check, message))

    # -- atomics ----------------------------------------------------------

    def _call_args(self, tokens, open_idx):
        """(token, depth) pairs inside the parens at open_idx, plus close.

        depth 1 = a direct argument of this call; deeper = inside a nested
        call (whose own memory_order must not be mistaken for ours).
        """
        d = 0
        args = []
        for i in range(open_idx, len(tokens)):
            t = tokens[i].text
            if t == "(":
                d += 1
                if d == 1:
                    continue
            elif t == ")":
                d -= 1
                if d == 0:
                    return args, i
            args.append((tokens[i], d))
        return args, len(tokens) - 1

    def _collect_atomic_sites(self, fa):
        toks = fa.lx.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in ATOMIC_OPS:
                continue
            if i == 0 or toks[i - 1].text not in (".", "->"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            args, _ = self._call_args(toks, i + 1)
            orders = [a.text for a, d in args
                      if d == 1 and a.text in ORDER_NAMES]
            fa.sites.append(AtomicSite(
                t.line, t.text, orders[0] if orders else "",
                fa.enclosing(t.line)))

    def _check_atomic_order(self, fa):
        toks = fa.lx.tokens
        # (a) method-style ops must pass an explicit order.
        for s in fa.sites:
            if not s.order:
                self.report(fa.display, s.line, "atomic-order",
                            f"std::atomic::{s.op} without an explicit "
                            "std::memory_order (defaults to seq_cst)")
        # (b) declared atomics must not be used via implicit operators.
        atomics = {}
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "atomic" and i >= 2 \
                    and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "std":
                # std::atomic<...> name  (skip the template args)
                j = i + 1
                if j < len(toks) and toks[j].text == "<":
                    d = 0
                    while j < len(toks):
                        if toks[j].text == "<":
                            d += 1
                        elif toks[j].text == ">":
                            d -= 1
                            if d == 0:
                                j += 1
                                break
                        j += 1
                while j < len(toks) and toks[j].text in ("*", "&"):
                    j = len(toks)  # pointer/ref to atomic: not a decl name
                if j < len(toks) and toks[j].kind == "id":
                    atomics.setdefault(toks[j].text, set()).add(toks[j].line)
        bad_next = {"=", "++", "--", "+=", "-=", "&=", "|=", "^=",
                    "*=", "/=", "%=", "<<=", ">>="}
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in atomics:
                continue
            if t.line in atomics[t.text]:
                continue  # the declaration itself
            prev = toks[i - 1] if i > 0 else None
            prevt = prev.text if prev else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if prevt in (".", "->", "::"):
                continue  # member of some other object
            if prev is not None and (prev.kind == "id"
                                     or prevt in (">", "*", "&", ",")):
                continue  # a declaration of a same-named non-atomic
            if nxt in bad_next or prevt in ("++", "--"):
                self.report(fa.display, t.line, "atomic-order",
                            f"implicitly-seq_cst operator on std::atomic "
                            f"'{t.text}'; use an explicit "
                            ".store/.fetch_* with a memory_order")

    def _check_mutex_wrapper(self, fa):
        if not re.search(self.serve_scope, fa.display):
            return
        toks = fa.lx.tokens
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text in ("mutex", "condition_variable") \
                    and i >= 2 and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "std":
                self.report(
                    fa.display, t.line, "mutex-wrapper",
                    f"raw std::{t.text} in src/serve; use the "
                    "capability-annotated twigm::common::"
                    f"{'Mutex' if t.text == 'mutex' else 'CondVar'} "
                    "(common/thread_annotations.h) so -Wthread-safety "
                    "sees the critical sections")

    # -- pairs-with -------------------------------------------------------

    PAIRS_RE = re.compile(r"pairs-with:\s*([^\s:]+):(\S+)")

    def _annotations_for(self, fa, line):
        """pairs-with annotations on `line` or the comment block above."""
        anns = []
        for c in fa.lx.comments.get(line, []):
            anns += self.PAIRS_RE.findall(c)
        ln = line - 1
        while ln > 0 and ln in fa.lx.comments and ln not in fa.lx.code_lines:
            for c in fa.lx.comments.get(ln, []):
                anns += self.PAIRS_RE.findall(c)
            ln -= 1
        return anns

    def _check_pairs(self, analyses):
        by_suffix = {}
        for fa in analyses:
            by_suffix.setdefault(Path(fa.display).name, []).append(fa)

        def role_of(site):
            roles = set()
            if site.order in ACQ_ORDERS and site.op != "store":
                roles.add("acquire")
            if site.order in REL_ORDERS and site.op != "load":
                roles.add("release")
            return roles

        for fa in analyses:
            for s in fa.sites:
                roles = role_of(s)
                if not roles:
                    continue
                anns = self._annotations_for(fa, s.line)
                if not anns:
                    self.report(
                        fa.display, s.line, "pairs-with",
                        f"{s.order} {s.op} has no '// pairs-with: "
                        "<file>:<symbol>' annotation naming its "
                        "counterpart")
                    continue
                want = "release" if "acquire" in roles else "acquire"
                for fref, sym in anns:
                    cands = by_suffix.get(Path(fref).name, [])
                    matched = False
                    for cfa in cands:
                        for cs in cfa.sites:
                            if not cs.qualname.endswith(sym):
                                continue
                            if want in role_of(cs) or \
                                    (roles == {"release"} and
                                     "acquire" in role_of(cs)):
                                matched = True
                    if not cands:
                        self.report(
                            fa.display, s.line, "pairs-with",
                            f"pairs-with target file '{fref}' is not "
                            "among the analyzed sources")
                    elif not matched:
                        self.report(
                            fa.display, s.line, "pairs-with",
                            f"pairs-with target '{fref}:{sym}' has no "
                            f"{want} op (a {s.order} {s.op} must name a "
                            f"live {want} site)")

    # -- per-function checks ---------------------------------------------

    def _check_functions(self, fa):
        toks = fa.lx.tokens
        for fn in fa.functions:
            body, _ = parse_stmts(toks, fn.body_start, fn.body_end)
            if "hotpath-alloc" in self.checks and fn.is_hotpath:
                self._hotpath(fa, fn, body)
            if "instr-guard" in self.checks:
                self._instr_guard(fa, fn, body)
            if "sv-string-copy" in self.checks and fn.name in EVENT_FNS \
                    and "dom" not in Path(fa.display).name.lower():
                self._sv_string(fa, fn, body)
            if "symbol-compare" in self.checks \
                    and fn.name in TRANSITION_FNS \
                    and re.search(r"(/core/|/filter/|transition)",
                                  fa.display):
                self._symbol_compare(fa, fn, body)

    def _alloc_scan(self, fa, stmt_tokens, where):
        for k, t in enumerate(stmt_tokens):
            if line_has_marker(fa.lx, t.line, "allow-alloc"):
                continue
            prev = stmt_tokens[k - 1].text if k > 0 else ""
            nxt = stmt_tokens[k + 1].text if k + 1 < len(stmt_tokens) else ""
            if t.kind != "id":
                continue
            if t.text == "new" and prev != "operator":
                self.report(fa.display, t.line, "hotpath-alloc",
                            f"operator new inside {where}")
            elif t.text in ALLOC_FN_IDS and nxt in ("(", "<"):
                self.report(fa.display, t.line, "hotpath-alloc",
                            f"{t.text} inside {where}")
            elif t.text == "string" and prev == "::" and nxt in ("(", "{"):
                self.report(fa.display, t.line, "hotpath-alloc",
                            f"std::string temporary inside {where}")
            elif t.text == "string" and prev == "::" and k + 2 <= len(
                    stmt_tokens):
                if nxt and stmt_tokens[k + 1].kind == "id":
                    after = stmt_tokens[k + 2].text \
                        if k + 2 < len(stmt_tokens) else ""
                    if after in ("(", "{", "=", ";"):
                        self.report(fa.display, t.line, "hotpath-alloc",
                                    f"local std::string inside {where}")
            elif t.text in OWNING_CONTAINERS and prev == "::":
                # std::vector<...> x  — local owning container. Skip
                # references/pointers (std::vector<T>& / *).
                j = k + 1
                if j < len(stmt_tokens) and stmt_tokens[j].text == "<":
                    d = 0
                    while j < len(stmt_tokens):
                        if stmt_tokens[j].text == "<":
                            d += 1
                        elif stmt_tokens[j].text == ">":
                            d -= 1
                            if d == 0:
                                j += 1
                                break
                        j += 1
                if j < len(stmt_tokens) and stmt_tokens[j].text in ("&", "*"):
                    continue
                if j < len(stmt_tokens) and (
                        stmt_tokens[j].kind == "id"
                        or stmt_tokens[j].text in ("(", "{")):
                    if line_has_marker(fa.lx, stmt_tokens[j].line,
                                       "allow-alloc"):
                        continue
                    self.report(
                        fa.display, t.line, "hotpath-alloc",
                        f"local owning std::{t.text} inside {where} "
                        "(growth allocates per event; use a pooled "
                        "member scratch container)")

    def _hotpath(self, fa, fn, body):
        where = f"`// hotpath` function {fn.qualname}"

        def visit(s, dom, seen):
            if s.kind == "simple":
                self._alloc_scan(fa, s.tokens, where)
            elif s.kind in ("if", "loop"):
                self._alloc_scan(fa, s.cond, where)

        walk(body, [], [], visit)

    @staticmethod
    def _null_guard_in(text, ident, want_nonnull):
        if want_nonnull:
            return re.search(rf"\b{re.escape(ident)}\s*!=\s*nullptr",
                             text) is not None
        return re.search(rf"\b{re.escape(ident)}\s*==\s*nullptr",
                         text) is not None

    def _instr_guard(self, fa, fn, body):
        deref_re = re.compile(
            r"\b(" + "|".join(INSTR_IDENTS) + r")\s*->")

        def guarded(ident, text, dom):
            # Same-statement guard: ternary / && / early test.
            if self._null_guard_in(text, ident, True) or \
                    self._null_guard_in(text, ident, False):
                return True
            for cond, negated in dom:
                if not negated and "||" not in cond and \
                        self._null_guard_in(cond, ident, True):
                    return True
                if negated and "&&" not in cond and \
                        self._null_guard_in(cond, ident, False):
                    return True
            return False

        def visit(s, dom, seen):
            texts = []
            if s.kind == "simple":
                texts.append(stmt_text(s))
            elif s.kind in ("if", "loop"):
                texts.append(cond_text(s))
            for text in texts:
                for m in deref_re.finditer(text):
                    ident = m.group(1)
                    if not guarded(ident, text, dom):
                        self.report(
                            fa.display, s.line, "instr-guard",
                            f"`{ident}->` dereference not dominated by a "
                            f"`{ident} != nullptr` branch (instrumentation "
                            "is optional on every hot path)")

        walk(body, [], [], visit)

    def _sv_string(self, fa, fn, body):
        def visit(s, dom, seen):
            tokens = s.tokens if s.kind == "simple" else s.cond
            for k, t in enumerate(tokens):
                if t.kind == "id" and t.text == "string" and k > 0 \
                        and tokens[k - 1].text == "::":
                    nxt = tokens[k + 1] if k + 1 < len(tokens) else None
                    # Construction with arguments (temporary or named).
                    args_at = None
                    if nxt is not None and nxt.text in ("(", "{"):
                        args_at = k + 1
                    elif nxt is not None and nxt.kind == "id" \
                            and k + 2 < len(tokens) \
                            and tokens[k + 2].text in ("(", "{", "="):
                        args_at = k + 2
                    if args_at is None:
                        continue
                    if tokens[args_at].text == "=" or (
                            args_at + 1 < len(tokens)
                            and tokens[args_at + 1].text not in (")", "}")):
                        if line_has_marker(fa.lx, t.line,
                                           "allow-string-copy"):
                            continue
                        self.report(
                            fa.display, t.line, "sv-string-copy",
                            f"std::string constructed inside event-scope "
                            f"function {fn.qualname}; attribute/tag text "
                            "is a string_view into the parse buffer — "
                            "keep the view or assign into a pooled "
                            "buffer")

        walk(body, [], [], visit)

    CMP_RE = re.compile(
        r"(==|!=)\s*(\w+\s*\.\s*)?(text|label)\b|"
        r"\b(tag\s*\.\s*text|\w+\s*\.\s*label)\s*(==|!=)")

    def _symbol_compare(self, fa, fn, body):
        def visit(s, dom, seen):
            text = stmt_text(s) if s.kind == "simple" else cond_text(s)
            if not text:
                return
            m = self.CMP_RE.search(text)
            if not m:
                return
            hay = [text] + [c for c, _ in dom] + list(seen)
            if any("symbol" in h.lower() for h in hay):
                return
            self.report(
                fa.display, s.line, "symbol-compare",
                f"string equality on tag text in transition function "
                f"{fn.qualname} with no symbol-availability test on the "
                "path; compare interned SymbolIds (one integer compare) "
                "and fall back to bytes only when tag.symbol == kNoSymbol")

        walk(body, [], [], visit)


# ---------------------------------------------------------------------------
# Driver

def files_from_compile_commands(build_dir, root):
    ccj = Path(build_dir) / "compile_commands.json"
    if not ccj.is_file():
        sys.exit(f"error: {ccj} not found; configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    seen = []
    for entry in json.loads(ccj.read_text()):
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        f = f.resolve()
        try:
            rel = f.relative_to(root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] in ("src", "examples"):
            seen.append(f)
    return seen


def gather(paths, root):
    out = []
    for p in paths:
        p = Path(p)
        if p.is_file():
            out.append(p)
        elif p.is_dir():
            out.extend(sorted(p.rglob("*.h")))
            out.extend(sorted(p.rglob("*.cc")))
        else:
            print(f"warning: no such path {p}", file=sys.stderr)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="AST-based project-invariant analyzer",
        epilog="See DESIGN.md §14 for the check catalog and rationale.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src examples, "
                             "or the compile_commands.json TU list with -p)")
    parser.add_argument("-p", "--build-dir",
                        help="build dir with compile_commands.json; "
                             "analyzed files = its first-party TUs + "
                             "headers under src/")
    parser.add_argument("--check", action="append", default=[],
                        help="run only these checks (repeatable, "
                             "comma-separated)")
    parser.add_argument("--serve-scope", default=r"(^|/)serve",
                        help="path regex for the mutex-wrapper check scope")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0

    checks = []
    for c in args.check:
        checks += [x for x in c.split(",") if x]
    for c in checks:
        if c not in ALL_CHECKS:
            sys.exit(f"error: unknown check '{c}' (see --list-checks)")

    root = Path(__file__).resolve().parents[2]
    files = []
    if args.build_dir:
        files += files_from_compile_commands(args.build_dir, root)
        files += sorted((root / "src").rglob("*.h"))
    if args.paths:
        files += gather(args.paths, root)
    if not files:
        files = gather([root / "src", root / "examples"], root)

    uniq = {}
    for f in files:
        f = Path(f).resolve()
        try:
            display = str(f.relative_to(root))
        except ValueError:
            display = str(f)
        uniq[display] = f
    pairs = [(p, d) for d, p in sorted(uniq.items())]

    analyzer = Analyzer(pairs, checks or None, args.serve_scope)
    findings = analyzer.run()
    for f in findings:
        print(f, file=sys.stderr)
    print(f"project_analyzer: {len(pairs)} files, "
          f"{len(analyzer.checks)} checks, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
