#!/usr/bin/env python3
"""Self-test for project_analyzer.py against tests/analyzer_fixtures/.

The fixture corpus marks every seeded violation with `// expect: <check>`
(comma-separated for multiple checks on one line). This test runs the
analyzer over the corpus and asserts the finding set equals the marker set
exactly, in both directions:

  * a marker with no finding  -> the check went blind (regression);
  * a finding with no marker  -> a false positive crept in.

It also asserts every registered check fires at least once, so deleting a
check's fixtures (or breaking its trigger) cannot pass silently.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import project_analyzer as pa  # noqa: E402

EXPECT_RE = re.compile(r"//.*\bexpect:\s*([\w,\s-]+?)\s*(?:$|\*/)")


def expected_findings(fixture_dir, root):
    expected = set()
    for path in sorted(fixture_dir.glob("*.cc")) + sorted(
            fixture_dir.glob("*.h")):
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for check in (c.strip() for c in m.group(1).split(",")):
                if check not in pa.ALL_CHECKS:
                    sys.exit(f"{rel}:{lineno}: marker names unknown "
                             f"check '{check}'")
                expected.add((rel, lineno, check))
    return expected


def main():
    root = Path(__file__).resolve().parents[2]
    fixture_dir = root / "tests" / "analyzer_fixtures"
    files = sorted(fixture_dir.glob("*.cc")) + sorted(
        fixture_dir.glob("*.h"))
    if not files:
        sys.exit(f"error: no fixtures under {fixture_dir}")

    pairs = [(p, p.relative_to(root).as_posix()) for p in files]
    analyzer = pa.Analyzer(pairs)
    actual = {(f.file, f.line, f.check) for f in analyzer.run()}
    expected = expected_findings(fixture_dir, root)

    failures = []
    for miss in sorted(expected - actual):
        failures.append(
            f"MISSED: {miss[0]}:{miss[1]} expected [{miss[2]}] "
            "but the analyzer reported nothing")
    for extra in sorted(actual - expected):
        msg = next(str(f) for f in analyzer.findings
                   if (f.file, f.line, f.check) == extra)
        failures.append(f"FALSE POSITIVE: {msg}")

    fired = {c for _, _, c in actual}
    for check in pa.ALL_CHECKS:
        if check not in fired:
            failures.append(
                f"DEAD CHECK: [{check}] produced no finding on the corpus; "
                "add or fix its fixtures")

    for f in failures:
        print(f, file=sys.stderr)
    print(f"analyzer_selftest: {len(files)} fixtures, "
          f"{len(expected)} expected findings, "
          f"{len(actual)} reported, {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
