#!/usr/bin/env python3
"""Project-specific lint: hot-path allocation bans and guarded instrumentation.

Two checks over src/ (headers and sources):

1. hotpath-alloc — a function definition annotated with a `// hotpath`
   comment on the line directly above its signature must not contain
   heap-allocating constructs anywhere in its body:

       new / new[]           make_unique / make_shared
       malloc / calloc       std::to_string
       std::string(...)      construction of a temporary string

   The zero-steady-allocation contract (bench_hotpath gates it at runtime)
   is this check's static twin: it catches the allocation at review time,
   on every code path rather than the ones the benchmark happens to drive.
   A line ending in `// lint: allow-alloc(<why>)` is exempt (e.g. a cold
   error branch).

2. instr-guard — every dereference of an instrumentation pointer
   (`instr->`, `instr_->`, `instrumentation_->`) must be visibly
   null-guarded: the same line tests `!= nullptr`, or a preceding line in
   the same function tests the pointer (`if (x != nullptr)`,
   `if (x == nullptr) return`, or a `x != nullptr ?` ternary).
   Instrumentation is optional everywhere on the hot path; an unguarded
   deref is a latent crash on exactly the configurations the benches run.

Exit status 1 on any finding; findings print as file:line: message.

Usage: project_lint.py [paths...]   (default: src)
"""

import argparse
import re
import sys
from pathlib import Path

HOTPATH_ANNOTATION = re.compile(r"^\s*//\s*hotpath\b")
ALLOW_ALLOC = re.compile(r"//\s*lint:\s*allow-alloc")
ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bnew\s*\("), "placement/operator new"),
    (re.compile(r"\bstd::make_unique\b|\bmake_unique<"), "make_unique"),
    (re.compile(r"\bstd::make_shared\b|\bmake_shared<"), "make_shared"),
    (re.compile(r"\bmalloc\s*\(|\bcalloc\s*\("), "malloc/calloc"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
    (re.compile(r"\bstd::string\s*[({]"), "std::string construction"),
    (re.compile(r"\bstd::string\s+\w+\s*[({=]"), "std::string construction"),
]

INSTR_DEREF = re.compile(r"\b(instr|instr_|instrumentation_)->")
COMMENT_LINE = re.compile(r"^\s*//")


def strip_strings(line):
    """Blank out string/char literals so patterns inside them don't match."""
    out = []
    quote = None
    prev = ""
    for ch in line:
        if quote:
            out.append("_")
            if ch == quote and prev != "\\":
                quote = None
            prev = "" if prev == "\\" else ch
        elif ch in "\"'":
            quote = ch
            out.append(ch)
            prev = ch
        else:
            out.append(ch)
            prev = ch
    return "".join(out)


def function_body_end(lines, start):
    """Index one past the closing brace of the body opened at/after start."""
    depth = 0
    opened = False
    for i in range(start, len(lines)):
        code = strip_strings(lines[i])
        if COMMENT_LINE.match(code):
            continue
        code = code.split("//")[0]
        depth += code.count("{") - code.count("}")
        if code.count("{"):
            opened = True
        if opened and depth <= 0:
            return i + 1
        # Annotation on a declaration (no body): stop at the semicolon.
        if not opened and ";" in code:
            return i + 1
    return len(lines)


def check_hotpath_allocs(path, lines, findings):
    i = 0
    while i < len(lines):
        if not HOTPATH_ANNOTATION.match(lines[i]):
            i += 1
            continue
        end = function_body_end(lines, i + 1)
        for j in range(i + 1, end):
            line = lines[j]
            if COMMENT_LINE.match(line) or ALLOW_ALLOC.search(line):
                continue
            code = strip_strings(line).split("//")[0]
            for pattern, what in ALLOC_PATTERNS:
                if pattern.search(code):
                    findings.append(
                        f"{path}:{j + 1}: [hotpath-alloc] {what} inside a"
                        " `// hotpath` function"
                    )
        i = end


def guard_patterns(ident):
    return [
        re.compile(rf"\b{ident}\s*!=\s*nullptr"),
        # Early-out style: `if (x == nullptr ...) return;` — a nullness test
        # in any form counts as the author having thought about it.
        re.compile(rf"\b{ident}\s*==\s*nullptr"),
    ]


def check_instr_guards(path, lines, findings, window=40):
    for i, line in enumerate(lines):
        if COMMENT_LINE.match(line):
            continue
        code = strip_strings(line).split("//")[0]
        m = INSTR_DEREF.search(code)
        if not m:
            continue
        ident = re.escape(m.group(1))
        guards = guard_patterns(ident)
        if any(g.search(code) for g in guards):
            continue
        lo = max(0, i - window)
        context = "\n".join(lines[lo:i])
        if any(g.search(context) for g in guards):
            continue
        findings.append(
            f"{path}:{i + 1}: [instr-guard] `{m.group(1)}->` dereference with"
            f" no `{m.group(1)} != nullptr` check on this line or the"
            f" preceding {window}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=["src"])
    args = parser.parse_args()

    files = []
    for root in args.paths:
        p = Path(root)
        if p.is_file():
            files.append(p)
        else:
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cc")))

    findings = []
    annotated = 0
    for path in files:
        lines = path.read_text().splitlines()
        annotated += sum(1 for l in lines if HOTPATH_ANNOTATION.match(l))
        check_hotpath_allocs(path, lines, findings)
        check_instr_guards(path, lines, findings)

    for f in findings:
        print(f, file=sys.stderr)
    print(
        f"project_lint: {len(files)} files, {annotated} `// hotpath`"
        f" annotations, {len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
