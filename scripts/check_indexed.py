#!/usr/bin/env python3
"""Gate the persistent structural index: warm re-query speedup vs baseline.

Reads a BENCH_indexed.json produced by `bench_indexed_vs_stream --json
<path>` and compares it against the committed baseline
(bench/BENCH_indexed_baseline.json by default). Fails when

  * any indexed run's match count differs from the streaming run's on the
    same (dataset, query) cell (the bench itself also aborts on this), or
  * a Book predicate-query cell (Q5-Q10) has warm indexed re-query less
    than --floor (default 10x) faster than re-streaming, or
  * any cell's speedup drops more than --threshold (default 40%) below the
    baseline cell's speedup.

Speedup ratios of two measured times jitter more than either time alone,
hence the wide default threshold; the hard Book floor is the real
acceptance bar. Cells present on only one side are reported but never
gate. Refresh the baseline by taking the cell-wise *minimum* speedup over
>= 3 fresh runs on a quiet machine.

Usage: check_indexed.py BENCH_indexed.json [--baseline path]
                        [--threshold 0.40] [--floor 10.0]
"""

import argparse
import json
import sys

# The gated Book predicate queries (the paper's Figure 7 Q5-Q10 set).
BOOK_FLOOR_QUERIES = {"Q5", "Q6", "Q7", "Q8", "Q9", "Q10"}


def load_cells(path):
    with open(path) as f:
        records = json.load(f)
    cells = {}
    for r in records:
        if r.get("bench") != "indexed_vs_stream":
            continue
        p = r.get("params", {})
        cells[(p.get("dataset"), p.get("query"))] = {
            "speedup": r["speedup"],
            "results_indexed": r["results_indexed"],
            "results_stream": r["results_stream"],
        }
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BenchJson output of bench_indexed_vs_stream")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_indexed_baseline.json",
        help="committed baseline (default bench/BENCH_indexed_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.40,
        help="max allowed relative speedup regression vs baseline (default 0.40)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=10.0,
        help="hard minimum speedup for Book Q5-Q10 (default 10.0)",
    )
    args = parser.parse_args()

    current = load_cells(args.json_path)
    baseline = load_cells(args.baseline)
    if not current:
        print(f"error: no indexed_vs_stream records in {args.json_path}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no indexed_vs_stream records in {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for key in sorted(current, key=str):
        dataset, query = key
        name = f"{dataset}/{query}"
        cell = current[key]
        status = "ok"
        if cell["results_indexed"] != cell["results_stream"]:
            failures.append(
                f"{name}: indexed found {cell['results_indexed']:.0f} matches, "
                f"streaming found {cell['results_stream']:.0f}"
            )
            status = "FAIL"
        if dataset == "Book" and query in BOOK_FLOOR_QUERIES:
            if cell["speedup"] < args.floor:
                failures.append(
                    f"{name}: speedup {cell['speedup']:.1f}x below the "
                    f"{args.floor:.0f}x Book floor"
                )
                status = "FAIL"
        base = baseline.get(key)
        if base is None:
            print(f"note: {name} has no baseline cell (floor-gated only)")
        else:
            ratio = cell["speedup"] / base["speedup"]
            if ratio < 1.0 - args.threshold:
                failures.append(
                    f"{name}: speedup {cell['speedup']:.1f}x is "
                    f"{1.0 - ratio:.0%} below baseline {base['speedup']:.1f}x"
                )
                status = "FAIL"
        print(
            f"{name:20s} speedup {cell['speedup']:8.1f}x  "
            f"results {cell['results_indexed']:10.0f}  {status}"
        )
    for key in sorted(set(baseline) - set(current), key=str):
        print(f"note: baseline cell {key[0]}/{key[1]} missing from run")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"\nOK: match counts equal streaming; Book Q5-Q10 >= {args.floor:.0f}x; "
        f"all cells within {args.threshold:.0%} of baseline speedup"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
