#!/usr/bin/env python3
"""Gate earliest query answering: emission gap and live candidates.

Reads a BENCH_hotpath.json produced by `bench_hotpath --json <path>` and
inspects the `early` group (predicate-heavy Book workloads, each run in
off / observe / on early-decision modes). Fails when

  * an observe-mode cell's gap_mean_bytes drifts more than --tolerance
    (default 2%) from the committed baseline cell — the dataset and the
    gap measurement are deterministic, so drift means the measurement or
    the certainty cascade changed;
  * the median per-workload ratio on/observe of gap_mean_bytes exceeds
    --max-gap-ratio (default 0.7): the DTD proofs must cut the median
    emission gap by at least 30%;
  * any on-mode cell holds more peak live candidates than its observe
    twin — static decisions must never *grow* the candidate set;
  * any on-mode cell reports nonzero steady-state allocations, or no
    on-mode cell early-emits at all (the tables silently stopped firing).

Workloads present on only one side are reported but never gate, so adding
or retiring a query does not require touching this script. Refresh the
baseline by copying the `early` group records from a fresh scale-1
`bench_hotpath --json` run (scripts in CI run it without
TWIGM_BENCH_SCALE, so the committed baseline must be scale 1 too).

Usage: check_emission_gap.py BENCH_hotpath.json [--baseline path]
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        records = json.load(f)
    cells = {}
    for r in records:
        p = r.get("params", {})
        if r.get("bench") != "hotpath" or p.get("group") != "early":
            continue
        query, _, mode = p.get("workload", "").partition("/")
        cells[(p.get("dataset"), query, mode)] = r
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="BenchJson output of bench_hotpath")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_emission_gap_baseline.json",
        help="committed baseline (default bench/BENCH_emission_gap_baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="max relative drift of observe gap_mean_bytes vs baseline",
    )
    parser.add_argument(
        "--max-gap-ratio",
        type=float,
        default=0.7,
        help="max allowed median on/observe gap_mean_bytes ratio",
    )
    args = parser.parse_args()

    current = load_cells(args.json_path)
    baseline = load_cells(args.baseline)
    if not current:
        print(f"error: no early-group records in {args.json_path}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no early-group records in {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    ratios = []
    any_early_emitted = False
    queries = sorted({q for (_, q, _) in current})
    for (dataset, query, mode), cell in sorted(current.items()):
        name = f"{dataset}/{query}/{mode}"
        if mode == "on" and cell["steady_allocs"] > 0:
            failures.append(
                f"{name}: {cell['steady_allocs']:.0f} steady-state allocations"
                " (early decisions must stay allocation-free)"
            )
        if mode == "on":
            any_early_emitted |= cell["early_emitted"] > 0

    for query in queries:
        observe = current.get(("Book", query, "observe"))
        on = current.get(("Book", query, "on"))
        if observe is None or on is None:
            print(f"note: {query} missing a mode cell (not gated)")
            continue

        base = baseline.get(("Book", query, "observe"))
        if base is None:
            print(f"note: Book/{query}/observe has no baseline cell (not gated)")
        elif base["gap_mean_bytes"] > 0:
            drift = (
                abs(observe["gap_mean_bytes"] - base["gap_mean_bytes"])
                / base["gap_mean_bytes"]
            )
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(
                f"Book/{query}/observe  gap mean {observe['gap_mean_bytes']:.0f} B"
                f" (baseline {base['gap_mean_bytes']:.0f} B, {drift:+.2%})  {status}"
            )
            if drift > args.tolerance:
                failures.append(
                    f"Book/{query}/observe: gap_mean_bytes drifted {drift:.2%}"
                    f" from baseline (> {args.tolerance:.0%})"
                )

        if observe["gap_mean_bytes"] > 0:
            ratio = on["gap_mean_bytes"] / observe["gap_mean_bytes"]
            ratios.append(ratio)
            print(
                f"Book/{query}  gap {observe['gap_mean_bytes']:.0f} -> "
                f"{on['gap_mean_bytes']:.0f} B (x{ratio:.3f}), peak candidates "
                f"{observe['peak_candidates']:.0f} -> {on['peak_candidates']:.0f}"
            )
        if on["peak_candidates"] > observe["peak_candidates"]:
            failures.append(
                f"Book/{query}: on-mode peak candidates "
                f"{on['peak_candidates']:.0f} exceed observe "
                f"{observe['peak_candidates']:.0f}"
            )

    if not ratios:
        failures.append("no workload with a nonzero observe gap (gate is vacuous)")
    else:
        ratios.sort()
        median = ratios[len(ratios) // 2]
        print(f"median on/observe gap ratio: {median:.3f} (limit {args.max_gap_ratio})")
        if median > args.max_gap_ratio:
            failures.append(
                f"median gap ratio {median:.3f} exceeds {args.max_gap_ratio}"
                " (static proofs no longer cut the emission gap >= 30%)"
            )
    if not any_early_emitted:
        failures.append("no on-mode cell early-emitted a single result")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("\nOK: emission gap and candidate gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
