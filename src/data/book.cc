#include "data/book.h"

#include "dtd/dtd_parser.h"

namespace twigm::data {

// XQuery use cases (TREE), lightly extended with the attributes the
// experimental queries test (@id on section, @short on title).
const char kBookDtd[] = R"(
<!ELEMENT book (title, author+, section*)>
<!ATTLIST book year CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ATTLIST title short CDATA #IMPLIED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT section (title, (p | figure | section)*)>
<!ATTLIST section id ID #REQUIRED difficulty CDATA #IMPLIED>
<!ELEMENT p (#PCDATA)>
<!ELEMENT figure (title, image)>
<!ATTLIST figure width CDATA #IMPLIED height CDATA #IMPLIED>
<!ELEMENT image EMPTY>
<!ATTLIST image source CDATA #REQUIRED>
)";

Result<std::string> GenerateBook(const BookOptions& options) {
  Result<dtd::Dtd> parsed = dtd::ParseDtd(kBookDtd);
  if (!parsed.ok()) return parsed.status();
  const dtd::Dtd& dtd = parsed.value();

  dtd::GeneratorOptions gen;
  gen.seed = options.seed;
  gen.number_levels = options.number_levels;
  gen.max_repeats = options.max_repeats;

  if (options.min_bytes == 0) {
    if (options.copies == 1) {
      return dtd::GenerateDocument(dtd, "book", gen);
    }
    return dtd::GenerateCollection(dtd, "book", gen, options.copies);
  }

  // Size-targeted mode: stack independent books (distinct seeds) under a
  // <collection> root until at least min_bytes of XML text exist. Raw
  // splicing is safe: each generated document is well-formed and the XML
  // declaration is stripped.
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<collection>";
  uint64_t seed = options.seed;
  while (out.size() < options.min_bytes) {
    dtd::GeneratorOptions per_book = gen;
    per_book.seed = seed++;
    Result<std::string> doc = dtd::GenerateDocument(dtd, "book", per_book);
    if (!doc.ok()) return doc.status();
    const std::string& text = doc.value();
    const size_t start = text.find("<book");
    if (start == std::string::npos) {
      return Status::Internal("generated book document has no <book> root");
    }
    out.append(text, start, std::string::npos);
    out.push_back('\n');
  }
  out += "</collection>";
  return out;
}

}  // namespace twigm::data
