#include "data/protein.h"

#include "common/random.h"
#include "xml/xml_writer.h"

namespace twigm::data {

namespace {

constexpr const char* kOrganisms[] = {
    "Homo sapiens", "Mus musculus",   "Escherichia coli",
    "Rattus rattus", "Gallus gallus", "Saccharomyces cerevisiae",
};
constexpr const char* kCommonNames[] = {
    "human", "mouse", "bacterium", "rat", "chicken", "yeast",
};
constexpr const char* kClassifications[] = {
    "kinase", "transferase", "hydrolase", "ligase", "isomerase", "oxidoreductase",
};
constexpr const char* kJournals[] = {
    "J. Biol. Chem.", "Nature", "Science", "Cell", "EMBO J.",
};
constexpr char kResidues[] = "ACDEFGHIKLMNPQRSTVWY";

void EmitEntry(Rng* rng, int index, xml::XmlWriter* w) {
  w->Open("ProteinEntry").Attr("id", "PE" + std::to_string(index));

  w->Open("header");
  w->Open("uid").Text("U" + std::to_string(100000 + index)).Close();
  w->Open("accession").Text("A" + std::to_string(rng->Below(1000000))).Close();
  w->Open("created").Text("199" + std::to_string(rng->Below(10))).Close();
  w->Close();  // header

  w->Open("protein");
  w->Open("name").Text("protein-" + rng->Word(4, 9)).Close();
  const size_t kind = rng->Below(6);
  w->Open("classification")
      .Open("superfamily")
      .Text(kClassifications[kind])
      .Close()
      .Close();
  w->Close();  // protein

  w->Open("organism");
  w->Open("source").Text(kOrganisms[kind]).Close();
  w->Open("common").Text(kCommonNames[kind]).Close();
  w->Close();  // organism

  const int refs = 1 + static_cast<int>(rng->Below(3));
  for (int r = 0; r < refs; ++r) {
    w->Open("reference");
    w->Open("refinfo").Attr("refid", "R" + std::to_string(index) + "." +
                                          std::to_string(r));
    const int authors = 1 + static_cast<int>(rng->Below(4));
    w->Open("authors");
    for (int a = 0; a < authors; ++a) {
      w->Open("author").Text(rng->Word(3, 8) + ", " +
                             static_cast<char>('A' + rng->Below(26)) + ".")
          .Close();
    }
    w->Close();  // authors
    w->Open("citation").Attr("type", "journal");
    w->Open("journal").Text(kJournals[rng->Below(5)]).Close();
    w->Open("year").Text(std::to_string(1980 + rng->Below(25))).Close();
    w->Close();  // citation
    w->Close();  // refinfo
    w->Close();  // reference
  }

  const int seq_len = 60 + static_cast<int>(rng->Below(120));
  std::string seq;
  seq.reserve(static_cast<size_t>(seq_len));
  for (int i = 0; i < seq_len; ++i) {
    seq.push_back(kResidues[rng->Below(sizeof(kResidues) - 1)]);
  }
  w->Open("sequence").Text(seq).Close();

  w->Close();  // ProteinEntry
}

}  // namespace

Result<std::string> GenerateProtein(const ProteinOptions& options) {
  if (options.entries < 1 && options.min_bytes == 0) {
    return Status::InvalidArgument("entries must be >= 1");
  }
  Rng rng(options.seed);
  xml::XmlWriter writer;
  writer.Open("ProteinDatabase");
  int index = 0;
  while (true) {
    if (options.min_bytes > 0) {
      if (writer.size_bytes() >= options.min_bytes) break;
    } else if (index >= options.entries) {
      break;
    }
    EmitEntry(&rng, index++, &writer);
  }
  writer.Close();
  return std::move(writer).TakeString();
}

}  // namespace twigm::data
