// Dataset registry and feature measurement (Figure 5: size, number of
// elements, depth, recursion) plus the experimental query sets (Figure 6).

#ifndef TWIGM_DATA_DATASETS_H_
#define TWIGM_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace twigm::data {

/// Structural features of a document (the paper's Figure 5 columns).
struct DatasetFeatures {
  uint64_t bytes = 0;
  uint64_t elements = 0;
  uint64_t attributes = 0;
  uint64_t text_bytes = 0;
  int max_depth = 0;
  /// True iff some tag repeats along a root-to-leaf path (the paper's
  /// definition of recursive data, section 1).
  bool recursive = false;

  std::string ToString() const;
};

/// Parses `document` and measures its features. Fails on malformed XML.
Result<DatasetFeatures> ComputeFeatures(std::string_view document);

/// One experimental query (Figure 6 rows).
struct QuerySpec {
  std::string name;      // "Q1".."Q10" / "XM1"..
  std::string text;      // XPath
  std::string language;  // "XP{/,//,*}", "XP{/,//,[]}", "XP{/,//,*,[]}"
};

/// The ten Book-dataset queries (Q1–Q4 linear, Q5–Q8 restricted predicates
/// with Q8 carrying a value test, Q9–Q10 full XP{/,//,*,[]}).
const std::vector<QuerySpec>& BookQueries();

/// The ten Protein-dataset queries, same class structure.
const std::vector<QuerySpec>& ProteinQueries();

/// The XMark-style benchmark queries (only '/', '//', '*', predicates).
const std::vector<QuerySpec>& AuctionQueries();

}  // namespace twigm::data

#endif  // TWIGM_DATA_DATASETS_H_
