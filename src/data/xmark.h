// XMark-like auction benchmark data (section 5.1's benchmark dataset,
// [31]): the standard `site` document with regions/items, categories,
// people, and open/closed auctions. Item and category descriptions use the
// recursive parlist/listitem structure — the recursion the benchmark
// queries exercise. Scaled by an approximate factor instead of XMark's
// `-f` (factor 1.0 ≈ tens of MB there; our default is CI-sized and every
// bench can raise it).

#ifndef TWIGM_DATA_XMARK_H_
#define TWIGM_DATA_XMARK_H_

#include <string>

#include "common/status.h"

namespace twigm::data {

struct XmarkOptions {
  uint64_t seed = 11;
  /// Number of people; items/auctions/categories are derived from it with
  /// the XMark document's proportions.
  int people = 500;
  /// Maximum nesting depth of parlist/listitem descriptions.
  int description_depth = 4;
  /// Grow until at least this many bytes (0 = use `people` exactly).
  size_t min_bytes = 0;
};

/// Generates the auction dataset. Deterministic per seed.
Result<std::string> GenerateXmark(const XmarkOptions& options = XmarkOptions());

}  // namespace twigm::data

#endif  // TWIGM_DATA_XMARK_H_
