#include "data/xmark.h"

#include "common/random.h"
#include "xml/xml_writer.h"

namespace twigm::data {

namespace {

constexpr const char* kRegions[] = {"africa",  "asia",   "australia",
                                    "europe",  "namerica", "samerica"};
constexpr const char* kCategoriesWords[] = {"antiques", "books", "coins",
                                            "computers", "art", "music"};

class XmarkGenerator {
 public:
  XmarkGenerator(const XmarkOptions& options)
      : options_(options), rng_(options.seed) {
    people_ = options.people;
    items_ = people_ * 2;
    open_auctions_ = people_;
    closed_auctions_ = people_ / 2;
    categories_ = people_ / 5 + 1;
  }

  void Run(xml::XmlWriter* w) {
    w->Open("site");
    EmitRegions(w);
    EmitCategories(w);
    EmitCatgraph(w);
    EmitPeople(w);
    EmitOpenAuctions(w);
    EmitClosedAuctions(w);
    w->Close();
  }

 private:
  std::string Sentence(int min_words, int max_words) {
    std::string out;
    const int n = static_cast<int>(rng_.Range(min_words, max_words));
    for (int i = 0; i < n; ++i) {
      if (i > 0) out.push_back(' ');
      out += rng_.Word(3, 9);
    }
    return out;
  }

  // Recursive parlist/listitem description (the recursive part of XMark).
  void EmitParlist(int depth, xml::XmlWriter* w) {
    w->Open("parlist");
    const int items = 1 + static_cast<int>(rng_.Below(3));
    for (int i = 0; i < items; ++i) {
      w->Open("listitem");
      if (depth < options_.description_depth && rng_.Chance(0.35)) {
        EmitParlist(depth + 1, w);
      } else {
        w->Open("text").Text(Sentence(4, 12)).Close();
      }
      w->Close();
    }
    w->Close();
  }

  void EmitDescription(xml::XmlWriter* w) {
    w->Open("description");
    if (rng_.Chance(0.6)) {
      EmitParlist(1, w);
    } else {
      w->Open("text").Text(Sentence(5, 15)).Close();
    }
    w->Close();
  }

  void EmitRegions(xml::XmlWriter* w) {
    w->Open("regions");
    int item_index = 0;
    for (const char* region : kRegions) {
      w->Open(region);
      const int per_region = items_ / 6 + 1;
      for (int i = 0; i < per_region; ++i) {
        w->Open("item").Attr("id", "item" + std::to_string(item_index++));
        w->Open("location").Text(Sentence(1, 2)).Close();
        w->Open("quantity").Text(std::to_string(1 + rng_.Below(5))).Close();
        w->Open("name").Text(Sentence(2, 4)).Close();
        w->Open("payment").Text("Creditcard").Close();
        EmitDescription(w);
        w->Open("shipping").Text("Will ship internationally").Close();
        if (rng_.Chance(0.5)) {
          w->Open("incategory")
              .Attr("category",
                    "category" + std::to_string(rng_.Below(
                                     static_cast<uint64_t>(categories_))))
              .Close();
        }
        w->Close();  // item
      }
      w->Close();  // region
    }
    w->Close();  // regions
  }

  void EmitCategories(xml::XmlWriter* w) {
    w->Open("categories");
    for (int i = 0; i < categories_; ++i) {
      w->Open("category").Attr("id", "category" + std::to_string(i));
      w->Open("name").Text(kCategoriesWords[rng_.Below(6)]).Close();
      EmitDescription(w);
      w->Close();
    }
    w->Close();
  }

  void EmitCatgraph(xml::XmlWriter* w) {
    w->Open("catgraph");
    for (int i = 0; i + 1 < categories_; ++i) {
      w->Open("edge")
          .Attr("from", "category" + std::to_string(i))
          .Attr("to", "category" + std::to_string(i + 1))
          .Close();
    }
    w->Close();
  }

  void EmitPeople(xml::XmlWriter* w) {
    w->Open("people");
    for (int i = 0; i < people_; ++i) {
      w->Open("person").Attr("id", "person" + std::to_string(i));
      w->Open("name").Text(rng_.Word(4, 8) + " " + rng_.Word(4, 9)).Close();
      w->Open("emailaddress")
          .Text("mailto:" + rng_.Word(4, 8) + "@" + rng_.Word(4, 8) + ".com")
          .Close();
      if (rng_.Chance(0.6)) {
        w->Open("phone").Text("+1 (" + std::to_string(100 + rng_.Below(900)) +
                              ") " + std::to_string(1000000 + rng_.Below(9000000)))
            .Close();
      }
      if (rng_.Chance(0.4)) {
        w->Open("address");
        w->Open("street").Text(std::to_string(1 + rng_.Below(99)) + " " +
                               rng_.Word(4, 9) + " St")
            .Close();
        w->Open("city").Text(rng_.Word(4, 9)).Close();
        w->Open("country").Text("United States").Close();
        w->Open("zipcode").Text(std::to_string(10000 + rng_.Below(90000)))
            .Close();
        w->Close();
      }
      if (rng_.Chance(0.5)) {
        w->Open("profile").Attr("income",
                                std::to_string(20000 + rng_.Below(80000)));
        w->Open("interest")
            .Attr("category",
                  "category" + std::to_string(
                                   rng_.Below(static_cast<uint64_t>(
                                       categories_))))
            .Close();
        if (rng_.Chance(0.5)) {
          w->Open("education").Text("Graduate School").Close();
        }
        w->Open("business").Text(rng_.Chance(0.5) ? "Yes" : "No").Close();
        w->Close();
      }
      w->Close();  // person
    }
    w->Close();  // people
  }

  void EmitOpenAuctions(xml::XmlWriter* w) {
    w->Open("open_auctions");
    for (int i = 0; i < open_auctions_; ++i) {
      w->Open("open_auction").Attr("id", "open_auction" + std::to_string(i));
      w->Open("initial")
          .Text(std::to_string(1 + rng_.Below(200)) + "." +
                std::to_string(10 + rng_.Below(90)))
          .Close();
      const int bids = static_cast<int>(rng_.Below(5));
      for (int b = 0; b < bids; ++b) {
        w->Open("bidder");
        w->Open("date").Text("07/" + std::to_string(1 + rng_.Below(28)) +
                             "/2005")
            .Close();
        w->Open("personref")
            .Attr("person",
                  "person" + std::to_string(
                                 rng_.Below(static_cast<uint64_t>(people_))))
            .Close();
        w->Open("increase")
            .Text(std::to_string(1 + rng_.Below(50)) + ".00")
            .Close();
        w->Close();
      }
      w->Open("current")
          .Text(std::to_string(1 + rng_.Below(500)) + ".00")
          .Close();
      w->Open("itemref")
          .Attr("item",
                "item" + std::to_string(rng_.Below(
                             static_cast<uint64_t>(items_))))
          .Close();
      w->Open("seller")
          .Attr("person",
                "person" + std::to_string(rng_.Below(
                               static_cast<uint64_t>(people_))))
          .Close();
      EmitDescription(w);
      w->Open("quantity").Text("1").Close();
      w->Open("type").Text(rng_.Chance(0.5) ? "Regular" : "Featured").Close();
      w->Open("interval");
      w->Open("start").Text("01/01/2005").Close();
      w->Open("end").Text("12/31/2005").Close();
      w->Close();
      w->Close();  // open_auction
    }
    w->Close();  // open_auctions
  }

  void EmitClosedAuctions(xml::XmlWriter* w) {
    w->Open("closed_auctions");
    for (int i = 0; i < closed_auctions_; ++i) {
      w->Open("closed_auction");
      w->Open("seller")
          .Attr("person",
                "person" + std::to_string(rng_.Below(
                               static_cast<uint64_t>(people_))))
          .Close();
      w->Open("buyer")
          .Attr("person",
                "person" + std::to_string(rng_.Below(
                               static_cast<uint64_t>(people_))))
          .Close();
      w->Open("itemref")
          .Attr("item",
                "item" + std::to_string(rng_.Below(
                             static_cast<uint64_t>(items_))))
          .Close();
      w->Open("price")
          .Text(std::to_string(1 + rng_.Below(500)) + ".00")
          .Close();
      w->Open("date").Text("10/" + std::to_string(1 + rng_.Below(28)) +
                           "/2005")
          .Close();
      w->Open("quantity").Text("1").Close();
      w->Open("type").Text("Regular").Close();
      EmitDescription(w);
      w->Close();  // closed_auction
    }
    w->Close();  // closed_auctions
  }

  XmarkOptions options_;
  Rng rng_;
  int people_;
  int items_;
  int open_auctions_;
  int closed_auctions_;
  int categories_;
};

}  // namespace

Result<std::string> GenerateXmark(const XmarkOptions& options) {
  if (options.people < 1) {
    return Status::InvalidArgument("people must be >= 1");
  }
  XmarkOptions effective = options;
  while (true) {
    xml::XmlWriter writer;
    XmarkGenerator gen(effective);
    gen.Run(&writer);
    std::string doc = std::move(writer).TakeString();
    if (options.min_bytes == 0 || doc.size() >= options.min_bytes) {
      return doc;
    }
    // Scale up and regenerate until the size target is met.
    effective.people = effective.people * 2;
  }
}

}  // namespace twigm::data
