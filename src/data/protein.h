// Protein Sequence Database stand-in (section 5.1's real dataset, [15]):
// a large, shallow, *non-recursive* document — many small ProteinEntry
// records under a single root. The element vocabulary follows the published
// Georgetown PIR XML schema closely enough for the paper's query classes.

#ifndef TWIGM_DATA_PROTEIN_H_
#define TWIGM_DATA_PROTEIN_H_

#include <string>

#include "common/status.h"

namespace twigm::data {

struct ProteinOptions {
  uint64_t seed = 7;
  /// Number of ProteinEntry records.
  int entries = 5000;
  /// Grow until at least this many bytes (0 = use `entries` exactly).
  size_t min_bytes = 0;
};

/// Generates the protein dataset. Deterministic per seed. Document depth is
/// fixed (6) and no tag repeats along any root-to-leaf path.
Result<std::string> GenerateProtein(
    const ProteinOptions& options = ProteinOptions());

}  // namespace twigm::data

#endif  // TWIGM_DATA_PROTEIN_H_
