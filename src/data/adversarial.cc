#include "data/adversarial.h"

#include "xml/xml_writer.h"

namespace twigm::data {

std::string GenerateAdversarial(const AdversarialOptions& options) {
  const int n = options.n < 1 ? 1 : options.n;
  xml::XmlWriter writer;
  // a_1 .. a_n nested.
  for (int i = 0; i < n; ++i) writer.Open("a");
  // b_1 .. b_n nested inside a_n.
  for (int i = 0; i < n; ++i) writer.Open("b");
  for (int i = 0; i < options.c_count; ++i) {
    writer.Open("c").Close();
  }
  // Close b_n .. b_2; then e arrives as a following sibling inside b_1, so
  // every [e] predicate stays unresolved until after c was seen.
  for (int i = 0; i < n - 1; ++i) writer.Close();
  if (options.with_e) writer.Open("e").Close();
  writer.Close();  // b_1
  // Close a_n .. a_2; d is a following sibling inside a_1 — the [d]
  // predicate resolves at the very end of the document.
  for (int i = 0; i < n - 1; ++i) writer.Close();
  if (options.with_d) writer.Open("d").Close();
  writer.Close();  // a_1
  return std::move(writer).TakeString();
}

}  // namespace twigm::data
