#include "data/datasets.h"

#include <unordered_map>

#include "common/string_util.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::data {

std::string DatasetFeatures::ToString() const {
  std::string out;
  out += "size=" + HumanBytes(bytes);
  out += " elements=" + WithThousands(elements);
  out += " attributes=" + WithThousands(attributes);
  out += " depth=" + std::to_string(max_depth);
  out += recursive ? " recursive" : " non-recursive";
  return out;
}

namespace {

// Measures features in one SAX pass; recursion = a tag occurring twice on
// the open-element path.
class FeatureHandler : public xml::SaxHandler {
 public:
  explicit FeatureHandler(DatasetFeatures* out) : out_(out) {}

  void OnStartElement(const xml::TagToken& tag,
                      const std::vector<xml::Attribute>& attrs) override {
    ++out_->elements;
    out_->attributes += attrs.size();
    ++depth_;
    if (depth_ > out_->max_depth) out_->max_depth = depth_;
    // lint: allow-string-copy(offline dataset feature pass, not a stream path)
    auto [it, inserted] = open_counts_.try_emplace(std::string(tag.text), 0);
    if (++it->second > 1) out_->recursive = true;
    (void)inserted;
    path_.emplace_back(it->first);
  }

  void OnEndElement(const xml::TagToken& tag) override {
    (void)tag;
    --depth_;
    --open_counts_[path_.back()];
    path_.pop_back();
  }

  void OnCharacters(std::string_view text) override {
    out_->text_bytes += text.size();
  }

 private:
  DatasetFeatures* out_;
  int depth_ = 0;
  std::unordered_map<std::string, int> open_counts_;
  std::vector<std::string> path_;
};

}  // namespace

Result<DatasetFeatures> ComputeFeatures(std::string_view document) {
  DatasetFeatures features;
  features.bytes = document.size();
  FeatureHandler handler(&features);
  xml::SaxParser parser(&handler);
  Status s = parser.ParseAll(document);
  if (!s.ok()) return s;
  return features;
}

const std::vector<QuerySpec>& BookQueries() {
  static const std::vector<QuerySpec>* kQueries = new std::vector<QuerySpec>{
      // XP{/,//,*}: linear paths.
      {"Q1", "//book/section/title", "XP{/,//,*}"},
      {"Q2", "//section//figure", "XP{/,//,*}"},
      {"Q3", "//section/*/image", "XP{/,//,*}"},
      {"Q4", "//*//figure/*", "XP{/,//,*}"},
      // XP{/,//,[]}: predicates restricted to an attribute or one child.
      {"Q5", "//section[title]/figure", "XP{/,//,[]}"},
      {"Q6", "//section[@id]//figure", "XP{/,//,[]}"},
      {"Q7", "//figure[image]/title", "XP{/,//,[]}"},
      // Q8: value test, small result (paper: "produces results of small
      // sizes").
      {"Q8", "//section[title=\"data\"]//image", "XP{/,//,[]}"},
      // XP{/,//,*,[]}: multiple/nested predicates, '*' anywhere.
      {"Q9", "//*[title][figure[image]]//p", "XP{/,//,*,[]}"},
      {"Q10", "//section[figure[image]][@id]//section[p]/title",
       "XP{/,//,*,[]}"},
  };
  return *kQueries;
}

const std::vector<QuerySpec>& ProteinQueries() {
  static const std::vector<QuerySpec>* kQueries = new std::vector<QuerySpec>{
      {"Q1", "/ProteinDatabase/ProteinEntry/header/uid", "XP{/,//,*}"},
      {"Q2", "//reference//author", "XP{/,//,*}"},
      {"Q3", "//ProteinEntry/*/name", "XP{/,//,*}"},
      {"Q4", "//*//citation/*", "XP{/,//,*}"},
      {"Q5", "//ProteinEntry[header]/sequence", "XP{/,//,[]}"},
      {"Q6", "//refinfo[@refid]//journal", "XP{/,//,[]}"},
      {"Q7", "//citation[journal]/year", "XP{/,//,[]}"},
      {"Q8", "//organism[common=\"human\"]/source", "XP{/,//,[]}"},
      {"Q9", "//ProteinEntry[organism[common=\"human\"]][header]//journal",
       "XP{/,//,*,[]}"},
      {"Q10",
       "//*[header][protein/classification]//refinfo[citation[year]]//author",
       "XP{/,//,*,[]}"},
  };
  return *kQueries;
}

const std::vector<QuerySpec>& AuctionQueries() {
  static const std::vector<QuerySpec>* kQueries = new std::vector<QuerySpec>{
      {"XM1", "//open_auction/bidder/increase", "XP{/,//,*}"},
      {"XM2", "//description//listitem//text", "XP{/,//,*}"},
      {"XM3", "//person/*/interest", "XP{/,//,*}"},
      {"XM4", "//item[location]/name", "XP{/,//,[]}"},
      {"XM5", "//open_auction[bidder]/current", "XP{/,//,[]}"},
      {"XM6", "//person[address/zipcode]/name", "XP{/,//,*,[]}"},
      {"XM7", "//open_auction[bidder[personref]]//increase",
       "XP{/,//,*,[]}"},
      {"XM8", "//regions//item[description//listitem]/name",
       "XP{/,//,*,[]}"},
      {"XM9", "//person[profile[@income]]/name", "XP{/,//,*,[]}"},
      {"XM10", "//closed_auction[price]/date", "XP{/,//,[]}"},
  };
  return *kQueries;
}

}  // namespace twigm::data
