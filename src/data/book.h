// The Book dataset (section 5.1): synthetic data generated from the Book
// DTD of the XQuery use cases ("TREE" use case) — the recursive `section`
// element is what makes this dataset exercise TwigM's compact match
// encoding. The paper's IBM XML Generator settings are the defaults:
// NumberLevels = 20, MaxRepeats = 9.

#ifndef TWIGM_DATA_BOOK_H_
#define TWIGM_DATA_BOOK_H_

#include <string>

#include "common/status.h"
#include "dtd/dtd_generator.h"

namespace twigm::data {

/// The Book DTD (XQuery use cases, TREE), with recursive sections.
extern const char kBookDtd[];

struct BookOptions {
  uint64_t seed = 42;
  int number_levels = 20;  // paper setting
  int max_repeats = 9;     // paper setting
  /// Number of <book> instances concatenated under a <collection> root;
  /// 1 emits a bare <book> document. The scalability figures use 1..6
  /// identical copies.
  int copies = 1;
  /// Grow the document by stacking additional independent books until at
  /// least this many bytes (0 = ignore; used to reach the paper's ~9 MB).
  size_t min_bytes = 0;
};

/// Generates the Book dataset. Deterministic per seed.
Result<std::string> GenerateBook(const BookOptions& options = BookOptions());

}  // namespace twigm::data

#endif  // TWIGM_DATA_BOOK_H_
