// The adversarial document family of Figure 1: n nested a's, then n nested
// b's, then a single c — the data on which //a[d]//b[e]//c has n² pattern
// matches for the one result node, which TwigM encodes in 2n stack entries.
// The d child hangs off the outermost a and the e child off the innermost
// b, exactly as in the paper's running example (the predicates resolve only
// at the very end).

#ifndef TWIGM_DATA_ADVERSARIAL_H_
#define TWIGM_DATA_ADVERSARIAL_H_

#include <string>

namespace twigm::data {

struct AdversarialOptions {
  int n = 8;               // nesting depth of the a-chain and b-chain
  bool with_d = true;      // emit <d/> under a_1 (satisfies [d])
  bool with_e = true;      // emit <e/> under b_1 (satisfies [e])
  int c_count = 1;         // number of c leaves under b_n
};

/// Builds the Figure 1 document:
///   a_1( d?, a_2( ... a_n( b_1( b_2( ... b_n( c... ), e? ) ) ) ... ) )
/// Note d precedes the nested a's but e FOLLOWS the nested b's (paper
/// figure): every b's predicate stays unresolved until after c is seen.
std::string GenerateAdversarial(
    const AdversarialOptions& options = AdversarialOptions());

}  // namespace twigm::data

#endif  // TWIGM_DATA_ADVERSARIAL_H_
