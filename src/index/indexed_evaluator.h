// IndexedEvaluator — answers XP{/,//,*,[]} queries over a persistent
// structural index (IndexReader) by stack-based structural joins over the
// per-symbol postings lists, without touching the original document.
//
// Evaluation plan (DESIGN.md §15):
//   1. Bottom-up over the query tree: each node's candidate list starts as
//      its tag's postings (pre-sorted; all elements for '*'), filtered by
//      the node's value test and attribute predicates — the same
//      value/attribute facts the streaming machines test, read back from
//      the index. Each element-child predicate then shrinks the list by an
//      ancestor-side structural semi-join: a single merge over the two
//      pre-sorted lists with a stack of open (pre, post) intervals,
//      ancestor/descendant decided by interval containment and child by a
//      level delta of one.
//   2. Top-down along the output path: the root list is anchored (a
//      leading '/' pins level 1), then each spine step keeps the
//      descendant-side elements that have a surviving spine ancestor —
//      the same merge with the roles flipped.
//   3. The final list is the match set in document order. Results are
//      emitted through the standard core::MatchObserver with
//      MatchInfo{id = pre (the streaming NodeId), byte_offset = the
//      element's start-tag offset}, so indexed, streaming, and DOM runs
//      are directly comparable.
//
// Cost is O(postings touched), not O(document bytes): warm re-query never
// re-parses. Evaluate() is repeatable and reuses all scratch storage, so
// the steady state allocates nothing (the join loops are `// hotpath`,
// enforced by scripts/analyze/project_analyzer.py).

#ifndef TWIGM_INDEX_INDEXED_EVALUATOR_H_
#define TWIGM_INDEX_INDEXED_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/result_sink.h"
#include "index/index_reader.h"
#include "xml/sax_event.h"
#include "xpath/query_tree.h"

namespace twigm::index {

class IndexedEvaluator {
 public:
  /// Join accounting for one Evaluate() call.
  struct Stats {
    uint64_t postings_touched = 0;  // candidate entries read from postings
    uint64_t join_steps = 0;        // merge steps across all semi-joins
    uint64_t results = 0;           // matches emitted
  };

  /// Compiles `query` against `reader`'s dictionary. `reader` is not owned
  /// and must outlive the evaluator. Labels the corpus never saw resolve
  /// to empty postings (not an error — the query simply has no matches).
  static Result<std::unique_ptr<IndexedEvaluator>> Create(
      std::string_view query, const IndexReader* reader);

  IndexedEvaluator(const IndexedEvaluator&) = delete;
  IndexedEvaluator& operator=(const IndexedEvaluator&) = delete;

  /// Runs the structural joins and emits every match, in document order,
  /// through `observer` (OnResult only; there is no candidate phase —
  /// membership is decided by the joins). Repeatable: scratch state is
  /// reused across calls and the steady state is allocation-free.
  Status Evaluate(core::MatchObserver* observer);

  /// Accounting for the most recent Evaluate() call.
  const Stats& stats() const { return stats_; }

  const xpath::QueryTree& query() const { return query_; }

 private:
  IndexedEvaluator() = default;

  /// Per-query-node plan, indexed by QueryNode::index (pre-order).
  struct AttrTest {
    xml::SymbolId name_symbol = xml::kNoSymbol;  // kNoSymbol: never present
    const xpath::QueryNode* node = nullptr;
  };
  struct NodePlan {
    const xpath::QueryNode* node = nullptr;
    bool wildcard = false;
    /// False when the node has neither a value test nor attribute
    /// predicates: candidates are then a straight copy of the postings.
    bool has_local_tests = false;
    /// Resolved tag symbol; kNoSymbol with !wildcard means the corpus never
    /// saw the tag (empty candidates).
    xml::SymbolId symbol = xml::kNoSymbol;
    std::vector<AttrTest> attr_tests;
    std::vector<int> element_children;  // plan indices, in query order
    int spine_child = -1;               // plan index, -1 at the sol
  };

  void BuildCandidates(const NodePlan& plan, std::vector<uint32_t>* out);
  bool PassesLocalTests(const NodePlan& plan, uint32_t pre,
                        size_t* text_cursor, size_t* attr_cursor) const;
  void SemiJoinAncestors(const std::vector<uint32_t>& anc,
                         const std::vector<uint32_t>& desc, bool child_axis,
                         std::vector<uint32_t>* out);
  void SemiJoinDescendants(const std::vector<uint32_t>& anc,
                           const std::vector<uint32_t>& desc, bool child_axis,
                           std::vector<uint32_t>* out);

  const IndexReader* reader_ = nullptr;
  xpath::QueryTree query_;
  std::vector<NodePlan> plans_;
  int sol_index_ = -1;
  Stats stats_;

  // Scratch, reused across Evaluate() calls (steady state: no growth).
  std::vector<std::vector<uint32_t>> sat_;  // per plan index
  std::vector<uint32_t> cur_;               // spine working set
  std::vector<uint32_t> join_out_;          // semi-join output buffer
  std::vector<uint32_t> stack_;             // open-interval stack
  std::vector<uint8_t> matched_;            // per-ancestor match flags
  std::vector<int> child_order_;            // predicate join order scratch
};

}  // namespace twigm::index

#endif  // TWIGM_INDEX_INDEXED_EVALUATOR_H_
