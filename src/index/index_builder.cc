#include "index/index_builder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "xml/tag_interner.h"

namespace twigm::index {

namespace {

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void PadTo(std::string* out, size_t alignment) {
  while (out->size() % alignment != 0) out->push_back('\0');
}

}  // namespace

// Private SAX adapter: forwards the three events the builder labels from.
class IndexBuilder::Handler : public xml::SaxHandler {
 public:
  explicit Handler(IndexBuilder* builder) : builder_(builder) {}

  void OnStartElement(const xml::TagToken& tag,
                      const std::vector<xml::Attribute>& attrs) override {
    builder_->OnStart(tag, attrs);
  }
  void OnEndElement(const xml::TagToken& tag) override {
    (void)tag;
    builder_->OnEnd();
  }
  void OnCharacters(std::string_view text) override { builder_->OnText(text); }

 private:
  IndexBuilder* builder_;
};

IndexBuilder::~IndexBuilder() = default;

IndexBuilder::IndexBuilder(xml::SaxParserOptions sax) {
  handler_ = std::make_unique<Handler>(this);
  parser_ = std::make_unique<xml::SaxParser>(handler_.get(), sax);
  parser_->set_offset_slot(&construct_offset_);
}

void IndexBuilder::OnStart(const xml::TagToken& tag,
                           const std::vector<xml::Attribute>& attrs) {
  if (!error_.ok()) return;
  if (post_.size() >=
      static_cast<size_t>(std::numeric_limits<uint32_t>::max()) - 1) {
    error_ = Status::ResourceExhausted(
        "index format labels elements with 32-bit pre ids; document has too "
        "many elements");
    return;
  }
  const uint32_t pre = static_cast<uint32_t>(post_.size()) + 1;
  post_.push_back(0);  // patched at OnEnd
  level_.push_back(static_cast<uint32_t>(open_.size()) + 1);
  // The parser interns every element name; a kNoSymbol token would mean
  // interning was disabled, which the builder's own parser never does.
  symbol_.push_back(tag.symbol != xml::kNoSymbol
                        ? tag.symbol
                        : parser_->interner()->Intern(tag.text));
  offset_.push_back(construct_offset_);

  for (const xml::Attribute& attr : attrs) {
    AttrEntry entry;
    entry.pre = pre;
    entry.name_symbol = parser_->interner()->Intern(attr.name);
    entry.offset = attr_blob_.size();
    entry.length = static_cast<uint32_t>(attr.value.size());
    entry.reserved = 0;
    attr_blob_.append(attr.value);
    attr_entries_.push_back(entry);
  }

  const size_t depth = open_.size();
  if (depth == text_pool_.size()) text_pool_.emplace_back();
  text_pool_[depth].clear();
  open_.push_back({pre, depth});
}

void IndexBuilder::OnEnd() {
  if (!error_.ok()) return;
  const OpenElement top = open_.back();
  open_.pop_back();
  post_[top.pre - 1] = ++post_counter_;
  std::string& text = text_pool_[top.depth];
  if (!text.empty()) {
    TextEntry entry;
    entry.pre = top.pre;
    entry.length = static_cast<uint32_t>(text.size());
    entry.offset = text_blob_.size();
    text_blob_.append(text);
    text_entries_.push_back(entry);
    text.clear();
  }
}

void IndexBuilder::OnText(std::string_view text) {
  if (!error_.ok() || open_.empty()) return;
  text_pool_[open_.back().depth].append(text);
}

Status IndexBuilder::Consume(const xml::InputChunk& chunk) {
  if (!error_.ok()) return error_;
  Status s = parser_->Consume(chunk);
  if (s.ok() && !error_.ok()) s = error_;  // callback-detected overflow
  if (!s.ok()) {
    error_ = s;
    return error_;
  }
  if (chunk.last) finished_ = true;
  return Status::Ok();
}

Status IndexBuilder::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

uint64_t IndexBuilder::symbol_count() const {
  return static_cast<uint64_t>(parser_->interner()->size());
}

uint64_t IndexBuilder::document_bytes() const {
  return static_cast<uint64_t>(parser_->bytes_consumed());
}

Status IndexBuilder::Serialize(std::string* out) const {
  if (!error_.ok()) return error_;
  if (!finished_) {
    return Status::InvalidArgument(
        "IndexBuilder::Serialize before the document completed (no "
        "last=true chunk consumed)");
  }

  const uint64_t elements = element_count();
  const uint64_t symbols = symbol_count();

  // Dictionary.
  std::string dictionary;
  parser_->interner()->Serialize(&dictionary);

  // Per-symbol postings: counting sort of the symbol column. Each slice
  // comes out ascending in pre because the column is scanned in pre order.
  std::vector<PostingsRange> postings_index(symbols, PostingsRange{0, 0});
  for (uint32_t sym : symbol_) ++postings_index[sym].count;
  uint64_t running = 0;
  for (PostingsRange& range : postings_index) {
    range.begin = running;
    running += range.count;
    range.count = 0;  // reused as the fill cursor below
  }
  std::vector<uint32_t> postings_data(elements, 0);
  for (uint64_t i = 0; i < elements; ++i) {
    PostingsRange& range = postings_index[symbol_[i]];
    postings_data[range.begin + range.count] = static_cast<uint32_t>(i + 1);
    ++range.count;
  }

  // Text entries were recorded at end-tag time (post order); the reader
  // binary-searches them by pre.
  std::vector<TextEntry> text_entries = text_entries_;
  std::sort(text_entries.begin(), text_entries.end(),
            [](const TextEntry& a, const TextEntry& b) { return a.pre < b.pre; });

  struct SectionPayload {
    SectionId id;
    const void* data;
    uint64_t size;
  };
  const SectionPayload payloads[] = {
      {SectionId::kDictionary, dictionary.data(), dictionary.size()},
      {SectionId::kPost, post_.data(), post_.size() * sizeof(uint32_t)},
      {SectionId::kLevel, level_.data(), level_.size() * sizeof(uint32_t)},
      {SectionId::kSymbol, symbol_.data(), symbol_.size() * sizeof(uint32_t)},
      {SectionId::kByteOffset, offset_.data(),
       offset_.size() * sizeof(uint64_t)},
      {SectionId::kPostingsIndex, postings_index.data(),
       postings_index.size() * sizeof(PostingsRange)},
      {SectionId::kPostingsData, postings_data.data(),
       postings_data.size() * sizeof(uint32_t)},
      {SectionId::kTextIndex, text_entries.data(),
       text_entries.size() * sizeof(TextEntry)},
      {SectionId::kTextBlob, text_blob_.data(), text_blob_.size()},
      {SectionId::kAttrIndex, attr_entries_.data(),
       attr_entries_.size() * sizeof(AttrEntry)},
      {SectionId::kAttrBlob, attr_blob_.data(), attr_blob_.size()},
  };
  constexpr uint32_t kCount = kSectionCount;
  static_assert(sizeof(payloads) / sizeof(payloads[0]) == kCount);

  // Lay the sections out after the header + table, each 8-byte aligned.
  std::vector<SectionEntry> table(kCount);
  uint64_t cursor = sizeof(FileHeader) + kCount * sizeof(SectionEntry);
  for (uint32_t i = 0; i < kCount; ++i) {
    cursor = (cursor + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
    table[i].id = static_cast<uint32_t>(payloads[i].id);
    table[i].crc32 = Crc32(payloads[i].data, payloads[i].size);
    table[i].offset = cursor;
    table[i].size = payloads[i].size;
    cursor += payloads[i].size;
  }

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.section_count = kCount;
  header.element_count = elements;
  header.symbol_count = symbols;
  header.document_bytes = document_bytes();
  header.table_crc32 = Crc32(table.data(), table.size() * sizeof(SectionEntry));
  header.reserved = 0;

  out->clear();
  out->reserve(cursor);
  AppendRaw(out, &header, sizeof(header));
  AppendRaw(out, table.data(), table.size() * sizeof(SectionEntry));
  for (uint32_t i = 0; i < kCount; ++i) {
    PadTo(out, kSectionAlignment);
    AppendRaw(out, payloads[i].data, payloads[i].size);
  }
  return Status::Ok();
}

Status IndexBuilder::WriteFile(const std::string& path) const {
  std::string image;
  TWIGM_RETURN_IF_ERROR(Serialize(&image));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open index file for writing: " +
                                   path);
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != image.size() || !close_ok) {
    return Status::Internal("short write to index file: " + path);
  }
  return Status::Ok();
}

}  // namespace twigm::index
