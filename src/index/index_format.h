// On-disk layout of the persistent structural index (DESIGN.md §15).
//
// A single file holds everything needed to re-answer XP{/,//,*,[]} queries
// over an ingested document without re-parsing it:
//
//   FileHeader | SectionEntry[section_count] | section payloads...
//
// Every element gets a (pre, post, level, symbol) label — XISS/R-style
// region encoding: `a` is an ancestor of `d` iff pre(a) < pre(d) and
// post(a) > post(d); `a` is the parent iff additionally
// level(a) + 1 == level(d). `pre` doubles as the element's streaming
// NodeId (pre-order, first element = 1), so indexed results are directly
// comparable with the streaming machines' match sets.
//
// Payloads are column-ordered arrays (one section per column) so an
// IndexReader can expose zero-copy views straight into the mapping. All
// section offsets are 8-byte aligned (mmap'd columns are dereferenced in
// place; unaligned loads would be UB). Integers are host-endian: the index
// is a same-machine cache, not an interchange format, and the header magic
// + version gate refuse anything else.
//
// Validation contract: IndexReader::Open checks magic, version, the CRC of
// the section table, each section's payload CRC, and the structural sanity
// of every cross-reference (postings ranges, blob offsets, label ranges)
// before returning — a corrupt or truncated file fails closed with a
// Status, never a crash (tests/index_reader_corruption_test.cc).

#ifndef TWIGM_INDEX_INDEX_FORMAT_H_
#define TWIGM_INDEX_INDEX_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace twigm::index {

/// First bytes of every index file. The trailing '1' is the major layout
/// generation; incompatible layouts bump the magic, compatible additions
/// bump kFormatVersion.
inline constexpr char kMagic[8] = {'T', 'W', 'G', 'M', 'I', 'D', 'X', '1'};

inline constexpr uint32_t kFormatVersion = 1;

/// Section payload alignment within the file.
inline constexpr size_t kSectionAlignment = 8;

/// Hard cap on the section table (fail-closed bound for corrupt counts).
inline constexpr uint32_t kMaxSections = 64;

enum class SectionId : uint32_t {
  /// xml::TagInterner::Serialize bytes: the dense SymbolId dictionary
  /// shared by element tags and attribute names.
  kDictionary = 1,
  /// uint32_t[element_count]: post-order label, indexed by pre - 1.
  kPost = 2,
  /// uint32_t[element_count]: depth (root = 1), indexed by pre - 1.
  kLevel = 3,
  /// uint32_t[element_count]: tag SymbolId, indexed by pre - 1.
  kSymbol = 4,
  /// uint64_t[element_count]: byte offset of the element's '<' in the
  /// canonical (UTF-8) stream, indexed by pre - 1.
  kByteOffset = 5,
  /// PostingsRange[symbol_count]: per-symbol slice of kPostingsData.
  kPostingsIndex = 6,
  /// uint32_t[]: pre ids, ascending within each symbol's slice.
  kPostingsData = 7,
  /// TextEntry[]: direct-text facts, strictly ascending by pre. Elements
  /// without an entry have empty direct text.
  kTextIndex = 8,
  /// Concatenated direct-text bytes referenced by kTextIndex.
  kTextBlob = 9,
  /// AttrEntry[]: attribute facts, non-decreasing by pre (one entry per
  /// attribute, in document order).
  kAttrIndex = 10,
  /// Concatenated attribute-value bytes referenced by kAttrIndex.
  kAttrBlob = 11,
};

/// Number of distinct sections a version-1 file carries.
inline constexpr uint32_t kSectionCount = 11;

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t element_count;
  uint64_t symbol_count;
  /// Canonical bytes ingested to build the index (for build-GB/s stats and
  /// size ratios; not needed for evaluation).
  uint64_t document_bytes;
  /// CRC-32 of the SectionEntry table that follows the header.
  uint32_t table_crc32;
  uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 48, "FileHeader layout is part of the format");

struct SectionEntry {
  uint32_t id;       // SectionId
  uint32_t crc32;    // CRC-32 of the payload bytes
  uint64_t offset;   // from file start; multiple of kSectionAlignment
  uint64_t size;     // payload bytes (excluding padding)
};
static_assert(sizeof(SectionEntry) == 24,
              "SectionEntry layout is part of the format");

/// Slice of kPostingsData owned by one symbol, in elements (not bytes).
struct PostingsRange {
  uint64_t begin;
  uint64_t count;
};
static_assert(sizeof(PostingsRange) == 16);

struct TextEntry {
  uint32_t pre;
  uint32_t length;
  uint64_t offset;  // into kTextBlob
};
static_assert(sizeof(TextEntry) == 16);

struct AttrEntry {
  uint32_t pre;
  uint32_t name_symbol;
  uint64_t offset;  // into kAttrBlob
  uint32_t length;
  uint32_t reserved;
};
static_assert(sizeof(AttrEntry) == 24);

/// CRC-32 (IEEE, reflected) over `size` bytes. `seed` chains partial
/// computations: pass the previous return value to continue.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace twigm::index

#endif  // TWIGM_INDEX_INDEX_FORMAT_H_
