// IndexBuilder — one streaming pass over an XML document that persists a
// structural index (DESIGN.md §15).
//
// The builder wires a SaxParser through the standard ByteSource input API
// (Consume/Pump; chunks may split anywhere) and, per element, records the
// (pre, post, level, symbol) label, the byte offset of its start tag, its
// direct text (concatenation of character data immediately inside it, the
// value value-predicates compare against), and its attributes. Tag names
// AND attribute names share the parser's TagInterner, whose dense
// SymbolIds become the on-disk dictionary verbatim — loading the index
// back yields the same symbol for every name (see
// xml::TagInterner::Serialize).
//
// After the last chunk, Serialize/WriteFile emit the single-file format of
// index_format.h: versioned header, checksummed section table,
// column-ordered label arrays, and per-symbol postings lists sorted by
// pre-order.
//
//   IndexBuilder builder;
//   TWIGM_RETURN_IF_ERROR(builder.Pump(&source));
//   TWIGM_RETURN_IF_ERROR(builder.WriteFile("corpus.twgmidx"));

#ifndef TWIGM_INDEX_INDEX_BUILDER_H_
#define TWIGM_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/index_format.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::index {

class IndexBuilder {
 public:
  explicit IndexBuilder(xml::SaxParserOptions sax = xml::SaxParserOptions());
  ~IndexBuilder();  // out of line: Handler is incomplete here
  IndexBuilder(const IndexBuilder&) = delete;
  IndexBuilder& operator=(const IndexBuilder&) = delete;

  /// Ingests one chunk of the document (chunk.last declares end of input).
  /// Errors (malformed XML, element-count overflow) are sticky.
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Serializes the index image. Requires a completed document (a last
  /// chunk was consumed without error).
  Status Serialize(std::string* out) const;

  /// Serialize + write to `path` (atomic enough for our purposes: written
  /// to the final name in one stream; callers wanting crash-safety should
  /// write to a temp name and rename).
  Status WriteFile(const std::string& path) const;

  /// Elements labeled so far.
  uint64_t element_count() const { return static_cast<uint64_t>(post_.size()); }
  /// Distinct names interned so far (tags + attribute names).
  uint64_t symbol_count() const;
  /// Canonical bytes ingested so far.
  uint64_t document_bytes() const;
  /// True once the last chunk was consumed successfully.
  bool finished() const { return finished_; }

 private:
  class Handler;

  void OnStart(const xml::TagToken& tag,
               const std::vector<xml::Attribute>& attrs);
  void OnEnd();
  void OnText(std::string_view text);

  std::unique_ptr<Handler> handler_;
  std::unique_ptr<xml::SaxParser> parser_;
  uint64_t construct_offset_ = 0;  // parser-stamped offset of each construct
  Status error_;                   // sticky
  bool finished_ = false;

  // Label columns, indexed by pre - 1.
  std::vector<uint32_t> post_;
  std::vector<uint32_t> level_;
  std::vector<uint32_t> symbol_;
  std::vector<uint64_t> offset_;

  uint32_t post_counter_ = 0;

  // Open-element stack: pre ids plus each element's direct-text
  // accumulator (pooled by depth; text may interleave with children).
  struct OpenElement {
    uint32_t pre = 0;
    size_t depth = 0;  // index into text_pool_
  };
  std::vector<OpenElement> open_;
  std::vector<std::string> text_pool_;

  // Fact sections (text entries collected at end-tag time are in post
  // order; Serialize sorts them by pre).
  std::vector<TextEntry> text_entries_;
  std::string text_blob_;
  std::vector<AttrEntry> attr_entries_;
  std::string attr_blob_;
};

}  // namespace twigm::index

#endif  // TWIGM_INDEX_INDEX_BUILDER_H_
