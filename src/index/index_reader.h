// IndexReader — zero-copy, validated view over a persistent structural
// index file (index_format.h, DESIGN.md §15).
//
// Open() memory-maps the file read-only and validates it completely before
// returning: magic, version, checksummed section table, per-section payload
// CRCs, and every structural cross-reference (column sizes vs the header's
// element count, postings ranges and pre ids, text/attr blob offsets,
// label ranges, dictionary round-trip). A truncated, corrupt, or
// wrong-version file yields a descriptive non-OK Status — never a crash and
// never a reader that can read out of bounds later. After Open succeeds,
// every accessor is a pointer into the mapping (columns, postings, blobs);
// nothing is copied except the tag dictionary, which is rebuilt into a
// TagInterner so query labels resolve to the same dense SymbolIds the
// builder assigned.

#ifndef TWIGM_INDEX_INDEX_READER_H_
#define TWIGM_INDEX_INDEX_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "index/index_format.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"

namespace twigm::index {

class IndexReader {
 public:
  /// Maps `path` and validates it (see file comment). The mapping lives for
  /// the reader's lifetime.
  static Result<std::unique_ptr<IndexReader>> Open(const std::string& path);

  /// Validates an in-memory image (takes ownership of the bytes). Same
  /// checks as Open; used by tests to exercise corruption handling without
  /// touching the filesystem.
  static Result<std::unique_ptr<IndexReader>> OpenBytes(std::string bytes);

  IndexReader(const IndexReader&) = delete;
  IndexReader& operator=(const IndexReader&) = delete;
  ~IndexReader();

  uint64_t element_count() const { return elements_; }
  uint64_t symbol_count() const { return symbols_; }
  uint64_t document_bytes() const { return document_bytes_; }
  /// Total bytes of the backing file / image.
  uint64_t file_bytes() const { return size_; }

  // --- label columns, indexed by pre - 1 (pre in [1, element_count]) ----
  const uint32_t* post() const { return post_; }
  const uint32_t* level() const { return level_; }
  const uint32_t* symbol() const { return symbol_; }
  const uint64_t* byte_offset() const { return offset_; }

  /// XISS/R containment: is `a` a proper ancestor of `d`?
  bool IsAncestor(uint32_t a, uint32_t d) const {
    return a < d && post_[a - 1] > post_[d - 1];
  }

  struct U32Span {
    const uint32_t* data = nullptr;
    size_t size = 0;
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + size; }
  };

  /// Pre ids of all elements whose tag is `sym`, ascending. Empty for
  /// symbols never used as an element tag (e.g. attribute names).
  U32Span postings(xml::SymbolId sym) const {
    if (sym >= symbols_) return U32Span{};
    const PostingsRange& range = postings_index_[sym];
    return U32Span{postings_data_ + range.begin,
                   static_cast<size_t>(range.count)};
  }

  /// The element's direct text (concatenation of character data
  /// immediately inside it); empty when it had none. O(log #text-entries).
  std::string_view DirectText(uint32_t pre) const;

  /// One stored attribute.
  struct AttrFact {
    xml::SymbolId name_symbol = xml::kNoSymbol;
    std::string_view value;
  };

  /// Attributes of element `pre` in document order, as a [begin, end)
  /// index range for use with attr_at(). O(log #attr-entries).
  void AttrRange(uint32_t pre, size_t* begin, size_t* end) const;

  // Raw fact arrays, for callers that sweep elements in ascending pre
  // order and keep their own monotone cursor instead of binary-searching
  // per element (IndexedEvaluator's candidate filter).
  const TextEntry* text_index() const { return text_index_; }
  size_t text_entry_count() const { return text_entries_; }
  std::string_view text_at(const TextEntry& entry) const {
    return std::string_view(text_blob_ + entry.offset, entry.length);
  }
  const AttrEntry* attr_index() const { return attr_index_; }
  size_t attr_entry_count() const { return attr_entries_; }
  AttrFact attr_at(size_t i) const {
    const AttrEntry& e = attr_index_[i];
    return AttrFact{e.name_symbol,
                    std::string_view(attr_blob_ + e.offset, e.length)};
  }

  /// The shared tag/attribute-name dictionary, rebuilt from the file.
  const xml::TagInterner& dictionary() const { return dictionary_; }
  /// Symbol of `name`, or xml::kNoSymbol if the corpus never saw it.
  xml::SymbolId FindSymbol(std::string_view name) const {
    return dictionary_.Find(name);
  }

 private:
  IndexReader() = default;

  /// Points the typed views at `data_` and runs full validation.
  Status Attach();

  // Backing storage: exactly one of mapping / owned bytes.
  const char* data_ = nullptr;
  uint64_t size_ = 0;
  void* mapping_ = nullptr;  // munmap'd when non-null
  std::string owned_;        // OpenBytes keeps the image here

  uint64_t elements_ = 0;
  uint64_t symbols_ = 0;
  uint64_t document_bytes_ = 0;

  const uint32_t* post_ = nullptr;
  const uint32_t* level_ = nullptr;
  const uint32_t* symbol_ = nullptr;
  const uint64_t* offset_ = nullptr;
  const PostingsRange* postings_index_ = nullptr;
  const uint32_t* postings_data_ = nullptr;
  const TextEntry* text_index_ = nullptr;
  size_t text_entries_ = 0;
  const char* text_blob_ = nullptr;
  const AttrEntry* attr_index_ = nullptr;
  size_t attr_entries_ = 0;
  const char* attr_blob_ = nullptr;

  xml::TagInterner dictionary_;
};

}  // namespace twigm::index

#endif  // TWIGM_INDEX_INDEX_READER_H_
