#include "index/indexed_evaluator.h"

#include <algorithm>
#include <utility>

#include "core/value_test.h"

namespace twigm::index {

using xpath::Axis;
using xpath::QueryNode;

Result<std::unique_ptr<IndexedEvaluator>> IndexedEvaluator::Create(
    std::string_view query, const IndexReader* reader) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  if (!tree.ok()) return tree.status();

  std::unique_ptr<IndexedEvaluator> eval(new IndexedEvaluator());
  eval->reader_ = reader;
  eval->query_ = std::move(tree).value();
  if (eval->query_.sol()->is_attribute) {
    return Status::NotSupported(
        "an attribute cannot be the return node of a query");
  }

  const std::vector<const QueryNode*> nodes = eval->query_.NodesPreOrder();
  eval->plans_.resize(nodes.size());
  eval->sat_.resize(nodes.size());
  for (const QueryNode* node : nodes) {
    NodePlan& plan = eval->plans_[static_cast<size_t>(node->index)];
    plan.node = node;
    plan.wildcard = node->is_wildcard;
    if (!node->is_wildcard && !node->is_attribute) {
      plan.symbol = reader->FindSymbol(node->name);
    }
    for (const auto& child : node->children) {
      if (child->is_attribute) {
        AttrTest test;
        test.name_symbol = reader->FindSymbol(child->name);
        test.node = child.get();
        plan.attr_tests.push_back(test);
      } else {
        plan.element_children.push_back(child->index);
        if (child->on_output_path) plan.spine_child = child->index;
      }
    }
    plan.has_local_tests = node->has_value_test || !plan.attr_tests.empty();
  }
  eval->sol_index_ = eval->query_.sol()->index;
  return eval;
}

// The per-candidate filter: the node's own value test plus its attribute
// predicates, evaluated against the stored text/attribute facts — the same
// semantics core::EvalValueTest gives the streaming machines and the DOM
// oracle. Candidates arrive in ascending pre order, so `text_cursor` and
// `attr_cursor` sweep the (pre-sorted) fact arrays monotonically: one
// sequential pass over the facts per candidate list instead of a random
// binary search per candidate.
// hotpath
bool IndexedEvaluator::PassesLocalTests(const NodePlan& plan, uint32_t pre,
                                        size_t* text_cursor,
                                        size_t* attr_cursor) const {
  const QueryNode* node = plan.node;
  if (node->has_value_test) {
    const TextEntry* text_index = reader_->text_index();
    const size_t text_count = reader_->text_entry_count();
    size_t c = *text_cursor;
    while (c < text_count && text_index[c].pre < pre) ++c;
    *text_cursor = c;
    std::string_view text;  // elements without a stored entry have ""
    if (c < text_count && text_index[c].pre == pre) {
      text = reader_->text_at(text_index[c]);
    }
    if (!core::EvalValueTest(text, node->op, node->literal,
                             node->literal_is_number)) {
      return false;
    }
  }
  if (plan.attr_tests.empty()) return true;
  const AttrEntry* attr_index = reader_->attr_index();
  const size_t attr_count = reader_->attr_entry_count();
  size_t begin = *attr_cursor;
  while (begin < attr_count && attr_index[begin].pre < pre) ++begin;
  *attr_cursor = begin;
  size_t end = begin;
  while (end < attr_count && attr_index[end].pre == pre) ++end;
  for (const AttrTest& test : plan.attr_tests) {
    if (test.name_symbol == xml::kNoSymbol) return false;
    bool found = false;
    for (size_t i = begin; i < end; ++i) {
      const IndexReader::AttrFact fact = reader_->attr_at(i);
      if (fact.name_symbol != test.name_symbol) continue;
      if (!test.node->has_value_test ||
          core::EvalValueTest(fact.value, test.node->op, test.node->literal,
                              test.node->literal_is_number)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Seeds a query node's candidate list from the postings (all elements for
// '*'), keeping pre order and applying the local value/attribute tests.
// Nodes without tests take the bulk path: a straight copy of the postings
// slice (or a 1..N fill for '*') instead of a per-element filter loop.
// hotpath
void IndexedEvaluator::BuildCandidates(const NodePlan& plan,
                                       std::vector<uint32_t>* out) {
  out->clear();
  size_t text_cursor = 0;
  size_t attr_cursor = 0;
  if (plan.wildcard) {
    const uint32_t n = static_cast<uint32_t>(reader_->element_count());
    stats_.postings_touched += n;
    if (!plan.has_local_tests) {
      out->resize(n);
      uint32_t* fill = out->data();
      for (uint32_t pre = 1; pre <= n; ++pre) fill[pre - 1] = pre;
      return;
    }
    for (uint32_t pre = 1; pre <= n; ++pre) {
      if (PassesLocalTests(plan, pre, &text_cursor, &attr_cursor)) {
        out->push_back(pre);
      }
    }
    return;
  }
  if (plan.symbol == xml::kNoSymbol) return;  // tag never seen: no matches
  const IndexReader::U32Span postings = reader_->postings(plan.symbol);
  stats_.postings_touched += postings.size;
  if (!plan.has_local_tests) {
    out->assign(postings.begin(), postings.end());
    return;
  }
  for (const uint32_t pre : postings) {
    if (PassesLocalTests(plan, pre, &text_cursor, &attr_cursor)) {
      out->push_back(pre);
    }
  }
}

// Ancestor-side structural semi-join: keeps the elements of `anc` that
// contain at least one element of `desc` (child_axis: that are the parent
// of one). One merge over the two pre-sorted lists; the stack holds the
// open ancestors (nested (pre, post) intervals) at the current document
// position. A descendant marks the innermost open ancestor; because every
// outer entry contains the inner one, the mark propagates outward as
// entries pop. Output stays pre-sorted (subset of `anc` in order).
// hotpath
void IndexedEvaluator::SemiJoinAncestors(const std::vector<uint32_t>& anc,
                                         const std::vector<uint32_t>& desc,
                                         bool child_axis,
                                         std::vector<uint32_t>* out) {
  out->clear();
  if (anc.empty() || desc.empty()) return;
  const uint32_t* post = reader_->post();
  const uint32_t* level = reader_->level();
  matched_.assign(anc.size(), 0);
  stack_.clear();
  uint64_t steps = 0;
  // Pops every stacked ancestor whose subtree closed before document
  // position `post_x`, propagating its mark to the enclosing entry.
  auto pop_closed = [&](uint32_t post_x) {
    while (!stack_.empty()) {
      const uint32_t top = stack_.back();
      if (post[anc[top] - 1] >= post_x) break;  // still contains x
      stack_.pop_back();
      if (!child_axis && matched_[top] != 0 && !stack_.empty()) {
        matched_[stack_.back()] = 1;
      }
    }
  };
  size_t i = 0;
  size_t j = 0;
  while (j < desc.size()) {
    if (stack_.empty()) {
      // No open ancestor: once a stacked entry pops, its subtree lies
      // entirely before the current position, so descendants before the
      // next unseen ancestor cannot mark anything. Gallop over them.
      if (i >= anc.size()) break;
      if (desc[j] < anc[i]) {
        j = static_cast<size_t>(
                std::lower_bound(desc.data() + j, desc.data() + desc.size(),
                                 anc[i]) -
                desc.data());
        if (j >= desc.size()) break;
      }
    }
    const uint32_t d = desc[j];
    ++j;
    // Open all ancestors that start before d (strictly: an element that
    // appears in both lists is not its own ancestor). An ancestor whose
    // whole subtree ends before d (pre_end = post + level - 1, from the
    // counter identity desc_count = level - 1 - pre + post) can never
    // contain d or any later descendant: skip it without a push/pop.
    while (i < anc.size() && anc[i] < d) {
      ++steps;
      const uint32_t a = anc[i];
      ++i;
      if (post[a - 1] + level[a - 1] - 1 < d) continue;  // dead subtree
      pop_closed(post[a - 1]);
      stack_.push_back(static_cast<uint32_t>(i - 1));
    }
    ++steps;
    pop_closed(post[d - 1]);
    if (stack_.empty()) continue;
    const uint32_t top = stack_.back();
    if (child_axis) {
      // Nested stack entries have strictly increasing levels, so only the
      // innermost open ancestor can be the parent.
      if (level[anc[top] - 1] + 1 == level[d - 1]) matched_[top] = 1;
    } else {
      matched_[top] = 1;
    }
  }
  stats_.join_steps += steps;
  // Drain the stack so inner marks reach the outermost entries.
  if (!child_axis) {
    while (!stack_.empty()) {
      const uint32_t top = stack_.back();
      stack_.pop_back();
      if (matched_[top] != 0 && !stack_.empty()) matched_[stack_.back()] = 1;
    }
  }
  for (size_t k = 0; k < anc.size(); ++k) {
    if (matched_[k] != 0) out->push_back(anc[k]);
  }
}

// Descendant-side structural semi-join: keeps the elements of `desc` that
// have at least one ancestor (child_axis: their parent) in `anc`. Same
// merge skeleton as SemiJoinAncestors, but the decision is per descendant,
// so no marks are needed and the output is emitted directly in pre order.
// hotpath
void IndexedEvaluator::SemiJoinDescendants(const std::vector<uint32_t>& anc,
                                           const std::vector<uint32_t>& desc,
                                           bool child_axis,
                                           std::vector<uint32_t>* out) {
  out->clear();
  if (anc.empty() || desc.empty()) return;
  const uint32_t* post = reader_->post();
  const uint32_t* level = reader_->level();
  stack_.clear();  // holds pre ids of open ancestors
  uint64_t steps = 0;
  auto pop_closed = [&](uint32_t post_x) {
    while (!stack_.empty() && post[stack_.back() - 1] < post_x) {
      stack_.pop_back();
    }
  };
  size_t i = 0;
  size_t j = 0;
  while (j < desc.size()) {
    if (stack_.empty()) {
      // No open ancestor: descendants before the next ancestor's subtree
      // cannot match. Gallop over the dead stretch (decisive when a few
      // surviving ancestors face a large descendant list).
      if (i >= anc.size()) break;
      if (desc[j] < anc[i]) {
        j = static_cast<size_t>(
                std::lower_bound(desc.data() + j, desc.data() + desc.size(),
                                 anc[i]) -
                desc.data());
        if (j >= desc.size()) break;
      }
    }
    const uint32_t d = desc[j];
    // Same dead-subtree skip as SemiJoinAncestors: pre_end = post+level-1.
    while (i < anc.size() && anc[i] < d) {
      ++steps;
      const uint32_t a = anc[i];
      ++i;
      if (post[a - 1] + level[a - 1] - 1 < d) continue;
      pop_closed(post[a - 1]);
      stack_.push_back(a);
    }
    ++steps;
    pop_closed(post[d - 1]);
    ++j;
    if (stack_.empty()) continue;
    if (!child_axis) {
      out->push_back(d);
    } else if (level[stack_.back() - 1] + 1 == level[d - 1]) {
      out->push_back(d);
    }
  }
  stats_.join_steps += steps;
}

Status IndexedEvaluator::Evaluate(core::MatchObserver* observer) {
  stats_ = Stats();

  // Bottom-up: children precede parents in reverse pre-order, so each
  // node's predicate lists are final before its own semi-joins run. The
  // spine child is skipped here: the top-down pass walks exactly that edge
  // and discards any anchor without a surviving spine descendant, so the
  // ancestor-side join would duplicate work without changing the result.
  for (size_t idx = plans_.size(); idx-- > 0;) {
    const NodePlan& plan = plans_[idx];
    if (plan.node->is_attribute) continue;  // folded into the parent's filter
    BuildCandidates(plan, &sat_[idx]);
    // Most selective predicate first: each join's cost is O(|anc| + |desc|)
    // and its output is a subset of anc, so shrinking anc early makes every
    // later merge cheaper (the predicates commute — it's a conjunction).
    child_order_.clear();
    for (const int child : plan.element_children) {
      if (child == plan.spine_child) continue;  // re-checked top-down
      child_order_.push_back(child);
    }
    std::sort(child_order_.begin(), child_order_.end(),
              [this](int a, int b) {
                return sat_[static_cast<size_t>(a)].size() <
                       sat_[static_cast<size_t>(b)].size();
              });
    for (const int child : child_order_) {
      if (sat_[idx].empty()) break;
      const bool child_axis =
          plans_[static_cast<size_t>(child)].node->axis == Axis::kChild;
      SemiJoinAncestors(sat_[idx], sat_[static_cast<size_t>(child)],
                        child_axis, &join_out_);
      sat_[idx].swap(join_out_);
    }
  }

  // Top-down along the output path. A leading '/' anchors the first step
  // to the document root (level 1); '//' admits any depth.
  cur_.clear();
  const NodePlan& root_plan = plans_[0];
  const uint32_t* level = reader_->level();
  for (const uint32_t pre : sat_[0]) {
    if (root_plan.node->axis != Axis::kChild || level[pre - 1] == 1) {
      cur_.push_back(pre);
    }
  }
  for (int spine = root_plan.spine_child; spine != -1;
       spine = plans_[static_cast<size_t>(spine)].spine_child) {
    if (cur_.empty()) break;
    const NodePlan& plan = plans_[static_cast<size_t>(spine)];
    SemiJoinDescendants(cur_, sat_[static_cast<size_t>(spine)],
                        plan.node->axis == Axis::kChild, &join_out_);
    cur_.swap(join_out_);
  }

  const uint64_t* offsets = reader_->byte_offset();
  for (const uint32_t pre : cur_) {
    core::MatchInfo match;
    match.id = pre;
    match.byte_offset = offsets[pre - 1];
    match.query_node = sol_index_;
    observer->OnResult(match);
  }
  stats_.results = cur_.size();
  return Status::Ok();
}

}  // namespace twigm::index
