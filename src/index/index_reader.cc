#include "index/index_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace twigm::index {

namespace {

Status Corrupt(const std::string& what) {
  return Status::ParseError("index file rejected: " + what);
}

}  // namespace

IndexReader::~IndexReader() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, static_cast<size_t>(size_));
  }
}

Result<std::unique_ptr<IndexReader>> IndexReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open index file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat index file: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  std::unique_ptr<IndexReader> reader(new IndexReader());
  if (size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      // Fall back to a heap copy (e.g. filesystems without mmap support).
      reader->owned_.resize(static_cast<size_t>(size));
      ssize_t got = ::pread(fd, reader->owned_.data(),
                            static_cast<size_t>(size), 0);
      if (got < 0 || static_cast<uint64_t>(got) != size) {
        ::close(fd);
        return Status::InvalidArgument("cannot read index file: " + path);
      }
      reader->data_ = reader->owned_.data();
    } else {
      reader->mapping_ = map;
      reader->data_ = static_cast<const char*>(map);
    }
  }
  ::close(fd);
  reader->size_ = size;
  Status s = reader->Attach();
  if (!s.ok()) return s;
  return reader;
}

Result<std::unique_ptr<IndexReader>> IndexReader::OpenBytes(
    std::string bytes) {
  std::unique_ptr<IndexReader> reader(new IndexReader());
  reader->owned_ = std::move(bytes);
  reader->data_ = reader->owned_.data();
  reader->size_ = reader->owned_.size();
  Status s = reader->Attach();
  if (!s.ok()) return s;
  return reader;
}

Status IndexReader::Attach() {
  // ---- header ---------------------------------------------------------
  if (size_ < sizeof(FileHeader)) {
    return Corrupt("truncated before the header");
  }
  FileHeader header;
  std::memcpy(&header, data_, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a twigm structural index)");
  }
  if (header.version != kFormatVersion) {
    return Corrupt("unsupported format version " +
                   std::to_string(header.version) + " (this build reads " +
                   std::to_string(kFormatVersion) + ")");
  }
  if (header.section_count != kSectionCount ||
      header.section_count > kMaxSections) {
    return Corrupt("unexpected section count " +
                   std::to_string(header.section_count));
  }
  elements_ = header.element_count;
  symbols_ = header.symbol_count;
  document_bytes_ = header.document_bytes;
  // A real file stores several bytes per element/symbol, so counts beyond
  // the file size are corrupt — and rejecting them here keeps the
  // column-size arithmetic below safely away from uint64 overflow.
  if (elements_ > size_ || symbols_ > size_) {
    return Corrupt("element/symbol count exceeds file size");
  }

  // ---- section table --------------------------------------------------
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionEntry);
  if (size_ < sizeof(FileHeader) + table_bytes) {
    return Corrupt("truncated inside the section table");
  }
  const char* table_start = data_ + sizeof(FileHeader);
  if (Crc32(table_start, table_bytes) != header.table_crc32) {
    return Corrupt("section table checksum mismatch");
  }

  // ---- sections: bounds, alignment, payload CRCs ----------------------
  const char* sections[kMaxSections] = {};
  uint64_t sizes[kMaxSections] = {};
  bool seen[kMaxSections] = {};
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, table_start + i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.id == 0 || entry.id > kSectionCount) {
      return Corrupt("unknown section id " + std::to_string(entry.id));
    }
    if (seen[entry.id]) {
      return Corrupt("duplicate section id " + std::to_string(entry.id));
    }
    seen[entry.id] = true;
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt("section " + std::to_string(entry.id) +
                     " is misaligned");
    }
    if (entry.offset > size_ || entry.size > size_ - entry.offset) {
      return Corrupt("section " + std::to_string(entry.id) +
                     " extends past end of file");
    }
    if (Crc32(data_ + entry.offset, entry.size) != entry.crc32) {
      return Corrupt("section " + std::to_string(entry.id) +
                     " payload checksum mismatch");
    }
    sections[entry.id] = data_ + entry.offset;
    sizes[entry.id] = entry.size;
  }
  for (uint32_t id = 1; id <= kSectionCount; ++id) {
    if (!seen[id]) return Corrupt("missing section id " + std::to_string(id));
  }

  auto section = [&](SectionId id) {
    return sections[static_cast<uint32_t>(id)];
  };
  auto section_size = [&](SectionId id) {
    return sizes[static_cast<uint32_t>(id)];
  };

  // ---- column shapes --------------------------------------------------
  auto expect_size = [&](SectionId id, uint64_t want, const char* what) {
    if (section_size(id) != want) {
      return Corrupt(std::string(what) + " column size " +
                     std::to_string(section_size(id)) +
                     " does not match header (want " + std::to_string(want) +
                     ")");
    }
    return Status::Ok();
  };
  TWIGM_RETURN_IF_ERROR(
      expect_size(SectionId::kPost, elements_ * sizeof(uint32_t), "post"));
  TWIGM_RETURN_IF_ERROR(
      expect_size(SectionId::kLevel, elements_ * sizeof(uint32_t), "level"));
  TWIGM_RETURN_IF_ERROR(
      expect_size(SectionId::kSymbol, elements_ * sizeof(uint32_t), "symbol"));
  TWIGM_RETURN_IF_ERROR(expect_size(SectionId::kByteOffset,
                                    elements_ * sizeof(uint64_t),
                                    "byte-offset"));
  TWIGM_RETURN_IF_ERROR(expect_size(SectionId::kPostingsIndex,
                                    symbols_ * sizeof(PostingsRange),
                                    "postings-index"));
  if (section_size(SectionId::kPostingsData) % sizeof(uint32_t) != 0 ||
      section_size(SectionId::kTextIndex) % sizeof(TextEntry) != 0 ||
      section_size(SectionId::kAttrIndex) % sizeof(AttrEntry) != 0) {
    return Corrupt("section size not a multiple of its entry size");
  }

  post_ = reinterpret_cast<const uint32_t*>(section(SectionId::kPost));
  level_ = reinterpret_cast<const uint32_t*>(section(SectionId::kLevel));
  symbol_ = reinterpret_cast<const uint32_t*>(section(SectionId::kSymbol));
  offset_ =
      reinterpret_cast<const uint64_t*>(section(SectionId::kByteOffset));
  postings_index_ = reinterpret_cast<const PostingsRange*>(
      section(SectionId::kPostingsIndex));
  postings_data_ =
      reinterpret_cast<const uint32_t*>(section(SectionId::kPostingsData));
  const uint64_t postings_total =
      section_size(SectionId::kPostingsData) / sizeof(uint32_t);
  text_index_ =
      reinterpret_cast<const TextEntry*>(section(SectionId::kTextIndex));
  text_entries_ = section_size(SectionId::kTextIndex) / sizeof(TextEntry);
  text_blob_ = section(SectionId::kTextBlob);
  const uint64_t text_blob_size = section_size(SectionId::kTextBlob);
  attr_index_ =
      reinterpret_cast<const AttrEntry*>(section(SectionId::kAttrIndex));
  attr_entries_ = section_size(SectionId::kAttrIndex) / sizeof(AttrEntry);
  attr_blob_ = section(SectionId::kAttrBlob);
  const uint64_t attr_blob_size = section_size(SectionId::kAttrBlob);

  // ---- label sanity ---------------------------------------------------
  for (uint64_t i = 0; i < elements_; ++i) {
    if (post_[i] == 0 || post_[i] > elements_) {
      return Corrupt("post label out of range at pre " + std::to_string(i + 1));
    }
    if (level_[i] == 0) {
      return Corrupt("zero level at pre " + std::to_string(i + 1));
    }
    if (symbol_[i] >= symbols_) {
      return Corrupt("tag symbol out of range at pre " +
                     std::to_string(i + 1));
    }
  }

  // ---- postings sanity ------------------------------------------------
  if (postings_total != elements_) {
    return Corrupt("postings data holds " + std::to_string(postings_total) +
                   " ids for " + std::to_string(elements_) + " elements");
  }
  for (uint64_t s = 0; s < symbols_; ++s) {
    const PostingsRange& range = postings_index_[s];
    if (range.begin > postings_total ||
        range.count > postings_total - range.begin) {
      return Corrupt("postings range out of bounds for symbol " +
                     std::to_string(s));
    }
    uint32_t prev = 0;
    for (uint64_t k = range.begin; k < range.begin + range.count; ++k) {
      const uint32_t pre = postings_data_[k];
      if (pre == 0 || pre > elements_) {
        return Corrupt("postings pre id out of range for symbol " +
                       std::to_string(s));
      }
      if (pre <= prev) {
        return Corrupt("postings not strictly ascending for symbol " +
                       std::to_string(s));
      }
      if (symbol_[pre - 1] != s) {
        return Corrupt("postings entry disagrees with the symbol column");
      }
      prev = pre;
    }
  }

  // ---- fact sanity ----------------------------------------------------
  uint32_t prev_pre = 0;
  for (size_t i = 0; i < text_entries_; ++i) {
    const TextEntry& e = text_index_[i];
    if (e.pre == 0 || e.pre > elements_) {
      return Corrupt("text entry pre id out of range");
    }
    if (e.pre <= prev_pre) {
      return Corrupt("text entries not strictly ascending by pre");
    }
    if (e.offset > text_blob_size || e.length > text_blob_size - e.offset) {
      return Corrupt("text entry extends past the text blob");
    }
    prev_pre = e.pre;
  }
  prev_pre = 0;
  for (size_t i = 0; i < attr_entries_; ++i) {
    const AttrEntry& e = attr_index_[i];
    if (e.pre == 0 || e.pre > elements_) {
      return Corrupt("attribute entry pre id out of range");
    }
    if (e.pre < prev_pre) {
      return Corrupt("attribute entries not sorted by pre");
    }
    if (e.name_symbol >= symbols_) {
      return Corrupt("attribute name symbol out of range");
    }
    if (e.offset > attr_blob_size || e.length > attr_blob_size - e.offset) {
      return Corrupt("attribute entry extends past the attribute blob");
    }
    prev_pre = e.pre;
  }

  // ---- dictionary -----------------------------------------------------
  Status dict = dictionary_.Load(std::string_view(
      section(SectionId::kDictionary), section_size(SectionId::kDictionary)));
  if (!dict.ok()) {
    return Corrupt("dictionary: " + dict.ToString());
  }
  if (dictionary_.size() != symbols_) {
    return Corrupt("dictionary holds " + std::to_string(dictionary_.size()) +
                   " names but header claims " + std::to_string(symbols_));
  }
  return Status::Ok();
}

std::string_view IndexReader::DirectText(uint32_t pre) const {
  const TextEntry* begin = text_index_;
  const TextEntry* end = text_index_ + text_entries_;
  const TextEntry* it = std::lower_bound(
      begin, end, pre,
      [](const TextEntry& e, uint32_t p) { return e.pre < p; });
  if (it == end || it->pre != pre) return std::string_view();
  return std::string_view(text_blob_ + it->offset, it->length);
}

void IndexReader::AttrRange(uint32_t pre, size_t* begin, size_t* end) const {
  const AttrEntry* first = attr_index_;
  const AttrEntry* last = attr_index_ + attr_entries_;
  const AttrEntry* lo = std::lower_bound(
      first, last, pre,
      [](const AttrEntry& e, uint32_t p) { return e.pre < p; });
  const AttrEntry* hi = lo;
  while (hi != last && hi->pre == pre) ++hi;
  *begin = static_cast<size_t>(lo - first);
  *end = static_cast<size_t>(hi - first);
}

}  // namespace twigm::index
