// BranchM — streaming machine for XP{/,[]} (section 3.2): child axes and
// predicates, no descendant axis, no wildcards.
//
// With only child axes, a machine node matches elements at exactly one
// document level, and at any moment at most one such element is active; so
// each machine node keeps a single state (L, B, C) — the matched level
// (L = -1 when empty), the branch-match boolean array, and the candidate
// set — instead of a stack. Value and attribute tests are handled exactly
// as in TwigM.
//
// After BindInterner(), events dispatch through per-symbol node postings
// (no wildcards exist in this fragment); kNoSymbol tokens fall back to
// byte comparison. State resets are field-wise so candidate/text capacity
// is retained — the steady state per event allocates nothing.

#ifndef TWIGM_CORE_BRANCH_MACHINE_H_
#define TWIGM_CORE_BRANCH_MACHINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/decision_table.h"
#include "core/level_bounds.h"
#include "core/machine_builder.h"
#include "core/machine_stats.h"
#include "core/result_sink.h"
#include "obs/instrumentation.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// The BranchM machine. Only accepts XP{/,[]} queries.
class BranchMachine : public xml::StreamEventSink {
 public:
  /// Fails with NotSupported if `query` uses '//' or '*'.
  static Result<std::unique_ptr<BranchMachine>> Create(
      const xpath::QueryTree& query, MatchObserver* observer);

  BranchMachine(const BranchMachine&) = delete;
  BranchMachine& operator=(const BranchMachine&) = delete;

  // StreamEventSink:
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  /// Resolves node labels to SymbolIds in `interner` and builds the
  /// per-symbol node postings (see TwigMachine::BindInterner).
  void BindInterner(xml::TagInterner* interner);

  /// Clears runtime state and statistics. State capacity is retained.
  void Reset();

  /// Optional: attaches observability (see TwigMachine). Not owned.
  void set_instrumentation(obs::Instrumentation* instr) {
    if (instr != instr_) gap_hist_ = nullptr;
    instr_ = instr;
    if (instr_ != nullptr) {
      instr_->EnsureNodeSlots(graph_.node_count());
      RegisterGapHistogram();
    }
  }

  /// Optional: source of the current stream byte offset (see TwigMachine).
  void set_stream_offset(const uint64_t* offset) { stream_offset_ = offset; }

  /// Optional: anchors the root to an external ancestor stack (see
  /// TwigMachine::set_root_context). Only valid when the anchoring trunk is
  /// child-axis-only, so at most one ancestor level is ever live — the
  /// single-state invariant of BranchM is preserved. Used by src/filter/.
  void set_root_context(const std::vector<int>* levels) {
    root_context_ = levels;
  }

  /// Optional: per-node level windows from static analysis, indexed by
  /// machine-node id (see TwigMachine::set_level_bounds). Empty = no
  /// pruning.
  void set_level_bounds(LevelBounds bounds) { level_bounds_ = std::move(bounds); }

  /// Optional: earliest-query-answering (see TwigMachine::set_decisions).
  void set_decisions(std::shared_ptr<const DecisionTable> table,
                     EarlyDecisionMode mode);

  EarlyDecisionMode decision_mode() const { return decision_mode_; }

  const EngineStats& stats() const { return stats_; }
  const MachineGraph& graph() const { return graph_; }

 private:
  // Per-node state (L, B, C): section 3.2's triple, plus the text buffer
  // for value tests and the certainty state (see TwigMachine::Entry).
  struct NodeState {
    int level = -1;  // -1 == no active match
    uint64_t branch = 0;
    uint64_t implied = 0;
    uint8_t dflags = 0;
    std::vector<xml::NodeId> candidates;
    std::string text;
  };

  // NodeState::dflags bits (same lattice as TwigMachine).
  static constexpr uint8_t kValueSure = 1;
  static constexpr uint8_t kResolved = 2;
  static constexpr uint8_t kCertainOutput = 4;

  BranchMachine(MachineGraph graph, MatchObserver* observer);

  // δs / δe for one machine node.
  void TryStartNode(int node_id, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs);
  void CloseNode(int node_id, int level);

  // Earliest-decision machinery; the BranchM variants act on the single
  // parent state instead of a stack prefix (the parent element is an open
  // ancestor, so its state is exactly the δe propagation target).
  const NodeDecision* DecisionFor(int node_id) const;
  bool StateSatisfiedNow(const MachineNode* v, const NodeState& s) const;
  void ResolveCertain(const MachineNode* v, NodeState& s);
  void FlushCertainCandidates(NodeState& s);
  void EmitEarly(xml::NodeId id);
  void MarkProved(xml::NodeId id);
  void RecordGap(xml::NodeId id);
  void BumpProvedEpoch();
  void RegisterGapHistogram();
  void RebuildSymToElem();

  uint64_t offset() const {
    return stream_offset_ != nullptr ? *stream_offset_ : 0;
  }

  MachineGraph graph_;
  MatchObserver* sink_;
  obs::Instrumentation* instr_ = nullptr;
  const uint64_t* stream_offset_ = nullptr;
  const std::vector<int>* root_context_ = nullptr;
  LevelBounds level_bounds_;
  EngineStats stats_;
  std::vector<NodeState> states_;  // indexed by machine-node id

  // Symbol dispatch: postings_[s] lists machine-node ids with symbol s in
  // pre-order (δe walks them reversed). Built by BindInterner.
  bool bound_ = false;
  std::vector<std::vector<int>> postings_;

  // Earliest-decision state (see TwigMachine). BranchM has no emission
  // dedup (single states cannot duplicate), so the proof stamps carry
  // their own epoch, bumped at each root close.
  std::shared_ptr<const DecisionTable> decisions_;
  EarlyDecisionMode decision_mode_ = EarlyDecisionMode::kOff;
  xml::TagInterner* interner_ = nullptr;
  std::vector<int32_t> sym_to_elem_;
  int32_t cur_elem_ = -1;
  obs::Histogram* gap_hist_ = nullptr;
  std::vector<uint32_t> proved_stamp_;
  std::vector<uint64_t> proved_offset_;
  uint32_t proved_epoch_ = 1;

  uint64_t live_entries_ = 0;
  uint64_t live_candidates_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_BRANCH_MACHINE_H_
