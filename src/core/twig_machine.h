// TwigM — the paper's streaming XPath evaluation machine (sections 3.3, 4).
//
// One stack per machine node. A stack entry is the triple of section 4.1:
//   (level, branch-match array, candidate set)
// and, when the node carries a value test, the element's accumulated direct
// text. The stacks compactly encode every pattern match a candidate
// participates in (n² matches in 2n entries for the Fig. 1 family);
// verification pops one entry to discard a whole group of failed matches and
// unions candidate sets to deduplicate, giving the polynomial bound of
// Theorem 4.4: O((|Q| + R·B)·|Q|·|D|).
//
// Transition functions (Algorithm 1):
//  * δs (startElement(tag, level, id)): every machine node v whose label
//    matches tag (or is '*') and for which some entry e of ρ(v)'s stack
//    satisfies ζ(v) on level − e.level (the root checks `level` directly)
//    pushes <level, <F..F>, ∅>; the return node also adds `id` to the new
//    entry's candidate set. Attribute tests are resolved immediately against
//    the element's attributes.
//  * δe (endElement(tag, level)): every machine node v whose stack-top has
//    this level pops. If the top's branch match is all-T (and its value test
//    passes): the root outputs its candidates; any other node sets bit β(v)
//    in each parent entry satisfying ζ(v) and uploads its candidates there.
//    A top with an F bit is simply discarded — pruning, without enumeration,
//    every pattern match it participated in.
//
// Hot path: after BindInterner() the machine resolves its query labels to
// the parser's SymbolIds once, and per-event dispatch indexes a per-symbol
// postings vector instead of hashing the tag bytes. Stack entries live in
// PooledStacks and candidate sets merge in place, so the steady state per
// event performs zero heap allocations (DESIGN.md §10). Events whose
// TagToken carries kNoSymbol (interning off, or a hand-fed machine) take
// the legacy byte-comparing path and produce identical results.

#ifndef TWIGM_CORE_TWIG_MACHINE_H_
#define TWIGM_CORE_TWIG_MACHINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/decision_table.h"
#include "core/level_bounds.h"
#include "core/machine_builder.h"
#include "core/machine_stats.h"
#include "core/pooled_stack.h"
#include "core/result_sink.h"
#include "obs/instrumentation.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// Tuning options for TwigM.
struct TwigMachineOptions {
  /// When true (default), an element whose attribute tests already failed at
  /// startElement is not pushed at all: its branch match can never become
  /// all-T, so the entry would only be dead weight. Disable to run the
  /// paper's literal push rule (ablation in bench_ablation_adversarial).
  bool prune_static_failures = true;
};

/// The TwigM machine. Feed it modified SAX events (via xml::EventDriver or
/// directly); candidates and results are reported to the MatchObserver
/// incrementally.
class TwigMachine : public xml::StreamEventSink {
 public:
  /// Builds the machine for `query` (section 4.2 construction). `observer`
  /// must outlive the machine; not owned.
  static Result<std::unique_ptr<TwigMachine>> Create(
      const xpath::QueryTree& query, MatchObserver* observer,
      TwigMachineOptions options = TwigMachineOptions());

  TwigMachine(const TwigMachine&) = delete;
  TwigMachine& operator=(const TwigMachine&) = delete;

  // StreamEventSink:
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  /// Resolves every query label to a SymbolId in `interner` (interning on
  /// first sight) and builds the per-symbol postings vectors used for
  /// dispatch. Call once, with the interner of the parser that will feed
  /// this machine, before streaming. `interner` must outlive the machine;
  /// not owned. Events carrying symbols from any other interner would
  /// dispatch incorrectly.
  void BindInterner(xml::TagInterner* interner);

  /// Clears all runtime state (stacks, emitted set) and statistics so the
  /// machine can process another document. Pooled stack capacity and the
  /// interner binding are retained.
  void Reset();

  /// Optional: attaches observability (metrics, per-node stack depth,
  /// trace events, emit-stage timing). Null detaches; not owned.
  void set_instrumentation(obs::Instrumentation* instr) {
    if (instr != instr_) gap_hist_ = nullptr;
    instr_ = instr;
    if (instr_ != nullptr) {
      instr_->EnsureNodeSlots(graph_.node_count());
      RegisterGapHistogram();
    }
  }

  /// Optional: source of the current stream byte offset (owned by the
  /// XPathStreamProcessor, written by the parser before each event). Used
  /// to stamp MatchInfo::byte_offset; null ⇒ offsets are 0.
  void set_stream_offset(const uint64_t* offset) { stream_offset_ = offset; }

  /// Optional: anchors the machine's root to an external ancestor stack
  /// instead of the document root. When set, the root node pushes at level l
  /// iff some level l' in `*levels` satisfies ζ(root) on l − l'. `levels`
  /// must outlive the machine and stay sorted ascending (a stack of open
  /// ancestor levels has this property). Used by the filter subsystem
  /// (src/filter/) to run a predicate tail below a shared trunk; null
  /// restores the default document-root behaviour.
  void set_root_context(const std::vector<int>* levels) {
    root_context_ = levels;
  }

  /// Optional: per-node document-level windows from static analysis
  /// (analysis::ComputeMachineLevelBounds); indexed by machine-node id.
  /// Events outside a node's window skip its push entirely. The windows
  /// must be conservative for the streamed documents (they are, for
  /// documents valid w.r.t. the analyzed DTD). Empty = no pruning.
  void set_level_bounds(LevelBounds bounds) { level_bounds_ = std::move(bounds); }

  /// Optional: earliest-query-answering. `table` carries the static DTD
  /// facts (analysis::CompileDecisionTable; may be null — the dynamic
  /// certainty cascade alone still applies) and `mode` selects how the
  /// machine acts on certainty (see EarlyDecisionMode). Call any time
  /// before streaming; interacts with BindInterner in either order.
  void set_decisions(std::shared_ptr<const DecisionTable> table,
                     EarlyDecisionMode mode);

  EarlyDecisionMode decision_mode() const { return decision_mode_; }
  const DecisionTable* decisions() const { return decisions_.get(); }

  const EngineStats& stats() const { return stats_; }
  const MachineGraph& graph() const { return graph_; }

  /// Total stack slots ever allocated across all machine nodes (pool
  /// high-water mark). Exported as hotpath.pool_entries.
  uint64_t pool_entries() const;

 private:
  // One stack entry: <level, branch match, candidates> (+ text buffer for
  // value-test nodes). `implied`/`dflags` carry the entry's certainty state
  // when early decisions are enabled (zeroed otherwise).
  struct Entry {
    int level = 0;
    uint64_t branch = 0;
    uint64_t implied = 0;  // statically implied branch bits (DTD facts)
    uint8_t dflags = 0;    // kValueSure | kResolved | kCertainOutput
    std::vector<xml::NodeId> candidates;  // sorted ascending
    std::string text;
  };

  // Entry::dflags bits.
  static constexpr uint8_t kValueSure = 1;      // value test certain to pass
  static constexpr uint8_t kResolved = 2;       // certainty already cascaded
  static constexpr uint8_t kCertainOutput = 4;  // a certain root entry is
                                                // reachable: candidates here
                                                // are certain results

  TwigMachine(MachineGraph graph, MatchObserver* observer,
              TwigMachineOptions options);

  void UpdateMemoryStats();

  // δs for one machine node (the push attempt of Algorithm 1).
  void TryStartNode(int node_id, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs);
  // δe for one machine node (pop / verify / propagate).
  void PopNode(int node_id, int level);

  // --- Earliest-decision machinery (DESIGN.md §13) ---------------------
  /// Applies `fn(Entry&)` to every parent-stack entry an entry of `v` at
  /// `top_level` qualifies against — the exact propagation target set of δe
  /// (a prefix for '≥' edges, at most one entry for '=' edges). Shared by
  /// the pop propagation and the early certainty cascade, which is sound
  /// precisely because this set is identical at push time and pop time.
  template <typename Fn>
  void ForEachQualifyingParent(const MachineNode* v, int top_level, Fn&& fn);

  /// Static facts for (node, current start tag); null when unknown.
  const NodeDecision* DecisionFor(int node_id) const;

  /// True when every obligation of `e` is certain *now*: all required
  /// branch bits real or implied, and the value test certain.
  bool EntrySatisfiedNow(const MachineNode* v, const Entry& e) const;

  /// Cascades "e is certainly satisfied" upward: sets the child bit in
  /// every qualifying parent entry (the bits δe would set), recursing when
  /// a parent becomes certain, and marks e kCertainOutput (flushing its
  /// candidates) when a certain root entry is reachable.
  void ResolveCertain(const MachineNode* v, Entry& e);

  /// Candidates of a kCertainOutput entry are certain results: kOn emits
  /// and drops them; kObserve stamps their earliest-proof offset.
  void FlushCertainCandidates(Entry& e);

  /// kOn: emits `id` immediately (MarkEmitted-deduplicated, gap 0).
  void EmitEarly(xml::NodeId id);

  /// kObserve: records the earliest offset at which `id` became certain.
  void MarkProved(xml::NodeId id);

  /// Records the earliest-vs-actual gap for an emission happening now.
  void RecordGap(xml::NodeId id);

  void RegisterGapHistogram();
  void RebuildSymToElem();

  /// Current stream offset, 0 without a source.
  uint64_t offset() const {
    return stream_offset_ != nullptr ? *stream_offset_ : 0;
  }

  MachineGraph graph_;
  MatchObserver* sink_;
  obs::Instrumentation* instr_ = nullptr;
  const uint64_t* stream_offset_ = nullptr;
  const std::vector<int>* root_context_ = nullptr;
  LevelBounds level_bounds_;
  TwigMachineOptions options_;
  EngineStats stats_;

  // Earliest-decision state. sym_to_elem_ maps event SymbolIds to the
  // table's dense DTD element ids (-1 = no facts); cur_elem_ caches the
  // mapping for the start tag being dispatched.
  std::shared_ptr<const DecisionTable> decisions_;
  EarlyDecisionMode decision_mode_ = EarlyDecisionMode::kOff;
  xml::TagInterner* interner_ = nullptr;
  std::vector<int32_t> sym_to_elem_;
  int32_t cur_elem_ = -1;
  obs::Histogram* gap_hist_ = nullptr;

  // stacks_[node->id] is ξ(v).
  std::vector<PooledStack<Entry>> stacks_;

  // Heterogeneous string hashing so event tags (string_view) probe the
  // label index without allocating. Legacy dispatch path, used only for
  // kNoSymbol tokens.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  // Label index: tag -> machine-node ids with that label, in pre-order.
  std::unordered_map<std::string, std::vector<int>, StringHash,
                     std::equal_to<>>
      label_index_;
  std::vector<int> wildcard_nodes_;   // '*' machine-node ids, pre-order
  std::vector<int> value_test_nodes_; // nodes that accumulate text
  // Pre-order list of ids used for δe (processed in reverse: leaves first).
  std::vector<int> preorder_;

  // Symbol dispatch (built by BindInterner). start_postings_[s] holds the
  // label nodes for symbol s in pre-order; end_postings_[s] additionally
  // merges in the wildcard nodes (still pre-order) because δe iterates one
  // list in reverse and child-before-parent must hold across label and
  // wildcard nodes alike. Symbols interned after binding (document tags
  // that are no query label) fall outside both vectors: δs tries only
  // wildcards, δe walks wildcard_nodes_ reversed.
  bool bound_ = false;
  std::vector<std::vector<int>> start_postings_;
  std::vector<std::vector<int>> end_postings_;

  // Already-output results: guards against re-emission when a candidate
  // reached several root entries (recursive data matching the query root).
  // Document node ids are dense pre-order integers, so the guard is an
  // epoch-stamped array indexed by id: emitted iff stamp == current epoch.
  // O(1) per candidate, cleared in O(1) by bumping the epoch (whenever the
  // root stack empties — after that point no live entry can still hold an
  // already-emitted candidate), and its capacity survives Reset() so
  // steady-state passes never allocate here.
  std::vector<uint32_t> emitted_stamp_;
  uint32_t emitted_epoch_ = 1;

  // Earliest-proof offsets (kObserve), epoch-stamped like emitted_stamp_
  // and sharing its epoch: proved iff proved_stamp_[id] == emitted_epoch_.
  std::vector<uint32_t> proved_stamp_;
  std::vector<uint64_t> proved_offset_;

  /// Stamps `id` emitted; returns false when it already was this epoch.
  bool MarkEmitted(xml::NodeId id);
  void ClearEmitted();

  uint64_t live_entries_ = 0;
  uint64_t live_candidates_ = 0;
  uint64_t live_text_bytes_ = 0;
};

/// Merges sorted id vector `src` into sorted `dst` in place (no temporary),
/// dropping duplicates. Exposed for reuse by BranchM and tests. Returns how
/// many ids were added.
size_t UnionSortedIds(const std::vector<xml::NodeId>& src,
                      std::vector<xml::NodeId>* dst);

}  // namespace twigm::core

#endif  // TWIGM_CORE_TWIG_MACHINE_H_
