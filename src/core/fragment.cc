#include "core/fragment.h"

#include "xml/xml_writer.h"

namespace twigm::core {

void FragmentRecorder::AppendToActive(std::string_view text) {
  for (Recording& rec : active_) {
    rec.buffer.append(text);
  }
  buffered_bytes_ += text.size() * active_.size();
  NoteBuffered();
}

void FragmentRecorder::NoteBuffered() {
  if (buffered_bytes_ > peak_buffered_bytes_) {
    peak_buffered_bytes_ = buffered_bytes_;
  }
}

void FragmentRecorder::StartElement(const xml::TagToken& tag, int level,
                                    xml::NodeId id,
                                    const std::vector<xml::Attribute>& attrs) {
  // Let the machine decide candidacy first; OnCandidate lands in
  // `announced_`.
  announced_.clear();
  in_start_ = true;
  machine_->StartElement(tag, level, id, attrs);
  in_start_ = false;

  for (xml::NodeId candidate : announced_) {
    // A machine announces only the current element.
    (void)candidate;
    Recording rec;
    rec.id = id;
    rec.level = level;
    active_.push_back(std::move(rec));
    break;  // one recording per element even if announced twice
  }
  announced_.clear();

  if (!active_.empty()) {
    std::string open;
    open.reserve(tag.text.size() + 2);
    open.push_back('<');
    open.append(tag.text);
    for (const xml::Attribute& a : attrs) {
      open.push_back(' ');
      open.append(a.name);
      open.append("=\"");
      open.append(xml::EscapeAttribute(a.value));
      open.push_back('"');
    }
    open.push_back('>');
    AppendToActive(open);
  }
}

void FragmentRecorder::Text(std::string_view text, int level) {
  machine_->Text(text, level);
  if (!active_.empty()) {
    AppendToActive(xml::EscapeText(text));
  }
}

void FragmentRecorder::EndElement(const xml::TagToken& tag, int level) {
  // Serialize the close tag and finalize any recording rooted here BEFORE
  // the machine runs: if the machine emits this element as a result during
  // the same event (root == return node), the fragment must be complete.
  if (!active_.empty()) {
    std::string close;
    close.reserve(tag.text.size() + 3);
    close.append("</");
    close.append(tag.text);
    close.push_back('>');
    AppendToActive(close);
    if (active_.back().level == level) {
      Recording rec = std::move(active_.back());
      active_.pop_back();
      if (pending_results_.count(rec.id) != 0) {
        pending_results_.erase(rec.id);
        buffered_bytes_ -= rec.buffer.size();
        out_->OnFragment(rec.id, rec.buffer);
      } else {
        completed_.emplace(rec.id, std::move(rec.buffer));
      }
    }
  }
  machine_->EndElement(tag, level);
}

void FragmentRecorder::EndDocument() {
  machine_->EndDocument();
  // Whatever fragments remain belong to candidates that never became
  // results; drop them.
  for (const auto& [id, buffer] : completed_) {
    (void)id;
    buffered_bytes_ -= buffer.size();
  }
  completed_.clear();
  active_.clear();
  pending_results_.clear();
}

void FragmentRecorder::OnCandidate(xml::NodeId id) {
  out_->OnCandidate(id);
  if (in_start_) announced_.push_back(id);
}

void FragmentRecorder::OnResult(const MatchInfo& match) {
  out_->OnResult(match);
  const xml::NodeId id = match.id;
  auto it = completed_.find(id);
  if (it != completed_.end()) {
    buffered_bytes_ -= it->second.size();
    out_->OnFragment(id, it->second);
    completed_.erase(it);
    return;
  }
  // Fragment still recording (eager emission before the subtree closed).
  pending_results_.insert(id);
}

void FragmentRecorder::Reset() {
  announced_.clear();
  active_.clear();
  completed_.clear();
  pending_results_.clear();
  buffered_bytes_ = 0;
  peak_buffered_bytes_ = 0;
  in_start_ = false;
}

}  // namespace twigm::core
