// A stack that never gives memory back: pop() only decrements the live
// count, leaving the slot — and whatever heap blocks its members own
// (candidate vectors, text buffers) — in place for the next push() to
// reuse. After a short warm-up at each stack's high-water mark, pushes and
// pops touch no allocator at all, which is what makes the per-event hot
// path allocation-free (DESIGN.md §10).
//
// push() returns a reference to the (possibly recycled) slot; the caller
// must reset every field it reads later — the slot still holds the previous
// occupant's values.

#ifndef TWIGM_CORE_POOLED_STACK_H_
#define TWIGM_CORE_POOLED_STACK_H_

#include <cstddef>
#include <vector>

namespace twigm::core {

template <typename T>
class PooledStack {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& back() { return slots_[size_ - 1]; }
  const T& back() const { return slots_[size_ - 1]; }

  T& operator[](size_t i) { return slots_[i]; }
  const T& operator[](size_t i) const { return slots_[i]; }

  /// Exposes a (possibly dirty) slot as the new top and returns it. Grows
  /// the pool only when the stack passes its previous high-water mark.
  T& push() {
    if (size_ == slots_.size()) slots_.emplace_back();
    return slots_[size_++];
  }

  /// Retires the top slot into the pool. Its storage stays allocated.
  void pop() { --size_; }

  /// Drops every live entry; the pool keeps its slots and their storage.
  void clear() { size_ = 0; }

  /// High-water mark: slots ever allocated (≥ size()).
  size_t pooled() const { return slots_.size(); }

  // Iterates live entries bottom (oldest) to top.
  T* begin() { return slots_.data(); }
  T* end() { return slots_.data() + size_; }
  const T* begin() const { return slots_.data(); }
  const T* end() const { return slots_.data() + size_; }

 private:
  std::vector<T> slots_;  // [0, size_) live, [size_, slots_.size()) pooled
  size_t size_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_POOLED_STACK_H_
