// Multi-query evaluation: many XPath queries over a single SAX pass.
//
// The paper's related work (section 6) discusses filtering systems
// (YFilter, XTrie, XPush) that match large query sets against one stream.
// This module provides that workload shape on top of the TwigM machinery:
// each query is compiled to its own machine (PathM/BranchM/TwigM by
// structure) and every modified-SAX event fans out to all of them, so the
// document is parsed exactly once. Results carry the query index.
//
// This is deliberately the simple product construction — per-event cost is
// the sum of the individual machines' costs. For large query sets, use the
// shared-prefix filter engine (src/filter/filter_engine.h): it merges common
// location-step prefixes into one trie so per-event cost tracks the number
// of *distinct* steps, and it takes the same MultiQueryResultSink.
// bench_filter_scalability measures both against each other.

#ifndef TWIGM_CORE_MULTI_QUERY_H_
#define TWIGM_CORE_MULTI_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/decision_table.h"
#include "core/evaluator.h"
#include "core/level_bounds.h"
#include "core/machine_stats.h"
#include "core/result_sink.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::core {

/// Receives results tagged with the index of the matching query. The match
/// carries the result node id plus byte offset / query node (MatchInfo),
/// mirroring the single-query MatchObserver.
class MultiQueryResultSink {
 public:
  virtual ~MultiQueryResultSink() = default;
  virtual void OnResult(size_t query_index, const MatchInfo& match) = 0;
};

/// Collects (query, id) pairs (test/demo convenience).
class VectorMultiQuerySink : public MultiQueryResultSink {
 public:
  struct Item {
    size_t query_index;
    xml::NodeId id;
  };

  void OnResult(size_t query_index, const MatchInfo& match) override {
    items_.push_back(Item{query_index, match.id});
  }

  const std::vector<Item>& items() const { return items_; }

 private:
  std::vector<Item> items_;
};

/// A set of compiled queries bound to one input stream.
class MultiQueryProcessor {
 public:
  /// Compiles every query; fails on the first bad one (the error message
  /// names its index). `sink` must outlive the processor; not owned.
  static Result<std::unique_ptr<MultiQueryProcessor>> Create(
      const std::vector<std::string>& queries, MultiQueryResultSink* sink,
      EvaluatorOptions options = EvaluatorOptions());

  MultiQueryProcessor(const MultiQueryProcessor&) = delete;
  MultiQueryProcessor& operator=(const MultiQueryProcessor&) = delete;

  /// Consumes one chunk of the document (chunk.last declares end of
  /// input); results fan out to the sink tagged by query index, as soon as
  /// each machine proves them.
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Clears all machines and the parser for a new document.
  void Reset();

  size_t query_count() const { return entries_.size(); }
  EngineKind engine_kind(size_t query_index) const {
    return entries_[query_index].kind;
  }
  const EngineStats& stats(size_t query_index) const;

  /// Machine graph of `query_index`'s compiled machine (for static
  /// analysis over the running machines).
  const MachineGraph& graph(size_t query_index) const;

  /// Applies analyzer level windows (indexed by machine-node id, matching
  /// graph(query_index)) to that query's machine; see
  /// TwigMachine::set_level_bounds for the conservativeness contract.
  void set_level_bounds(size_t query_index, LevelBounds bounds);

  /// Installs an earliest-decision table on `query_index`'s machine; it
  /// runs in EvaluatorOptions::enable_early_decisions mode (see
  /// XPathStreamProcessor::InstallDecisionTable).
  void set_decision_table(size_t query_index,
                          std::shared_ptr<const DecisionTable> table);

  /// Sum of results across queries so far.
  uint64_t total_results() const { return total_results_; }

 private:
  // Tags one machine's results with its query index.
  class TaggingSink : public MatchObserver {
   public:
    TaggingSink(MultiQueryProcessor* owner, size_t index)
        : owner_(owner), index_(index) {}
    void OnResult(const MatchInfo& match) override {
      ++owner_->total_results_;
      owner_->sink_->OnResult(index_, match);
    }

   private:
    MultiQueryProcessor* owner_;
    size_t index_;
  };

  // Forwards each event to every machine.
  class FanOut : public xml::StreamEventSink {
   public:
    explicit FanOut(MultiQueryProcessor* owner) : owner_(owner) {}
    void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                      const std::vector<xml::Attribute>& attrs) override {
      for (auto& e : owner_->entries_) {
        e.machine->StartElement(tag, level, id, attrs);
      }
    }
    void EndElement(const xml::TagToken& tag, int level) override {
      for (auto& e : owner_->entries_) e.machine->EndElement(tag, level);
    }
    void Text(std::string_view text, int level) override {
      for (auto& e : owner_->entries_) e.machine->Text(text, level);
    }
    void EndDocument() override {
      for (auto& e : owner_->entries_) e.machine->EndDocument();
    }

   private:
    MultiQueryProcessor* owner_;
  };

  struct Entry {
    EngineKind kind = EngineKind::kTwigM;
    std::unique_ptr<TaggingSink> tag_sink;
    std::unique_ptr<TwigMachine> twig;
    std::unique_ptr<PathMachine> path;
    std::unique_ptr<BranchMachine> branch;
    xml::StreamEventSink* machine = nullptr;
  };

  MultiQueryProcessor() = default;

  MultiQueryResultSink* sink_ = nullptr;
  EvaluatorOptions options_;
  std::vector<Entry> entries_;
  std::unique_ptr<FanOut> fan_out_;
  std::unique_ptr<xml::EventDriver> driver_;
  std::unique_ptr<xml::SaxParser> parser_;
  uint64_t total_results_ = 0;
  // Shared stream position (see XPathStreamProcessor::stream_offset_).
  uint64_t stream_offset_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_MULTI_QUERY_H_
