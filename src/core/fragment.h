// XML-fragment result delivery (footnote 3 of the paper: "Our
// implementation returns XML fragments instead of node ids").
//
// `FragmentRecorder` sits between the event driver and a query machine: it
// forwards every modified-SAX event and, for each element the machine
// reports as a *candidate*, re-serializes the element's subtree while it
// streams past. When the machine later proves the candidate is a result,
// the buffered fragment is handed to the `FragmentSink` — still
// incrementally: a fragment is delivered at max(candidate subtree fully
// parsed, membership proven).
//
// Memory note: buffering undecided candidates is inherent to returning
// fragments from a stream (every fragment-producing engine pays it); the
// recorder's footprint is included in its stats and fragments of
// candidates that never become results are dropped as soon as that is
// knowable (at the latest at end of document).

#ifndef TWIGM_CORE_FRAGMENT_H_
#define TWIGM_CORE_FRAGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/result_sink.h"
#include "xml/sax_event.h"

namespace twigm::core {

/// Receives serialized result fragments.
class FragmentSink {
 public:
  virtual ~FragmentSink() = default;

  /// Called exactly once per result. `xml` is the re-serialized element
  /// subtree (elements, attributes, character data; comments/PIs/CDATA
  /// sectioning are not preserved — text is emitted escaped).
  virtual void OnFragment(xml::NodeId id, std::string_view xml) = 0;
};

/// Collects fragments into a vector (test/demo convenience).
class VectorFragmentSink : public FragmentSink {
 public:
  struct Item {
    xml::NodeId id;
    std::string xml;
  };

  void OnFragment(xml::NodeId id, std::string_view xml) override {
    items_.push_back(Item{id, std::string(xml)});
  }

  const std::vector<Item>& items() const { return items_; }

 private:
  std::vector<Item> items_;
};

/// Event tee that records candidate subtrees and pairs them with results.
/// Wire-up (done by XPathStreamProcessor::CreateWithFragments):
///   driver -> recorder (StreamEventSink) -> machine
///   machine's ResultSink        = recorder
///   machine's CandidateObserver = recorder
class FragmentRecorder : public xml::StreamEventSink,
                         public ResultSink,
                         public CandidateObserver {
 public:
  /// `out` receives completed result fragments; `ids_out` (optional) also
  /// receives plain result ids. Neither is owned.
  explicit FragmentRecorder(FragmentSink* out, ResultSink* ids_out = nullptr)
      : out_(out), ids_out_(ids_out) {}

  /// The machine events are forwarded to; must be set before streaming.
  void set_machine(xml::StreamEventSink* machine) { machine_ = machine; }

  // StreamEventSink (from the event driver):
  void StartElement(std::string_view tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(std::string_view tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  // ResultSink (from the machine):
  void OnResult(xml::NodeId id) override;

  // CandidateObserver (from the machine):
  void OnCandidate(xml::NodeId id) override;

  /// Clears all buffered state for a new document.
  void Reset();

  /// Peak bytes held in fragment buffers (candidates + completed,
  /// undecided).
  uint64_t peak_buffered_bytes() const { return peak_buffered_bytes_; }

 private:
  // An in-flight recording of one candidate's subtree.
  struct Recording {
    xml::NodeId id = 0;
    int level = 0;  // the candidate element's own level
    std::string buffer;
  };

  void AppendToActive(std::string_view text);
  void NoteBuffered();

  xml::StreamEventSink* machine_ = nullptr;
  FragmentSink* out_;
  ResultSink* ids_out_;

  // Candidate ids announced during the current StartElement call.
  std::vector<xml::NodeId> announced_;
  bool in_start_ = false;

  // Active recordings, innermost last (LIFO by nesting).
  std::vector<Recording> active_;
  // Completed fragments awaiting a result decision.
  std::unordered_map<xml::NodeId, std::string> completed_;
  // Results whose fragment is still being recorded (PathM's eager emission).
  std::unordered_set<xml::NodeId> pending_results_;

  uint64_t buffered_bytes_ = 0;
  uint64_t peak_buffered_bytes_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_FRAGMENT_H_
