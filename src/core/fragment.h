// XML-fragment result delivery (footnote 3 of the paper: "Our
// implementation returns XML fragments instead of node ids").
//
// `FragmentRecorder` sits between the event driver and a query machine: it
// forwards every modified-SAX event and, for each element the machine
// reports as a *candidate* (MatchObserver::OnCandidate), re-serializes the
// element's subtree while it streams past. The machine's candidate and
// result callbacks pass through to the downstream observer unchanged; when
// the machine proves a candidate is a result, the buffered fragment is
// additionally handed to the observer via OnFragment — still incrementally:
// a fragment is delivered at max(candidate subtree fully parsed, membership
// proven).
//
// Fragment capture is enabled per processor: XPathStreamProcessor::Create
// inserts a recorder when the observer's wants_fragments() returns true (or
// EvaluatorOptions::capture_fragments is set).
//
// Memory note: buffering undecided candidates is inherent to returning
// fragments from a stream (every fragment-producing engine pays it); the
// recorder's footprint is included in its stats and fragments of candidates
// that never become results are dropped as soon as that is knowable (at the
// latest at end of document).

#ifndef TWIGM_CORE_FRAGMENT_H_
#define TWIGM_CORE_FRAGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/result_sink.h"
#include "xml/sax_event.h"

namespace twigm::core {

/// Collects result fragments (and their ids) into a vector — the common
/// observer for fragment mode in tests and demos.
class VectorFragmentSink : public MatchObserver {
 public:
  struct Item {
    xml::NodeId id;
    std::string xml;
  };

  bool wants_fragments() const override { return true; }

  void OnResult(const MatchInfo& match) override { ids_.push_back(match.id); }

  void OnFragment(xml::NodeId id, std::string_view xml) override {
    items_.push_back(Item{id, std::string(xml)});
  }

  /// Completed fragments, in delivery order.
  const std::vector<Item>& items() const { return items_; }
  /// Result ids, in emission order (emission may precede fragment
  /// completion).
  const std::vector<xml::NodeId>& ids() const { return ids_; }

 private:
  std::vector<Item> items_;
  std::vector<xml::NodeId> ids_;
};

/// Event tee that records candidate subtrees and pairs them with results.
/// Wire-up (done by XPathStreamProcessor::Create when fragment capture is
/// on):
///   driver -> recorder (StreamEventSink) -> machine
///   machine's MatchObserver = recorder; recorder forwards to the user's
///   observer and adds OnFragment deliveries.
class FragmentRecorder : public xml::StreamEventSink, public MatchObserver {
 public:
  /// `out` receives the pass-through candidate/result callbacks plus
  /// completed fragments. Not owned.
  explicit FragmentRecorder(MatchObserver* out) : out_(out) {}

  /// The machine events are forwarded to; must be set before streaming.
  void set_machine(xml::StreamEventSink* machine) { machine_ = machine; }

  // StreamEventSink (from the event driver):
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  // MatchObserver (from the machine):
  void OnCandidate(xml::NodeId id) override;
  void OnResult(const MatchInfo& match) override;

  /// Clears all buffered state for a new document.
  void Reset();

  /// Peak bytes held in fragment buffers (candidates + completed,
  /// undecided).
  uint64_t peak_buffered_bytes() const { return peak_buffered_bytes_; }

 private:
  // An in-flight recording of one candidate's subtree.
  struct Recording {
    xml::NodeId id = 0;
    int level = 0;  // the candidate element's own level
    std::string buffer;
  };

  void AppendToActive(std::string_view text);
  void NoteBuffered();

  xml::StreamEventSink* machine_ = nullptr;
  MatchObserver* out_;

  // Candidate ids announced during the current StartElement call.
  std::vector<xml::NodeId> announced_;
  bool in_start_ = false;

  // Active recordings, innermost last (LIFO by nesting).
  std::vector<Recording> active_;
  // Completed fragments awaiting a result decision.
  std::unordered_map<xml::NodeId, std::string> completed_;
  // Results whose fragment is still being recorded (PathM's eager emission).
  std::unordered_set<xml::NodeId> pending_results_;

  uint64_t buffered_bytes_ = 0;
  uint64_t peak_buffered_bytes_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_FRAGMENT_H_
