// PathM — streaming machine for linear queries XP{/,//,*} (section 3.1).
//
// The machine is a chain of nodes, one stack of levels each. An element is
// pushed onto node v's stack iff some entry of ρ(v)'s stack satisfies ζ(v);
// entries pop at the element's end event. Because there are no predicates,
// membership is decided the moment an element reaches the return node's
// stack, so results are emitted immediately at startElement — the earliest
// point possible (fully incremental, unlike TwigM which must wait for
// predicate resolution).
//
// After BindInterner(), events dispatch through per-symbol postings of
// chain positions (wildcard positions are always tried); kNoSymbol tokens
// fall back to byte comparison. Same-event pushes cannot enable each other
// (edge distances are ≥ 1), so the split dispatch order is equivalent to
// the chain scan.

#ifndef TWIGM_CORE_PATH_MACHINE_H_
#define TWIGM_CORE_PATH_MACHINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/decision_table.h"
#include "core/level_bounds.h"
#include "core/machine_builder.h"
#include "core/machine_stats.h"
#include "core/result_sink.h"
#include "obs/instrumentation.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// The PathM machine. Only accepts linear queries (no predicates).
class PathMachine : public xml::StreamEventSink {
 public:
  /// Fails with NotSupported if `query` has predicates or value tests.
  static Result<std::unique_ptr<PathMachine>> Create(
      const xpath::QueryTree& query, MatchObserver* observer);

  PathMachine(const PathMachine&) = delete;
  PathMachine& operator=(const PathMachine&) = delete;

  // StreamEventSink:
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void EndDocument() override;

  /// Resolves chain labels to SymbolIds in `interner` and builds the
  /// per-symbol position postings (see TwigMachine::BindInterner).
  void BindInterner(xml::TagInterner* interner);

  /// Clears runtime state and statistics. Stack capacity is retained.
  void Reset();

  /// Optional: attaches observability (see TwigMachine). Not owned.
  void set_instrumentation(obs::Instrumentation* instr) {
    if (instr != instr_) gap_hist_ = nullptr;
    instr_ = instr;
    if (instr_ != nullptr) {
      instr_->EnsureNodeSlots(graph_.node_count());
      RegisterGapHistogram();
    }
  }

  /// Optional: source of the current stream byte offset (see TwigMachine).
  void set_stream_offset(const uint64_t* offset) { stream_offset_ = offset; }

  /// Optional: per-node level windows from static analysis, indexed by
  /// machine-node id (see TwigMachine::set_level_bounds). Empty = no
  /// pruning.
  void set_level_bounds(LevelBounds bounds) { level_bounds_ = std::move(bounds); }

  /// Optional: earliest-query-answering (see TwigMachine::set_decisions).
  /// PathM is already fully incremental — results emit at startElement, so
  /// every gap is 0 — but kOn still uses the table's kUseless facts to
  /// skip stack state for subtrees that cannot reach the return node.
  void set_decisions(std::shared_ptr<const DecisionTable> table,
                     EarlyDecisionMode mode);

  EarlyDecisionMode decision_mode() const { return decision_mode_; }

  const EngineStats& stats() const { return stats_; }
  const MachineGraph& graph() const { return graph_; }

 private:
  PathMachine(MachineGraph graph, MatchObserver* observer);

  const NodeDecision* DecisionFor(int node_id) const;
  void RegisterGapHistogram();
  void RebuildSymToElem();

  // δs / δe for the node at chain position i.
  void TryStartPosition(size_t i, int level, xml::NodeId id);
  void PopPosition(size_t i, int level);

  uint64_t offset() const {
    return stream_offset_ != nullptr ? *stream_offset_ : 0;
  }

  MachineGraph graph_;
  MatchObserver* sink_;
  obs::Instrumentation* instr_ = nullptr;
  const uint64_t* stream_offset_ = nullptr;
  LevelBounds level_bounds_;
  EngineStats stats_;

  // chain_[i] is the machine node at spine position i (root first);
  // stacks_[i] its stack of levels.
  std::vector<const MachineNode*> chain_;
  std::vector<std::vector<int>> stacks_;

  // Symbol dispatch: postings_[s] lists the chain positions whose label has
  // symbol s; wildcard_positions_ is always tried. Built by BindInterner.
  bool bound_ = false;
  std::vector<std::vector<size_t>> postings_;
  std::vector<size_t> wildcard_positions_;

  // Earliest-decision state (see TwigMachine).
  std::shared_ptr<const DecisionTable> decisions_;
  EarlyDecisionMode decision_mode_ = EarlyDecisionMode::kOff;
  xml::TagInterner* interner_ = nullptr;
  std::vector<int32_t> sym_to_elem_;
  int32_t cur_elem_ = -1;
  obs::Histogram* gap_hist_ = nullptr;

  uint64_t live_entries_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_PATH_MACHINE_H_
