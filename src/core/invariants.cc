#include "core/invariants.h"

#include <cstdio>
#include <cstdlib>

namespace twigm::core {

void InvariantFailure(const char* what, const char* file, int line,
                      uint64_t byte_offset) {
  std::fprintf(stderr,
               "TWIGM invariant violated: %s\n  at %s:%d (stream offset "
               "%llu)\n",
               what, file, line, static_cast<unsigned long long>(byte_offset));
  std::abort();
}

}  // namespace twigm::core
