// Execution statistics reported by every engine. These are the library's
// machine-independent counterpart to the paper's memory measurements: exact
// counts of the state an engine keeps, so Figs. 8 and 10 can be reproduced
// without depending on allocator or OS behaviour.

#ifndef TWIGM_CORE_MACHINE_STATS_H_
#define TWIGM_CORE_MACHINE_STATS_H_

#include <cstdint>

namespace twigm::core {

struct EngineStats {
  uint64_t start_events = 0;       // startElement events processed
  uint64_t end_events = 0;         // endElement events processed
  uint64_t pushes = 0;             // stack entries created
  uint64_t pops = 0;               // stack entries removed
  uint64_t results = 0;            // result nodes emitted
  uint64_t predicate_checks = 0;   // branch-match / value-test evaluations
  uint64_t candidate_unions = 0;   // candidate-set merge operations

  // Early-decision accounting (core/decision_table.h, DESIGN.md §13).
  uint64_t early_emitted = 0;      // results emitted before their proof pop
  uint64_t early_dropped = 0;      // pushes skipped: obligations refuted
  uint64_t states_skipped = 0;     // pushes skipped: subtree decision-free
  // Earliest-vs-actual emission gap, in stream bytes, over every result.
  // kObserve mode measures the real gap; kOn emits at the earliest point,
  // so its gaps are 0 by construction.
  uint64_t gap_sum_bytes = 0;
  uint64_t gap_count = 0;
  uint64_t gap_max_bytes = 0;

  // High-water marks.
  uint64_t peak_stack_entries = 0; // live entries across all stacks
  uint64_t peak_candidates = 0;    // buffered candidate ids across entries
  uint64_t peak_state_bytes = 0;   // approx. engine-owned bytes

  // Current (instantaneous) values maintained by the engines.
  uint64_t live_stack_entries = 0;
  uint64_t live_candidates = 0;

  /// Records a new live-entry count, updating the peak.
  void NoteEntries(uint64_t live) {
    live_stack_entries = live;
    if (live > peak_stack_entries) peak_stack_entries = live;
  }

  /// Records a new live-candidate count, updating the peak.
  void NoteCandidates(uint64_t live) {
    live_candidates = live;
    if (live > peak_candidates) peak_candidates = live;
  }

  /// Records an approximate byte footprint, updating the peak.
  void NoteBytes(uint64_t bytes) {
    if (bytes > peak_state_bytes) peak_state_bytes = bytes;
  }

  /// Records one earliest-vs-actual emission gap.
  void NoteGap(uint64_t gap_bytes) {
    gap_sum_bytes += gap_bytes;
    ++gap_count;
    if (gap_bytes > gap_max_bytes) gap_max_bytes = gap_bytes;
  }
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_MACHINE_STATS_H_
