#include "core/twig_machine.h"

#include <algorithm>
#include <functional>

#include "core/invariants.h"
#include "core/value_test.h"

namespace twigm::core {

size_t UnionSortedIds(const std::vector<xml::NodeId>& src,
                      std::vector<xml::NodeId>* dst) {
  if (src.empty()) return 0;
  if (dst->empty()) {
    *dst = src;
    return src.size();
  }
  // Fast path: everything in src is larger than dst's back (common, because
  // ids increase in document order).
  const size_t old_size = dst->size();
  if (src.front() > dst->back()) {
    dst->insert(dst->end(), src.begin(), src.end());
    return src.size();
  }
  std::vector<xml::NodeId> merged;
  merged.reserve(dst->size() + src.size());
  std::set_union(dst->begin(), dst->end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  *dst = std::move(merged);
  return dst->size() - old_size;
}

Result<std::unique_ptr<TwigMachine>> TwigMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer,
    TwigMachineOptions options) {
  if (observer == nullptr) {
    return Status::InvalidArgument("TwigMachine requires a match observer");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<TwigMachine>(
      new TwigMachine(std::move(graph).value(), observer, options));
}

TwigMachine::TwigMachine(MachineGraph graph, MatchObserver* observer,
                         TwigMachineOptions options)
    : graph_(std::move(graph)), sink_(observer), options_(options) {
  stacks_.resize(graph_.node_count());
  for (const auto& node : graph_.nodes()) {
    preorder_.push_back(node->id);
    if (node->is_wildcard) {
      wildcard_nodes_.push_back(node->id);
    } else {
      label_index_[node->label].push_back(node->id);
    }
    if (node->has_value_test) value_test_nodes_.push_back(node->id);
  }
}

void TwigMachine::Reset() {
  for (auto& stack : stacks_) stack.clear();
  emitted_.clear();
  stats_ = EngineStats();
  live_entries_ = 0;
  live_candidates_ = 0;
  live_text_bytes_ = 0;
}

void TwigMachine::UpdateMemoryStats() {
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
  stats_.NoteBytes(live_entries_ * sizeof(Entry) +
                   live_candidates_ * sizeof(xml::NodeId) + live_text_bytes_);
}

void TwigMachine::StartElement(std::string_view tag, int level, xml::NodeId id,
                               const std::vector<xml::Attribute>& attrs) {
  ++stats_.start_events;
  // δs: try every machine node whose label matches the tag, parents first
  // (pre-order). Wildcard nodes match every tag.
  auto try_node = [&](int node_id) {
    const MachineNode* v = graph_.nodes()[node_id].get();
    // Analyzer window: the DTD proves this node can never bind at this
    // level — skip the whole δs attempt.
    if (!level_bounds_.empty() &&
        !level_bounds_[static_cast<size_t>(node_id)].Allows(level)) {
      return;
    }
    // Qualification: the root checks the element level directly (the
    // document root is at level 0); other nodes need a parent-stack entry
    // whose level difference satisfies ζ(v).
    // Stack levels are strictly increasing (entries belong to the chain of
    // active ancestors), so qualification needs no scan: for '≥' edges the
    // bottom (shallowest) entry is the best witness; for '=' edges the
    // required level is unique and found by binary search.
    bool qualified = false;
    if (v->parent == nullptr) {
      if (root_context_ == nullptr) {
        qualified = v->edge.Satisfies(level);
      } else if (!root_context_->empty()) {
        // Anchored root: qualify against the external ancestor stack, which
        // is sorted ascending like a machine stack.
        if (!v->edge.exact) {
          qualified = level - root_context_->front() >= v->edge.distance;
        } else {
          qualified = std::binary_search(root_context_->begin(),
                                         root_context_->end(),
                                         level - v->edge.distance);
        }
      }
    } else {
      const std::vector<Entry>& pstack = stacks_[v->parent->id];
      if (!pstack.empty()) {
        if (!v->edge.exact) {
          qualified = level - pstack.front().level >= v->edge.distance;
        } else {
          const int want = level - v->edge.distance;
          auto it = std::lower_bound(
              pstack.begin(), pstack.end(), want,
              [](const Entry& e, int l) { return e.level < l; });
          qualified = it != pstack.end() && it->level == want;
        }
      }
    }
    if (!qualified) return;

    // Resolve attribute tests now: attributes are fully known at
    // startElement (footnote 2 of the paper).
    uint64_t branch = 0;
    bool attr_failed = false;
    for (const AttributeTest& test : v->attr_tests) {
      ++stats_.predicate_checks;
      const std::string* value = nullptr;
      for (const xml::Attribute& a : attrs) {
        if (a.name == test.name) {
          value = &a.value;
          break;
        }
      }
      bool pass = value != nullptr;
      if (pass && test.has_value_test) {
        pass = EvalValueTest(*value, test.op, test.literal,
                             test.literal_is_number);
      }
      if (pass) {
        branch |= uint64_t{1} << test.branch_slot;
      } else {
        attr_failed = true;
      }
    }
    if (attr_failed && options_.prune_static_failures) return;

    Entry entry;
    entry.level = level;
    entry.branch = branch;
    if (v->is_return) {
      entry.candidates.push_back(id);
      ++live_candidates_;
      sink_->OnCandidate(id);
      if (instr_ != nullptr) {
        instr_->Trace(obs::TraceEvent::Kind::kCandidate, node_id, level, id,
                      1);
      }
    }
    // Ancestor-ordering lemma: stack levels stay strictly increasing —
    // every entry belongs to the chain of currently-open ancestors.
    TWIGM_INVARIANT(
        stacks_[node_id].empty() || stacks_[node_id].back().level < level,
        "stack levels not strictly increasing at push", offset());
    // Attribute slots must stay within the node's declared branch slots.
    TWIGM_INVARIANT(
        v->num_slots >= 64 || entry.branch >> v->num_slots == 0,
        "initial branch bits outside the node's slot range", offset());
    stacks_[node_id].push_back(std::move(entry));
    ++stats_.pushes;
    ++live_entries_;
    if (instr_ != nullptr) {
      const uint64_t depth = stacks_[node_id].size();
      instr_->NoteNodeDepth(node_id, depth);
      instr_->Trace(obs::TraceEvent::Kind::kStackPush, node_id, level, id,
                    depth);
    }
  };

  auto it = label_index_.find(tag);
  if (it != label_index_.end()) {
    for (int node_id : it->second) try_node(node_id);
  }
  for (int node_id : wildcard_nodes_) try_node(node_id);
  UpdateMemoryStats();
}

void TwigMachine::Text(std::string_view text, int level) {
  // Only nodes with value tests accumulate text, and only for the element
  // currently on top of their stack (direct character data).
  for (int node_id : value_test_nodes_) {
    std::vector<Entry>& stack = stacks_[node_id];
    if (!stack.empty() && stack.back().level == level) {
      stack.back().text.append(text);
      live_text_bytes_ += text.size();
    }
  }
}

void TwigMachine::EndElement(std::string_view tag, int level) {
  ++stats_.end_events;
  // δe: pop every machine node whose top entry has this level. Processed in
  // reverse pre-order so that a child's propagation into parent entries is
  // complete before any code inspects them; entries popped in this event
  // can never be propagation targets of this event (ζ distances are ≥ 1).
  for (auto rit = preorder_.rbegin(); rit != preorder_.rend(); ++rit) {
    const int node_id = *rit;
    const MachineNode* v = graph_.nodes()[node_id].get();
    if (!v->MatchesTag(tag)) continue;
    std::vector<Entry>& stack = stacks_[node_id];
    if (stack.empty() || stack.back().level != level) continue;

    Entry top = std::move(stack.back());
    stack.pop_back();
    // Candidate-set lemma (Theorem 4.4's dedup argument): candidates are
    // kept strictly ascending, so unions deduplicate and the R·B bound
    // holds.
    TWIGM_INVARIANT(
        std::is_sorted(top.candidates.begin(), top.candidates.end()) &&
            std::adjacent_find(top.candidates.begin(), top.candidates.end()) ==
                top.candidates.end(),
        "popped candidate set not strictly ascending", offset());
    // Branch bits never leave the node's declared slot range.
    TWIGM_INVARIANT(v->num_slots >= 64 || top.branch >> v->num_slots == 0,
                    "branch bits outside the node's slot range at pop",
                    offset());
    ++stats_.pops;
    --live_entries_;
    live_candidates_ -= top.candidates.size();
    live_text_bytes_ -= top.text.size();
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kStackPop, node_id, level, 0,
                    stack.size());
    }

    ++stats_.predicate_checks;
    bool satisfied = (top.branch & v->required_mask) == v->required_mask;
    if (satisfied && v->has_value_test) {
      satisfied =
          EvalValueTest(top.text, v->op, v->literal, v->literal_is_number);
    }
    if (!satisfied) {
      // Prune: drop every match `top` was part of.
      if (instr_ != nullptr) {
        instr_->Trace(obs::TraceEvent::Kind::kPrune, node_id, level, 0,
                      top.candidates.size());
      }
      continue;
    }

    if (v->parent == nullptr) {
      // Root: output candidates. A candidate may have reached several root
      // entries on recursive data; emit each id once.
      obs::TimerScope emit_timer(
          instr_ != nullptr ? instr_->stage_slot(obs::Stage::kEmit) : nullptr);
      const int return_node =
          graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
      for (xml::NodeId id : top.candidates) {
        if (emitted_.insert(id).second) {
          sink_->OnResult(MatchInfo{id, offset(), return_node});
          ++stats_.results;
          if (instr_ != nullptr) {
            instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, level,
                          id, 0);
          }
        }
      }
      if (stack.empty()) emitted_.clear();
      continue;
    }

    // Propagate to qualifying parent entries. Levels are strictly
    // increasing, so '≥' edges match a prefix of the stack and '=' edges
    // match at most one entry.
    const uint64_t bit = uint64_t{1} << v->branch_slot;
    std::vector<Entry>& pstack = stacks_[v->parent->id];
    auto propagate = [&](Entry& e) {
      // Branch-boolean monotonicity (δe correctness): propagation only
      // sets bits, and only the child's own slot.
      TWIGM_INVARIANT(v->parent->num_slots >= 64 ||
                          (e.branch | bit) >> v->parent->num_slots == 0,
                      "propagated branch bit outside parent's slot range",
                      offset());
      e.branch |= bit;
      if (!top.candidates.empty()) {
        ++stats_.candidate_unions;
        live_candidates_ += UnionSortedIds(top.candidates, &e.candidates);
        TWIGM_INVARIANT(
            std::adjacent_find(e.candidates.begin(), e.candidates.end(),
                               std::greater_equal<xml::NodeId>()) ==
                e.candidates.end(),
            "candidate union broke strict ordering", offset());
      }
    };
    const int max_level = top.level - v->edge.distance;
    if (!v->edge.exact) {
      for (Entry& e : pstack) {
        if (e.level > max_level) break;
        propagate(e);
      }
    } else {
      auto it = std::lower_bound(
          pstack.begin(), pstack.end(), max_level,
          [](const Entry& e, int l) { return e.level < l; });
      if (it != pstack.end() && it->level == max_level) propagate(*it);
    }
  }
  UpdateMemoryStats();
}

void TwigMachine::EndDocument() {
  // Nothing pending: every element's end event popped its entries.
}

}  // namespace twigm::core
