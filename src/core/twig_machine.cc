#include "core/twig_machine.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "core/invariants.h"
#include "core/value_test.h"

namespace twigm::core {

size_t UnionSortedIds(const std::vector<xml::NodeId>& src,
                      std::vector<xml::NodeId>* dst) {
  if (src.empty()) return 0;
  if (dst->empty()) {
    dst->assign(src.begin(), src.end());
    return src.size();
  }
  // Fast path: everything in src is larger than dst's back (common, because
  // ids increase in document order).
  if (src.front() > dst->back()) {
    dst->insert(dst->end(), src.begin(), src.end());
    return src.size();
  }
  // General case, in place and single-pass: grow dst by the upper bound
  // (all of src new), merge backwards from largest to smallest, then close
  // the gap duplicates leave. The write cursor stays strictly above the
  // unread dst tail (w - j = i + 1 + duplicates-so-far ≥ 1), so nothing is
  // clobbered and no temporary vector is needed.
  const size_t old_size = dst->size();
  dst->resize(old_size + src.size());
  xml::NodeId* base = dst->data();
  ptrdiff_t i = static_cast<ptrdiff_t>(src.size()) - 1;
  ptrdiff_t j = static_cast<ptrdiff_t>(old_size) - 1;
  ptrdiff_t w = static_cast<ptrdiff_t>(dst->size()) - 1;
  while (i >= 0 && j >= 0) {
    if (src[i] > base[j]) {
      base[w--] = src[i--];
    } else if (src[i] < base[j]) {
      base[w--] = base[j--];
    } else {
      base[w--] = base[j--];
      --i;
    }
  }
  while (i >= 0) base[w--] = src[i--];
  // Unread dst ids (indices ≤ j) are already in their final positions; the
  // gap (j, w] is exactly the duplicate count.
  const size_t gap = static_cast<size_t>(w - j);
  if (gap > 0) {
    std::memmove(base + j + 1, base + w + 1,
                 (dst->size() - static_cast<size_t>(w + 1)) *
                     sizeof(xml::NodeId));
    dst->resize(dst->size() - gap);
  }
  return dst->size() - old_size;
}

Result<std::unique_ptr<TwigMachine>> TwigMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer,
    TwigMachineOptions options) {
  if (observer == nullptr) {
    return Status::InvalidArgument("TwigMachine requires a match observer");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<TwigMachine>(
      new TwigMachine(std::move(graph).value(), observer, options));
}

TwigMachine::TwigMachine(MachineGraph graph, MatchObserver* observer,
                         TwigMachineOptions options)
    : graph_(std::move(graph)), sink_(observer), options_(options) {
  stacks_.resize(graph_.node_count());
  for (const auto& node : graph_.nodes()) {
    preorder_.push_back(node->id);
    if (node->is_wildcard) {
      wildcard_nodes_.push_back(node->id);
    } else {
      label_index_[node->label].push_back(node->id);
    }
    if (node->has_value_test) value_test_nodes_.push_back(node->id);
  }
}

void TwigMachine::BindInterner(xml::TagInterner* interner) {
  interner_ = interner;
  for (const auto& node : graph_.nodes()) {
    if (!node->is_wildcard) node->symbol = interner->Intern(node->label);
  }
  start_postings_.assign(interner->size(), {});
  end_postings_.assign(interner->size(), {});
  for (const auto& node : graph_.nodes()) {
    if (!node->is_wildcard) {
      start_postings_[node->symbol].push_back(node->id);
    }
  }
  // δe needs one reversible pre-order list per symbol that covers label AND
  // wildcard nodes: machine-node ids are assigned in pre-order, so merging
  // the two sorted id lists preserves it.
  for (size_t s = 0; s < end_postings_.size(); ++s) {
    std::merge(start_postings_[s].begin(), start_postings_[s].end(),
               wildcard_nodes_.begin(), wildcard_nodes_.end(),
               std::back_inserter(end_postings_[s]));
  }
  bound_ = true;
  RebuildSymToElem();
}

void TwigMachine::set_decisions(std::shared_ptr<const DecisionTable> table,
                                EarlyDecisionMode mode) {
  decisions_ = std::move(table);
  decision_mode_ = mode;
  RebuildSymToElem();
  RegisterGapHistogram();
}

void TwigMachine::RebuildSymToElem() {
  sym_to_elem_.clear();
  if (decisions_ == nullptr || interner_ == nullptr) return;
  // Intern every DTD element name so document tags that are no query label
  // still map to their fact row. Names interned after BindInterner fall
  // outside the postings vectors, which already means wildcard-only
  // dispatch — exactly the pre-existing behaviour for non-label tags.
  const std::vector<std::string>& names = decisions_->element_names();
  for (size_t e = 0; e < names.size(); ++e) {
    const xml::SymbolId s = interner_->Intern(names[e]);
    if (sym_to_elem_.size() <= s) sym_to_elem_.resize(s + 1, -1);
    sym_to_elem_[s] = static_cast<int32_t>(e);
  }
}

void TwigMachine::RegisterGapHistogram() {
  if (instr_ == nullptr || gap_hist_ != nullptr) return;
  if (decision_mode_ == EarlyDecisionMode::kOff) return;
  gap_hist_ = instr_->registry().RegisterHistogram(
      "engine.emission_gap_bytes", obs::ExponentialBuckets(1, 4, 16));
}

// hotpath
bool TwigMachine::MarkEmitted(xml::NodeId id) {
  if (id >= emitted_stamp_.size()) {
    // Doubling keeps growth amortized; ids are dense pre-order, so the
    // array tops out near the document's element count and is reused for
    // every later document.
    size_t grown = std::max<size_t>(emitted_stamp_.size() * 2, 256);
    if (grown <= id) grown = static_cast<size_t>(id) + 1;
    emitted_stamp_.resize(grown, 0);
  }
  if (emitted_stamp_[id] == emitted_epoch_) return false;
  emitted_stamp_[id] = emitted_epoch_;
  return true;
}

void TwigMachine::ClearEmitted() {
  if (++emitted_epoch_ == 0) {
    // Epoch wrapped: stale stamps could collide, so wipe once and restart.
    std::fill(emitted_stamp_.begin(), emitted_stamp_.end(), 0);
    std::fill(proved_stamp_.begin(), proved_stamp_.end(), 0);
    emitted_epoch_ = 1;
  }
}

// hotpath
void TwigMachine::MarkProved(xml::NodeId id) {
  if (id >= proved_stamp_.size()) {
    size_t grown = std::max<size_t>(proved_stamp_.size() * 2, 256);
    if (grown <= id) grown = static_cast<size_t>(id) + 1;
    proved_stamp_.resize(grown, 0);
    proved_offset_.resize(grown, 0);
  }
  // Keep the *earliest* proof offset: later re-proofs are no-ops.
  if (proved_stamp_[id] == emitted_epoch_) return;
  proved_stamp_[id] = emitted_epoch_;
  proved_offset_[id] = offset();
}

// hotpath
void TwigMachine::RecordGap(xml::NodeId id) {
  uint64_t gap = 0;
  if (id < proved_stamp_.size() && proved_stamp_[id] == emitted_epoch_) {
    const uint64_t now = offset();
    gap = now > proved_offset_[id] ? now - proved_offset_[id] : 0;
  }
  stats_.NoteGap(gap);
  if (gap_hist_ != nullptr) gap_hist_->Observe(gap);
}

void TwigMachine::Reset() {
  for (auto& stack : stacks_) stack.clear();
  ClearEmitted();
  stats_ = EngineStats();
  live_entries_ = 0;
  live_candidates_ = 0;
  live_text_bytes_ = 0;
  cur_elem_ = -1;
}

uint64_t TwigMachine::pool_entries() const {
  uint64_t total = 0;
  for (const auto& stack : stacks_) total += stack.pooled();
  return total;
}

void TwigMachine::UpdateMemoryStats() {
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
  stats_.NoteBytes(live_entries_ * sizeof(Entry) +
                   live_candidates_ * sizeof(xml::NodeId) + live_text_bytes_);
}

template <typename Fn>
// hotpath
void TwigMachine::ForEachQualifyingParent(const MachineNode* v, int top_level,
                                          Fn&& fn) {
  PooledStack<Entry>& pstack = stacks_[v->parent->id];
  const int max_level = top_level - v->edge.distance;
  if (!v->edge.exact) {
    for (Entry& e : pstack) {
      if (e.level > max_level) break;
      fn(e);
    }
  } else {
    auto it = std::lower_bound(pstack.begin(), pstack.end(), max_level,
                               [](const Entry& e, int l) { return e.level < l; });
    if (it != pstack.end() && it->level == max_level) fn(*it);
  }
}

const NodeDecision* TwigMachine::DecisionFor(int node_id) const {
  if (cur_elem_ < 0 || decisions_ == nullptr) return nullptr;
  return &decisions_->at(static_cast<size_t>(node_id),
                         static_cast<size_t>(cur_elem_));
}

// hotpath
bool TwigMachine::EntrySatisfiedNow(const MachineNode* v,
                                    const Entry& e) const {
  if (((e.branch | e.implied) & v->required_mask) != v->required_mask) {
    return false;
  }
  return (e.dflags & kValueSure) != 0;
}

// hotpath
void TwigMachine::FlushCertainCandidates(Entry& e) {
  if (e.candidates.empty()) return;
  if (decision_mode_ == EarlyDecisionMode::kOn) {
    for (xml::NodeId id : e.candidates) EmitEarly(id);
    live_candidates_ -= e.candidates.size();
    e.candidates.clear();
  } else {
    for (xml::NodeId id : e.candidates) MarkProved(id);
  }
}

// hotpath
void TwigMachine::EmitEarly(xml::NodeId id) {
  if (!MarkEmitted(id)) return;
  obs::TimerScope emit_timer(
      instr_ != nullptr ? instr_->stage_slot(obs::Stage::kEmit) : nullptr);
  const int return_node =
      graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
  sink_->OnResult(MatchInfo{id, offset(), return_node});
  ++stats_.results;
  ++stats_.early_emitted;
  stats_.NoteGap(0);
  if (gap_hist_ != nullptr) gap_hist_->Observe(0);
  if (instr_ != nullptr) {
    instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, -1, id, 0);
  }
}

// hotpath
void TwigMachine::ResolveCertain(const MachineNode* v, Entry& e) {
  if ((e.dflags & kResolved) != 0) return;
  e.dflags |= kResolved;
  if (v->parent == nullptr) {
    // A certain root entry: everything uploaded here is a certain result.
    // (For anchored tails the trunk above is a predicate-free trie path
    // that has already matched, so root certainty is query certainty.)
    e.dflags |= kCertainOutput;
    FlushCertainCandidates(e);
    return;
  }
  // Set the child's branch bit in every qualifying parent entry now. This
  // is exactly the δe propagation target set — stack levels are strictly
  // increasing while an entry is open, so no qualifying parent entry can
  // appear or disappear between now and e's pop, and the pop would set the
  // same bits (e's obligations are certain to hold by then).
  const MachineNode* parent = v->parent;
  const uint64_t bit = uint64_t{1} << v->branch_slot;
  bool certain_parent = false;
  ForEachQualifyingParent(v, e.level, [&](Entry& p) {
    if ((p.branch & bit) == 0) {
      p.branch |= bit;
      if ((p.dflags & kResolved) == 0 && EntrySatisfiedNow(parent, p)) {
        ResolveCertain(parent, p);
      }
    }
    if ((p.dflags & kCertainOutput) != 0) certain_parent = true;
  });
  if (certain_parent) {
    e.dflags |= kCertainOutput;
    FlushCertainCandidates(e);
  }
}

// hotpath
void TwigMachine::TryStartNode(int node_id, int level, xml::NodeId id,
                               const std::vector<xml::Attribute>& attrs) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  // Analyzer window: the DTD proves this node can never bind at this
  // level — skip the whole δs attempt.
  if (!level_bounds_.empty() &&
      !level_bounds_[static_cast<size_t>(node_id)].Allows(level)) {
    return;
  }
  // Qualification: the root checks the element level directly (the
  // document root is at level 0); other nodes need a parent-stack entry
  // whose level difference satisfies ζ(v).
  // Stack levels are strictly increasing (entries belong to the chain of
  // active ancestors), so qualification needs no scan: for '≥' edges the
  // bottom (shallowest) entry is the best witness; for '=' edges the
  // required level is unique and found by binary search.
  bool qualified = false;
  if (v->parent == nullptr) {
    if (root_context_ == nullptr) {
      qualified = v->edge.Satisfies(level);
    } else if (!root_context_->empty()) {
      // Anchored root: qualify against the external ancestor stack, which
      // is sorted ascending like a machine stack.
      if (!v->edge.exact) {
        qualified = level - root_context_->front() >= v->edge.distance;
      } else {
        qualified = std::binary_search(root_context_->begin(),
                                       root_context_->end(),
                                       level - v->edge.distance);
      }
    }
  } else {
    const PooledStack<Entry>& pstack = stacks_[v->parent->id];
    if (!pstack.empty()) {
      if (!v->edge.exact) {
        qualified = level - pstack[0].level >= v->edge.distance;
      } else {
        const int want = level - v->edge.distance;
        auto it = std::lower_bound(
            pstack.begin(), pstack.end(), want,
            [](const Entry& e, int l) { return e.level < l; });
        qualified = it != pstack.end() && it->level == want;
      }
    }
  }
  if (!qualified) return;

  // Earliest-decision skips: the DTD proves this subtree can never meet
  // v's obligations (refuted) or can never decide any output (useless), so
  // the entry would be dead weight. kObserve must not act — it exists to
  // measure what kOn would have done while staying byte-identical.
  const NodeDecision* dec =
      decision_mode_ != EarlyDecisionMode::kOff ? DecisionFor(node_id)
                                                : nullptr;
  if (dec != nullptr && decision_mode_ == EarlyDecisionMode::kOn) {
    if (dec->refuted()) {
      ++stats_.early_dropped;
      return;
    }
    if (dec->useless()) {
      ++stats_.states_skipped;
      return;
    }
  }

  // Resolve attribute tests now: attributes are fully known at
  // startElement (footnote 2 of the paper).
  uint64_t branch = 0;
  bool attr_failed = false;
  for (const AttributeTest& test : v->attr_tests) {
    ++stats_.predicate_checks;
    bool found = false;
    std::string_view value;
    for (const xml::Attribute& a : attrs) {
      if (a.name == test.name) {
        found = true;
        value = a.value;
        break;
      }
    }
    bool pass = found;
    if (pass && test.has_value_test) {
      pass = EvalValueTest(value, test.op, test.literal,
                           test.literal_is_number);
    }
    if (pass) {
      branch |= uint64_t{1} << test.branch_slot;
    } else {
      attr_failed = true;
    }
  }
  if (attr_failed && options_.prune_static_failures) return;

  // Ancestor-ordering lemma: stack levels stay strictly increasing —
  // every entry belongs to the chain of currently-open ancestors.
  TWIGM_INVARIANT(
      stacks_[node_id].empty() || stacks_[node_id].back().level < level,
      "stack levels not strictly increasing at push", offset());
  // Attribute slots must stay within the node's declared branch slots.
  TWIGM_INVARIANT(v->num_slots >= 64 || branch >> v->num_slots == 0,
                  "initial branch bits outside the node's slot range",
                  offset());
  // The pooled slot may hold a previous occupant's state: reset each field.
  Entry& entry = stacks_[node_id].push();
  entry.level = level;
  entry.branch = branch;
  entry.implied = 0;
  entry.dflags = 0;
  entry.candidates.clear();
  entry.text.clear();
  if (decision_mode_ != EarlyDecisionMode::kOff) {
    if (dec != nullptr) {
      entry.implied = dec->implied_mask & v->required_mask;
      if (dec->value_implied()) entry.dflags |= kValueSure;
    }
    if (!v->has_value_test) entry.dflags |= kValueSure;
  }
  if (v->is_return) {
    entry.candidates.push_back(id);
    ++live_candidates_;
    sink_->OnCandidate(id);
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kCandidate, node_id, level, id, 1);
    }
  }
  ++stats_.pushes;
  ++live_entries_;
  if (instr_ != nullptr) {
    const uint64_t depth = stacks_[node_id].size();
    instr_->NoteNodeDepth(node_id, depth);
    instr_->Trace(obs::TraceEvent::Kind::kStackPush, node_id, level, id,
                  depth);
  }
  // Certain already at push (no open obligations, or all implied by the
  // DTD): cascade now — this is what turns an opening tag into an
  // earliest emission.
  if (decision_mode_ != EarlyDecisionMode::kOff &&
      EntrySatisfiedNow(v, entry)) {
    ResolveCertain(v, entry);
  }
}

// hotpath
void TwigMachine::StartElement(const xml::TagToken& tag, int level,
                               xml::NodeId id,
                               const std::vector<xml::Attribute>& attrs) {
  ++stats_.start_events;
  // Map the tag onto the decision table's element ids once per event.
  // kNoSymbol events (interning off) carry no static facts — the dynamic
  // cascade still runs, which is the sound degrade.
  cur_elem_ = -1;
  if (decisions_ != nullptr && decision_mode_ != EarlyDecisionMode::kOff &&
      tag.symbol != xml::kNoSymbol && tag.symbol < sym_to_elem_.size()) {
    cur_elem_ = sym_to_elem_[tag.symbol];
  }
  // δs: try every machine node whose label matches the tag, parents first
  // (pre-order). Wildcard nodes match every tag. Same-event pushes cannot
  // enable each other (ζ distances are ≥ 1, so a just-pushed entry at
  // `level` never qualifies another node at `level`), so dispatching the
  // label group and the wildcard group separately is order-independent.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < start_postings_.size()) {
      for (int node_id : start_postings_[tag.symbol]) {
        TryStartNode(node_id, level, id, attrs);
      }
    }
    // Symbols past the bound range are document tags that are no query
    // label: only wildcards can match.
  } else {
    auto it = label_index_.find(tag.text);
    if (it != label_index_.end()) {
      for (int node_id : it->second) TryStartNode(node_id, level, id, attrs);
    }
  }
  for (int node_id : wildcard_nodes_) TryStartNode(node_id, level, id, attrs);
  UpdateMemoryStats();
}

// hotpath
void TwigMachine::Text(std::string_view text, int level) {
  // Only nodes with value tests accumulate text, and only for the element
  // currently on top of their stack (direct character data).
  for (int node_id : value_test_nodes_) {
    PooledStack<Entry>& stack = stacks_[node_id];
    if (!stack.empty() && stack.back().level == level) {
      stack.back().text.append(text);
      live_text_bytes_ += text.size();
    }
  }
}

// hotpath
void TwigMachine::PopNode(int node_id, int level) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  PooledStack<Entry>& stack = stacks_[node_id];
  if (stack.empty() || stack.back().level != level) return;

  // Pop by reference: the slot stays valid (and pooled) until the next push
  // onto this stack, which cannot happen inside δe.
  Entry& top = stack.back();
  stack.pop();
  // Candidate-set lemma (Theorem 4.4's dedup argument): candidates are
  // kept strictly ascending, so unions deduplicate and the R·B bound
  // holds.
  TWIGM_INVARIANT(
      std::is_sorted(top.candidates.begin(), top.candidates.end()) &&
          std::adjacent_find(top.candidates.begin(), top.candidates.end()) ==
              top.candidates.end(),
      "popped candidate set not strictly ascending", offset());
  // Branch bits never leave the node's declared slot range.
  TWIGM_INVARIANT(v->num_slots >= 64 || top.branch >> v->num_slots == 0,
                  "branch bits outside the node's slot range at pop",
                  offset());
  ++stats_.pops;
  --live_entries_;
  live_candidates_ -= top.candidates.size();
  live_text_bytes_ -= top.text.size();
  if (instr_ != nullptr) {
    instr_->Trace(obs::TraceEvent::Kind::kStackPop, node_id, level, 0,
                  stack.size());
  }

  ++stats_.predicate_checks;
  bool satisfied = (top.branch & v->required_mask) == v->required_mask;
  if (satisfied && v->has_value_test) {
    satisfied =
        EvalValueTest(top.text, v->op, v->literal, v->literal_is_number);
  }
  if (!satisfied) {
    // Prune: drop every match `top` was part of.
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kPrune, node_id, level, 0,
                    top.candidates.size());
    }
    return;
  }

  if (v->parent == nullptr) {
    // Root: output candidates. A candidate may have reached several root
    // entries on recursive data; the epoch-stamped id array emits each id
    // once at O(1) per candidate.
    obs::TimerScope emit_timer(
        instr_ != nullptr ? instr_->stage_slot(obs::Stage::kEmit) : nullptr);
    const int return_node =
        graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
    for (xml::NodeId id : top.candidates) {
      if (!MarkEmitted(id)) continue;
      sink_->OnResult(MatchInfo{id, offset(), return_node});
      ++stats_.results;
      if (decision_mode_ != EarlyDecisionMode::kOff) RecordGap(id);
      if (instr_ != nullptr) {
        instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, level, id,
                      0);
      }
    }
    if (stack.empty()) ClearEmitted();
    return;
  }

  // Propagate to qualifying parent entries. Levels are strictly
  // increasing, so '≥' edges match a prefix of the stack and '=' edges
  // match at most one entry.
  const uint64_t bit = uint64_t{1} << v->branch_slot;
  ForEachQualifyingParent(v, top.level, [&](Entry& e) {
    // Branch-boolean monotonicity (δe correctness): propagation only
    // sets bits, and only the child's own slot.
    TWIGM_INVARIANT(v->parent->num_slots >= 64 ||
                        (e.branch | bit) >> v->parent->num_slots == 0,
                    "propagated branch bit outside parent's slot range",
                    offset());
    e.branch |= bit;
    if (!top.candidates.empty()) {
      if (decision_mode_ == EarlyDecisionMode::kOn &&
          (e.dflags & kCertainOutput) != 0) {
        // The target entry already reaches a certain root: these uploads
        // are certain results — emit instead of buffering. The eventual
        // root pop finds nothing left to deliver (MarkEmitted dedups any
        // copies arriving through other entries).
        for (xml::NodeId id : top.candidates) EmitEarly(id);
      } else {
        ++stats_.candidate_unions;
        live_candidates_ += UnionSortedIds(top.candidates, &e.candidates);
        if (decision_mode_ == EarlyDecisionMode::kObserve &&
            (e.dflags & kCertainOutput) != 0) {
          for (xml::NodeId id : top.candidates) MarkProved(id);
        }
        TWIGM_INVARIANT(
            std::adjacent_find(e.candidates.begin(), e.candidates.end(),
                               std::greater_equal<xml::NodeId>()) ==
                e.candidates.end(),
            "candidate union broke strict ordering", offset());
      }
    }
    // The real bit may complete the parent's obligations (e.g. a
    // value-test child that only resolves at its pop): cascade now.
    if (decision_mode_ != EarlyDecisionMode::kOff &&
        (e.dflags & kResolved) == 0 && EntrySatisfiedNow(v->parent, e)) {
      ResolveCertain(v->parent, e);
    }
  });
}

// hotpath
void TwigMachine::EndElement(const xml::TagToken& tag, int level) {
  ++stats_.end_events;
  // δe: pop every machine node whose top entry has this level. Processed in
  // reverse pre-order so that a child's propagation into parent entries is
  // complete before any code inspects them; entries popped in this event
  // can never be propagation targets of this event (ζ distances are ≥ 1).
  // The per-symbol end postings merge label and wildcard nodes into one
  // pre-order list precisely so this reverse walk stays child-before-parent
  // across both kinds.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    const std::vector<int>& list = tag.symbol < end_postings_.size()
                                       ? end_postings_[tag.symbol]
                                       : wildcard_nodes_;
    for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
      PopNode(*rit, level);
    }
  } else {
    for (auto rit = preorder_.rbegin(); rit != preorder_.rend(); ++rit) {
      if (!graph_.nodes()[*rit]->MatchesTag(tag)) continue;
      PopNode(*rit, level);
    }
  }
  UpdateMemoryStats();
}

void TwigMachine::EndDocument() {
  // Nothing pending: every element's end event popped its entries.
}

}  // namespace twigm::core
