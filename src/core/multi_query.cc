#include "core/multi_query.h"

#include "xpath/query_tree.h"

namespace twigm::core {

namespace {

EngineKind PickEngineForTree(const xpath::QueryTree& query) {
  if (query.is_linear() && !query.has_value_tests()) return EngineKind::kPathM;
  if (!query.has_descendant_axis() && !query.has_wildcard()) {
    return EngineKind::kBranchM;
  }
  return EngineKind::kTwigM;
}

}  // namespace

Result<std::unique_ptr<MultiQueryProcessor>> MultiQueryProcessor::Create(
    const std::vector<std::string>& queries, MultiQueryResultSink* sink,
    EvaluatorOptions options) {
  if (sink == nullptr) {
    return Status::InvalidArgument(
        "MultiQueryProcessor requires a result sink");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("no queries given");
  }
  auto proc = std::unique_ptr<MultiQueryProcessor>(new MultiQueryProcessor());
  proc->sink_ = sink;
  proc->options_ = options;
  proc->entries_.reserve(queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(queries[i]);
    if (!tree.ok()) {
      return Status::InvalidArgument(
          "query #" + std::to_string(i) + ": " + tree.status().ToString());
    }
    Entry entry;
    entry.tag_sink = std::make_unique<TaggingSink>(proc.get(), i);
    entry.kind = options.engine == EngineKind::kAuto
                     ? PickEngineForTree(tree.value())
                     : options.engine;
    obs::Instrumentation* instr = options.instrumentation;
    uint64_t* offset_slot = instr != nullptr ? instr->byte_offset_slot()
                                             : &proc->stream_offset_;
    switch (entry.kind) {
      case EngineKind::kPathM: {
        Result<std::unique_ptr<PathMachine>> m =
            PathMachine::Create(tree.value(), entry.tag_sink.get());
        if (!m.ok()) return m.status();
        entry.path = std::move(m).value();
        entry.path->set_instrumentation(instr);
        entry.path->set_stream_offset(offset_slot);
        entry.machine = entry.path.get();
        break;
      }
      case EngineKind::kBranchM: {
        Result<std::unique_ptr<BranchMachine>> m =
            BranchMachine::Create(tree.value(), entry.tag_sink.get());
        if (!m.ok()) return m.status();
        entry.branch = std::move(m).value();
        entry.branch->set_instrumentation(instr);
        entry.branch->set_stream_offset(offset_slot);
        entry.machine = entry.branch.get();
        break;
      }
      case EngineKind::kAuto:
      case EngineKind::kTwigM: {
        Result<std::unique_ptr<TwigMachine>> m = TwigMachine::Create(
            tree.value(), entry.tag_sink.get(), options.twig);
        if (!m.ok()) return m.status();
        entry.kind = EngineKind::kTwigM;
        entry.twig = std::move(m).value();
        entry.twig->set_instrumentation(instr);
        entry.twig->set_stream_offset(offset_slot);
        entry.machine = entry.twig.get();
        break;
      }
    }
    proc->entries_.push_back(std::move(entry));
  }

  proc->fan_out_ = std::make_unique<FanOut>(proc.get());
  proc->driver_ = std::make_unique<xml::EventDriver>(proc->fan_out_.get());
  proc->driver_->set_instrumentation(options.instrumentation);
  proc->parser_ =
      std::make_unique<xml::SaxParser>(proc->driver_.get(), options.sax);
  proc->parser_->set_offset_slot(options.instrumentation != nullptr
                                     ? options.instrumentation->byte_offset_slot()
                                     : &proc->stream_offset_);
  // Bind every machine's labels to the shared parser's tag dictionary so
  // the fan-out dispatches on SymbolIds (DESIGN.md §10).
  for (Entry& e : proc->entries_) {
    if (e.twig != nullptr) e.twig->BindInterner(proc->parser_->interner());
    if (e.path != nullptr) e.path->BindInterner(proc->parser_->interner());
    if (e.branch != nullptr) {
      e.branch->BindInterner(proc->parser_->interner());
    }
  }
  return proc;
}

Status MultiQueryProcessor::Consume(const xml::InputChunk& chunk) {
  obs::TimerScope parse(
      options_.instrumentation != nullptr
          ? options_.instrumentation->stage_slot(obs::Stage::kParse)
          : nullptr);
  return parser_->Consume(chunk);
}

Status MultiQueryProcessor::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

void MultiQueryProcessor::Reset() {
  for (Entry& e : entries_) {
    if (e.twig != nullptr) e.twig->Reset();
    if (e.path != nullptr) e.path->Reset();
    if (e.branch != nullptr) e.branch->Reset();
  }
  total_results_ = 0;
  stream_offset_ = 0;
  // Rewind the parser and driver in place: the parser's interner holds the
  // machines' symbol bindings and its buffers stay warm across documents.
  parser_->Reset();
  driver_->Reset();
}

const MachineGraph& MultiQueryProcessor::graph(size_t query_index) const {
  const Entry& e = entries_[query_index];
  switch (e.kind) {
    case EngineKind::kPathM:
      return e.path->graph();
    case EngineKind::kBranchM:
      return e.branch->graph();
    default:
      return e.twig->graph();
  }
}

void MultiQueryProcessor::set_level_bounds(size_t query_index,
                                           LevelBounds bounds) {
  Entry& e = entries_[query_index];
  switch (e.kind) {
    case EngineKind::kPathM:
      e.path->set_level_bounds(std::move(bounds));
      break;
    case EngineKind::kBranchM:
      e.branch->set_level_bounds(std::move(bounds));
      break;
    default:
      e.twig->set_level_bounds(std::move(bounds));
      break;
  }
}

void MultiQueryProcessor::set_decision_table(
    size_t query_index, std::shared_ptr<const DecisionTable> table) {
  Entry& e = entries_[query_index];
  const EarlyDecisionMode mode = options_.enable_early_decisions;
  switch (e.kind) {
    case EngineKind::kPathM:
      e.path->set_decisions(std::move(table), mode);
      break;
    case EngineKind::kBranchM:
      e.branch->set_decisions(std::move(table), mode);
      break;
    default:
      e.twig->set_decisions(std::move(table), mode);
      break;
  }
}

const EngineStats& MultiQueryProcessor::stats(size_t query_index) const {
  const Entry& e = entries_[query_index];
  switch (e.kind) {
    case EngineKind::kPathM:
      return e.path->stats();
    case EngineKind::kBranchM:
      return e.branch->stats();
    default:
      return e.twig->stats();
  }
}

}  // namespace twigm::core
