// Public entry point: a streaming XPath processor that wires the SAX parser,
// the modified-SAX event driver, and a query machine together.
//
//   VectorResultSink sink;
//   auto proc = XPathStreamProcessor::Create("//a[d]//b[e]//c", &sink);
//   for (chunk : stream) proc.value()->Feed(chunk);
//   proc.value()->Finish();
//   // sink.ids() holds the pre-order ids of all result elements.
//
// Engine selection (EngineKind::kAuto) follows the paper's structure:
// linear queries run on PathM, child-only queries with predicates on
// BranchM, everything else on TwigM.

#ifndef TWIGM_CORE_EVALUATOR_H_
#define TWIGM_CORE_EVALUATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/branch_machine.h"
#include "core/fragment.h"
#include "core/machine_stats.h"
#include "core/path_machine.h"
#include "core/result_sink.h"
#include "core/twig_machine.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// Which machine evaluates the query.
enum class EngineKind {
  kAuto,     // pick by query structure
  kPathM,    // XP{/,//,*} only
  kBranchM,  // XP{/,[]} only
  kTwigM,    // full XP{/,//,*,[]}
};

/// Returns a display name ("TwigM", ...).
const char* EngineKindToString(EngineKind kind);

struct EvaluatorOptions {
  EngineKind engine = EngineKind::kAuto;
  TwigMachineOptions twig;
  xml::SaxParserOptions sax;
};

/// A compiled query bound to a result sink, consuming raw XML bytes.
class XPathStreamProcessor {
 public:
  /// Compiles `query` and builds the machine. `sink` must outlive the
  /// processor; not owned.
  static Result<std::unique_ptr<XPathStreamProcessor>> Create(
      std::string_view query, ResultSink* sink,
      EvaluatorOptions options = EvaluatorOptions());

  /// Like Create, but results are delivered as serialized XML fragments
  /// (footnote 3 of the paper). `fragments` must outlive the processor;
  /// `ids` (optional) additionally receives the plain node ids.
  static Result<std::unique_ptr<XPathStreamProcessor>> CreateWithFragments(
      std::string_view query, FragmentSink* fragments,
      ResultSink* ids = nullptr, EvaluatorOptions options = EvaluatorOptions());

  XPathStreamProcessor(const XPathStreamProcessor&) = delete;
  XPathStreamProcessor& operator=(const XPathStreamProcessor&) = delete;

  /// Feeds a chunk of the XML document. Results are emitted to the sink as
  /// soon as they are proven.
  Status Feed(std::string_view chunk);

  /// Declares end of input.
  Status Finish();

  /// Resets parser and machine state so another document can be processed
  /// with the same compiled query.
  void Reset();

  const EngineStats& stats() const;
  EngineKind engine_kind() const { return engine_kind_; }
  const xpath::QueryTree& query() const { return query_; }

 private:
  XPathStreamProcessor() = default;

  xpath::QueryTree query_;
  EngineKind engine_kind_ = EngineKind::kTwigM;
  EvaluatorOptions options_;

  // Exactly one of these is set, matching engine_kind_.
  std::unique_ptr<TwigMachine> twig_;
  std::unique_ptr<PathMachine> path_;
  std::unique_ptr<BranchMachine> branch_;

  xml::StreamEventSink* machine_ = nullptr;  // the active machine
  std::unique_ptr<FragmentRecorder> recorder_;  // set in fragment mode
  std::unique_ptr<xml::EventDriver> driver_;
  std::unique_ptr<xml::SaxParser> parser_;
};

/// One-shot convenience: evaluates `query` over `document`, returning result
/// ids in emission order.
Result<std::vector<xml::NodeId>> EvaluateToIds(
    std::string_view query, std::string_view document,
    EvaluatorOptions options = EvaluatorOptions());

}  // namespace twigm::core

#endif  // TWIGM_CORE_EVALUATOR_H_
