// Public entry point: a streaming XPath processor that wires the SAX parser,
// the modified-SAX event driver, and a query machine together.
//
//   VectorResultSink sink;
//   auto proc = XPathStreamProcessor::Create("//a[d]//b[e]//c", &sink);
//   for (chunk : stream) proc.value()->Consume({chunk, /*last=*/false});
//   proc.value()->Consume({{}, /*last=*/true});
//   // sink.ids() holds the pre-order ids of all result elements.
//
// Bytes enter through the unified xml::ByteSource API: push one InputChunk
// at a time with Consume, or pull a whole source with Pump.
//
// Everything optional hangs off EvaluatorOptions: engine selection
// (EngineKind::kAuto follows the paper's structure — linear queries on
// PathM, child-only queries with predicates on BranchM, everything else on
// TwigM), fragment capture (an observer whose wants_fragments() returns
// true, or capture_fragments = true, gets OnFragment deliveries), and
// observability (instrumentation = an obs::Instrumentation* collects
// per-stage wall time, registry metrics, per-query-node stack depth peaks
// and trace events; null — the default — costs one predictable branch per
// instrumented site).

#ifndef TWIGM_CORE_EVALUATOR_H_
#define TWIGM_CORE_EVALUATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/branch_machine.h"
#include "core/decision_table.h"
#include "core/fragment.h"
#include "core/machine_stats.h"
#include "core/path_machine.h"
#include "core/result_sink.h"
#include "core/twig_machine.h"
#include "obs/instrumentation.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// Which machine evaluates the query.
enum class EngineKind {
  kAuto,     // pick by query structure
  kPathM,    // XP{/,//,*} only
  kBranchM,  // XP{/,[]} only
  kTwigM,    // full XP{/,//,*,[]}
};

/// Returns a display name ("TwigM", ...).
const char* EngineKindToString(EngineKind kind);

struct EvaluatorOptions {
  EngineKind engine = EngineKind::kAuto;
  TwigMachineOptions twig;
  xml::SaxParserOptions sax;
  /// Force fragment capture even if the observer's wants_fragments() is
  /// false (capture is always on when it is true).
  bool capture_fragments = false;
  /// Observability hook; may be null (near-zero overhead). Not owned; must
  /// outlive the processor.
  obs::Instrumentation* instrumentation = nullptr;
  /// Earliest-query-answering mode the machine runs in once a decision
  /// table is installed (InstallDecisionTable or
  /// analysis::EnableEarlyDecisions). kOff ignores installed tables;
  /// kObserve measures emission gaps without changing behavior; kOn emits
  /// and drops candidates at the first certain event (DESIGN.md §13).
  EarlyDecisionMode enable_early_decisions = EarlyDecisionMode::kOff;
};

/// A compiled query bound to a match observer, consuming raw XML bytes.
class XPathStreamProcessor {
 public:
  /// Compiles `query` and builds the machine. `observer` must outlive the
  /// processor; not owned. Fragment capture and instrumentation are
  /// configured through `options` (see EvaluatorOptions).
  static Result<std::unique_ptr<XPathStreamProcessor>> Create(
      std::string_view query, MatchObserver* observer,
      EvaluatorOptions options = EvaluatorOptions());

  XPathStreamProcessor(const XPathStreamProcessor&) = delete;
  XPathStreamProcessor& operator=(const XPathStreamProcessor&) = delete;
  ~XPathStreamProcessor();  // out-of-line: ExportHandles is incomplete here

  /// Consumes one chunk of the XML document (chunk.last declares end of
  /// input). Results are emitted to the observer as soon as they are proven.
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Resets parser and machine state so another document can be processed
  /// with the same compiled query. Attached instrumentation keeps
  /// accumulating (call Instrumentation::ResetValues() for per-document
  /// metrics).
  void Reset();

  const EngineStats& stats() const;
  EngineKind engine_kind() const { return engine_kind_; }
  const xpath::QueryTree& query() const { return query_; }

  /// The compiled machine graph (input to static analysis passes such as
  /// level bounds and decision-table compilation).
  const MachineGraph& machine_graph() const;

  /// Installs an earliest-decision table on the machine; it runs in the
  /// mode chosen by EvaluatorOptions::enable_early_decisions (a table
  /// installed under kOff is retained but ignored). Null uninstalls.
  void InstallDecisionTable(std::shared_ptr<const DecisionTable> table);
  /// Peak bytes buffered by fragment capture (0 when capture is off).
  uint64_t fragment_peak_buffered_bytes() const {
    return recorder_ != nullptr ? recorder_->peak_buffered_bytes() : 0;
  }

  /// Exports the engine's accounting into `registry` (prefix "engine.",
  /// plus "fragment.peak_buffered_bytes" in fragment mode). Registers the
  /// instruments on first call and refreshes their values on subsequent
  /// calls, so snapshots can be taken per document.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  XPathStreamProcessor();  // out-of-line: ExportHandles is incomplete here

  void WireStream();

  xpath::QueryTree query_;
  EngineKind engine_kind_ = EngineKind::kTwigM;
  EvaluatorOptions options_;

  // Exactly one of these is set, matching engine_kind_.
  std::unique_ptr<TwigMachine> twig_;
  std::unique_ptr<PathMachine> path_;
  std::unique_ptr<BranchMachine> branch_;

  xml::StreamEventSink* machine_ = nullptr;  // the active machine
  std::unique_ptr<FragmentRecorder> recorder_;  // set in fragment mode
  std::unique_ptr<xml::EventDriver> driver_;
  std::unique_ptr<xml::SaxParser> parser_;

  // Shared stream position: written by the parser before each construct,
  // read by the machines when emitting (MatchInfo::byte_offset).
  uint64_t stream_offset_ = 0;

  // Lazily-registered export handles (see ExportMetrics).
  struct ExportHandles;
  mutable std::unique_ptr<ExportHandles> export_;
};

/// One-shot convenience: evaluates `query` over `document`, returning result
/// ids in emission order.
Result<std::vector<xml::NodeId>> EvaluateToIds(
    std::string_view query, std::string_view document,
    EvaluatorOptions options = EvaluatorOptions());

}  // namespace twigm::core

#endif  // TWIGM_CORE_EVALUATOR_H_
