#include "core/value_test.h"

#include <cstdlib>
#include <string>

namespace twigm::core {

namespace {

// Parses `s` as a double; returns false if `s` is not entirely a number
// (modulo surrounding ASCII whitespace).
bool ParseNumber(std::string_view s, double* out) {
  // Trim ASCII whitespace.
  size_t begin = 0;
  size_t end = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  if (begin == end) return false;
  const std::string buf(s.substr(begin, end - begin));
  char* parse_end = nullptr;
  const double value = std::strtod(buf.c_str(), &parse_end);
  if (parse_end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

template <typename T>
bool Compare(const T& lhs, xpath::CmpOp op, const T& rhs) {
  switch (op) {
    case xpath::CmpOp::kEq: return lhs == rhs;
    case xpath::CmpOp::kNe: return lhs != rhs;
    case xpath::CmpOp::kLt: return lhs < rhs;
    case xpath::CmpOp::kLe: return lhs <= rhs;
    case xpath::CmpOp::kGt: return lhs > rhs;
    case xpath::CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool EvalValueTest(std::string_view text, xpath::CmpOp op,
                   std::string_view literal, bool literal_is_number) {
  if (literal_is_number) {
    double text_num = 0.0;
    double literal_num = 0.0;
    if (ParseNumber(text, &text_num) && ParseNumber(literal, &literal_num)) {
      return Compare(text_num, op, literal_num);
    }
    // A non-numeric node value never satisfies a numeric comparison.
    return op == xpath::CmpOp::kNe;
  }
  return Compare(std::string_view(text), op, literal);
}

}  // namespace twigm::core
