// Debug-build invariant checker for the streaming machines.
//
// Configure with -DTWIGM_CHECK_INVARIANTS=ON to compile the machines with
// assertions of the paper's structural lemmas at every stack transition:
//
//   * ancestor ordering (Lemma behind section 4.1's encoding): the levels
//     in any one machine-node / trie-node stack are strictly increasing —
//     every entry belongs to the chain of currently-open ancestors;
//   * branch-boolean monotonicity (δe correctness): bits in an entry's
//     branch-match array are only ever set, never cleared, and stay within
//     the node's declared slot mask;
//   * candidate-set ordering/distinctness (Theorem 4.4's dedup argument):
//     each entry's candidate set is strictly ascending, so UnionSortedIds
//     deduplicates and the R·B bound holds.
//
// A violation aborts with the site, the offending value, and the stream
// byte offset, so a failing document pinpoints the transition. The checks
// sit on the same sites as the TraceSink hooks (push/pop/propagate), making
// a trace of a failing run line up 1:1 with the aborted invariant.
//
// When the option is OFF (default), TWIGM_INVARIANT compiles away entirely.

#ifndef TWIGM_CORE_INVARIANTS_H_
#define TWIGM_CORE_INVARIANTS_H_

#include <cstdint>

namespace twigm::core {

/// Prints a diagnostic and aborts. Out-of-line so the macro stays cheap to
/// instantiate; never returns.
[[noreturn]] void InvariantFailure(const char* what, const char* file,
                                   int line, uint64_t byte_offset);

}  // namespace twigm::core

#if defined(TWIGM_CHECK_INVARIANTS)
#define TWIGM_INVARIANT(cond, what, byte_offset)                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::twigm::core::InvariantFailure((what), __FILE__, __LINE__,      \
                                      (byte_offset));                  \
    }                                                                  \
  } while (false)
#else
#define TWIGM_INVARIANT(cond, what, byte_offset) ((void)0)
#endif

#endif  // TWIGM_CORE_INVARIANTS_H_
