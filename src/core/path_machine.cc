#include "core/path_machine.h"

#include "core/invariants.h"

namespace twigm::core {

Result<std::unique_ptr<PathMachine>> PathMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer) {
  if (observer == nullptr) {
    return Status::InvalidArgument("PathMachine requires a match observer");
  }
  if (query.has_predicates() || query.has_value_tests()) {
    return Status::NotSupported(
        "PathM evaluates XP{/,//,*} only; use BranchM or TwigM for "
        "predicates");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<PathMachine>(
      new PathMachine(std::move(graph).value(), observer));
}

PathMachine::PathMachine(MachineGraph graph, MatchObserver* observer)
    : graph_(std::move(graph)), sink_(observer) {
  // A linear query's machine graph is a chain from the root to the return
  // node.
  const MachineNode* node = graph_.root();
  while (node != nullptr) {
    chain_.push_back(node);
    node = node->children.empty() ? nullptr : node->children.front();
  }
  stacks_.resize(chain_.size());
  for (size_t i = 0; i < chain_.size(); ++i) {
    if (chain_[i]->is_wildcard) wildcard_positions_.push_back(i);
  }
}

void PathMachine::BindInterner(xml::TagInterner* interner) {
  for (const auto& node : graph_.nodes()) {
    if (!node->is_wildcard) node->symbol = interner->Intern(node->label);
  }
  postings_.assign(interner->size(), {});
  for (size_t i = 0; i < chain_.size(); ++i) {
    if (!chain_[i]->is_wildcard) {
      postings_[chain_[i]->symbol].push_back(i);
    }
  }
  bound_ = true;
  interner_ = interner;
  RebuildSymToElem();
}

void PathMachine::set_decisions(std::shared_ptr<const DecisionTable> table,
                                EarlyDecisionMode mode) {
  decisions_ = std::move(table);
  decision_mode_ = mode;
  RebuildSymToElem();
  RegisterGapHistogram();
}

void PathMachine::RebuildSymToElem() {
  sym_to_elem_.clear();
  if (decisions_ == nullptr || interner_ == nullptr) return;
  const std::vector<std::string>& names = decisions_->element_names();
  for (size_t e = 0; e < names.size(); ++e) {
    const xml::SymbolId s = interner_->Intern(names[e]);
    if (sym_to_elem_.size() <= s) sym_to_elem_.resize(s + 1, -1);
    sym_to_elem_[s] = static_cast<int32_t>(e);
  }
}

void PathMachine::RegisterGapHistogram() {
  if (instr_ == nullptr || gap_hist_ != nullptr) return;
  if (decision_mode_ == EarlyDecisionMode::kOff) return;
  gap_hist_ = instr_->registry().RegisterHistogram(
      "engine.emission_gap_bytes", obs::ExponentialBuckets(1, 4, 16));
}

const NodeDecision* PathMachine::DecisionFor(int node_id) const {
  if (cur_elem_ < 0 || decisions_ == nullptr) return nullptr;
  return &decisions_->at(static_cast<size_t>(node_id),
                         static_cast<size_t>(cur_elem_));
}

void PathMachine::Reset() {
  for (auto& stack : stacks_) stack.clear();
  stats_ = EngineStats();
  live_entries_ = 0;
  cur_elem_ = -1;
}

// hotpath
void PathMachine::TryStartPosition(size_t i, int level, xml::NodeId id) {
  const MachineNode* v = chain_[i];
  if (!level_bounds_.empty() &&
      !level_bounds_[static_cast<size_t>(v->id)].Allows(level)) {
    return;
  }
  bool qualified = false;
  if (i == 0) {
    qualified = v->edge.Satisfies(level);
  } else {
    for (int parent_level : stacks_[i - 1]) {
      if (v->edge.Satisfies(level - parent_level)) {
        qualified = true;
        break;
      }
    }
  }
  if (!qualified) return;
  // Earliest-decision skip: no output chain can complete below this
  // element, so the entry could never contribute to a result.
  if (decision_mode_ == EarlyDecisionMode::kOn) {
    const NodeDecision* dec = DecisionFor(v->id);
    if (dec != nullptr && (dec->useless() || dec->refuted())) {
      ++stats_.states_skipped;
      return;
    }
  }
  // Ancestor-ordering lemma: each stack holds levels of open ancestors,
  // strictly increasing bottom to top.
  TWIGM_INVARIANT(stacks_[i].empty() || stacks_[i].back() < level,
                  "PathM stack levels not strictly increasing at push",
                  offset());
  stacks_[i].push_back(level);
  ++stats_.pushes;
  ++live_entries_;
  if (instr_ != nullptr) {
    const uint64_t depth = stacks_[i].size();
    instr_->NoteNodeDepth(v->id, depth);
    instr_->Trace(obs::TraceEvent::Kind::kStackPush, v->id, level, id, depth);
  }
  if (v->is_return) {
    // Without predicates, candidacy and membership coincide: results are
    // emitted at startElement, the earliest point possible.
    sink_->OnCandidate(id);
    obs::TimerScope emit_timer(
        instr_ != nullptr ? instr_->stage_slot(obs::Stage::kEmit) : nullptr);
    sink_->OnResult(MatchInfo{id, offset(), v->id});
    ++stats_.results;
    if (decision_mode_ != EarlyDecisionMode::kOff) {
      // Start-event emission is the earliest possible point: gap 0.
      stats_.NoteGap(0);
      if (gap_hist_ != nullptr) gap_hist_->Observe(0);
    }
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kCandidate, v->id, level, id, 1);
      instr_->Trace(obs::TraceEvent::Kind::kEmit, v->id, level, id, 0);
    }
  }
}

// hotpath
void PathMachine::StartElement(const xml::TagToken& tag, int level,
                               xml::NodeId id,
                               const std::vector<xml::Attribute>& attrs) {
  (void)attrs;
  ++stats_.start_events;
  cur_elem_ = -1;
  if (decisions_ != nullptr && decision_mode_ != EarlyDecisionMode::kOff &&
      tag.symbol != xml::kNoSymbol && tag.symbol < sym_to_elem_.size()) {
    cur_elem_ = sym_to_elem_[tag.symbol];
  }
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      for (size_t i : postings_[tag.symbol]) TryStartPosition(i, level, id);
    }
    for (size_t i : wildcard_positions_) TryStartPosition(i, level, id);
  } else {
    for (size_t i = 0; i < chain_.size(); ++i) {
      if (chain_[i]->MatchesTag(tag)) TryStartPosition(i, level, id);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteBytes(live_entries_ * sizeof(int));
}

// hotpath
void PathMachine::PopPosition(size_t i, int level) {
  std::vector<int>& stack = stacks_[i];
  if (!stack.empty() && stack.back() == level) {
    stack.pop_back();
    ++stats_.pops;
    --live_entries_;
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kStackPop, chain_[i]->id, level, 0,
                    stack.size());
    }
  }
}

// hotpath
void PathMachine::EndElement(const xml::TagToken& tag, int level) {
  ++stats_.end_events;
  // Pops at different positions are independent (no propagation in PathM),
  // so dispatch order does not matter.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      for (size_t i : postings_[tag.symbol]) PopPosition(i, level);
    }
    for (size_t i : wildcard_positions_) PopPosition(i, level);
  } else {
    for (size_t i = 0; i < chain_.size(); ++i) {
      if (chain_[i]->MatchesTag(tag)) PopPosition(i, level);
    }
  }
  stats_.NoteEntries(live_entries_);
}

void PathMachine::EndDocument() {}

}  // namespace twigm::core
