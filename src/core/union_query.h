// Union queries: `//a/b | //c[d]` — XPath 1.0's top-level `|` operator.
//
// Each branch is compiled to its own machine (via MultiQueryProcessor's
// fan-out, so the document is parsed once); results are the set union:
// an element matched by several branches is reported exactly once, the
// first time any branch proves it.

#ifndef TWIGM_CORE_UNION_QUERY_H_
#define TWIGM_CORE_UNION_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/multi_query.h"
#include "core/result_sink.h"

namespace twigm::core {

/// Splits `query` on top-level '|' into branch texts. A query without '|'
/// yields one branch. Fails on empty branches or lexing errors.
Result<std::vector<std::string>> SplitUnionQuery(std::string_view query);

/// A compiled union query bound to a result sink.
class UnionQueryProcessor {
 public:
  /// Compiles every branch of `query`. Also accepts branch-free queries
  /// (degenerates to a single machine plus dedup). `observer` not owned.
  static Result<std::unique_ptr<UnionQueryProcessor>> Create(
      std::string_view query, MatchObserver* observer,
      EvaluatorOptions options = EvaluatorOptions());

  UnionQueryProcessor(const UnionQueryProcessor&) = delete;
  UnionQueryProcessor& operator=(const UnionQueryProcessor&) = delete;

  /// Consumes one chunk (chunk.last declares end of input).
  Status Consume(const xml::InputChunk& chunk) {
    return multi_->Consume(chunk);
  }

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source) { return multi_->Pump(source); }

  void Reset() {
    multi_->Reset();
    dedup_.emitted.clear();
  }

  size_t branch_count() const { return multi_->query_count(); }
  const EngineStats& branch_stats(size_t i) const { return multi_->stats(i); }

  /// Results emitted so far (after set-union deduplication).
  uint64_t results() const { return dedup_.results; }

 private:
  // Drops ids already reported by another branch.
  struct DedupSink : MultiQueryResultSink {
    void OnResult(size_t query_index, const MatchInfo& match) override {
      (void)query_index;
      if (emitted.insert(match.id).second) {
        out->OnResult(match);
        ++results;
      }
    }
    MatchObserver* out = nullptr;
    std::unordered_set<xml::NodeId> emitted;
    uint64_t results = 0;
  };

  UnionQueryProcessor() = default;

  DedupSink dedup_;
  std::unique_ptr<MultiQueryProcessor> multi_;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_UNION_QUERY_H_
