// Match delivery: the unified observer interface for query results.
//
// Engines report three things about a match's lifecycle, all through one
// `MatchObserver`:
//   * OnCandidate(id) — the element was just recorded as a *possible*
//     result (pushed into the return node's candidate set), before its
//     membership is decided;
//   * OnResult(MatchInfo) — membership proven; carries the node id, the
//     stream byte offset at which the proof happened, and the machine node
//     that proved it. Engines emit as soon as membership is decided (the
//     streaming requirement of section 1) and report each result exactly
//     once. byte_offset - (the offset at OnCandidate time) is the result's
//     emission latency in bytes;
//   * OnFragment(id, xml) — only when the observer opts in via
//     wants_fragments(): the re-serialized subtree of a result element
//     (footnote 3 of the paper), delivered at max(subtree fully parsed,
//     membership proven).
//
// `VectorResultSink` and `CountingResultSink` are the common adapters.

#ifndef TWIGM_CORE_RESULT_SINK_H_
#define TWIGM_CORE_RESULT_SINK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "xml/sax_event.h"

namespace twigm::core {

/// Everything an engine knows about a proven match.
struct MatchInfo {
  /// Pre-order node id of the result element.
  xml::NodeId id = 0;
  /// Byte offset (in the input stream) of the SAX construct whose
  /// processing proved the match; 0 when the machine is fed events directly
  /// without a stream position source.
  uint64_t byte_offset = 0;
  /// Dense MachineNode::id of the machine node that emitted (the query's
  /// return node); -1 when not applicable.
  int query_node = -1;
};

/// Receives candidate announcements, proven results, and (optionally)
/// result fragments. Only OnResult is mandatory.
class MatchObserver {
 public:
  virtual ~MatchObserver() = default;

  /// The element became a possible result; membership is not yet decided.
  /// Called before OnResult for the same id (in the same event for PathM,
  /// where candidacy and membership coincide).
  virtual void OnCandidate(xml::NodeId id) { (void)id; }

  /// Membership proven. Each result id is reported exactly once.
  virtual void OnResult(const MatchInfo& match) = 0;

  /// Return true to receive OnFragment calls. Checked once, at processor
  /// construction: fragment capture costs buffering of undecided candidate
  /// subtrees, so it is strictly opt-in.
  virtual bool wants_fragments() const { return false; }

  /// The re-serialized subtree of result `id` (elements, attributes,
  /// escaped text; comments/PIs/CDATA sectioning are not preserved).
  /// Called once per result, only when wants_fragments() returned true.
  virtual void OnFragment(xml::NodeId id, std::string_view xml) {
    (void)id;
    (void)xml;
  }
};

/// Collects results into a vector (in emission order).
class VectorResultSink : public MatchObserver {
 public:
  void OnResult(const MatchInfo& match) override {
    ids_.push_back(match.id);
    matches_.push_back(match);
  }

  const std::vector<xml::NodeId>& ids() const { return ids_; }
  std::vector<xml::NodeId> TakeIds() { return std::move(ids_); }
  /// Full per-result info (byte offsets, emitting machine nodes).
  const std::vector<MatchInfo>& matches() const { return matches_; }

 private:
  std::vector<xml::NodeId> ids_;
  std::vector<MatchInfo> matches_;
};

/// Counts results without storing them (for benchmarks).
class CountingResultSink : public MatchObserver {
 public:
  void OnResult(const MatchInfo& match) override {
    (void)match;
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_RESULT_SINK_H_
