// Result delivery. Engines emit node ids incrementally, as soon as
// membership is decided (the streaming requirement of section 1); callers
// provide a sink. `VectorResultSink` is the common collect-everything sink.

#ifndef TWIGM_CORE_RESULT_SINK_H_
#define TWIGM_CORE_RESULT_SINK_H_

#include <vector>

#include "xml/sax_event.h"

namespace twigm::core {

/// Receives query results as they are proven.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// `id` is the pre-order node id of a result element. Engines guarantee
  /// each result id is reported exactly once.
  virtual void OnResult(xml::NodeId id) = 0;
};

/// Collects results into a vector (in emission order).
class VectorResultSink : public ResultSink {
 public:
  void OnResult(xml::NodeId id) override { ids_.push_back(id); }

  const std::vector<xml::NodeId>& ids() const { return ids_; }
  std::vector<xml::NodeId> TakeIds() { return std::move(ids_); }

 private:
  std::vector<xml::NodeId> ids_;
};

/// Observes candidate creation: called by a machine the moment an element
/// is recorded as a *possible* result (pushed into the return node's
/// candidate set), before its membership is decided. Used by the fragment
/// recorder to start capturing the element's subtree.
class CandidateObserver {
 public:
  virtual ~CandidateObserver() = default;
  virtual void OnCandidate(xml::NodeId id) = 0;
};

/// Counts results without storing them (for benchmarks).
class CountingResultSink : public ResultSink {
 public:
  void OnResult(xml::NodeId id) override {
    (void)id;
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_RESULT_SINK_H_
