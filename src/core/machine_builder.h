// Machine construction (section 4.2).
//
// Builds the machine-node graph for a query tree:
//   * one machine node per query node whose name is a tag, plus per
//     *branching or leaf* wildcard node;
//   * interior wildcard nodes (exactly one child, not the return node, no
//     value test) are collapsed into the parent-edge label of the next
//     machine node: c collapsed wildcards give (op, c+1), with op = '≥' iff
//     any collapsed query edge was '//';
//   * attribute query nodes become attribute tests attached to their parent
//     machine node (evaluated against the element's attributes at
//     startElement, footnote 2);
//   * each machine child is assigned a branch slot β(v) in its parent's
//     branch-match array.

#ifndef TWIGM_CORE_MACHINE_BUILDER_H_
#define TWIGM_CORE_MACHINE_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/edge.h"
#include "xml/sax_event.h"
#include "xpath/ast.h"
#include "xpath/query_tree.h"

namespace twigm::core {

/// An attribute test hanging off a machine node: the element must have the
/// attribute, and (optionally) its value must satisfy the comparison.
struct AttributeTest {
  std::string name;
  bool has_value_test = false;
  xpath::CmpOp op = xpath::CmpOp::kEq;
  std::string literal;
  bool literal_is_number = false;
  int branch_slot = -1;  // β within the owning machine node
};

/// One machine node. Owned by MachineGraph.
struct MachineNode {
  std::string label;        // tag, or "*"
  bool is_wildcard = false;
  EdgeCondition edge;       // ζ(v): condition against the parent's entries
  MachineNode* parent = nullptr;
  std::vector<MachineNode*> children;      // element children, in β order
  std::vector<AttributeTest> attr_tests;   // attribute children

  /// β(v): this node's slot in parent's branch-match array (-1 for root).
  int branch_slot = -1;
  /// Number of branch slots this node's entries need (element children +
  /// attribute tests). At most 64 (enforced at build time).
  int num_slots = 0;
  /// Bitmask with one bit per slot; an entry is satisfied when
  /// (branch & required_mask) == required_mask and the value test passes.
  uint64_t required_mask = 0;

  bool on_output_path = false;
  bool is_return = false;   // sol

  /// Optional value test against the matched element's direct text.
  bool has_value_test = false;
  xpath::CmpOp op = xpath::CmpOp::kEq;
  std::string literal;
  bool literal_is_number = false;

  /// Dense index into the graph's node array.
  int id = -1;

  /// Interned id of `label`, stamped by the machine's BindInterner().
  /// kNoSymbol until bound (and always for wildcards).
  xml::SymbolId symbol = xml::kNoSymbol;

  /// Tag match: symbol comparison when both sides carry one (one integer
  /// compare), byte comparison otherwise.
  bool MatchesTag(const xml::TagToken& tag) const {
    if (is_wildcard) return true;
    if (symbol != xml::kNoSymbol && tag.symbol != xml::kNoSymbol) {
      return symbol == tag.symbol;
    }
    return label == tag.text;
  }
};

/// The machine-node graph for one query.
class MachineGraph {
 public:
  MachineGraph() = default;
  MachineGraph(MachineGraph&&) = default;
  MachineGraph& operator=(MachineGraph&&) = default;
  MachineGraph(const MachineGraph&) = delete;
  MachineGraph& operator=(const MachineGraph&) = delete;

  /// Builds the graph per section 4.2. Fails if the query's return node is
  /// an attribute or a node needs more than 64 branch slots.
  static Result<MachineGraph> Build(const xpath::QueryTree& query);

  const MachineNode* root() const { return root_; }
  const MachineNode* return_node() const { return return_; }

  /// Nodes in pre-order (parents before children).
  const std::vector<std::unique_ptr<MachineNode>>& nodes() const {
    return nodes_;
  }
  size_t node_count() const { return nodes_.size(); }

  /// Human-readable dump of nodes, edges and slots (for tests/debugging).
  std::string ToString() const;

 private:
  friend class MachineGraphBuilder;

  std::vector<std::unique_ptr<MachineNode>> nodes_;
  MachineNode* root_ = nullptr;
  MachineNode* return_ = nullptr;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_MACHINE_BUILDER_H_
