#include "core/union_query.h"

#include "xpath/lexer.h"

namespace twigm::core {

Result<std::vector<std::string>> SplitUnionQuery(std::string_view query) {
  Result<std::vector<xpath::Token>> tokens = xpath::Tokenize(query);
  if (!tokens.ok()) return tokens.status();

  std::vector<std::string> branches;
  size_t branch_begin = 0;  // byte offset of the current branch
  for (const xpath::Token& token : tokens.value()) {
    if (token.kind != xpath::TokenKind::kPipe &&
        token.kind != xpath::TokenKind::kEnd) {
      continue;
    }
    std::string branch(query.substr(branch_begin, token.offset - branch_begin));
    // Trim surrounding whitespace for clean error messages.
    while (!branch.empty() && branch.front() == ' ') branch.erase(0, 1);
    while (!branch.empty() && branch.back() == ' ') branch.pop_back();
    if (branch.empty()) {
      return Status::ParseError("empty branch in union query '" +
                                std::string(query) + "'");
    }
    branches.push_back(std::move(branch));
    branch_begin = token.offset + 1;
  }
  return branches;
}

Result<std::unique_ptr<UnionQueryProcessor>> UnionQueryProcessor::Create(
    std::string_view query, MatchObserver* observer,
    EvaluatorOptions options) {
  if (observer == nullptr) {
    return Status::InvalidArgument(
        "UnionQueryProcessor requires a match observer");
  }
  Result<std::vector<std::string>> branches = SplitUnionQuery(query);
  if (!branches.ok()) return branches.status();

  auto proc =
      std::unique_ptr<UnionQueryProcessor>(new UnionQueryProcessor());
  proc->dedup_.out = observer;
  Result<std::unique_ptr<MultiQueryProcessor>> multi =
      MultiQueryProcessor::Create(branches.value(), &proc->dedup_, options);
  if (!multi.ok()) return multi.status();
  proc->multi_ = std::move(multi).value();
  return proc;
}

}  // namespace twigm::core
