// Parent-edge conditions ζ(v) of the TwigM/PathM machines (section 4.1).
//
// An edge label is a pair (op, k) with op ∈ {=, ≥} and k ≥ 1: an XML node at
// level l matches against a parent-stack entry at level l' iff
// op(l - l', k). Interior '*' query nodes are collapsed into k (machine
// construction, section 4.2): c interior wildcards between two machine nodes
// yield k = c + 1, and op is '≥' iff any collapsed query edge was '//'.

#ifndef TWIGM_CORE_EDGE_H_
#define TWIGM_CORE_EDGE_H_

#include <string>

namespace twigm::core {

/// The machine edge label (op, k).
struct EdgeCondition {
  /// True for '=', false for '≥'.
  bool exact = true;
  /// Required level difference (k ≥ 1).
  int distance = 1;

  /// Does a level difference `diff` satisfy this condition?
  bool Satisfies(int diff) const {
    return exact ? diff == distance : diff >= distance;
  }

  /// "(=,1)" / "(>=,2)" — for debugging and machine dumps.
  std::string ToString() const {
    return std::string("(") + (exact ? "=" : ">=") + "," +
           std::to_string(distance) + ")";
  }
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_EDGE_H_
