#include "core/branch_machine.h"

#include <algorithm>

#include "core/invariants.h"
#include "core/twig_machine.h"  // UnionSortedIds
#include "core/value_test.h"

namespace twigm::core {

Result<std::unique_ptr<BranchMachine>> BranchMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer) {
  if (observer == nullptr) {
    return Status::InvalidArgument("BranchMachine requires a match observer");
  }
  if (query.has_descendant_axis() || query.has_wildcard()) {
    return Status::NotSupported(
        "BranchM evaluates XP{/,[]} only; use TwigM for '//' or '*'");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<BranchMachine>(
      new BranchMachine(std::move(graph).value(), observer));
}

BranchMachine::BranchMachine(MachineGraph graph, MatchObserver* observer)
    : graph_(std::move(graph)), sink_(observer) {
  states_.resize(graph_.node_count());
}

void BranchMachine::BindInterner(xml::TagInterner* interner) {
  // BranchM's fragment has no wildcards, so every node has a label.
  for (const auto& node : graph_.nodes()) {
    node->symbol = interner->Intern(node->label);
  }
  postings_.assign(interner->size(), {});
  for (const auto& node : graph_.nodes()) {
    postings_[node->symbol].push_back(node->id);
  }
  bound_ = true;
  interner_ = interner;
  RebuildSymToElem();
}

void BranchMachine::set_decisions(std::shared_ptr<const DecisionTable> table,
                                  EarlyDecisionMode mode) {
  decisions_ = std::move(table);
  decision_mode_ = mode;
  RebuildSymToElem();
  RegisterGapHistogram();
}

void BranchMachine::RebuildSymToElem() {
  sym_to_elem_.clear();
  if (decisions_ == nullptr || interner_ == nullptr) return;
  const std::vector<std::string>& names = decisions_->element_names();
  for (size_t e = 0; e < names.size(); ++e) {
    const xml::SymbolId s = interner_->Intern(names[e]);
    if (sym_to_elem_.size() <= s) sym_to_elem_.resize(s + 1, -1);
    sym_to_elem_[s] = static_cast<int32_t>(e);
  }
}

void BranchMachine::RegisterGapHistogram() {
  if (instr_ == nullptr || gap_hist_ != nullptr) return;
  if (decision_mode_ == EarlyDecisionMode::kOff) return;
  gap_hist_ = instr_->registry().RegisterHistogram(
      "engine.emission_gap_bytes", obs::ExponentialBuckets(1, 4, 16));
}

const NodeDecision* BranchMachine::DecisionFor(int node_id) const {
  if (cur_elem_ < 0 || decisions_ == nullptr) return nullptr;
  return &decisions_->at(static_cast<size_t>(node_id),
                         static_cast<size_t>(cur_elem_));
}

bool BranchMachine::StateSatisfiedNow(const MachineNode* v,
                                      const NodeState& s) const {
  if (((s.branch | s.implied) & v->required_mask) != v->required_mask) {
    return false;
  }
  return (s.dflags & kValueSure) != 0;
}

// hotpath
void BranchMachine::FlushCertainCandidates(NodeState& s) {
  if (s.candidates.empty()) return;
  if (decision_mode_ == EarlyDecisionMode::kOn) {
    for (xml::NodeId id : s.candidates) EmitEarly(id);
    live_candidates_ -= s.candidates.size();
    s.candidates.clear();
  } else {
    for (xml::NodeId id : s.candidates) MarkProved(id);
  }
}

// hotpath
void BranchMachine::EmitEarly(xml::NodeId id) {
  obs::TimerScope emit_timer(
      instr_ != nullptr ? instr_->stage_slot(obs::Stage::kEmit) : nullptr);
  const int return_node =
      graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
  sink_->OnResult(MatchInfo{id, offset(), return_node});
  ++stats_.results;
  ++stats_.early_emitted;
  stats_.NoteGap(0);
  if (gap_hist_ != nullptr) gap_hist_->Observe(0);
  if (instr_ != nullptr) {
    instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, -1, id, 0);
  }
}

// hotpath
void BranchMachine::MarkProved(xml::NodeId id) {
  if (id >= proved_stamp_.size()) {
    size_t grown = std::max<size_t>(proved_stamp_.size() * 2, 256);
    if (grown <= id) grown = static_cast<size_t>(id) + 1;
    proved_stamp_.resize(grown, 0);
    proved_offset_.resize(grown, 0);
  }
  if (proved_stamp_[id] == proved_epoch_) return;
  proved_stamp_[id] = proved_epoch_;
  proved_offset_[id] = offset();
}

// hotpath
void BranchMachine::RecordGap(xml::NodeId id) {
  uint64_t gap = 0;
  if (id < proved_stamp_.size() && proved_stamp_[id] == proved_epoch_) {
    const uint64_t now = offset();
    gap = now > proved_offset_[id] ? now - proved_offset_[id] : 0;
  }
  stats_.NoteGap(gap);
  if (gap_hist_ != nullptr) gap_hist_->Observe(gap);
}

void BranchMachine::BumpProvedEpoch() {
  if (++proved_epoch_ == 0) {
    std::fill(proved_stamp_.begin(), proved_stamp_.end(), 0);
    proved_epoch_ = 1;
  }
}

void BranchMachine::ResolveCertain(const MachineNode* v, NodeState& s) {
  if ((s.dflags & kResolved) != 0) return;
  s.dflags |= kResolved;
  if (v->parent == nullptr) {
    s.dflags |= kCertainOutput;
    FlushCertainCandidates(s);
    return;
  }
  // The parent element is an open ancestor, so its state is occupied and
  // is exactly the one CloseNode would propagate into.
  const MachineNode* parent = v->parent;
  NodeState& p = states_[parent->id];
  const uint64_t bit = uint64_t{1} << v->branch_slot;
  if ((p.branch & bit) == 0) {
    p.branch |= bit;
    if ((p.dflags & kResolved) == 0 && StateSatisfiedNow(parent, p)) {
      ResolveCertain(parent, p);
    }
  }
  if ((p.dflags & kCertainOutput) != 0) {
    s.dflags |= kCertainOutput;
    FlushCertainCandidates(s);
  }
}

void BranchMachine::Reset() {
  // Field-wise so candidate/text capacity survives for the next document.
  for (NodeState& s : states_) {
    s.level = -1;
    s.branch = 0;
    s.implied = 0;
    s.dflags = 0;
    s.candidates.clear();
    s.text.clear();
  }
  stats_ = EngineStats();
  live_entries_ = 0;
  live_candidates_ = 0;
  cur_elem_ = -1;
  BumpProvedEpoch();
}

// hotpath
void BranchMachine::TryStartNode(int node_id, int level, xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  if (!level_bounds_.empty() &&
      !level_bounds_[static_cast<size_t>(v->id)].Allows(level)) {
    return;
  }
  // Qualification against the single parent state; with child-only axes
  // the edge is always (=, 1) against the parent's recorded level.
  bool qualified;
  if (v->parent == nullptr) {
    if (root_context_ == nullptr) {
      qualified = v->edge.Satisfies(level);
    } else {
      qualified = !root_context_->empty() &&
                  v->edge.Satisfies(level - root_context_->back());
    }
  } else {
    const NodeState& parent = states_[v->parent->id];
    qualified = parent.level != -1 && v->edge.Satisfies(level - parent.level);
  }
  if (!qualified) return;

  // Earliest-decision skips (see TwigMachine::TryStartNode).
  const NodeDecision* dec =
      decision_mode_ != EarlyDecisionMode::kOff ? DecisionFor(node_id)
                                                : nullptr;
  if (dec != nullptr && decision_mode_ == EarlyDecisionMode::kOn) {
    if (dec->refuted()) {
      ++stats_.early_dropped;
      return;
    }
    if (dec->useless()) {
      ++stats_.states_skipped;
      return;
    }
  }

  NodeState& state = states_[v->id];
  // Single-state invariant (section 3.2): with child-only axes at most
  // one element per machine node is ever active, so a fresh activation
  // must be strictly deeper than the one it replaces (if any survives,
  // it is an ancestor still open on the document stack).
  TWIGM_INVARIANT(state.level == -1 || state.level < level,
                  "BranchM state overwritten by a non-deeper element",
                  offset());
  state.level = level;
  state.branch = 0;
  state.implied = 0;
  state.dflags = 0;
  state.candidates.clear();
  state.text.clear();
  if (decision_mode_ != EarlyDecisionMode::kOff) {
    if (dec != nullptr) {
      state.implied = dec->implied_mask & v->required_mask;
      if (dec->value_implied()) state.dflags |= kValueSure;
    }
    if (!v->has_value_test) state.dflags |= kValueSure;
  }
  for (const AttributeTest& test : v->attr_tests) {
    ++stats_.predicate_checks;
    bool found = false;
    std::string_view value;
    for (const xml::Attribute& a : attrs) {
      if (a.name == test.name) {
        found = true;
        value = a.value;
        break;
      }
    }
    bool pass = found;
    if (pass && test.has_value_test) {
      pass = EvalValueTest(value, test.op, test.literal,
                           test.literal_is_number);
    }
    if (pass) state.branch |= uint64_t{1} << test.branch_slot;
  }
  if (v->is_return) {
    state.candidates.push_back(id);
    ++live_candidates_;
    sink_->OnCandidate(id);
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kCandidate, v->id, level, id, 1);
    }
  }
  ++stats_.pushes;
  ++live_entries_;
  if (instr_ != nullptr) {
    // BranchM keeps one state per node, so depth is at most 1.
    instr_->NoteNodeDepth(v->id, 1);
    instr_->Trace(obs::TraceEvent::Kind::kStackPush, v->id, level, id, 1);
  }
  if (decision_mode_ != EarlyDecisionMode::kOff &&
      StateSatisfiedNow(v, state)) {
    ResolveCertain(v, state);
  }
}

// hotpath
void BranchMachine::StartElement(const xml::TagToken& tag, int level,
                                 xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  ++stats_.start_events;
  cur_elem_ = -1;
  if (decisions_ != nullptr && decision_mode_ != EarlyDecisionMode::kOff &&
      tag.symbol != xml::kNoSymbol && tag.symbol < sym_to_elem_.size()) {
    cur_elem_ = sym_to_elem_[tag.symbol];
  }
  // Same-event activations cannot enable each other (edge distances are
  // ≥ 1), so postings order within the event does not matter.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      for (int node_id : postings_[tag.symbol]) {
        TryStartNode(node_id, level, id, attrs);
      }
    }
  } else {
    for (const auto& node : graph_.nodes()) {
      if (node->label != tag.text) continue;
      TryStartNode(node->id, level, id, attrs);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
  stats_.NoteBytes(live_entries_ * sizeof(NodeState) +
                   live_candidates_ * sizeof(xml::NodeId));
}

// hotpath
void BranchMachine::Text(std::string_view text, int level) {
  for (const auto& node : graph_.nodes()) {
    if (!node->has_value_test) continue;
    NodeState& state = states_[node->id];
    if (state.level == level) state.text.append(text);
  }
}

void BranchMachine::CloseNode(int node_id, int level) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  NodeState& state = states_[v->id];
  if (state.level != level) return;

  ++stats_.predicate_checks;
  bool satisfied = (state.branch & v->required_mask) == v->required_mask;
  if (satisfied && v->has_value_test) {
    satisfied =
        EvalValueTest(state.text, v->op, v->literal, v->literal_is_number);
  }
  if (satisfied) {
    if (v->parent == nullptr) {
      obs::TimerScope emit_timer(instr_ != nullptr
                                     ? instr_->stage_slot(obs::Stage::kEmit)
                                     : nullptr);
      const int return_node =
          graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
      for (xml::NodeId id : state.candidates) {
        sink_->OnResult(MatchInfo{id, offset(), return_node});
        ++stats_.results;
        if (decision_mode_ != EarlyDecisionMode::kOff) RecordGap(id);
        if (instr_ != nullptr) {
          instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, level, id,
                        0);
        }
      }
    } else {
      NodeState& parent = states_[v->parent->id];
      // The parent element is an ancestor of this one, so it is still
      // active and its state is occupied.
      parent.branch |= uint64_t{1} << v->branch_slot;
      if (!state.candidates.empty()) {
        if (decision_mode_ == EarlyDecisionMode::kOn &&
            (parent.dflags & kCertainOutput) != 0) {
          // Certain results: emit instead of buffering (see TwigMachine).
          for (xml::NodeId id : state.candidates) EmitEarly(id);
        } else {
          ++stats_.candidate_unions;
          live_candidates_ +=
              UnionSortedIds(state.candidates, &parent.candidates);
          if (decision_mode_ == EarlyDecisionMode::kObserve &&
              (parent.dflags & kCertainOutput) != 0) {
            for (xml::NodeId id : state.candidates) MarkProved(id);
          }
        }
      }
      if (decision_mode_ != EarlyDecisionMode::kOff &&
          (parent.dflags & kResolved) == 0 &&
          StateSatisfiedNow(v->parent, parent)) {
        ResolveCertain(v->parent, parent);
      }
    }
  }
  // Reset to (L=-1, C=∅, B=<F..F>) field-wise: clear() keeps the
  // candidate/text capacity pooled for the next activation.
  live_candidates_ -= state.candidates.size();
  if (instr_ != nullptr) {
    if (!satisfied) {
      instr_->Trace(obs::TraceEvent::Kind::kPrune, v->id, level, 0,
                    state.candidates.size());
    }
    instr_->Trace(obs::TraceEvent::Kind::kStackPop, v->id, level, 0, 0);
  }
  state.level = -1;
  state.branch = 0;
  state.implied = 0;
  state.dflags = 0;
  state.candidates.clear();
  state.text.clear();
  ++stats_.pops;
  --live_entries_;
  // Root closed: document node ids will be reused by the next document /
  // root activation, so retire this epoch's proof stamps.
  if (v->parent == nullptr) BumpProvedEpoch();
}

// hotpath
void BranchMachine::EndElement(const xml::TagToken& tag, int level) {
  ++stats_.end_events;
  // Children before parents (reverse pre-order): a child's propagation must
  // land in its parent's state before the parent itself is examined —
  // with child axes, parent and child end events are distinct, but several
  // machine nodes can share a tag.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      const std::vector<int>& list = postings_[tag.symbol];
      for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
        CloseNode(*rit, level);
      }
    }
  } else {
    const auto& nodes = graph_.nodes();
    for (auto rit = nodes.rbegin(); rit != nodes.rend(); ++rit) {
      if ((*rit)->label != tag.text) continue;
      CloseNode((*rit)->id, level);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
}

void BranchMachine::EndDocument() {}

}  // namespace twigm::core
