#include "core/branch_machine.h"

#include "core/invariants.h"
#include "core/twig_machine.h"  // UnionSortedIds
#include "core/value_test.h"

namespace twigm::core {

Result<std::unique_ptr<BranchMachine>> BranchMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer) {
  if (observer == nullptr) {
    return Status::InvalidArgument("BranchMachine requires a match observer");
  }
  if (query.has_descendant_axis() || query.has_wildcard()) {
    return Status::NotSupported(
        "BranchM evaluates XP{/,[]} only; use TwigM for '//' or '*'");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<BranchMachine>(
      new BranchMachine(std::move(graph).value(), observer));
}

BranchMachine::BranchMachine(MachineGraph graph, MatchObserver* observer)
    : graph_(std::move(graph)), sink_(observer) {
  states_.resize(graph_.node_count());
}

void BranchMachine::BindInterner(xml::TagInterner* interner) {
  // BranchM's fragment has no wildcards, so every node has a label.
  for (const auto& node : graph_.nodes()) {
    node->symbol = interner->Intern(node->label);
  }
  postings_.assign(interner->size(), {});
  for (const auto& node : graph_.nodes()) {
    postings_[node->symbol].push_back(node->id);
  }
  bound_ = true;
}

void BranchMachine::Reset() {
  // Field-wise so candidate/text capacity survives for the next document.
  for (NodeState& s : states_) {
    s.level = -1;
    s.branch = 0;
    s.candidates.clear();
    s.text.clear();
  }
  stats_ = EngineStats();
  live_entries_ = 0;
  live_candidates_ = 0;
}

void BranchMachine::TryStartNode(int node_id, int level, xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  if (!level_bounds_.empty() &&
      !level_bounds_[static_cast<size_t>(v->id)].Allows(level)) {
    return;
  }
  // Qualification against the single parent state; with child-only axes
  // the edge is always (=, 1) against the parent's recorded level.
  bool qualified;
  if (v->parent == nullptr) {
    if (root_context_ == nullptr) {
      qualified = v->edge.Satisfies(level);
    } else {
      qualified = !root_context_->empty() &&
                  v->edge.Satisfies(level - root_context_->back());
    }
  } else {
    const NodeState& parent = states_[v->parent->id];
    qualified = parent.level != -1 && v->edge.Satisfies(level - parent.level);
  }
  if (!qualified) return;

  NodeState& state = states_[v->id];
  // Single-state invariant (section 3.2): with child-only axes at most
  // one element per machine node is ever active, so a fresh activation
  // must be strictly deeper than the one it replaces (if any survives,
  // it is an ancestor still open on the document stack).
  TWIGM_INVARIANT(state.level == -1 || state.level < level,
                  "BranchM state overwritten by a non-deeper element",
                  offset());
  state.level = level;
  state.branch = 0;
  state.candidates.clear();
  state.text.clear();
  for (const AttributeTest& test : v->attr_tests) {
    ++stats_.predicate_checks;
    bool found = false;
    std::string_view value;
    for (const xml::Attribute& a : attrs) {
      if (a.name == test.name) {
        found = true;
        value = a.value;
        break;
      }
    }
    bool pass = found;
    if (pass && test.has_value_test) {
      pass = EvalValueTest(value, test.op, test.literal,
                           test.literal_is_number);
    }
    if (pass) state.branch |= uint64_t{1} << test.branch_slot;
  }
  if (v->is_return) {
    state.candidates.push_back(id);
    ++live_candidates_;
    sink_->OnCandidate(id);
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kCandidate, v->id, level, id, 1);
    }
  }
  ++stats_.pushes;
  ++live_entries_;
  if (instr_ != nullptr) {
    // BranchM keeps one state per node, so depth is at most 1.
    instr_->NoteNodeDepth(v->id, 1);
    instr_->Trace(obs::TraceEvent::Kind::kStackPush, v->id, level, id, 1);
  }
}

void BranchMachine::StartElement(const xml::TagToken& tag, int level,
                                 xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  ++stats_.start_events;
  // Same-event activations cannot enable each other (edge distances are
  // ≥ 1), so postings order within the event does not matter.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      for (int node_id : postings_[tag.symbol]) {
        TryStartNode(node_id, level, id, attrs);
      }
    }
  } else {
    for (const auto& node : graph_.nodes()) {
      if (node->label != tag.text) continue;
      TryStartNode(node->id, level, id, attrs);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
  stats_.NoteBytes(live_entries_ * sizeof(NodeState) +
                   live_candidates_ * sizeof(xml::NodeId));
}

void BranchMachine::Text(std::string_view text, int level) {
  for (const auto& node : graph_.nodes()) {
    if (!node->has_value_test) continue;
    NodeState& state = states_[node->id];
    if (state.level == level) state.text.append(text);
  }
}

void BranchMachine::CloseNode(int node_id, int level) {
  const MachineNode* v = graph_.nodes()[node_id].get();
  NodeState& state = states_[v->id];
  if (state.level != level) return;

  ++stats_.predicate_checks;
  bool satisfied = (state.branch & v->required_mask) == v->required_mask;
  if (satisfied && v->has_value_test) {
    satisfied =
        EvalValueTest(state.text, v->op, v->literal, v->literal_is_number);
  }
  if (satisfied) {
    if (v->parent == nullptr) {
      obs::TimerScope emit_timer(instr_ != nullptr
                                     ? instr_->stage_slot(obs::Stage::kEmit)
                                     : nullptr);
      const int return_node =
          graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
      for (xml::NodeId id : state.candidates) {
        sink_->OnResult(MatchInfo{id, offset(), return_node});
        ++stats_.results;
        if (instr_ != nullptr) {
          instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, level, id,
                        0);
        }
      }
    } else {
      NodeState& parent = states_[v->parent->id];
      // The parent element is an ancestor of this one, so it is still
      // active and its state is occupied.
      parent.branch |= uint64_t{1} << v->branch_slot;
      if (!state.candidates.empty()) {
        ++stats_.candidate_unions;
        live_candidates_ +=
            UnionSortedIds(state.candidates, &parent.candidates);
      }
    }
  }
  // Reset to (L=-1, C=∅, B=<F..F>) field-wise: clear() keeps the
  // candidate/text capacity pooled for the next activation.
  live_candidates_ -= state.candidates.size();
  if (instr_ != nullptr) {
    if (!satisfied) {
      instr_->Trace(obs::TraceEvent::Kind::kPrune, v->id, level, 0,
                    state.candidates.size());
    }
    instr_->Trace(obs::TraceEvent::Kind::kStackPop, v->id, level, 0, 0);
  }
  state.level = -1;
  state.branch = 0;
  state.candidates.clear();
  state.text.clear();
  ++stats_.pops;
  --live_entries_;
}

void BranchMachine::EndElement(const xml::TagToken& tag, int level) {
  ++stats_.end_events;
  // Children before parents (reverse pre-order): a child's propagation must
  // land in its parent's state before the parent itself is examined —
  // with child axes, parent and child end events are distinct, but several
  // machine nodes can share a tag.
  if (bound_ && tag.symbol != xml::kNoSymbol) {
    if (tag.symbol < postings_.size()) {
      const std::vector<int>& list = postings_[tag.symbol];
      for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
        CloseNode(*rit, level);
      }
    }
  } else {
    const auto& nodes = graph_.nodes();
    for (auto rit = nodes.rbegin(); rit != nodes.rend(); ++rit) {
      if ((*rit)->label != tag.text) continue;
      CloseNode((*rit)->id, level);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
}

void BranchMachine::EndDocument() {}

}  // namespace twigm::core
