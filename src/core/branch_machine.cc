#include "core/branch_machine.h"

#include "core/invariants.h"
#include "core/twig_machine.h"  // UnionSortedIds
#include "core/value_test.h"

namespace twigm::core {

Result<std::unique_ptr<BranchMachine>> BranchMachine::Create(
    const xpath::QueryTree& query, MatchObserver* observer) {
  if (observer == nullptr) {
    return Status::InvalidArgument("BranchMachine requires a match observer");
  }
  if (query.has_descendant_axis() || query.has_wildcard()) {
    return Status::NotSupported(
        "BranchM evaluates XP{/,[]} only; use TwigM for '//' or '*'");
  }
  Result<MachineGraph> graph = MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  return std::unique_ptr<BranchMachine>(
      new BranchMachine(std::move(graph).value(), observer));
}

BranchMachine::BranchMachine(MachineGraph graph, MatchObserver* observer)
    : graph_(std::move(graph)), sink_(observer) {
  states_.resize(graph_.node_count());
}

void BranchMachine::Reset() {
  for (NodeState& s : states_) s = NodeState();
  stats_ = EngineStats();
  live_entries_ = 0;
  live_candidates_ = 0;
}

void BranchMachine::StartElement(std::string_view tag, int level,
                                 xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  ++stats_.start_events;
  for (const auto& node : graph_.nodes()) {
    const MachineNode* v = node.get();
    if (v->label != tag) continue;
    if (!level_bounds_.empty() &&
        !level_bounds_[static_cast<size_t>(v->id)].Allows(level)) {
      continue;
    }
    // Qualification against the single parent state; with child-only axes
    // the edge is always (=, 1) against the parent's recorded level.
    bool qualified;
    if (v->parent == nullptr) {
      if (root_context_ == nullptr) {
        qualified = v->edge.Satisfies(level);
      } else {
        qualified = !root_context_->empty() &&
                    v->edge.Satisfies(level - root_context_->back());
      }
    } else {
      const NodeState& parent = states_[v->parent->id];
      qualified = parent.level != -1 && v->edge.Satisfies(level - parent.level);
    }
    if (!qualified) continue;

    NodeState& state = states_[v->id];
    // Single-state invariant (section 3.2): with child-only axes at most
    // one element per machine node is ever active, so a fresh activation
    // must be strictly deeper than the one it replaces (if any survives,
    // it is an ancestor still open on the document stack).
    TWIGM_INVARIANT(state.level == -1 || state.level < level,
                    "BranchM state overwritten by a non-deeper element",
                    offset());
    state.level = level;
    state.branch = 0;
    state.candidates.clear();
    state.text.clear();
    for (const AttributeTest& test : v->attr_tests) {
      ++stats_.predicate_checks;
      const std::string* value = nullptr;
      for (const xml::Attribute& a : attrs) {
        if (a.name == test.name) {
          value = &a.value;
          break;
        }
      }
      bool pass = value != nullptr;
      if (pass && test.has_value_test) {
        pass = EvalValueTest(*value, test.op, test.literal,
                             test.literal_is_number);
      }
      if (pass) state.branch |= uint64_t{1} << test.branch_slot;
    }
    if (v->is_return) {
      state.candidates.push_back(id);
      ++live_candidates_;
      sink_->OnCandidate(id);
      if (instr_ != nullptr) {
        instr_->Trace(obs::TraceEvent::Kind::kCandidate, v->id, level, id, 1);
      }
    }
    ++stats_.pushes;
    ++live_entries_;
    if (instr_ != nullptr) {
      // BranchM keeps one state per node, so depth is at most 1.
      instr_->NoteNodeDepth(v->id, 1);
      instr_->Trace(obs::TraceEvent::Kind::kStackPush, v->id, level, id, 1);
    }
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
  stats_.NoteBytes(live_entries_ * sizeof(NodeState) +
                   live_candidates_ * sizeof(xml::NodeId));
}

void BranchMachine::Text(std::string_view text, int level) {
  for (const auto& node : graph_.nodes()) {
    if (!node->has_value_test) continue;
    NodeState& state = states_[node->id];
    if (state.level == level) state.text.append(text);
  }
}

void BranchMachine::EndElement(std::string_view tag, int level) {
  ++stats_.end_events;
  // Children before parents (reverse pre-order): a child's propagation must
  // land in its parent's state before the parent itself is examined —
  // with child axes, parent and child end events are distinct, but several
  // machine nodes can share a tag.
  const auto& nodes = graph_.nodes();
  for (auto rit = nodes.rbegin(); rit != nodes.rend(); ++rit) {
    const MachineNode* v = rit->get();
    if (v->label != tag) continue;
    NodeState& state = states_[v->id];
    if (state.level != level) continue;

    ++stats_.predicate_checks;
    bool satisfied = (state.branch & v->required_mask) == v->required_mask;
    if (satisfied && v->has_value_test) {
      satisfied =
          EvalValueTest(state.text, v->op, v->literal, v->literal_is_number);
    }
    if (satisfied) {
      if (v->parent == nullptr) {
        obs::TimerScope emit_timer(instr_ != nullptr
                                       ? instr_->stage_slot(obs::Stage::kEmit)
                                       : nullptr);
        const int return_node =
            graph_.return_node() != nullptr ? graph_.return_node()->id : -1;
        for (xml::NodeId id : state.candidates) {
          sink_->OnResult(MatchInfo{id, offset(), return_node});
          ++stats_.results;
          if (instr_ != nullptr) {
            instr_->Trace(obs::TraceEvent::Kind::kEmit, return_node, level,
                          id, 0);
          }
        }
      } else {
        NodeState& parent = states_[v->parent->id];
        // The parent element is an ancestor of this one, so it is still
        // active and its state is occupied.
        parent.branch |= uint64_t{1} << v->branch_slot;
        if (!state.candidates.empty()) {
          ++stats_.candidate_unions;
          live_candidates_ +=
              UnionSortedIds(state.candidates, &parent.candidates);
        }
      }
    }
    // Reset to (L=-1, C=∅, B=<F..F>).
    live_candidates_ -= state.candidates.size();
    if (instr_ != nullptr) {
      if (!satisfied) {
        instr_->Trace(obs::TraceEvent::Kind::kPrune, v->id, level, 0,
                      state.candidates.size());
      }
      instr_->Trace(obs::TraceEvent::Kind::kStackPop, v->id, level, 0, 0);
    }
    state = NodeState();
    ++stats_.pops;
    --live_entries_;
  }
  stats_.NoteEntries(live_entries_);
  stats_.NoteCandidates(live_candidates_);
}

void BranchMachine::EndDocument() {}

}  // namespace twigm::core
