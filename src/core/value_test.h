// Value-test semantics shared by every engine (streaming machines, DOM
// oracle, naive baseline), so differential tests compare like for like.
//
// A value test compares a node's *direct* text content (the concatenation of
// character data immediately inside the element, not of descendants) or an
// attribute's value against a literal. When the literal was written as a
// number and the node text also parses as a number, the comparison is
// numeric; otherwise it is bytewise string comparison. This matches the
// restricted predicates of the paper's experimental queries (Q8's value
// test) rather than full XPath string-value semantics; see DESIGN.md.

#ifndef TWIGM_CORE_VALUE_TEST_H_
#define TWIGM_CORE_VALUE_TEST_H_

#include <string_view>

#include "xpath/ast.h"

namespace twigm::core {

/// Evaluates `text op literal`.
bool EvalValueTest(std::string_view text, xpath::CmpOp op,
                   std::string_view literal, bool literal_is_number);

}  // namespace twigm::core

#endif  // TWIGM_CORE_VALUE_TEST_H_
