#include "core/machine_builder.h"

namespace twigm::core {

namespace {

// A query node is folded into an edge label iff it is an interior wildcard:
// exactly one element child, not the return node, and no value test.
bool IsCollapsibleStar(const xpath::QueryNode* q, const xpath::QueryNode* sol) {
  return q->is_wildcard && q != sol && !q->has_value_test &&
         q->children.size() == 1 && !q->children[0]->is_attribute;
}

}  // namespace

class MachineGraphBuilder {
 public:
  explicit MachineGraphBuilder(const xpath::QueryTree& query) : query_(query) {}

  Result<MachineGraph> Run() {
    const xpath::QueryNode* root = query_.root();
    EdgeCondition edge;
    edge.exact = root->axis == xpath::Axis::kChild;
    edge.distance = 1;
    TWIGM_RETURN_IF_ERROR(BuildFrom(root, nullptr, edge));
    return std::move(graph_);
  }

 private:
  // Builds the machine node for `q` (after collapsing interior wildcards
  // along the way) under `parent` with the accumulated edge label.
  Status BuildFrom(const xpath::QueryNode* q, MachineNode* parent,
                   EdgeCondition edge) {
    const xpath::QueryNode* sol = query_.sol();
    while (IsCollapsibleStar(q, sol)) {
      const xpath::QueryNode* child = q->children[0].get();
      if (child->axis == xpath::Axis::kDescendant) edge.exact = false;
      ++edge.distance;
      q = child;
    }

    auto owned = std::make_unique<MachineNode>();
    MachineNode* m = owned.get();
    m->label = q->name;
    m->is_wildcard = q->is_wildcard;
    m->edge = edge;
    m->parent = parent;
    m->on_output_path = q->on_output_path;
    m->is_return = (q == sol);
    m->has_value_test = q->has_value_test;
    m->op = q->op;
    m->literal = q->literal;
    m->literal_is_number = q->literal_is_number;
    m->id = static_cast<int>(graph_.nodes_.size());
    graph_.nodes_.push_back(std::move(owned));
    if (parent == nullptr) {
      graph_.root_ = m;
    } else {
      m->branch_slot = parent->num_slots++;
      parent->children.push_back(m);
    }
    if (m->is_return) graph_.return_ = m;

    for (const auto& child : q->children) {
      if (child->is_attribute) {
        AttributeTest test;
        test.name = child->name;
        test.has_value_test = child->has_value_test;
        test.op = child->op;
        test.literal = child->literal;
        test.literal_is_number = child->literal_is_number;
        test.branch_slot = m->num_slots++;
        m->attr_tests.push_back(std::move(test));
      } else {
        EdgeCondition child_edge;
        child_edge.exact = child->axis == xpath::Axis::kChild;
        child_edge.distance = 1;
        TWIGM_RETURN_IF_ERROR(BuildFrom(child.get(), m, child_edge));
      }
    }
    if (m->num_slots > 64) {
      return Status::NotSupported(
          "a query node with more than 64 predicates/children is not "
          "supported");
    }
    m->required_mask =
        m->num_slots == 64 ? ~uint64_t{0}
                           : ((uint64_t{1} << m->num_slots) - 1);
    return Status::Ok();
  }

  const xpath::QueryTree& query_;
  MachineGraph graph_;
};

namespace {
}  // namespace

Result<MachineGraph> MachineGraph::Build(const xpath::QueryTree& query) {
  if (query.root() == nullptr) {
    return Status::InvalidArgument("empty query tree");
  }
  if (query.sol()->is_attribute) {
    return Status::NotSupported(
        "an attribute cannot be the return node of a query");
  }
  MachineGraphBuilder builder(query);
  return builder.Run();
}

std::string MachineGraph::ToString() const {
  std::string out;
  for (const auto& node : nodes_) {
    out += "v" + std::to_string(node->id) + " label=" + node->label +
           " edge=" + node->edge.ToString();
    if (node->parent != nullptr) {
      out += " parent=v" + std::to_string(node->parent->id);
      out += " beta=" + std::to_string(node->branch_slot);
    } else {
      out += " (root)";
    }
    if (node->is_return) out += " (return)";
    if (node->on_output_path) out += " (output-path)";
    if (node->has_value_test) {
      out += " valuetest[." + std::string(xpath::CmpOpToString(node->op)) +
             node->literal + "]";
    }
    for (const AttributeTest& t : node->attr_tests) {
      out += " @" + t.name + "(slot " + std::to_string(t.branch_slot) + ")";
    }
    out += " slots=" + std::to_string(node->num_slots);
    out += "\n";
  }
  return out;
}

}  // namespace twigm::core
