// Per-machine-node document-level windows, derived by static analysis.
//
// The analyzer (src/analysis/) proves, from a DTD, that a machine node can
// only ever match elements within a level window [min_level, max_level];
// machines then skip the push (the whole δs attempt) for events outside the
// window. A window is advisory and must be *conservative*: on any document
// valid w.r.t. the analyzed DTD it never excludes a real match. On invalid
// documents pruned machines may miss matches — callers opt in via
// set_level_bounds and own that contract.

#ifndef TWIGM_CORE_LEVEL_BOUNDS_H_
#define TWIGM_CORE_LEVEL_BOUNDS_H_

#include <vector>

namespace twigm::core {

/// A closed level window. max_level < 0 means "no upper bound".
struct LevelRange {
  int min_level = 1;
  int max_level = -1;

  bool Allows(int level) const {
    return level >= min_level && (max_level < 0 || level <= max_level);
  }

  /// True when the window excludes every level (an infeasible node).
  bool empty() const { return max_level >= 0 && max_level < min_level; }

  /// The window matching nothing — used for nodes the analysis proved can
  /// never bind on a valid document.
  static LevelRange Nothing() { return LevelRange{1, 0}; }
  /// The window matching everything (the default / no analysis).
  static LevelRange Everything() { return LevelRange{1, -1}; }
};

/// Windows indexed by dense machine-node id (or trie-node id in the filter
/// engine). Empty vector = analysis not run, allow everything.
using LevelBounds = std::vector<LevelRange>;

}  // namespace twigm::core

#endif  // TWIGM_CORE_LEVEL_BOUNDS_H_
