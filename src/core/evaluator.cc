#include "core/evaluator.h"

namespace twigm::core {

const char* EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto: return "auto";
    case EngineKind::kPathM: return "PathM";
    case EngineKind::kBranchM: return "BranchM";
    case EngineKind::kTwigM: return "TwigM";
  }
  return "?";
}

namespace {

EngineKind PickEngine(const xpath::QueryTree& query) {
  if (query.is_linear() && !query.has_value_tests()) return EngineKind::kPathM;
  if (!query.has_descendant_axis() && !query.has_wildcard()) {
    return EngineKind::kBranchM;
  }
  return EngineKind::kTwigM;
}

}  // namespace

Result<std::unique_ptr<XPathStreamProcessor>> XPathStreamProcessor::Create(
    std::string_view query_text, ResultSink* sink, EvaluatorOptions options) {
  Result<xpath::QueryTree> query = xpath::QueryTree::Parse(query_text);
  if (!query.ok()) return query.status();

  auto proc =
      std::unique_ptr<XPathStreamProcessor>(new XPathStreamProcessor());
  proc->query_ = std::move(query).value();
  proc->options_ = options;
  proc->engine_kind_ = options.engine == EngineKind::kAuto
                           ? PickEngine(proc->query_)
                           : options.engine;

  switch (proc->engine_kind_) {
    case EngineKind::kPathM: {
      Result<std::unique_ptr<PathMachine>> m =
          PathMachine::Create(proc->query_, sink);
      if (!m.ok()) return m.status();
      proc->path_ = std::move(m).value();
      proc->machine_ = proc->path_.get();
      break;
    }
    case EngineKind::kBranchM: {
      Result<std::unique_ptr<BranchMachine>> m =
          BranchMachine::Create(proc->query_, sink);
      if (!m.ok()) return m.status();
      proc->branch_ = std::move(m).value();
      proc->machine_ = proc->branch_.get();
      break;
    }
    case EngineKind::kAuto:
    case EngineKind::kTwigM: {
      Result<std::unique_ptr<TwigMachine>> m =
          TwigMachine::Create(proc->query_, sink, options.twig);
      if (!m.ok()) return m.status();
      proc->engine_kind_ = EngineKind::kTwigM;
      proc->twig_ = std::move(m).value();
      proc->machine_ = proc->twig_.get();
      break;
    }
  }

  proc->driver_ = std::make_unique<xml::EventDriver>(proc->machine_);
  proc->parser_ =
      std::make_unique<xml::SaxParser>(proc->driver_.get(), options.sax);
  return proc;
}

Result<std::unique_ptr<XPathStreamProcessor>>
XPathStreamProcessor::CreateWithFragments(std::string_view query_text,
                                          FragmentSink* fragments,
                                          ResultSink* ids,
                                          EvaluatorOptions options) {
  if (fragments == nullptr) {
    return Status::InvalidArgument("fragment mode requires a fragment sink");
  }
  auto recorder = std::make_unique<FragmentRecorder>(fragments, ids);
  // Build the machine with the recorder as its result sink.
  Result<std::unique_ptr<XPathStreamProcessor>> proc =
      Create(query_text, recorder.get(), options);
  if (!proc.ok()) return proc.status();
  XPathStreamProcessor* p = proc.value().get();
  // Splice the recorder between driver and machine, and subscribe it to
  // candidate announcements.
  recorder->set_machine(p->machine_);
  if (p->twig_ != nullptr) p->twig_->set_candidate_observer(recorder.get());
  if (p->path_ != nullptr) p->path_->set_candidate_observer(recorder.get());
  if (p->branch_ != nullptr) {
    p->branch_->set_candidate_observer(recorder.get());
  }
  p->recorder_ = std::move(recorder);
  p->machine_ = p->recorder_.get();
  p->driver_ = std::make_unique<xml::EventDriver>(p->machine_);
  p->parser_ =
      std::make_unique<xml::SaxParser>(p->driver_.get(), options.sax);
  return proc;
}

Status XPathStreamProcessor::Feed(std::string_view chunk) {
  return parser_->Feed(chunk);
}

Status XPathStreamProcessor::Finish() { return parser_->Finish(); }

void XPathStreamProcessor::Reset() {
  if (twig_ != nullptr) twig_->Reset();
  if (path_ != nullptr) path_->Reset();
  if (branch_ != nullptr) branch_->Reset();
  if (recorder_ != nullptr) recorder_->Reset();
  driver_ = std::make_unique<xml::EventDriver>(machine_);
  parser_ = std::make_unique<xml::SaxParser>(driver_.get(), options_.sax);
}

const EngineStats& XPathStreamProcessor::stats() const {
  switch (engine_kind_) {
    case EngineKind::kPathM:
      return path_->stats();
    case EngineKind::kBranchM:
      return branch_->stats();
    default:
      return twig_->stats();
  }
}

Result<std::vector<xml::NodeId>> EvaluateToIds(std::string_view query,
                                               std::string_view document,
                                               EvaluatorOptions options) {
  VectorResultSink sink;
  Result<std::unique_ptr<XPathStreamProcessor>> proc =
      XPathStreamProcessor::Create(query, &sink, options);
  if (!proc.ok()) return proc.status();
  Status s = proc.value()->Feed(document);
  if (!s.ok()) return s;
  s = proc.value()->Finish();
  if (!s.ok()) return s;
  return sink.TakeIds();
}

}  // namespace twigm::core
