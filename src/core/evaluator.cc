#include "core/evaluator.h"

namespace twigm::core {

const char* EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto: return "auto";
    case EngineKind::kPathM: return "PathM";
    case EngineKind::kBranchM: return "BranchM";
    case EngineKind::kTwigM: return "TwigM";
  }
  return "?";
}

namespace {

EngineKind PickEngine(const xpath::QueryTree& query) {
  if (query.is_linear() && !query.has_value_tests()) return EngineKind::kPathM;
  if (!query.has_descendant_axis() && !query.has_wildcard()) {
    return EngineKind::kBranchM;
  }
  return EngineKind::kTwigM;
}

}  // namespace

// Registered-once export instruments; values are refreshed per call.
struct XPathStreamProcessor::ExportHandles {
  obs::MetricsRegistry* registry = nullptr;
  size_t registered_count = 0;  // registry size right after registration
  obs::Counter* start_events = nullptr;
  obs::Counter* end_events = nullptr;
  obs::Counter* pushes = nullptr;
  obs::Counter* pops = nullptr;
  obs::Counter* results = nullptr;
  obs::Counter* predicate_checks = nullptr;
  obs::Counter* candidate_unions = nullptr;
  obs::Counter* live_stack_entries = nullptr;
  obs::Counter* peak_stack_entries = nullptr;
  obs::Counter* live_candidates = nullptr;
  obs::Counter* peak_candidates = nullptr;
  obs::Counter* peak_state_bytes = nullptr;
  obs::Counter* early_emitted = nullptr;
  obs::Counter* early_dropped = nullptr;
  obs::Counter* states_skipped = nullptr;
  obs::Counter* gap_sum_bytes = nullptr;
  obs::Counter* gap_count = nullptr;
  obs::Counter* gap_max_bytes = nullptr;
  obs::Counter* fragment_peak_buffered_bytes = nullptr;
  obs::Counter* hotpath_interner_symbols = nullptr;
  obs::Counter* hotpath_pool_entries = nullptr;
};

XPathStreamProcessor::XPathStreamProcessor() = default;
XPathStreamProcessor::~XPathStreamProcessor() = default;

Result<std::unique_ptr<XPathStreamProcessor>> XPathStreamProcessor::Create(
    std::string_view query_text, MatchObserver* observer,
    EvaluatorOptions options) {
  if (observer == nullptr) {
    return Status::InvalidArgument(
        "XPathStreamProcessor requires a match observer");
  }
  Result<xpath::QueryTree> query = xpath::QueryTree::Parse(query_text);
  if (!query.ok()) return query.status();

  auto proc =
      std::unique_ptr<XPathStreamProcessor>(new XPathStreamProcessor());
  proc->query_ = std::move(query).value();
  proc->options_ = options;
  proc->engine_kind_ = options.engine == EngineKind::kAuto
                           ? PickEngine(proc->query_)
                           : options.engine;

  const bool fragments =
      options.capture_fragments || observer->wants_fragments();
  MatchObserver* machine_observer = observer;
  if (fragments) {
    proc->recorder_ = std::make_unique<FragmentRecorder>(observer);
    machine_observer = proc->recorder_.get();
  }

  // With instrumentation attached, everyone shares its byte-offset slot so
  // trace events and MatchInfo agree; otherwise the processor's own word.
  obs::Instrumentation* instr = options.instrumentation;
  uint64_t* offset_slot =
      instr != nullptr ? instr->byte_offset_slot() : &proc->stream_offset_;
  switch (proc->engine_kind_) {
    case EngineKind::kPathM: {
      Result<std::unique_ptr<PathMachine>> m =
          PathMachine::Create(proc->query_, machine_observer);
      if (!m.ok()) return m.status();
      proc->path_ = std::move(m).value();
      proc->path_->set_instrumentation(instr);
      proc->path_->set_stream_offset(offset_slot);
      proc->machine_ = proc->path_.get();
      break;
    }
    case EngineKind::kBranchM: {
      Result<std::unique_ptr<BranchMachine>> m =
          BranchMachine::Create(proc->query_, machine_observer);
      if (!m.ok()) return m.status();
      proc->branch_ = std::move(m).value();
      proc->branch_->set_instrumentation(instr);
      proc->branch_->set_stream_offset(offset_slot);
      proc->machine_ = proc->branch_.get();
      break;
    }
    case EngineKind::kAuto:
    case EngineKind::kTwigM: {
      Result<std::unique_ptr<TwigMachine>> m =
          TwigMachine::Create(proc->query_, machine_observer, options.twig);
      if (!m.ok()) return m.status();
      proc->engine_kind_ = EngineKind::kTwigM;
      proc->twig_ = std::move(m).value();
      proc->twig_->set_instrumentation(instr);
      proc->twig_->set_stream_offset(offset_slot);
      proc->machine_ = proc->twig_.get();
      break;
    }
  }

  if (fragments) {
    // Splice the recorder between driver and machine.
    proc->recorder_->set_machine(proc->machine_);
    proc->machine_ = proc->recorder_.get();
  }
  proc->WireStream();
  return proc;
}

void XPathStreamProcessor::WireStream() {
  driver_ = std::make_unique<xml::EventDriver>(machine_);
  driver_->set_instrumentation(options_.instrumentation);
  parser_ = std::make_unique<xml::SaxParser>(driver_.get(), options_.sax);
  parser_->set_offset_slot(options_.instrumentation != nullptr
                               ? options_.instrumentation->byte_offset_slot()
                               : &stream_offset_);
  // Bind the machine's query labels to this parser's tag dictionary so
  // per-event dispatch runs on SymbolIds (DESIGN.md §10).
  if (twig_ != nullptr) twig_->BindInterner(parser_->interner());
  if (path_ != nullptr) path_->BindInterner(parser_->interner());
  if (branch_ != nullptr) branch_->BindInterner(parser_->interner());
}

Status XPathStreamProcessor::Consume(const xml::InputChunk& chunk) {
  obs::TimerScope parse(options_.instrumentation != nullptr
                            ? options_.instrumentation->stage_slot(
                                  obs::Stage::kParse)
                            : nullptr);
  return parser_->Consume(chunk);
}

Status XPathStreamProcessor::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

void XPathStreamProcessor::Reset() {
  if (twig_ != nullptr) twig_->Reset();
  if (path_ != nullptr) path_->Reset();
  if (branch_ != nullptr) branch_->Reset();
  if (recorder_ != nullptr) recorder_->Reset();
  stream_offset_ = 0;
  // Rewind the existing parser and driver in place rather than rebuilding
  // them: the parser keeps its buffers and its interner (the machines'
  // symbol bindings point at it), so repeat documents run allocation-free.
  parser_->Reset();
  driver_->Reset();
}

const MachineGraph& XPathStreamProcessor::machine_graph() const {
  switch (engine_kind_) {
    case EngineKind::kPathM:
      return path_->graph();
    case EngineKind::kBranchM:
      return branch_->graph();
    default:
      return twig_->graph();
  }
}

void XPathStreamProcessor::InstallDecisionTable(
    std::shared_ptr<const DecisionTable> table) {
  const EarlyDecisionMode mode = options_.enable_early_decisions;
  if (twig_ != nullptr) twig_->set_decisions(std::move(table), mode);
  else if (path_ != nullptr) path_->set_decisions(std::move(table), mode);
  else if (branch_ != nullptr) branch_->set_decisions(std::move(table), mode);
}

const EngineStats& XPathStreamProcessor::stats() const {
  switch (engine_kind_) {
    case EngineKind::kPathM:
      return path_->stats();
    case EngineKind::kBranchM:
      return branch_->stats();
    default:
      return twig_->stats();
  }
}

void XPathStreamProcessor::ExportMetrics(obs::MetricsRegistry* registry) const {
  // Re-register when given a different registry — or one whose instrument
  // count shrank below what we registered (a fresh registry re-created at
  // the same address; pointer equality alone would mistake it for the old).
  if (export_ == nullptr || export_->registry != registry ||
      registry->instrument_count() < export_->registered_count) {
    export_ = std::make_unique<ExportHandles>();
    export_->registry = registry;
    export_->start_events = registry->RegisterCounter("engine.start_events");
    export_->end_events = registry->RegisterCounter("engine.end_events");
    export_->pushes = registry->RegisterCounter("engine.pushes");
    export_->pops = registry->RegisterCounter("engine.pops");
    export_->results = registry->RegisterCounter("engine.results");
    export_->predicate_checks =
        registry->RegisterCounter("engine.predicate_checks");
    export_->candidate_unions =
        registry->RegisterCounter("engine.candidate_unions");
    export_->live_stack_entries =
        registry->RegisterCounter("engine.live_stack_entries");
    export_->peak_stack_entries =
        registry->RegisterCounter("engine.peak_stack_entries");
    export_->live_candidates =
        registry->RegisterCounter("engine.live_candidates");
    export_->peak_candidates =
        registry->RegisterCounter("engine.peak_candidates");
    export_->peak_state_bytes =
        registry->RegisterCounter("engine.peak_state_bytes");
    export_->early_emitted = registry->RegisterCounter("engine.early_emitted");
    export_->early_dropped = registry->RegisterCounter("engine.early_dropped");
    export_->states_skipped =
        registry->RegisterCounter("engine.states_skipped");
    export_->gap_sum_bytes =
        registry->RegisterCounter("engine.gap_sum_bytes");
    export_->gap_count = registry->RegisterCounter("engine.gap_count");
    export_->gap_max_bytes =
        registry->RegisterCounter("engine.gap_max_bytes");
    export_->fragment_peak_buffered_bytes =
        registry->RegisterCounter("fragment.peak_buffered_bytes");
    export_->hotpath_interner_symbols =
        registry->RegisterCounter("hotpath.interner_symbols");
    export_->hotpath_pool_entries =
        registry->RegisterCounter("hotpath.pool_entries");
    export_->registered_count = registry->instrument_count();
  }
  const EngineStats& s = stats();
  export_->start_events->Set(s.start_events);
  export_->end_events->Set(s.end_events);
  export_->pushes->Set(s.pushes);
  export_->pops->Set(s.pops);
  export_->results->Set(s.results);
  export_->predicate_checks->Set(s.predicate_checks);
  export_->candidate_unions->Set(s.candidate_unions);
  export_->live_stack_entries->Set(s.live_stack_entries);
  export_->peak_stack_entries->Set(s.peak_stack_entries);
  export_->live_candidates->Set(s.live_candidates);
  export_->peak_candidates->Set(s.peak_candidates);
  export_->peak_state_bytes->Set(s.peak_state_bytes);
  export_->early_emitted->Set(s.early_emitted);
  export_->early_dropped->Set(s.early_dropped);
  export_->states_skipped->Set(s.states_skipped);
  export_->gap_sum_bytes->Set(s.gap_sum_bytes);
  export_->gap_count->Set(s.gap_count);
  export_->gap_max_bytes->Set(s.gap_max_bytes);
  export_->fragment_peak_buffered_bytes->Set(fragment_peak_buffered_bytes());
  export_->hotpath_interner_symbols->Set(
      parser_ != nullptr ? parser_->interner()->size() : 0);
  export_->hotpath_pool_entries->Set(twig_ != nullptr ? twig_->pool_entries()
                                                      : 0);
}

Result<std::vector<xml::NodeId>> EvaluateToIds(std::string_view query,
                                               std::string_view document,
                                               EvaluatorOptions options) {
  VectorResultSink sink;
  Result<std::unique_ptr<XPathStreamProcessor>> proc =
      XPathStreamProcessor::Create(query, &sink, options);
  if (!proc.ok()) return proc.status();
  Status s = proc.value()->Consume({document, /*last=*/true});
  if (!s.ok()) return s;
  return sink.TakeIds();
}

}  // namespace twigm::core
