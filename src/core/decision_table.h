// Static decision tables: per-(machine-node, DTD-element) certainty facts
// compiled by the analyzer (analysis::CompileDecisionTable) and consulted by
// the machines on every event (DESIGN.md §13).
//
// A NodeDecision answers, for "an element with tag e just bound at machine
// node v", the three certainty questions of the earliest-query-answering
// lattice:
//   * implied  — which of v's branch obligations is the DTD guaranteed to
//                satisfy by the time e closes (implied_mask bits, plus
//                kValueImplied for v's value test);
//   * refuted  — can v's obligations *never* be met below e (kRefuted);
//   * useless  — can no output decision be made anywhere below e (kUseless).
// Everything not implied or refuted is *open* and resolved dynamically.
//
// The type lives in core (like LevelBounds) so the machines can hold tables
// without depending on the analysis layer; the compiler lives in
// src/analysis/decision_analysis.h. The same advisory contract as level
// bounds applies: facts are conservative for documents valid w.r.t. the
// analyzed DTD. On invalid documents kOn may emit early matches the pop
// rule would have rejected (or miss skipped ones); compile with
// DecisionCompileOptions::assume_valid = false to get an empty (zero-fact)
// table, which degrades every mode to the purely dynamic cascade — exact on
// any well-formed document.

#ifndef TWIGM_CORE_DECISION_TABLE_H_
#define TWIGM_CORE_DECISION_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace twigm::core {

/// How a machine acts on certainty.
enum class EarlyDecisionMode : uint8_t {
  /// The paper's behaviour: decide everything at endElement. Default.
  kOff = 0,
  /// Track certainty and record the earliest-provable point of every match
  /// (EngineStats gap counters / the emission-gap histogram) but act at the
  /// normal time — output is byte-identical to kOff on valid documents.
  /// This is the measurement baseline the kOn gap is compared against.
  kObserve,
  /// Act at the first certain event: emit matches as soon as all remaining
  /// obligations are implied, skip pushes whose obligations are refuted or
  /// whose subtree cannot decide anything. Same match id multiset as kOff
  /// on valid documents; every offset is ≤ the kOff offset.
  kOn,
};

/// One row cell: the static facts for (machine node, element tag).
struct NodeDecision {
  /// Branch bits of the node's required_mask certain to be satisfied once
  /// an element with this tag closes (on DTD-valid documents).
  uint64_t implied_mask = 0;
  uint8_t flags = 0;

  static constexpr uint8_t kRefuted = 1;       // obligations can never hold
  static constexpr uint8_t kUseless = 2;       // no output decision below
  static constexpr uint8_t kValueImplied = 4;  // value test statically true

  bool refuted() const { return (flags & kRefuted) != 0; }
  bool useless() const { return (flags & kUseless) != 0; }
  bool value_implied() const { return (flags & kValueImplied) != 0; }
  bool is_default() const { return implied_mask == 0 && flags == 0; }
};

/// Dense (node × element) fact matrix. Element ids are the analyzer's dense
/// DTD element ids; machines map event SymbolIds onto them once per
/// set_decisions call (unknown tags fall back to the all-open default).
class DecisionTable {
 public:
  DecisionTable() = default;
  DecisionTable(size_t node_count, std::vector<std::string> element_names)
      : node_count_(node_count),
        element_names_(std::move(element_names)),
        rows_(node_count_ * element_names_.size()) {}

  size_t node_count() const { return node_count_; }
  size_t element_count() const { return element_names_.size(); }
  const std::vector<std::string>& element_names() const {
    return element_names_;
  }

  NodeDecision& at(size_t node, size_t elem) {
    return rows_[node * element_names_.size() + elem];
  }
  const NodeDecision& at(size_t node, size_t elem) const {
    return rows_[node * element_names_.size() + elem];
  }

  bool empty() const { return rows_.empty(); }

  /// Number of non-default cells — the "facts computed" figure exported as
  /// analysis.decision_facts. Tables are small (|Q| × |Σ_DTD|), so the scan
  /// is fine at export time.
  uint64_t facts() const {
    uint64_t n = 0;
    for (const NodeDecision& d : rows_) {
      if (!d.is_default()) ++n;
    }
    return n;
  }

 private:
  size_t node_count_ = 0;
  std::vector<std::string> element_names_;
  std::vector<NodeDecision> rows_;
};

}  // namespace twigm::core

#endif  // TWIGM_CORE_DECISION_TABLE_H_
