#include "xml/xml_writer.h"

namespace twigm::xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

XmlWriter::XmlWriter(bool with_declaration) {
  if (with_declaration) {
    out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  }
}

void XmlWriter::SealOpenTag() {
  if (tag_open_) {
    out_.push_back('>');
    tag_open_ = false;
  }
}

XmlWriter& XmlWriter::Open(std::string_view tag) {
  SealOpenTag();
  out_.push_back('<');
  out_.append(tag);
  open_tags_.emplace_back(tag);
  tag_open_ = true;
  had_content_ = false;
  return *this;
}

XmlWriter& XmlWriter::Attr(std::string_view name, std::string_view value) {
  // Attr after the tag was sealed is a programming error; we tolerate it by
  // ignoring the attribute rather than corrupting the document.
  if (!tag_open_) return *this;
  out_.push_back(' ');
  out_.append(name);
  out_.append("=\"");
  out_.append(EscapeAttribute(value));
  out_.push_back('"');
  return *this;
}

XmlWriter& XmlWriter::Text(std::string_view text) {
  if (text.empty()) return *this;
  SealOpenTag();
  out_.append(EscapeText(text));
  had_content_ = true;
  return *this;
}

XmlWriter& XmlWriter::Close() {
  if (open_tags_.empty()) return *this;
  if (tag_open_) {
    out_.append("/>");
    tag_open_ = false;
  } else {
    out_.append("</");
    out_.append(open_tags_.back());
    out_.push_back('>');
  }
  open_tags_.pop_back();
  had_content_ = true;
  return *this;
}

void XmlWriter::CloseAll() {
  while (!open_tags_.empty()) Close();
}

std::string XmlWriter::TakeString() && {
  CloseAll();
  return std::move(out_);
}

}  // namespace twigm::xml
