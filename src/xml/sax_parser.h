// Incremental (push-model) SAX parser for XML 1.0, written from scratch.
//
// This is the library's substitute for Expat (which the paper uses): a
// non-validating, streaming parser that accepts input in arbitrary chunks
// and fires `SaxHandler` callbacks as soon as complete constructs are
// available. It supports:
//   * elements with attributes (single or double quoted),
//   * character data with the predefined entities (&amp; &lt; &gt; &apos;
//     &quot;) and decimal/hex character references,
//   * CDATA sections, comments, processing instructions,
//   * an XML declaration and a (skipped) DOCTYPE with internal subset,
// and enforces the well-formedness rules a streaming processor needs:
// matching tags, a single root element, no markup outside the root, valid
// names, and no duplicate attributes. Errors carry line/column positions.
//
// Input front door (DESIGN.md §12): bytes enter through the unified
// ByteSource API — Consume(InputChunk) or Pump(ByteSource*); ParseAll is a
// one-shot convenience over Consume. The front end makes the stream
// *canonical* before the tokenizer sees it: UTF-8 and UTF-16 (LE/BE) byte
// order marks are detected, UTF-16 input is transcoded to UTF-8, NUL bytes
// and character references to non-XML characters are rejected, and an XML
// declaration anywhere but the (post-BOM) start of the document is an
// error. Chunks may split anywhere — mid-tag, mid-BOM, mid-UTF-16 unit.
//
// Scanning: a SIMD/SWAR structural pass (xml/structural_scan.h) classifies
// each appended region once, producing a sparse index of '<', '>', '&',
// quotes and newlines; the tokenizer walks that index instead of
// re-scanning bytes. Build-time ISA dispatch; -DTWIGM_FORCE_SCALAR_SCAN
// forces the portable SWAR path, and SaxParserOptions::force_scalar_scan
// selects the byte-loop reference scanner at runtime (differential tests).
//
// Hot path: every element name is interned into a TagInterner and events
// carry the resulting SymbolId (TagToken). Attribute names and values are
// delivered as string_views into the parse buffer (or, for values with
// entity references, into a reused decode buffer) — no per-event string
// copies. The steady state per event is allocation-free; see DESIGN.md §10.

#ifndef TWIGM_XML_SAX_PARSER_H_
#define TWIGM_XML_SAX_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/structural_scan.h"
#include "xml/tag_interner.h"

namespace twigm::xml {

/// Tuning knobs for the parser.
struct SaxParserOptions {
  /// Maximum element nesting depth before the parser reports an error.
  int max_depth = 20000;
  /// When true, character data consisting only of whitespace between
  /// elements is still delivered via OnCharacters. Query machines ignore it
  /// either way; tests may want it suppressed.
  bool emit_whitespace_text = true;
  /// Maximum bytes the parser may buffer for a single incomplete construct
  /// (unterminated tag, CDATA section, comment, text run). A malicious or
  /// broken stream that never closes a construct would otherwise grow the
  /// internal buffer without bound; exceeding the limit is reported as an
  /// error with line/column like other well-formedness failures. Enforced
  /// on the *canonical* buffer — after BOM stripping and UTF-16→UTF-8
  /// transcoding, which can expand input by up to 1.5× — so a transcoded
  /// stream cannot smuggle past the cap. 0 disables the limit.
  uint64_t max_buffer_bytes = uint64_t{1} << 30;  // 1 GiB
  /// When true (default), emitted TagTokens carry the SymbolId assigned by
  /// this parser's TagInterner. When false, tokens carry kNoSymbol and
  /// consumers fall back to byte comparison (the parser still interns
  /// internally for its own open-tag bookkeeping). Exists so differential
  /// tests can exercise the legacy dispatch path.
  bool intern_tags = true;
  /// When true, structural scanning uses the one-byte-at-a-time reference
  /// loop instead of the build-selected SIMD/SWAR kernel. The two must be
  /// indistinguishable through the event stream (asserted by the
  /// conformance differential fuzz); exists only for those tests and for
  /// bench_rawscan's baseline.
  bool force_scalar_scan = false;
};

/// Push-model SAX parser. Typical use:
///
///   MyHandler handler;
///   SaxParser parser(&handler);
///   while (have more bytes)
///     TWIGM_RETURN_IF_ERROR(parser.Consume({chunk, /*last=*/false}));
///   TWIGM_RETURN_IF_ERROR(parser.Consume({{}, /*last=*/true}));
///
/// or, pulling from a ByteSource: TWIGM_RETURN_IF_ERROR(parser.Pump(&src));
class SaxParser {
 public:
  /// `handler` must outlive the parser. Does not take ownership.
  explicit SaxParser(SaxHandler* handler,
                     SaxParserOptions options = SaxParserOptions());

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  /// THE byte entry point: appends one chunk of the document (through the
  /// encoding front end), processes every construct that is now complete,
  /// and — when chunk.last — verifies the document ended cleanly (all tags
  /// closed, a root element present) and fires OnEndDocument. Returns the
  /// first error encountered; after an error the parser is poisoned and
  /// further calls return the same error.
  Status Consume(const InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(ByteSource* source);

  /// Convenience: Consume({doc, last=true}) on a fresh document.
  Status ParseAll(std::string_view doc) { return Consume({doc, true}); }

  /// Rewinds the parser for a new document: clears parse state (position,
  /// open tags, encoding detection, structural index, sticky error) while
  /// *retaining* allocated capacity — the input buffer, scratch buffers,
  /// index and open-tag stack keep their storage, and the tag interner
  /// keeps every symbol it has assigned (machines bind label symbols once
  /// at Create; they must survive Reset).
  void Reset();

  /// 1-based position of the next unconsumed byte (for error reporting).
  /// Positions are in the canonical (UTF-8, post-BOM) stream. Line/column
  /// tracking is lazy — these accessors (like error formatting) catch up
  /// on demand, which is why they are non-const.
  size_t line() {
    SyncLocation(pos_);
    return line_;
  }
  size_t column() {
    SyncLocation(pos_);
    return column_;
  }

  /// Total canonical bytes consumed so far (BOM excluded; UTF-16 input is
  /// counted after transcoding to UTF-8).
  size_t bytes_consumed() const { return bytes_consumed_; }

  /// The tag dictionary this parser stamps into its TagTokens. Query
  /// machines intern their label strings here at bind time so per-event
  /// dispatch is symbol comparison. Valid for the parser's lifetime; never
  /// cleared, not even by Reset().
  TagInterner* interner() { return &interner_; }
  const TagInterner* interner() const { return &interner_; }

  /// Optional: before firing the handler callbacks for a construct, the
  /// parser stores the construct's starting byte offset into `*slot` (one
  /// store per construct). XPathStreamProcessor points this at its shared
  /// stream-offset word so machines can stamp MatchInfo::byte_offset and
  /// trace events. Null (default) disables the store.
  void set_offset_slot(uint64_t* slot) { offset_slot_ = slot; }

 private:
  enum class Encoding : uint8_t { kUnknown, kUtf8, kUtf16Le, kUtf16Be };

  // --- encoding front end ---------------------------------------------
  // Routes raw chunk bytes into the canonical buffer_: BOM sniffing,
  // UTF-16 transcoding (with cross-chunk code-unit/surrogate carry), then
  // structural-scans whatever was appended.
  Status Ingest(std::string_view bytes, bool last);
  Status DecodeUtf16(std::string_view bytes);
  // Scans buffer_[scanned_end_, size) into index_ and tracks first_nul_.
  void ScanAppended();
  // Error at the first NUL byte (advances position to it first).
  Status NulError();

  // --- tokenizer -------------------------------------------------------
  // Bytes the tokenizer may look at: the canonical buffer, walled at the
  // first NUL (whose consumption is the error of NulError()).
  size_t parse_limit() const {
    return first_nul_ < buffer_.size() ? first_nul_ : buffer_.size();
  }
  // End-of-document checks + OnEndDocument (consuming a last=true chunk).
  Status FinishInput();
  // Consumes as many complete constructs from buffer_ as possible.
  Status Drain();
  // Handles one markup construct starting at buffer_[pos_] == '<'.
  // Sets *made_progress to false if the construct is still incomplete.
  Status ConsumeMarkup(bool* made_progress);
  // Emits the text run [pos_, lt) as character data. `has_amp` (from the
  // caller's index walk) selects the entity-decoding slow path.
  Status EmitText(size_t lt, bool has_amp);
  Status ConsumeStartTag(size_t gt);
  Status ConsumeEndTag(size_t gt);
  // Decodes entities/char-refs in `raw` into `out`. `context` names the
  // construct for error messages ("character data", "attribute value").
  Status DecodeEntities(std::string_view raw, const char* context,
                        std::string* out);
  Status ErrorHere(const std::string& msg);
  // Brings line_/column_ up to buffer position `to` (>= loc_pos_),
  // counting newlines with memchr. Lazy: runs only for error messages,
  // the line()/column() accessors and buffer compaction — never on the
  // per-construct hot path.
  void SyncLocation(size_t to);
  // Scans the structural index for the '>' ending a tag, skipping quoted
  // attribute values wholesale. Returns npos if not yet complete.
  size_t FindTagEnd(size_t start) const;
  // First '>' at position p >= from + prefix.size() (within parse_limit)
  // whose preceding bytes equal `prefix` starting at >= from; npos if
  // none. Implements the "-->", "]]>" and "?>" terminator searches as
  // walks over '>' marks.
  size_t FindMarkupEnd(size_t from, std::string_view prefix) const;
  // Index of the first mark at position >= from. The parse cursor only
  // moves forward, so lookups walk linearly from mark_cursor_ (which Drain
  // keeps caught up with pos_) — amortized O(total marks), no binary
  // searches on the hot path. Requires from >= pos_.
  size_t MarkFrom(size_t from) const;
  // Position of the first mark of class `cls` in [from, to); npos if none.
  size_t NextMark(StructClass cls, size_t from, size_t to) const;

  SaxHandler* handler_;
  SaxParserOptions options_;
  TagInterner interner_;

  std::string buffer_;   // canonical (UTF-8) unconsumed input
  size_t pos_ = 0;       // parse cursor within buffer_
  uint64_t* offset_slot_ = nullptr;  // see set_offset_slot
  size_t line_ = 1;
  size_t column_ = 1;
  size_t loc_pos_ = 0;  // buffer position line_/column_ refer to
  size_t bytes_consumed_ = 0;

  // Structural index over buffer_[0, scanned_end_).
  StructuralIndex index_;
  size_t scanned_end_ = 0;
  size_t mark_cursor_ = 0;  // first mark at position >= pos_ (see MarkFrom)
  size_t first_nul_ = StructuralIndex::npos;  // buffer pos of first NUL

  // Encoding front end state.
  Encoding encoding_ = Encoding::kUnknown;
  unsigned char sniff_[3] = {};  // undecided potential-BOM prefix bytes
  size_t sniff_len_ = 0;
  bool have_pending_u16_byte_ = false;
  unsigned char pending_u16_byte_ = 0;   // half of a split UTF-16 unit
  uint32_t pending_high_surrogate_ = 0;  // 0 = none

  std::vector<SymbolId> open_tags_;  // interned names of open elements
  bool seen_root_ = false;
  bool started_ = false;
  bool finished_ = false;
  Status error_;  // sticky error state

  std::string text_scratch_;             // reused text decode buffer
  std::string attr_decode_buf_;          // reused attr-value decode buffer
  std::vector<Attribute> attr_scratch_;  // reused attribute list
  // Attribute values that needed entity decoding are parked in
  // attr_decode_buf_ during the attribute loop; because that buffer may
  // reallocate while later values append to it, the final string_views are
  // patched in afterwards from these (attr index, offset, length) records.
  struct AttrFixup {
    size_t attr_index;
    size_t offset;
    size_t length;
  };
  std::vector<AttrFixup> attr_fixups_;
};

/// Returns true iff `name` is a valid XML element/attribute name under this
/// parser's (slightly relaxed, byte-oriented) rules.
bool IsValidXmlName(std::string_view name);

}  // namespace twigm::xml

#endif  // TWIGM_XML_SAX_PARSER_H_
