// Incremental (push-model) SAX parser for XML 1.0, written from scratch.
//
// This is the library's substitute for Expat (which the paper uses): a
// non-validating, streaming parser that accepts input in arbitrary chunks
// and fires `SaxHandler` callbacks as soon as complete constructs are
// available. It supports:
//   * elements with attributes (single or double quoted),
//   * character data with the predefined entities (&amp; &lt; &gt; &apos;
//     &quot;) and decimal/hex character references,
//   * CDATA sections, comments, processing instructions,
//   * an XML declaration and a (skipped) DOCTYPE with internal subset,
// and enforces the well-formedness rules a streaming processor needs:
// matching tags, a single root element, no markup outside the root, valid
// names, and no duplicate attributes. Errors carry line/column positions.
//
// Hot path: every element name is interned into a TagInterner and events
// carry the resulting SymbolId (TagToken). Attribute names and values are
// delivered as string_views into the parse buffer (or, for values with
// entity references, into a reused decode buffer) — no per-event string
// copies. The steady state per event is allocation-free; see DESIGN.md §10.

#ifndef TWIGM_XML_SAX_PARSER_H_
#define TWIGM_XML_SAX_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"

namespace twigm::xml {

/// Tuning knobs for the parser.
struct SaxParserOptions {
  /// Maximum element nesting depth before the parser reports an error.
  int max_depth = 20000;
  /// When true, character data consisting only of whitespace between
  /// elements is still delivered via OnCharacters. Query machines ignore it
  /// either way; tests may want it suppressed.
  bool emit_whitespace_text = true;
  /// Maximum bytes the parser may buffer for a single incomplete construct
  /// (unterminated tag, CDATA section, comment, text run). A malicious or
  /// broken stream that never closes a construct would otherwise grow the
  /// internal buffer without bound; exceeding the limit is reported as an
  /// error with line/column like other well-formedness failures. 0 disables
  /// the limit.
  uint64_t max_buffer_bytes = uint64_t{1} << 30;  // 1 GiB
  /// When true (default), emitted TagTokens carry the SymbolId assigned by
  /// this parser's TagInterner. When false, tokens carry kNoSymbol and
  /// consumers fall back to byte comparison (the parser still interns
  /// internally for its own open-tag bookkeeping). Exists so differential
  /// tests can exercise the legacy dispatch path.
  bool intern_tags = true;
};

/// Push-model SAX parser. Typical use:
///
///   MyHandler handler;
///   SaxParser parser(&handler);
///   while (have more bytes) TWIGM_RETURN_IF_ERROR(parser.Feed(chunk));
///   TWIGM_RETURN_IF_ERROR(parser.Finish());
class SaxParser {
 public:
  /// `handler` must outlive the parser. Does not take ownership.
  explicit SaxParser(SaxHandler* handler,
                     SaxParserOptions options = SaxParserOptions());

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  /// Appends a chunk of the document and processes every construct that is
  /// now complete. Returns the first error encountered; after an error the
  /// parser is poisoned and further calls return the same error.
  Status Feed(std::string_view chunk);

  /// Declares end-of-input: verifies the document ended cleanly (all tags
  /// closed, a root element present) and fires OnEndDocument.
  Status Finish();

  /// Convenience: Feed(doc) then Finish() on a fresh document.
  Status ParseAll(std::string_view doc);

  /// Rewinds the parser for a new document: clears parse state (position,
  /// open tags, sticky error) while *retaining* allocated capacity — the
  /// input buffer, scratch buffers and open-tag stack keep their storage,
  /// and the tag interner keeps every symbol it has assigned (machines bind
  /// label symbols once at Create; they must survive Reset).
  void Reset();

  /// 1-based position of the next unconsumed byte (for error reporting).
  size_t line() const { return line_; }
  size_t column() const { return column_; }

  /// Total bytes consumed so far.
  size_t bytes_consumed() const { return bytes_consumed_; }

  /// The tag dictionary this parser stamps into its TagTokens. Query
  /// machines intern their label strings here at bind time so per-event
  /// dispatch is symbol comparison. Valid for the parser's lifetime; never
  /// cleared, not even by Reset().
  TagInterner* interner() { return &interner_; }
  const TagInterner* interner() const { return &interner_; }

  /// Optional: before firing the handler callbacks for a construct, the
  /// parser stores the construct's starting byte offset into `*slot` (one
  /// store per construct). XPathStreamProcessor points this at its shared
  /// stream-offset word so machines can stamp MatchInfo::byte_offset and
  /// trace events. Null (default) disables the store.
  void set_offset_slot(uint64_t* slot) { offset_slot_ = slot; }

 private:
  // Consumes as many complete constructs from buffer_ as possible.
  Status Drain();
  // Handles one markup construct starting at buffer_[pos_] == '<'.
  // Sets *made_progress to false if the construct is still incomplete.
  Status ConsumeMarkup(bool* made_progress);
  // Emits the text run [pos_, lt) as character data (entity-decoded).
  Status EmitText(size_t lt);
  Status ConsumeStartTag(size_t gt);
  Status ConsumeEndTag(size_t gt);
  // Decodes entities/char-refs in `raw` into `out`. `context` names the
  // construct for error messages ("character data", "attribute value").
  Status DecodeEntities(std::string_view raw, const char* context,
                        std::string* out);
  Status ErrorHere(const std::string& msg);
  // Advances line_/column_ over buffer_[from, to).
  void AdvancePosition(size_t from, size_t to);
  // Scans for the '>' ending a tag, honoring quoted attribute values.
  // Returns npos if not yet complete.
  size_t FindTagEnd(size_t start) const;

  SaxHandler* handler_;
  SaxParserOptions options_;
  TagInterner interner_;

  std::string buffer_;   // unconsumed input
  size_t pos_ = 0;       // parse cursor within buffer_
  uint64_t* offset_slot_ = nullptr;  // see set_offset_slot
  size_t line_ = 1;
  size_t column_ = 1;
  size_t bytes_consumed_ = 0;

  std::vector<SymbolId> open_tags_;  // interned names of open elements
  bool seen_root_ = false;
  bool started_ = false;
  bool finished_ = false;
  Status error_;  // sticky error state

  std::string text_scratch_;             // reused text decode buffer
  std::string attr_decode_buf_;          // reused attr-value decode buffer
  std::vector<Attribute> attr_scratch_;  // reused attribute list
  // Attribute values that needed entity decoding are parked in
  // attr_decode_buf_ during the attribute loop; because that buffer may
  // reallocate while later values append to it, the final string_views are
  // patched in afterwards from these (attr index, offset, length) records.
  struct AttrFixup {
    size_t attr_index;
    size_t offset;
    size_t length;
  };
  std::vector<AttrFixup> attr_fixups_;
};

/// Returns true iff `name` is a valid XML element/attribute name under this
/// parser's (slightly relaxed, byte-oriented) rules.
bool IsValidXmlName(std::string_view name);

}  // namespace twigm::xml

#endif  // TWIGM_XML_SAX_PARSER_H_
