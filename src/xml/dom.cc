#include "xml/dom.h"

#include "xml/sax_parser.h"

namespace twigm::xml {

DomNode* DomAssembler::StartElement(std::string_view tag,
                                    const std::vector<Attribute>& attrs) {
  doc_.nodes_.emplace_back();
  DomNode* node = &doc_.nodes_.back();
  node->tag.assign(tag);
  node->attributes.reserve(attrs.size());
  for (const Attribute& a : attrs) {
    node->attributes.push_back(
        OwnedAttribute{std::string(a.name), std::string(a.value)});
  }
  node->level = static_cast<int>(stack_.size()) + 1;
  node->id = ++next_id_;
  if (stack_.empty()) {
    doc_.root_ = node;
  } else {
    node->parent = stack_.back();
    stack_.back()->children.push_back(node);
  }
  if (node->level > doc_.depth_) doc_.depth_ = node->level;
  stack_.push_back(node);
  return node;
}

void DomAssembler::EndElement() { stack_.pop_back(); }

void DomAssembler::Text(std::string_view text) {
  if (!stack_.empty()) stack_.back()->text.append(text);
}

DomDocument DomAssembler::TakeDocument() {
  stack_.clear();
  next_id_ = 0;
  DomDocument out = std::move(doc_);
  doc_ = DomDocument();
  return out;
}

void DomBuilder::OnStartElement(const TagToken& tag,
                                const std::vector<Attribute>& attrs) {
  assembler_.StartElement(tag.text, attrs);
}

void DomBuilder::OnEndElement(const TagToken& tag) {
  (void)tag;  // the parser already verified tag matching
  assembler_.EndElement();
}

void DomBuilder::OnCharacters(std::string_view text) {
  assembler_.Text(text);
}

DomDocument DomBuilder::TakeDocument() { return assembler_.TakeDocument(); }

Result<DomDocument> DomDocument::Parse(std::string_view doc) {
  DomBuilder builder;
  SaxParser parser(&builder);
  Status s = parser.ParseAll(doc);
  if (!s.ok()) return s;
  return builder.TakeDocument();
}

size_t DomDocument::ApproximateMemoryBytes() const {
  size_t total = 0;
  for (const DomNode& n : nodes_) {
    total += sizeof(DomNode);
    total += n.tag.capacity();
    total += n.text.capacity();
    total += n.children.capacity() * sizeof(DomNode*);
    for (const OwnedAttribute& a : n.attributes) {
      total += sizeof(OwnedAttribute) + a.name.capacity() + a.value.capacity();
    }
  }
  return total;
}

}  // namespace twigm::xml
