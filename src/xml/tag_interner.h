// Tag-name dictionary: maps tag bytes to dense, stable SymbolIds.
//
// The SAX parser interns every element name it sees and stamps the symbol
// into the TagToken it emits; query machines intern their label strings
// into the same dictionary once at bind time. From then on, per-event
// dispatch is integer comparison (or a postings-vector lookup) instead of
// string hashing — see DESIGN.md §10.
//
// Implementation: open-addressing hash table (power-of-two sized, linear
// probing) over name views that point into a chunked character arena, so
// views returned by name() stay valid for the interner's lifetime and
// across parse-buffer compaction. Symbols are never reused or reordered;
// the table only grows. A streaming document's distinct-tag count is small
// (tens to hundreds), so the steady state is all hits: one hash, one probe,
// one byte-compare per start tag, zero allocations.

#ifndef TWIGM_XML_TAG_INTERNER_H_
#define TWIGM_XML_TAG_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "xml/sax_event.h"

namespace twigm::xml {

class TagInterner {
 public:
  TagInterner();
  TagInterner(const TagInterner&) = delete;
  TagInterner& operator=(const TagInterner&) = delete;

  /// Returns the symbol for `name`, creating one on first sight. The bytes
  /// are copied into the interner's arena, so `name` may point anywhere
  /// (e.g. into a parse buffer about to be compacted).
  SymbolId Intern(std::string_view name);

  /// Returns the symbol for `name`, or kNoSymbol if it was never interned.
  SymbolId Find(std::string_view name) const;

  /// The interned bytes for `id`. Valid for the interner's lifetime.
  std::string_view name(SymbolId id) const { return names_[id]; }

  /// Number of distinct names interned. Symbols are 0..size()-1.
  size_t size() const { return names_.size(); }

  // There is deliberately no Clear(): symbols must stay stable across
  // documents because machines bind their query labels once at Create and
  // Reset() paths retain the binding.

 private:
  void Grow();
  const char* ArenaCopy(std::string_view name);

  // Slot values are symbol+1 so 0 means empty. Power-of-two sized.
  std::vector<uint32_t> table_;
  std::vector<std::string_view> names_;   // indexed by SymbolId, into arena
  std::vector<uint64_t> hashes_;          // cached per symbol, for rehashing
  std::vector<std::unique_ptr<char[]>> arena_;
  size_t arena_used_ = 0;   // bytes used in the current (last) chunk
  size_t arena_cap_ = 0;    // capacity of the current chunk
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_TAG_INTERNER_H_
