// Tag-name dictionary: maps tag bytes to dense, stable SymbolIds.
//
// The SAX parser interns every element name it sees and stamps the symbol
// into the TagToken it emits; query machines intern their label strings
// into the same dictionary once at bind time. From then on, per-event
// dispatch is integer comparison (or a postings-vector lookup) instead of
// string hashing — see DESIGN.md §10.
//
// Implementation: open-addressing hash table (power-of-two sized, linear
// probing) over name views that point into a chunked character arena, so
// views returned by name() stay valid for the interner's lifetime and
// across parse-buffer compaction. Symbols are never reused or reordered;
// the table only grows. A streaming document's distinct-tag count is small
// (tens to hundreds), so the steady state is all hits: one hash, one probe,
// one byte-compare per start tag, zero allocations.

#ifndef TWIGM_XML_TAG_INTERNER_H_
#define TWIGM_XML_TAG_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax_event.h"

namespace twigm::xml {

class TagInterner {
 public:
  TagInterner();
  TagInterner(const TagInterner&) = delete;
  TagInterner& operator=(const TagInterner&) = delete;

  /// Returns the symbol for `name`, creating one on first sight. The bytes
  /// are copied into the interner's arena, so `name` may point anywhere
  /// (e.g. into a parse buffer about to be compacted).
  SymbolId Intern(std::string_view name);

  /// Returns the symbol for `name`, or kNoSymbol if it was never interned.
  SymbolId Find(std::string_view name) const;

  /// The interned bytes for `id`. Valid for the interner's lifetime.
  std::string_view name(SymbolId id) const { return names_[id]; }

  /// Number of distinct names interned. Symbols are 0..size()-1.
  size_t size() const { return names_.size(); }

  // There is deliberately no Clear(): symbols must stay stable across
  // documents because machines bind their query labels once at Create and
  // Reset() paths retain the binding.

  /// Appends the dictionary to `out` in symbol order: u32 count, then per
  /// symbol u32 length + raw bytes (host endianness). This is the on-disk
  /// tag dictionary of the persistent structural index (src/index/): a
  /// dictionary written after ingesting a document and loaded back yields
  /// the *same* SymbolId for every name, so on-disk label columns and
  /// postings keyed by symbol stay valid across processes.
  void Serialize(std::string* out) const;

  /// Rebuilds a dictionary previously produced by Serialize. Requires an
  /// empty interner (symbols are dense from 0, so loading into a non-empty
  /// one would renumber). Fails closed on truncated or malformed input and
  /// on duplicate or invalid (empty) names; on failure the interner may
  /// hold a prefix of the dictionary and must be discarded.
  Status Load(std::string_view bytes);

 private:
  void Grow();
  const char* ArenaCopy(std::string_view name);

  // Slot values are symbol+1 so 0 means empty. Power-of-two sized.
  std::vector<uint32_t> table_;
  std::vector<std::string_view> names_;   // indexed by SymbolId, into arena
  std::vector<uint64_t> hashes_;          // cached per symbol, for rehashing
  std::vector<std::unique_ptr<char[]>> arena_;
  size_t arena_used_ = 0;   // bytes used in the current (last) chunk
  size_t arena_cap_ = 0;    // capacity of the current chunk
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_TAG_INTERNER_H_
