// Serialization helpers: escaping plus a small push-style document writer.
// Used by the dataset generators and by tests that build documents
// programmatically.

#ifndef TWIGM_XML_XML_WRITER_H_
#define TWIGM_XML_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace twigm::xml {

/// Escapes `text` for use as character data (& < >).
std::string EscapeText(std::string_view text);

/// Escapes `value` for use inside a double-quoted attribute (& < > ").
std::string EscapeAttribute(std::string_view value);

/// Builds an XML document into an in-memory string. The writer performs no
/// name validation (generators always produce valid names) but does keep the
/// element stack so Close() emits the matching tag.
///
///   XmlWriter w;
///   w.Open("book").Attr("year", "2006").Open("title").Text("XML").Close();
///   w.Close();
///   std::string doc = std::move(w).TakeString();
class XmlWriter {
 public:
  explicit XmlWriter(bool with_declaration = true);

  /// Opens `tag`. Attributes may be added with Attr() until the next
  /// Open/Text/Close call.
  XmlWriter& Open(std::string_view tag);

  /// Adds an attribute to the element opened by the preceding Open().
  XmlWriter& Attr(std::string_view name, std::string_view value);

  /// Appends escaped character data inside the current element.
  XmlWriter& Text(std::string_view text);

  /// Closes the innermost open element. Elements with no content are
  /// serialized in the self-closing form.
  XmlWriter& Close();

  /// Closes all remaining open elements.
  void CloseAll();

  /// Number of currently open elements.
  size_t depth() const { return open_tags_.size(); }

  /// Current size of the serialized output in bytes.
  size_t size_bytes() const { return out_.size(); }

  /// Finishes the document (closing any open elements) and returns it.
  std::string TakeString() &&;

 private:
  // Emits ">" for a pending start tag, if any.
  void SealOpenTag();

  std::string out_;
  std::vector<std::string> open_tags_;
  bool tag_open_ = false;      // "<tag" emitted but not yet ">"
  bool had_content_ = false;   // current element has children/text
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_XML_WRITER_H_
