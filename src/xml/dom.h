// In-memory document object model.
//
// The streaming machines never touch this; it exists for the non-streaming
// baselines the paper compares against (Galax, XMLTaskForce — engines that
// load the whole document and evaluate with random access) and as the
// correctness oracle in differential tests. Nodes carry the same (level, id)
// coordinates as the modified SAX events so results can be compared across
// engines.

#ifndef TWIGM_XML_DOM_H_
#define TWIGM_XML_DOM_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax_event.h"

namespace twigm::xml {

/// An attribute owned by the tree. The streaming xml::Attribute carries
/// borrowed views into the parser's buffers (valid only for the callback);
/// the DOM is the one place that keeps attributes, so it copies here.
struct OwnedAttribute {
  std::string name;
  std::string value;
};

/// One element node. Text content is accumulated per-node (concatenation of
/// all directly contained character data), which is what value predicates
/// compare against.
struct DomNode {
  std::string tag;
  std::vector<OwnedAttribute> attributes;
  std::string text;          // direct character data, concatenated
  int level = 0;             // root = 1
  NodeId id = 0;             // pre-order, first element = 1
  DomNode* parent = nullptr;
  std::vector<DomNode*> children;

  /// Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const {
    for (const OwnedAttribute& a : attributes) {
      if (a.name == name) return &a.value;
    }
    return nullptr;
  }
};

/// A parsed document owning its nodes. Node pointers remain valid for the
/// document's lifetime.
class DomDocument {
 public:
  DomDocument() = default;
  DomDocument(const DomDocument&) = delete;
  DomDocument& operator=(const DomDocument&) = delete;
  DomDocument(DomDocument&&) = default;
  DomDocument& operator=(DomDocument&&) = default;

  /// Parses `doc` into a tree. Fails on malformed input.
  static Result<DomDocument> Parse(std::string_view doc);

  const DomNode* root() const { return root_; }
  DomNode* root() { return root_; }

  /// Number of element nodes.
  size_t size() const { return nodes_.size(); }

  /// Maximum element depth (root = 1); 0 for an (impossible) empty document.
  int depth() const { return depth_; }

  /// All nodes in document order.
  const std::deque<DomNode>& nodes() const { return nodes_; }

  /// Approximate heap footprint of the tree, for memory reporting.
  size_t ApproximateMemoryBytes() const;

 private:
  friend class DomAssembler;

  std::deque<DomNode> nodes_;  // stable addresses
  DomNode* root_ = nullptr;
  int depth_ = 0;
};

/// Incremental tree assembly. Used by DomBuilder (raw SAX) and by engines
/// that buffer document structure from modified SAX events (the XAOS-style
/// baseline). Levels and ids are assigned by the assembler (root = 1,
/// pre-order ids from 1).
class DomAssembler {
 public:
  DomAssembler() = default;

  /// Opens an element; returns the node (owned by the document).
  DomNode* StartElement(std::string_view tag,
                        const std::vector<Attribute>& attrs);
  /// Closes the innermost open element.
  void EndElement();
  /// Appends character data to the innermost open element (if any).
  void Text(std::string_view text);

  /// Number of open elements.
  size_t depth() const { return stack_.size(); }

  /// Returns the finished document and resets the assembler.
  DomDocument TakeDocument();

 private:
  DomDocument doc_;
  std::vector<DomNode*> stack_;
  NodeId next_id_ = 0;
};

/// SAX handler that builds a DomDocument. Exposed so callers already holding
/// a SAX stream (e.g. from a generator) can build a DOM without
/// re-serializing.
class DomBuilder : public SaxHandler {
 public:
  DomBuilder() = default;

  void OnStartElement(const TagToken& tag,
                      const std::vector<Attribute>& attrs) override;
  void OnEndElement(const TagToken& tag) override;
  void OnCharacters(std::string_view text) override;

  /// Returns the finished document. Call after parsing succeeds.
  DomDocument TakeDocument();

 private:
  DomAssembler assembler_;
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_DOM_H_
