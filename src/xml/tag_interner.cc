#include "xml/tag_interner.h"

#include <cstring>

namespace twigm::xml {

namespace {

constexpr size_t kInitialSlots = 64;       // power of two
constexpr size_t kArenaChunkBytes = 4096;

uint64_t HashName(std::string_view name) {
  // FNV-1a.
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

TagInterner::TagInterner() : table_(kInitialSlots, 0) {}

const char* TagInterner::ArenaCopy(std::string_view name) {
  if (arena_used_ + name.size() > arena_cap_) {
    arena_cap_ = name.size() > kArenaChunkBytes ? name.size()
                                                : kArenaChunkBytes;
    arena_.push_back(std::make_unique<char[]>(arena_cap_));
    arena_used_ = 0;
  }
  char* dst = arena_.back().get() + arena_used_;
  std::memcpy(dst, name.data(), name.size());
  arena_used_ += name.size();
  return dst;
}

void TagInterner::Grow() {
  std::vector<uint32_t> bigger(table_.size() * 2, 0);
  const size_t mask = bigger.size() - 1;
  for (uint32_t slot : table_) {
    if (slot == 0) continue;
    size_t i = hashes_[slot - 1] & mask;
    while (bigger[i] != 0) i = (i + 1) & mask;
    bigger[i] = slot;
  }
  table_ = std::move(bigger);
}

SymbolId TagInterner::Intern(std::string_view name) {
  const uint64_t hash = HashName(name);
  const size_t mask = table_.size() - 1;
  size_t i = hash & mask;
  while (true) {
    const uint32_t slot = table_[i];
    if (slot == 0) break;
    const SymbolId sym = slot - 1;
    if (hashes_[sym] == hash && names_[sym] == name) return sym;
    i = (i + 1) & mask;
  }
  const SymbolId sym = static_cast<SymbolId>(names_.size());
  names_.emplace_back(ArenaCopy(name), name.size());
  hashes_.push_back(hash);
  table_[i] = sym + 1;
  // Keep load factor under ~70%.
  if (names_.size() * 10 >= table_.size() * 7) Grow();
  return sym;
}

void TagInterner::Serialize(std::string* out) const {
  const uint32_t count = static_cast<uint32_t>(names_.size());
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (std::string_view name : names_) {
    const uint32_t len = static_cast<uint32_t>(name.size());
    out->append(reinterpret_cast<const char*>(&len), sizeof(len));
    out->append(name.data(), name.size());
  }
}

Status TagInterner::Load(std::string_view bytes) {
  if (!names_.empty()) {
    return Status::InvalidArgument(
        "TagInterner::Load requires an empty interner (symbols are dense "
        "from 0; loading would renumber existing symbols)");
  }
  uint32_t count = 0;
  if (bytes.size() < sizeof(count)) {
    return Status::ParseError("tag dictionary truncated: missing count");
  }
  std::memcpy(&count, bytes.data(), sizeof(count));
  bytes.remove_prefix(sizeof(count));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (bytes.size() < sizeof(len)) {
      return Status::ParseError("tag dictionary truncated: missing length");
    }
    std::memcpy(&len, bytes.data(), sizeof(len));
    bytes.remove_prefix(sizeof(len));
    if (bytes.size() < len) {
      return Status::ParseError("tag dictionary truncated: missing name bytes");
    }
    if (len == 0) {
      return Status::ParseError("tag dictionary entry has an empty name");
    }
    const std::string_view name = bytes.substr(0, len);
    if (Find(name) != kNoSymbol) {
      return Status::ParseError("tag dictionary contains a duplicate name");
    }
    const SymbolId sym = Intern(name);
    if (sym != i) {
      return Status::Internal("tag dictionary symbols not dense");
    }
    bytes.remove_prefix(len);
  }
  if (!bytes.empty()) {
    return Status::ParseError("tag dictionary has trailing bytes");
  }
  return Status::Ok();
}

SymbolId TagInterner::Find(std::string_view name) const {
  const uint64_t hash = HashName(name);
  const size_t mask = table_.size() - 1;
  size_t i = hash & mask;
  while (true) {
    const uint32_t slot = table_[i];
    if (slot == 0) return kNoSymbol;
    const SymbolId sym = slot - 1;
    if (hashes_[sym] == hash && names_[sym] == name) return sym;
    i = (i + 1) & mask;
  }
}

}  // namespace twigm::xml
