#include "xml/structural_scan.h"

#include <algorithm>
#include <cstdlib>

#if !defined(TWIGM_FORCE_SCALAR_SCAN)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define TWIGM_SCAN_SSE2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define TWIGM_SCAN_NEON 1
#include <arm_neon.h>
#endif
#endif  // !TWIGM_FORCE_SCALAR_SCAN

namespace twigm::xml {

namespace {

// Byte -> structural class + 1; 0 means "not structural". A 256-entry
// table keeps classification branch-free in the scalar loop and in the
// per-hit decoding of the vector paths.
struct ClassTable {
  uint8_t v[256] = {};
  constexpr ClassTable() {
    v[static_cast<unsigned char>('<')] =
        static_cast<uint8_t>(StructClass::kLt) + 1;
    v[static_cast<unsigned char>('>')] =
        static_cast<uint8_t>(StructClass::kGt) + 1;
    v[static_cast<unsigned char>('&')] =
        static_cast<uint8_t>(StructClass::kAmp) + 1;
    v[static_cast<unsigned char>('"')] =
        static_cast<uint8_t>(StructClass::kDQuote) + 1;
    v[static_cast<unsigned char>('\'')] =
        static_cast<uint8_t>(StructClass::kSQuote) + 1;
    v[0] = static_cast<uint8_t>(StructClass::kNul) + 1;
  }
};
constexpr ClassTable kClassTable;

inline uint64_t MakeMark(size_t pos, uint8_t class_plus_one) {
  return (static_cast<uint64_t>(pos) << 3) |
         static_cast<uint64_t>(class_plus_one - 1);
}

// Tail/reference loop shared by every implementation.
inline void ScanBytes(const unsigned char* base, size_t from, size_t to,
                      StructuralIndex* out) {
  for (size_t i = from; i < to; ++i) {
    const uint8_t c = kClassTable.v[base[i]];
    if (c != 0) out->marks.push_back(MakeMark(i, c));
  }
}

// Scratch segmentation shared by the vector paths: hits are decoded into a
// stack buffer with unchecked stores and appended to the mark vector in one
// bulk insert per segment — one capacity check per ~2KB of input instead of
// one per structural character (XML is 10–20% structural, so the per-hit
// push_back branch dominated the scan otherwise).
constexpr size_t kSegBytes = 1920;  // multiple of 64; bounds tmp usage

// Decode the set bits of a 64-bit hit mask for the block at `i` into
// `tmp[c...]`, ascending. The per-hit class re-read (base[pos] + the class
// table) stays in L1: the block was just scanned and the table is 256B.
inline size_t DecodeHits(const unsigned char* base, size_t i, uint64_t mask,
                         uint64_t* tmp, size_t c) {
  while (mask != 0) {
    const unsigned bit = static_cast<unsigned>(__builtin_ctzll(mask));
    const size_t pos = i + bit;
    tmp[c++] = MakeMark(pos, kClassTable.v[base[pos]]);
    mask &= mask - 1;
  }
  return c;
}

#if defined(TWIGM_SCAN_SSE2)

// Two pairs of classes share a comparison with a neighbour that differs
// in one low bit: '&' 0x26 / '\'' 0x27 via (x|1)==0x27 and '<' 0x3C /
// '>' 0x3E via (x|2)==0x3E. 4 compares + 2 ORs per block instead of 6
// compares.

void ScanSse2(const unsigned char* base, size_t from, size_t to,
              StructuralIndex* out) {
  const __m128i one = _mm_set1_epi8(1);
  const __m128i two = _mm_set1_epi8(2);
  const __m128i amp_sq = _mm_set1_epi8('\'');
  const __m128i lt_gt = _mm_set1_epi8('>');
  const __m128i dq = _mm_set1_epi8('"');
  const __m128i nul = _mm_setzero_si128();
  uint64_t tmp[kSegBytes];  // worst case: every byte structural
  size_t i = from;
  while (i + 64 <= to) {
    size_t seg_end = i + kSegBytes;
    if (seg_end > to) seg_end = to;
    size_t c = 0;
    for (; i + 64 <= seg_end; i += 64) {
      // Classify 64 bytes into one combined bitmask (4 blocks, one
      // PMOVMSKB per block).
      uint64_t mask = 0;
      for (int b = 0; b < 4; ++b) {
        const __m128i block = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(base + i + b * 16));
        __m128i hits = _mm_cmpeq_epi8(_mm_or_si128(block, one), amp_sq);
        hits = _mm_or_si128(
            hits, _mm_cmpeq_epi8(_mm_or_si128(block, two), lt_gt));
        hits = _mm_or_si128(hits, _mm_cmpeq_epi8(block, dq));
        hits = _mm_or_si128(hits, _mm_cmpeq_epi8(block, nul));
        mask |= static_cast<uint64_t>(
                    static_cast<uint32_t>(_mm_movemask_epi8(hits)))
                << (b * 16);
      }
      c = DecodeHits(base, i, mask, tmp, c);
    }
    out->marks.insert(out->marks.end(), tmp, tmp + c);
  }
  ScanBytes(base, i, to, out);
}

#if defined(__GNUC__)

// AVX2 variant of the same kernel: 32-byte blocks, two VPMOVMSKB per 64
// bytes. Compiled with a per-function target attribute so the translation
// unit itself stays baseline SSE2; selected once at startup via
// __builtin_cpu_supports, so a binary built on an AVX2 host still runs
// (on the SSE2 kernel) anywhere x86-64.
__attribute__((target("avx2"))) void ScanAvx2(const unsigned char* base,
                                              size_t from, size_t to,
                                              StructuralIndex* out) {
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  const __m256i amp_sq = _mm256_set1_epi8('\'');
  const __m256i lt_gt = _mm256_set1_epi8('>');
  const __m256i dq = _mm256_set1_epi8('"');
  const __m256i nul = _mm256_setzero_si256();
  uint64_t tmp[kSegBytes];  // worst case: every byte structural
  size_t i = from;
  while (i + 64 <= to) {
    size_t seg_end = i + kSegBytes;
    if (seg_end > to) seg_end = to;
    size_t c = 0;
    for (; i + 64 <= seg_end; i += 64) {
      uint64_t mask = 0;
      for (int b = 0; b < 2; ++b) {
        const __m256i block = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(base + i + b * 32));
        __m256i hits =
            _mm256_cmpeq_epi8(_mm256_or_si256(block, one), amp_sq);
        hits = _mm256_or_si256(
            hits, _mm256_cmpeq_epi8(_mm256_or_si256(block, two), lt_gt));
        hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(block, dq));
        hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(block, nul));
        mask |= static_cast<uint64_t>(
                    static_cast<uint32_t>(_mm256_movemask_epi8(hits)))
                << (b * 32);
      }
      c = DecodeHits(base, i, mask, tmp, c);
    }
    out->marks.insert(out->marks.end(), tmp, tmp + c);
  }
  ScanBytes(base, i, to, out);
}

#define TWIGM_SCAN_AVX2_DISPATCH 1
#endif  // GCC/Clang target attribute support

bool ScanHasAvx2() {
#if defined(TWIGM_SCAN_AVX2_DISPATCH)
  // TWIGM_SCAN_KIND=sse2 pins the baseline kernel; used by CI to exercise
  // the SSE2 path on AVX2 hosts (checked once, first call wins).
  static const bool has = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once under the magic-static
    // guard, before any worker threads exist; nothing in the process setenvs.
    const char* env = std::getenv("TWIGM_SCAN_KIND");
    if (env != nullptr && std::string_view(env) == std::string_view("sse2")) {
      return false;
    }
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
#else
  return false;
#endif
}

void ScanFast(const unsigned char* base, size_t from, size_t to,
              StructuralIndex* out) {
#if defined(TWIGM_SCAN_AVX2_DISPATCH)
  if (ScanHasAvx2()) {
    ScanAvx2(base, from, to, out);
    return;
  }
#endif
  ScanSse2(base, from, to, out);
}

#elif defined(TWIGM_SCAN_NEON)

void ScanFast(const unsigned char* base, size_t from, size_t to,
              StructuralIndex* out) {
  const uint8x16_t lt = vdupq_n_u8('<');
  const uint8x16_t gt = vdupq_n_u8('>');
  const uint8x16_t amp = vdupq_n_u8('&');
  const uint8x16_t dq = vdupq_n_u8('"');
  const uint8x16_t sq = vdupq_n_u8('\'');
  const uint8x16_t nul = vdupq_n_u8(0);
  uint64_t tmp[kSegBytes];  // worst case: every byte structural
  size_t i = from;
  while (i + 16 <= to) {
    size_t seg_end = i + kSegBytes;
    if (seg_end > to) seg_end = to;
    size_t c = 0;
    for (; i + 16 <= seg_end; i += 16) {
      const uint8x16_t block = vld1q_u8(base + i);
      uint8x16_t hits = vceqq_u8(block, lt);
      hits = vorrq_u8(hits, vceqq_u8(block, gt));
      hits = vorrq_u8(hits, vceqq_u8(block, amp));
      hits = vorrq_u8(hits, vceqq_u8(block, dq));
      hits = vorrq_u8(hits, vceqq_u8(block, sq));
      hits = vorrq_u8(hits, vceqq_u8(block, nul));
      // Narrow each byte lane to 4 bits: a 64-bit word with nibble n
      // nonzero iff lane n hit (the standard NEON movemask substitute).
      const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(hits), 4);
      uint64_t mask = vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
      while (mask != 0) {
        const unsigned bit =
            static_cast<unsigned>(__builtin_ctzll(mask)) >> 2;
        const size_t pos = i + bit;
        tmp[c++] = MakeMark(pos, kClassTable.v[base[pos]]);
        mask &= ~(uint64_t{0xF} << (bit << 2));
      }
    }
    out->marks.insert(out->marks.end(), tmp, tmp + c);
  }
  ScanBytes(base, i, to, out);
}

#else  // SWAR fallback

// SWAR byte-equality: a word whose high bit is set in exactly the bytes of
// `word` equal to the (broadcast) target byte. Note this is NOT the classic
// `(x - kLo) & ~x & kHi` trick — that one lets the subtraction borrow out
// of a matching byte and false-positive on a neighbouring byte equal to
// target+1 (e.g. '=' right after '<'). Masking the high bits first keeps
// the carry chain inside each byte, making the test exact.
inline uint64_t HasByte(uint64_t word, uint64_t broadcast) {
  constexpr uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;
  constexpr uint64_t kHi = 0x8080808080808080ULL;
  const uint64_t x = word ^ broadcast;
  const uint64_t nonzero = ((x & kLow7) + kLow7) | x;  // high bit: byte != 0
  return ~nonzero & kHi;
}

void ScanFast(const unsigned char* base, size_t from, size_t to,
              StructuralIndex* out) {
  constexpr uint64_t kLo = 0x0101010101010101ULL;
  uint64_t tmp[kSegBytes];  // worst case: every byte structural
  size_t i = from;
  while (i + 8 <= to) {
    size_t seg_end = i + kSegBytes;
    if (seg_end > to) seg_end = to;
    size_t c = 0;
    for (; i + 8 <= seg_end; i += 8) {
      uint64_t word;
      __builtin_memcpy(&word, base + i, 8);
      uint64_t hits = HasByte(word, kLo * '<');
      hits |= HasByte(word, kLo * '>');
      hits |= HasByte(word, kLo * '&');
      hits |= HasByte(word, kLo * '"');
      hits |= HasByte(word, kLo * '\'');
      hits |= HasByte(word, 0);
      while (hits != 0) {
        // Hits carry the high bit of each matching byte; bytes are
        // little-endian, so ctz/8 is the byte offset of the lowest match.
        const unsigned byte =
            static_cast<unsigned>(__builtin_ctzll(hits)) >> 3;
        const size_t pos = i + byte;
        tmp[c++] = MakeMark(pos, kClassTable.v[base[pos]]);
        hits &= hits - 1;
      }
    }
    out->marks.insert(out->marks.end(), tmp, tmp + c);
  }
  ScanBytes(base, i, to, out);
}

#endif

}  // namespace

size_t StructuralIndex::LowerBound(size_t from) const {
  return static_cast<size_t>(
      std::lower_bound(marks.begin(), marks.end(),
                       static_cast<uint64_t>(from) << 3) -
      marks.begin());
}

size_t StructuralIndex::Next(StructClass cls, size_t from, size_t to) const {
  const uint64_t limit = static_cast<uint64_t>(to) << 3;
  for (size_t k = LowerBound(from); k < marks.size() && marks[k] < limit;
       ++k) {
    if (ClassOf(marks[k]) == cls) return PosOf(marks[k]);
  }
  return npos;
}

void StructuralIndex::DropBelowAndRebase(size_t cut) {
  if (cut == 0) return;
  const size_t first = LowerBound(cut);
  const uint64_t delta = static_cast<uint64_t>(cut) << 3;
  const size_t n = marks.size() - first;
  for (size_t k = 0; k < n; ++k) marks[k] = marks[first + k] - delta;
  marks.resize(n);
}

void ScanStructural(std::string_view buf, size_t from, size_t to,
                    StructuralIndex* out) {
  const unsigned char* base = reinterpret_cast<const unsigned char*>(
      buf.data());
  if (to > buf.size()) to = buf.size();
  if (from >= to) return;
  ScanFast(base, from, to, out);
}

void ScanStructuralScalar(std::string_view buf, size_t from, size_t to,
                          StructuralIndex* out) {
  const unsigned char* base = reinterpret_cast<const unsigned char*>(
      buf.data());
  if (to > buf.size()) to = buf.size();
  if (from >= to) return;
  ScanBytes(base, from, to, out);
}

const char* StructuralScanKind() {
#if defined(TWIGM_SCAN_SSE2)
  return ScanHasAvx2() ? "avx2" : "sse2";
#elif defined(TWIGM_SCAN_NEON)
  return "neon";
#else
  return "swar";
#endif
}

bool StructuralScanIsSimd() {
#if defined(TWIGM_SCAN_SSE2) || defined(TWIGM_SCAN_NEON)
  return true;
#else
  return false;
#endif
}

}  // namespace twigm::xml
