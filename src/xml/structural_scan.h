// SIMD/SWAR structural scanning: the per-byte front of the SAX parser.
//
// In the simdjson style, the input is classified in 16–64-byte blocks
// *once*, producing a sparse index of the structural characters the
// tokenizer dispatches on — '<', '>', '&', the two quote kinds and NUL
// (always a fatal input error). The tokenizer (xml::SaxParser) then walks
// the index instead of re-scanning bytes with memchr/byte loops: finding
// the next tag, the end of a quoted attribute value, or the "-->" / "]]>"
// / "?>" terminator becomes a walk over index entries, of which a typical
// XML document has ~5–15 per 100 bytes. Newlines are deliberately NOT
// indexed: line/column accounting is lazy (computed with memchr only when
// an error message needs it), so marking every newline would just bloat
// the index and slow every walk.
//
// Implementation families, selected at build time (see StructuralScanKind):
//   * SSE2  — x86-64 baseline; 16-byte blocks, one PCMPEQB per class,
//     OR-combined into a single PMOVMSKB bitmask per block. When the
//     build supports per-function target attributes, an AVX2 twin
//     (32-byte blocks) is also compiled and chosen once at runtime via
//     __builtin_cpu_supports, so the binary stays baseline-portable;
//   * NEON  — aarch64; same shape with vceqq_u8 and a bit-narrowing fold;
//   * SWAR  — portable fallback; 8-byte registers, exact byte-equality
//     bit tricks, no intrinsics.
// Configuring with -DTWIGM_FORCE_SCALAR_SCAN=ON forces the SWAR path on
// any architecture so CI keeps both paths green. ScanStructuralScalar (a
// plain byte loop) is always compiled: it is the differential-test oracle
// and the denominator of bench_rawscan's speedup ratio.
//
// Chunked input: the scan is stateless per byte (every structural class is
// a single-byte test), so arbitrary chunk splits need no carry — callers
// simply scan each newly appended region [from, to) of their buffer and
// append the marks. Cross-chunk *constructs* (a tag split over two reads)
// are the tokenizer's job; it re-walks the index from its parse cursor,
// which stays valid because marks are absolute buffer positions.

#ifndef TWIGM_XML_STRUCTURAL_SCAN_H_
#define TWIGM_XML_STRUCTURAL_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace twigm::xml {

/// Structural character classes. Values are the low 3 bits of a mark.
enum class StructClass : uint8_t {
  kLt = 0,      // '<'
  kGt = 1,      // '>'
  kAmp = 2,     // '&'
  kDQuote = 3,  // '"'
  kSQuote = 4,  // '\''
  kNul = 5,     // '\0'  (never legal in XML; the parser rejects it)
};

/// Sparse index of the structural characters of a byte buffer. Each mark
/// packs (position << 3) | class; marks are strictly ascending by
/// position, so "next '<' at or after p" is a lower_bound plus a short
/// class-filtering walk.
struct StructuralIndex {
  std::vector<uint64_t> marks;

  static constexpr size_t npos = ~size_t{0};

  void Clear() { marks.clear(); }

  static size_t PosOf(uint64_t mark) { return static_cast<size_t>(mark >> 3); }
  static StructClass ClassOf(uint64_t mark) {
    return static_cast<StructClass>(mark & 7);
  }

  /// Index of the first mark at position >= from (marks.size() if none).
  size_t LowerBound(size_t from) const;

  /// Position of the first mark of class `cls` in [from, to); npos if none.
  size_t Next(StructClass cls, size_t from, size_t to) const;

  /// Drops all marks below `cut` and rebases the rest by -cut (the caller
  /// erased the first `cut` bytes of its buffer).
  void DropBelowAndRebase(size_t cut);
};

/// Appends the structural marks of buf[from, to) to *out, positions
/// absolute within `buf`. Marks must be appended in buffer order: `from`
/// must be >= the position after the last existing mark. This is the
/// build-time-selected fast implementation (SSE2/NEON, or SWAR under
/// TWIGM_FORCE_SCALAR_SCAN).
void ScanStructural(std::string_view buf, size_t from, size_t to,
                    StructuralIndex* out);

/// Reference implementation: a plain one-byte-at-a-time loop. Always
/// available regardless of the build-time dispatch; used as the
/// differential oracle and as bench_rawscan's baseline.
void ScanStructuralScalar(std::string_view buf, size_t from, size_t to,
                          StructuralIndex* out);

/// Name of the selected fast path: "avx2", "sse2", "neon" or "swar".
const char* StructuralScanKind();

/// True when ScanStructural uses real vector instructions (false for the
/// SWAR fallback and under TWIGM_FORCE_SCALAR_SCAN).
bool StructuralScanIsSimd();

}  // namespace twigm::xml

#endif  // TWIGM_XML_STRUCTURAL_SCAN_H_
