// ByteSource — the single chunked-input abstraction of the system.
//
// Every consumer of raw XML bytes (SaxParser, XPathStreamProcessor,
// filter::FilterEngine, serve::ServerStream) accepts input as a sequence
// of InputChunks, either pushed one at a time through Consume() or pulled
// from a ByteSource through Pump(). This replaces the three ad-hoc entry
// points that predated it (Feed/Finish/ParseAll, serve's per-stream
// feeding, FilterEngine's internal parsing loop); Feed/Finish survive as
// thin wrappers over Consume for one release (see README "Migrating to
// ByteSource").
//
// Contract (DESIGN.md §12):
//   * chunk.bytes may be split at ANY byte boundary — mid-tag, mid-entity,
//     mid-UTF-16 code unit, mid-BOM. The consumer carries all cross-chunk
//     state; the producer never needs to align chunks with the document
//     structure.
//   * chunk.bytes is only read during the Consume()/Pump() call; the
//     consumer copies what it must keep. Producers may reuse the chunk
//     buffer immediately afterwards.
//   * exactly one chunk has last = true, and it is the final one. Its
//     bytes (possibly empty) are consumed, then end-of-document checks run
//     (all tags closed, a root element present). Consuming a last chunk is
//     what Finish() used to be.
//   * errors are sticky: the first non-OK Status poisons the consumer and
//     every later Consume() returns the same Status.

#ifndef TWIGM_XML_BYTE_SOURCE_H_
#define TWIGM_XML_BYTE_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <string_view>

namespace twigm::xml {

/// One run of raw document bytes. `last` marks the end of the document.
struct InputChunk {
  std::string_view bytes;
  bool last = false;
};

/// Pull-model producer of InputChunks. Implementations wrap files,
/// sockets, in-memory documents, test chunkers, ...
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Fills *chunk with the next run of bytes. Returns false when the
  /// source is exhausted — i.e. after it has produced its last=true chunk.
  virtual bool Next(InputChunk* chunk) = 0;
};

/// A whole in-memory document, optionally delivered in fixed-size pieces
/// (chunk_size = 0 delivers everything in one last=true chunk). The
/// backing bytes must outlive the source.
class StringByteSource : public ByteSource {
 public:
  explicit StringByteSource(std::string_view doc, size_t chunk_size = 0)
      : doc_(doc), chunk_size_(chunk_size == 0 ? doc.size() : chunk_size) {}

  bool Next(InputChunk* chunk) override {
    if (done_) return false;
    const size_t n = std::min(chunk_size_, doc_.size() - offset_);
    chunk->bytes = doc_.substr(offset_, n);
    offset_ += n;
    chunk->last = offset_ >= doc_.size();
    done_ = chunk->last;
    return true;
  }

  /// Rewinds to the start of the document (for repeat parses).
  void Reset() {
    offset_ = 0;
    done_ = false;
  }

 private:
  std::string_view doc_;
  size_t chunk_size_;
  size_t offset_ = 0;
  bool done_ = false;
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_BYTE_SOURCE_H_
