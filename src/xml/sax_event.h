// Event model for streaming XML processing.
//
// Two layers:
//   * `SaxHandler` — raw SAX callbacks emitted by `SaxParser` (src/xml/
//     sax_parser.h): start/end element with attributes, character data,
//     comments, processing instructions.
//   * `StreamEventSink` + `EventDriver` — the paper's *modified SAX events*
//     (section 2): startElement(tag, level, id) / endElement(tag, level),
//     where `level` is the node's depth in the XML tree (root = 1) and `id`
//     is a unique identifier assigned in document order (pre-order). All
//     query machines consume this layer.
//
// Tags travel as `TagToken`: the tag bytes plus the dense `SymbolId` the
// parser's TagInterner assigned to that tag name (kNoSymbol when interning
// is off). Machines that bound their query labels to the same interner
// dispatch on the symbol — one integer compare or postings-vector lookup
// per event instead of hashing the tag bytes (see DESIGN.md §10).

#ifndef TWIGM_XML_SAX_EVENT_H_
#define TWIGM_XML_SAX_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/instrumentation.h"

namespace twigm::xml {

/// Dense id of an interned tag name (see xml::TagInterner). Stable for the
/// interner's lifetime: the same tag bytes always map to the same symbol.
using SymbolId = uint32_t;

/// "No symbol attached": the event producer did not intern this name.
inline constexpr SymbolId kNoSymbol = ~SymbolId{0};

/// A tag name as it travels through the event layer: the bytes plus the
/// producer's interned symbol. Implicitly constructible from the plain
/// string types so call sites that only have bytes keep working (they
/// produce kNoSymbol tokens, which consumers treat as "compare by bytes").
struct TagToken {
  std::string_view text;
  SymbolId symbol = kNoSymbol;

  constexpr TagToken() = default;
  // NOLINTBEGIN(google-explicit-constructor): implicit conversion from the
  // string types is the API — byte-only call sites produce kNoSymbol tokens.
  constexpr TagToken(std::string_view t) : text(t) {}
  constexpr TagToken(const char* t) : text(t) {}
  TagToken(const std::string& t) : text(t) {}
  // NOLINTEND(google-explicit-constructor)
  constexpr TagToken(std::string_view t, SymbolId s) : text(t), symbol(s) {}
};

/// A single element attribute, with its value already entity-decoded. The
/// views point into the producer's buffers and are valid only for the
/// duration of the callback — consumers that keep attributes copy them
/// (see xml::OwnedAttribute in dom.h).
struct Attribute {
  std::string_view name;
  std::string_view value;
};

/// Raw SAX callbacks. Default implementations ignore every event so
/// subclasses override only what they need.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual void OnStartDocument() {}
  virtual void OnEndDocument() {}
  /// `tag` and `attrs` are only valid for the duration of the call.
  virtual void OnStartElement(const TagToken& tag,
                              const std::vector<Attribute>& attrs) {
    (void)tag;
    (void)attrs;
  }
  virtual void OnEndElement(const TagToken& tag) { (void)tag; }
  /// Character data (entity-decoded). May be delivered in multiple pieces.
  virtual void OnCharacters(std::string_view text) { (void)text; }
  virtual void OnComment(std::string_view text) { (void)text; }
  virtual void OnProcessingInstruction(std::string_view target,
                                       std::string_view data) {
    (void)target;
    (void)data;
  }
};

/// Node identifier: position in document order (pre-order), starting at 1.
using NodeId = uint64_t;

/// The paper's modified SAX event stream. Machines (PathM/BranchM/TwigM) and
/// baselines implement this interface.
class StreamEventSink {
 public:
  virtual ~StreamEventSink() = default;

  /// startElement(tag, level, id). `attrs` carries the element's attributes
  /// so attribute predicates can be evaluated immediately (footnote 2 of the
  /// paper: the implementation supports attributes as well as elements).
  virtual void StartElement(const TagToken& tag, int level, NodeId id,
                            const std::vector<Attribute>& attrs) = 0;

  /// endElement(tag, level).
  virtual void EndElement(const TagToken& tag, int level) = 0;

  /// Character data of the current node, used by value predicates.
  /// `level` is the level of the innermost open element.
  virtual void Text(std::string_view text, int level) { (void)text; (void)level; }

  /// End of stream.
  virtual void EndDocument() {}
};

/// Adapts raw SAX callbacks into modified SAX events: assigns levels
/// (root = 1) and pre-order node ids (first element = 1), then forwards to a
/// `StreamEventSink`.
class EventDriver : public SaxHandler {
 public:
  /// `sink` must outlive the driver. Does not take ownership.
  explicit EventDriver(StreamEventSink* sink) : sink_(sink) {}

  /// Optional observability: with an Instrumentation attached the driver
  /// accumulates the kDrive stage (its whole dispatch, inclusive) and the
  /// kMachine stage (the sink call, inclusive of emission). Null detaches.
  void set_instrumentation(obs::Instrumentation* instr) { instr_ = instr; }

  void OnStartElement(const TagToken& tag,
                      const std::vector<Attribute>& attrs) override {
    obs::TimerScope drive(
        instr_ != nullptr ? instr_->stage_slot(obs::Stage::kDrive) : nullptr);
    ++level_;
    ++next_id_;
    obs::TimerScope machine(instr_ != nullptr
                                ? instr_->stage_slot(obs::Stage::kMachine)
                                : nullptr);
    sink_->StartElement(tag, level_, next_id_, attrs);
  }

  void OnEndElement(const TagToken& tag) override {
    obs::TimerScope drive(
        instr_ != nullptr ? instr_->stage_slot(obs::Stage::kDrive) : nullptr);
    {
      obs::TimerScope machine(instr_ != nullptr
                                  ? instr_->stage_slot(obs::Stage::kMachine)
                                  : nullptr);
      sink_->EndElement(tag, level_);
    }
    --level_;
  }

  void OnCharacters(std::string_view text) override {
    if (level_ > 0) {
      obs::TimerScope drive(instr_ != nullptr
                                ? instr_->stage_slot(obs::Stage::kDrive)
                                : nullptr);
      obs::TimerScope machine(instr_ != nullptr
                                  ? instr_->stage_slot(obs::Stage::kMachine)
                                  : nullptr);
      sink_->Text(text, level_);
    }
  }

  void OnEndDocument() override { sink_->EndDocument(); }

  /// Number of elements seen so far.
  NodeId element_count() const { return next_id_; }

  /// Rewinds level/id assignment for a new document. The attached sink and
  /// instrumentation stay bound.
  void Reset() {
    level_ = 0;
    next_id_ = 0;
  }

 private:
  StreamEventSink* sink_;
  obs::Instrumentation* instr_ = nullptr;
  int level_ = 0;
  NodeId next_id_ = 0;
};

}  // namespace twigm::xml

#endif  // TWIGM_XML_SAX_EVENT_H_
