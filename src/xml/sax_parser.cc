#include "xml/sax_parser.h"

#include <cctype>
#include <cstring>

namespace twigm::xml {

namespace {

bool IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsNameStartByte(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_' ||
         c == ':' || c >= 0x80;
}

bool IsNameByte(unsigned char c) {
  return IsNameStartByte(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsWhitespace(c)) return false;
  }
  return true;
}

// True iff `cp` is an XML 1.0 Char: #x9 | #xA | #xD | [#x20-#xD7FF] |
// [#xE000-#xFFFD] | [#x10000-#x10FFFF]. Character references outside this
// set (NUL, other C0 controls, surrogates, #xFFFE/#xFFFF) are malformed.
bool IsXmlChar(uint32_t cp) {
  if (cp == 0x9 || cp == 0xA || cp == 0xD) return true;
  if (cp < 0x20) return false;
  if (cp >= 0xD800 && cp <= 0xDFFF) return false;
  if (cp == 0xFFFE || cp == 0xFFFF) return false;
  return cp <= 0x10FFFF;
}

// Appends the UTF-8 encoding of `cp` to `out`. Returns false for invalid
// code points (surrogates, > U+10FFFF).
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp >= 0xD800 && cp <= 0xDFFF) return false;
  if (cp > 0x10FFFF) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

}  // namespace

bool IsValidXmlName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsNameStartByte(static_cast<unsigned char>(name[0]))) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameByte(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

SaxParser::SaxParser(SaxHandler* handler, SaxParserOptions options)
    : handler_(handler), options_(options) {}

void SaxParser::Reset() {
  buffer_.clear();  // clear() keeps capacity
  pos_ = 0;
  line_ = 1;
  column_ = 1;
  loc_pos_ = 0;
  bytes_consumed_ = 0;
  index_.Clear();  // keeps capacity
  scanned_end_ = 0;
  mark_cursor_ = 0;
  first_nul_ = StructuralIndex::npos;
  encoding_ = Encoding::kUnknown;
  sniff_len_ = 0;
  have_pending_u16_byte_ = false;
  pending_high_surrogate_ = 0;
  open_tags_.clear();
  seen_root_ = false;
  started_ = false;
  finished_ = false;
  error_ = Status::Ok();
  text_scratch_.clear();
  attr_decode_buf_.clear();
  attr_scratch_.clear();
  attr_fixups_.clear();
  // interner_ deliberately untouched: symbols are stable for the parser's
  // lifetime so machine label bindings survive across documents.
}

// ---------------------------------------------------------------------------
// ByteSource front door

Status SaxParser::Consume(const InputChunk& chunk) {
  if (!error_.ok()) return error_;
  if (finished_) {
    // A bare end-of-input marker after the document already finished is the
    // idempotent Finish() of old; actual bytes are an error.
    if (chunk.bytes.empty() && chunk.last) return Status::Ok();
    error_ = Status::InvalidArgument("Consume() after end of document");
    return error_;
  }
  if (!started_) {
    started_ = true;
    handler_->OnStartDocument();
  }
  error_ = Ingest(chunk.bytes, chunk.last);
  if (!error_.ok()) return error_;
  error_ = Drain();
  if (!error_.ok()) return error_;
  if (first_nul_ != StructuralIndex::npos && pos_ >= first_nul_) {
    // Everything up to the NUL wall has been consumed; the NUL is next.
    error_ = NulError();
    return error_;
  }
  if (options_.max_buffer_bytes > 0 &&
      buffer_.size() - pos_ > options_.max_buffer_bytes) {
    // Everything complete was consumed by Drain, so whatever remains is one
    // incomplete construct that keeps growing — an unterminated tag, CDATA
    // section, comment or text run. buffer_ is the canonical buffer, so the
    // cap binds after BOM stripping and UTF-16→UTF-8 expansion.
    SyncLocation(pos_);
    error_ = Status::ResourceExhausted(
        "unterminated construct exceeds max_buffer_bytes=" +
        std::to_string(options_.max_buffer_bytes) + " (line " +
        std::to_string(line_) + ", column " + std::to_string(column_) + ")");
    return error_;
  }
  if (chunk.last) error_ = FinishInput();
  return error_;
}

Status SaxParser::Pump(ByteSource* source) {
  InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

Status SaxParser::FinishInput() {
  finished_ = true;
  if (have_pending_u16_byte_ || pending_high_surrogate_ != 0) {
    return ErrorHere("truncated UTF-16 input (document ends mid-character)");
  }
  if (first_nul_ != StructuralIndex::npos) return NulError();
  // Whatever remains must be trailing whitespace; anything else means the
  // document was truncated.
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  if (!rest.empty()) {
    if (!IsAllWhitespace(rest)) {
      return ErrorHere("unexpected end of document (unterminated construct)");
    }
  }
  if (!open_tags_.empty()) {
    return ErrorHere("document ended with unclosed element <" +
                     std::string(interner_.name(open_tags_.back())) + ">");
  }
  if (!seen_root_) {
    return ErrorHere("document contains no root element");
  }
  if (offset_slot_ != nullptr) *offset_slot_ = bytes_consumed_;
  handler_->OnEndDocument();
  return Status::Ok();
}

Status SaxParser::Ingest(std::string_view bytes, bool last) {
  if (encoding_ == Encoding::kUnknown) {
    // Sniff the byte order mark one byte at a time; chunks may split inside
    // it. Decided as soon as the prefix can no longer be (or definitely is)
    // a BOM: EF BB BF → UTF-8 (dropped), FE FF → UTF-16BE, FF FE → UTF-16LE,
    // anything else → UTF-8 with the sniffed bytes as content.
    size_t consumed = 0;
    while (encoding_ == Encoding::kUnknown) {
      if (sniff_len_ == 3) {
        if (sniff_[0] == 0xEF && sniff_[1] == 0xBB && sniff_[2] == 0xBF) {
          sniff_len_ = 0;  // drop the UTF-8 BOM
        }
        encoding_ = Encoding::kUtf8;
      } else if (sniff_len_ == 2 && sniff_[0] == 0xFE && sniff_[1] == 0xFF) {
        encoding_ = Encoding::kUtf16Be;
        sniff_len_ = 0;
      } else if (sniff_len_ == 2 && sniff_[0] == 0xFF && sniff_[1] == 0xFE) {
        encoding_ = Encoding::kUtf16Le;
        sniff_len_ = 0;
      } else if (sniff_len_ == 2 &&
                 !(sniff_[0] == 0xEF && sniff_[1] == 0xBB)) {
        encoding_ = Encoding::kUtf8;
      } else if (sniff_len_ == 1 && sniff_[0] != 0xEF && sniff_[0] != 0xFE &&
                 sniff_[0] != 0xFF) {
        encoding_ = Encoding::kUtf8;
      } else if (consumed < bytes.size()) {
        sniff_[sniff_len_++] = static_cast<unsigned char>(bytes[consumed++]);
      } else if (last) {
        encoding_ = Encoding::kUtf8;  // partial-BOM-looking bytes: content
      } else {
        return Status::Ok();  // still a proper BOM prefix; wait for bytes
      }
    }
    // Sniffed bytes that turned out to be content lead the canonical stream.
    if (sniff_len_ > 0) {
      buffer_.append(reinterpret_cast<const char*>(sniff_), sniff_len_);
      sniff_len_ = 0;
    }
    bytes.remove_prefix(consumed);
  }
  Status s = Status::Ok();
  if (encoding_ == Encoding::kUtf8) {
    buffer_.append(bytes.data(), bytes.size());
  } else {
    s = DecodeUtf16(bytes);
  }
  ScanAppended();
  return s;
}

Status SaxParser::DecodeUtf16(std::string_view bytes) {
  const bool le = encoding_ == Encoding::kUtf16Le;
  size_t i = 0;
  while (i < bytes.size()) {
    unsigned char first, second;
    if (have_pending_u16_byte_) {
      first = pending_u16_byte_;
      second = static_cast<unsigned char>(bytes[i]);
      ++i;
      have_pending_u16_byte_ = false;
    } else if (i + 1 < bytes.size()) {
      first = static_cast<unsigned char>(bytes[i]);
      second = static_cast<unsigned char>(bytes[i + 1]);
      i += 2;
    } else {
      // A code unit split across chunks; carry its first byte.
      pending_u16_byte_ = static_cast<unsigned char>(bytes[i]);
      have_pending_u16_byte_ = true;
      break;
    }
    const uint32_t unit = le
                              ? (static_cast<uint32_t>(first) |
                                 (static_cast<uint32_t>(second) << 8))
                              : ((static_cast<uint32_t>(first) << 8) |
                                 static_cast<uint32_t>(second));
    if (pending_high_surrogate_ != 0) {
      if (unit < 0xDC00 || unit > 0xDFFF) {
        return ErrorHere("unpaired UTF-16 high surrogate");
      }
      const uint32_t cp = 0x10000 +
                          ((pending_high_surrogate_ - 0xD800) << 10) +
                          (unit - 0xDC00);
      pending_high_surrogate_ = 0;
      AppendUtf8(cp, &buffer_);  // cannot fail: cp <= 0x10FFFF, no surrogate
    } else if (unit >= 0xD800 && unit <= 0xDBFF) {
      pending_high_surrogate_ = unit;  // may pair across a chunk split
    } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
      return ErrorHere("unpaired UTF-16 low surrogate");
    } else {
      // U+0000 encodes to a NUL byte, which the structural scan rejects
      // like any other NUL in the canonical stream.
      AppendUtf8(unit, &buffer_);
    }
  }
  return Status::Ok();
}

void SaxParser::ScanAppended() {
  if (scanned_end_ >= buffer_.size()) return;
  if (options_.force_scalar_scan) {
    ScanStructuralScalar(buffer_, scanned_end_, buffer_.size(), &index_);
  } else {
    ScanStructural(buffer_, scanned_end_, buffer_.size(), &index_);
  }
  if (first_nul_ == StructuralIndex::npos) {
    first_nul_ =
        index_.Next(StructClass::kNul, scanned_end_, buffer_.size());
  }
  scanned_end_ = buffer_.size();
}

Status SaxParser::NulError() {
  bytes_consumed_ += first_nul_ - pos_;
  pos_ = first_nul_;
  return ErrorHere("NUL (0x00) byte in document");
}

// ---------------------------------------------------------------------------
// Structural-index walks
//
// The parse cursor only moves forward, so mark_cursor_ tracks the first
// mark at or after pos_ and every lookup walks linearly from there —
// amortized O(total marks) over the document, no binary searches on the
// hot path.

size_t SaxParser::MarkFrom(size_t from) const {
  const std::vector<uint64_t>& marks = index_.marks;
  const uint64_t key = static_cast<uint64_t>(from) << 3;
  size_t k = mark_cursor_;
  while (k < marks.size() && marks[k] < key) ++k;
  return k;
}

size_t SaxParser::NextMark(StructClass cls, size_t from, size_t to) const {
  const std::vector<uint64_t>& marks = index_.marks;
  const uint64_t limit = static_cast<uint64_t>(to) << 3;
  for (size_t k = MarkFrom(from); k < marks.size() && marks[k] < limit; ++k) {
    if (StructuralIndex::ClassOf(marks[k]) == cls) {
      return StructuralIndex::PosOf(marks[k]);
    }
  }
  return StructuralIndex::npos;
}

size_t SaxParser::FindTagEnd(size_t start) const {
  const std::vector<uint64_t>& marks = index_.marks;
  const size_t end = parse_limit();
  size_t k = MarkFrom(start);
  while (k < marks.size() && StructuralIndex::PosOf(marks[k]) < end) {
    const StructClass cls = StructuralIndex::ClassOf(marks[k]);
    if (cls == StructClass::kGt) return StructuralIndex::PosOf(marks[k]);
    if (cls == StructClass::kLt) {
      return StructuralIndex::npos - 1;  // error: '<' inside tag
    }
    if (cls == StructClass::kDQuote || cls == StructClass::kSQuote) {
      // Skip the quoted value wholesale: walk to the matching close quote.
      ++k;
      while (k < marks.size() && StructuralIndex::PosOf(marks[k]) < end &&
             StructuralIndex::ClassOf(marks[k]) != cls) {
        ++k;
      }
      if (k >= marks.size() || StructuralIndex::PosOf(marks[k]) >= end) {
        return StructuralIndex::npos;  // close quote not yet buffered
      }
    }
    ++k;
  }
  return StructuralIndex::npos;
}

size_t SaxParser::FindMarkupEnd(size_t from, std::string_view prefix) const {
  const std::vector<uint64_t>& marks = index_.marks;
  const size_t end = parse_limit();
  const std::string_view buf(buffer_);
  for (size_t k = MarkFrom(from + prefix.size()); k < marks.size(); ++k) {
    const size_t p = StructuralIndex::PosOf(marks[k]);
    if (p >= end) break;
    if (StructuralIndex::ClassOf(marks[k]) != StructClass::kGt) continue;
    if (buf.substr(p - prefix.size(), prefix.size()) == prefix) return p;
  }
  return StructuralIndex::npos;
}

// ---------------------------------------------------------------------------
// Tokenizer

Status SaxParser::Drain() {
  while (pos_ < parse_limit()) {
    // Keep the mark cursor caught up with the parse cursor (amortized
    // linear; see MarkFrom).
    {
      const std::vector<uint64_t>& marks = index_.marks;
      const uint64_t key = static_cast<uint64_t>(pos_) << 3;
      while (mark_cursor_ < marks.size() && marks[mark_cursor_] < key) {
        ++mark_cursor_;
      }
    }
    // Publish the construct-start offset before any handler fires for it.
    if (offset_slot_ != nullptr) *offset_slot_ = bytes_consumed_;
    if (buffer_[pos_] == '<') {
      bool made_progress = false;
      TWIGM_RETURN_IF_ERROR(ConsumeMarkup(&made_progress));
      if (!made_progress) break;  // construct incomplete; wait for more input
    } else {
      // One walk finds both the terminating '<' and whether the run has
      // any '&' (selecting the entity-decode path in EmitText).
      const std::vector<uint64_t>& marks = index_.marks;
      const uint64_t limit = static_cast<uint64_t>(parse_limit()) << 3;
      size_t lt = StructuralIndex::npos;
      bool has_amp = false;
      for (size_t k = mark_cursor_; k < marks.size() && marks[k] < limit;
           ++k) {
        const StructClass cls = StructuralIndex::ClassOf(marks[k]);
        if (cls == StructClass::kLt) {
          lt = StructuralIndex::PosOf(marks[k]);
          break;
        }
        if (cls == StructClass::kAmp) has_amp = true;
      }
      if (lt == StructuralIndex::npos) {
        // Text may continue into the next chunk; wait — text runs are
        // bounded by the next tag in practice.
        break;
      }
      TWIGM_RETURN_IF_ERROR(EmitText(lt, has_amp));
    }
  }
  // Compact the buffer occasionally so long documents do not accumulate.
  if (pos_ > 65536 && pos_ > buffer_.size() / 2) {
    SyncLocation(pos_);  // the bytes below pos_ are about to disappear
    buffer_.erase(0, pos_);
    index_.DropBelowAndRebase(pos_);
    scanned_end_ -= pos_;
    if (first_nul_ != StructuralIndex::npos) first_nul_ -= pos_;
    mark_cursor_ = 0;
    loc_pos_ = 0;
    pos_ = 0;
  }
  return Status::Ok();
}

Status SaxParser::EmitText(size_t lt, bool has_amp) {
  std::string_view raw(buffer_.data() + pos_, lt - pos_);
  if (!raw.empty()) {
    if (open_tags_.empty()) {
      // Outside the root element only whitespace is allowed.
      if (!IsAllWhitespace(raw)) {
        return ErrorHere("character data outside the root element");
      }
    } else if (!has_amp) {
      // Fast path: no entity references, so the raw bytes are the decoded
      // text — emit the buffer view directly, no copy.
      if (options_.emit_whitespace_text || !IsAllWhitespace(raw)) {
        handler_->OnCharacters(raw);
      }
    } else {
      text_scratch_.clear();
      TWIGM_RETURN_IF_ERROR(
          DecodeEntities(raw, "character data", &text_scratch_));
      if (options_.emit_whitespace_text || !IsAllWhitespace(text_scratch_)) {
        handler_->OnCharacters(text_scratch_);
      }
    }
  }
  bytes_consumed_ += lt - pos_;
  pos_ = lt;
  return Status::Ok();
}

Status SaxParser::ConsumeMarkup(bool* made_progress) {
  *made_progress = false;
  const size_t avail = buffer_.size() - pos_;
  std::string_view view(buffer_.data() + pos_, avail);

  // Comments: <!-- ... -->
  if (view.substr(0, 4) == "<!--" ||
      (avail < 4 && std::string_view("<!--").substr(0, avail) == view)) {
    if (avail < 4) return Status::Ok();  // prefix only; need more input
    const size_t gt = FindMarkupEnd(pos_ + 4, "--");
    if (gt == StructuralIndex::npos) return Status::Ok();
    std::string_view body(buffer_.data() + pos_ + 4, gt - 2 - (pos_ + 4));
    if (body.find("--") != std::string_view::npos) {
      return ErrorHere("'--' is not allowed inside a comment");
    }
    handler_->OnComment(body);
    bytes_consumed_ += gt + 1 - pos_;
    pos_ = gt + 1;
    *made_progress = true;
    return Status::Ok();
  }

  // CDATA: <![CDATA[ ... ]]>
  constexpr std::string_view kCdataOpen = "<![CDATA[";
  if (view.substr(0, kCdataOpen.size()) == kCdataOpen ||
      (avail < kCdataOpen.size() && kCdataOpen.substr(0, avail) == view)) {
    if (avail < kCdataOpen.size()) return Status::Ok();
    const size_t gt = FindMarkupEnd(pos_ + kCdataOpen.size(), "]]");
    if (gt == StructuralIndex::npos) return Status::Ok();
    if (open_tags_.empty()) {
      return ErrorHere("CDATA section outside the root element");
    }
    std::string_view body(buffer_.data() + pos_ + kCdataOpen.size(),
                          gt - 2 - (pos_ + kCdataOpen.size()));
    handler_->OnCharacters(body);
    bytes_consumed_ += gt + 1 - pos_;
    pos_ = gt + 1;
    *made_progress = true;
    return Status::Ok();
  }

  // DOCTYPE: skipped. May contain an [ internal subset ].
  constexpr std::string_view kDoctype = "<!DOCTYPE";
  if (view.substr(0, kDoctype.size()) == kDoctype ||
      (avail < kDoctype.size() && kDoctype.substr(0, avail) == view)) {
    if (avail < kDoctype.size()) return Status::Ok();
    if (seen_root_ || !open_tags_.empty()) {
      return ErrorHere("DOCTYPE must precede the root element");
    }
    int bracket_depth = 0;
    for (size_t i = pos_ + kDoctype.size(); i < parse_limit(); ++i) {
      const char c = buffer_[i];
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        bytes_consumed_ += i + 1 - pos_;
        pos_ = i + 1;
        *made_progress = true;
        return Status::Ok();
      }
    }
    return Status::Ok();  // incomplete
  }

  // Processing instruction / XML declaration: <? ... ?>
  if (view.substr(0, 2) == "<?" || (avail == 1)) {
    if (avail < 2) return Status::Ok();
    if (view.substr(0, 2) == "<?") {
      const size_t gt = FindMarkupEnd(pos_ + 2, "?");
      if (gt == StructuralIndex::npos) return Status::Ok();
      std::string_view body(buffer_.data() + pos_ + 2, gt - 1 - (pos_ + 2));
      size_t name_end = 0;
      while (name_end < body.size() &&
             !IsWhitespace(body[name_end])) {
        ++name_end;
      }
      std::string_view target = body.substr(0, name_end);
      std::string_view data = body.substr(name_end);
      while (!data.empty() && IsWhitespace(data.front())) data.remove_prefix(1);
      if (target.empty() || !IsValidXmlName(target)) {
        return ErrorHere("invalid processing-instruction target");
      }
      // The XML declaration is consumed silently. It must be the first
      // bytes of the canonical stream — right after the BOM, if any
      // (bytes_consumed_ counts canonical bytes, so a stripped BOM does
      // not forfeit the position).
      if (target != "xml") {
        handler_->OnProcessingInstruction(target, data);
      } else if (seen_root_ || !open_tags_.empty() || bytes_consumed_ != 0 ||
                 pos_ != 0) {
        return ErrorHere("XML declaration must be at the start of the document");
      }
      bytes_consumed_ += gt + 1 - pos_;
      pos_ = gt + 1;
      *made_progress = true;
      return Status::Ok();
    }
  }

  // Unknown "<!..." construct.
  if (view.size() >= 2 && view[1] == '!') {
    // Could still be the prefix of a comment/CDATA/DOCTYPE; if we already
    // have enough bytes to rule those out, it is an error.
    if (avail >= kCdataOpen.size()) {
      return ErrorHere("unrecognized markup declaration");
    }
    return Status::Ok();
  }

  // End tag: </name>
  if (view.size() >= 2 && view[1] == '/') {
    const size_t gt = NextMark(StructClass::kGt, pos_ + 2, parse_limit());
    if (gt == StructuralIndex::npos) return Status::Ok();
    TWIGM_RETURN_IF_ERROR(ConsumeEndTag(gt));
    *made_progress = true;
    return Status::Ok();
  }

  // Start tag: <name attr="v" ...> or empty element <name ... />
  const size_t gt = FindTagEnd(pos_ + 1);
  if (gt == StructuralIndex::npos) return Status::Ok();
  if (gt == StructuralIndex::npos - 1) {
    return ErrorHere("'<' is not allowed inside a tag");
  }
  TWIGM_RETURN_IF_ERROR(ConsumeStartTag(gt));
  *made_progress = true;
  return Status::Ok();
}

Status SaxParser::ConsumeStartTag(size_t gt) {
  // buffer_[pos_] == '<', buffer_[gt] == '>'.
  size_t i = pos_ + 1;
  const size_t name_begin = i;
  while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
  std::string_view name(buffer_.data() + name_begin, i - name_begin);
  if (!IsValidXmlName(name)) {
    return ErrorHere("invalid element name");
  }
  if (open_tags_.empty() && seen_root_) {
    return ErrorHere("multiple root elements");
  }
  if (static_cast<int>(open_tags_.size()) >= options_.max_depth) {
    return Status::ResourceExhausted("maximum element depth exceeded");
  }

  attr_scratch_.clear();
  attr_fixups_.clear();
  attr_decode_buf_.clear();

  // Local mark cursor for the attribute walk. It only moves forward, so
  // each mark inside the tag is visited O(1) times even with many
  // attributes (NextMark would re-walk from the tag's first mark for
  // every attribute).
  const std::vector<uint64_t>& marks = index_.marks;
  size_t mk = mark_cursor_;
  auto next_mark = [&](StructClass cls, size_t from, size_t to) -> size_t {
    const uint64_t key = static_cast<uint64_t>(from) << 3;
    const uint64_t limit = static_cast<uint64_t>(to) << 3;
    while (mk < marks.size() && marks[mk] < key) ++mk;
    for (size_t j = mk; j < marks.size() && marks[j] < limit; ++j) {
      if (StructuralIndex::ClassOf(marks[j]) == cls) {
        return StructuralIndex::PosOf(marks[j]);
      }
    }
    return StructuralIndex::npos;
  };

  bool self_closing = false;
  while (i < gt) {
    // Skip whitespace.
    if (IsWhitespace(buffer_[i])) {
      ++i;
      continue;
    }
    if (buffer_[i] == '/') {
      if (i + 1 != gt) return ErrorHere("'/' must immediately precede '>'");
      self_closing = true;
      ++i;
      continue;
    }
    // Attribute name.
    const size_t an_begin = i;
    while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
    std::string_view attr_name(buffer_.data() + an_begin, i - an_begin);
    if (!IsValidXmlName(attr_name)) {
      return ErrorHere("invalid attribute name in <" + std::string(name) +
                       ">");
    }
    while (i < gt && IsWhitespace(buffer_[i])) ++i;
    if (i >= gt || buffer_[i] != '=') {
      return ErrorHere("expected '=' after attribute name '" +
                       std::string(attr_name) + "'");
    }
    ++i;
    while (i < gt && IsWhitespace(buffer_[i])) ++i;
    if (i >= gt || (buffer_[i] != '"' && buffer_[i] != '\'')) {
      return ErrorHere("attribute value must be quoted");
    }
    const char quote = buffer_[i];
    const StructClass quote_cls =
        quote == '"' ? StructClass::kDQuote : StructClass::kSQuote;
    ++i;
    const size_t val_begin = i;
    const size_t val_end = next_mark(quote_cls, i, gt);
    if (val_end == StructuralIndex::npos) {
      return ErrorHere("unterminated attribute value");
    }
    if (next_mark(StructClass::kLt, val_begin, val_end) !=
        StructuralIndex::npos) {
      return ErrorHere("'<' is not allowed in an attribute value");
    }
    std::string_view raw_value(buffer_.data() + val_begin,
                               val_end - val_begin);
    i = val_end + 1;  // past the closing quote
    for (const Attribute& existing : attr_scratch_) {
      if (existing.name == attr_name) {
        return ErrorHere("duplicate attribute '" + std::string(attr_name) +
                         "'");
      }
    }
    Attribute attr;
    attr.name = attr_name;
    if (next_mark(StructClass::kAmp, val_begin, val_end) ==
        StructuralIndex::npos) {
      // Fast path: no entities, the raw bytes are the value.
      attr.value = raw_value;
    } else {
      // Decode into the shared side buffer; it may reallocate as later
      // values append, so park an (index, offset, length) fixup and patch
      // the view in after the loop.
      const size_t off = attr_decode_buf_.size();
      TWIGM_RETURN_IF_ERROR(
          DecodeEntities(raw_value, "attribute value", &attr_decode_buf_));
      attr_fixups_.push_back(
          {attr_scratch_.size(), off, attr_decode_buf_.size() - off});
    }
    attr_scratch_.push_back(attr);
  }
  for (const AttrFixup& fx : attr_fixups_) {
    attr_scratch_[fx.attr_index].value =
        std::string_view(attr_decode_buf_.data() + fx.offset, fx.length);
  }

  seen_root_ = true;
  const SymbolId sym = interner_.Intern(name);
  const TagToken tag(name, options_.intern_tags ? sym : kNoSymbol);
  handler_->OnStartElement(tag, attr_scratch_);
  if (self_closing) {
    handler_->OnEndElement(tag);
  } else {
    open_tags_.push_back(sym);
  }
  bytes_consumed_ += gt + 1 - pos_;
  pos_ = gt + 1;
  return Status::Ok();
}

Status SaxParser::ConsumeEndTag(size_t gt) {
  // buffer_[pos_..pos_+1] == "</", buffer_[gt] == '>'.
  size_t i = pos_ + 2;
  const size_t name_begin = i;
  while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
  std::string_view name(buffer_.data() + name_begin, i - name_begin);
  while (i < gt && IsWhitespace(buffer_[i])) ++i;
  if (i != gt || !IsValidXmlName(name)) {
    return ErrorHere("malformed end tag");
  }
  if (open_tags_.empty()) {
    return ErrorHere("end tag </" + std::string(name) +
                     "> with no open element");
  }
  const SymbolId sym = open_tags_.back();
  if (interner_.name(sym) != name) {
    return ErrorHere("mismatched end tag: expected </" +
                     std::string(interner_.name(sym)) + ">, found </" +
                     std::string(name) + ">");
  }
  open_tags_.pop_back();
  handler_->OnEndElement(
      TagToken(name, options_.intern_tags ? sym : kNoSymbol));
  bytes_consumed_ += gt + 1 - pos_;
  pos_ = gt + 1;
  return Status::Ok();
}

Status SaxParser::DecodeEntities(std::string_view raw, const char* context,
                                 std::string* out) {
  out->reserve(out->size() + raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    const size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return ErrorHere(std::string("unterminated entity reference in ") +
                       context);
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && valid; ++k) {
          const char h = entity[k];
          uint32_t digit;
          if (h >= '0' && h <= '9') {
            digit = static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<uint32_t>(h - 'A' + 10);
          } else {
            valid = false;
            break;
          }
          cp = cp * 16 + digit;
          if (cp > 0x10FFFF) valid = false;
        }
        valid = valid && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && valid; ++k) {
          const char d = entity[k];
          if (d < '0' || d > '9') {
            valid = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(d - '0');
          if (cp > 0x10FFFF) valid = false;
        }
      }
      // References to non-XML characters (NUL, other C0 controls,
      // surrogates, #xFFFE/#xFFFF) are malformed, not just unusual: they
      // could smuggle bytes the canonical-stream checks already rejected.
      if (!valid || !IsXmlChar(cp) || !AppendUtf8(cp, out)) {
        return ErrorHere(std::string("invalid character reference in ") +
                         context);
      }
    } else {
      return ErrorHere("unknown entity '&" + std::string(entity) + ";' in " +
                       context);
    }
    i = semi + 1;
  }
  return Status::Ok();
}

void SaxParser::SyncLocation(size_t to) {
  const char* base = buffer_.data();
  size_t i = loc_pos_;
  while (i < to) {
    const void* nl = std::memchr(base + i, '\n', to - i);
    if (nl == nullptr) break;
    ++line_;
    column_ = 1;
    i = static_cast<size_t>(static_cast<const char*>(nl) - base) + 1;
  }
  column_ += to - i;
  loc_pos_ = to;
}

Status SaxParser::ErrorHere(const std::string& msg) {
  SyncLocation(pos_);
  return Status::ParseError(msg + " (line " + std::to_string(line_) +
                            ", column " + std::to_string(column_) + ")");
}

}  // namespace twigm::xml
