#include "xml/sax_parser.h"

#include <cctype>
#include <cstring>

namespace twigm::xml {

namespace {

bool IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsNameStartByte(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_' ||
         c == ':' || c >= 0x80;
}

bool IsNameByte(unsigned char c) {
  return IsNameStartByte(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsWhitespace(c)) return false;
  }
  return true;
}

// memchr wrapper over a [from, to) window of `s`; returns npos if absent.
size_t FindByte(std::string_view s, char byte, size_t from, size_t to) {
  if (from >= to) return std::string_view::npos;
  const void* p = std::memchr(s.data() + from, byte, to - from);
  if (p == nullptr) return std::string_view::npos;
  return static_cast<size_t>(static_cast<const char*>(p) - s.data());
}

// Appends the UTF-8 encoding of `cp` to `out`. Returns false for invalid
// code points (surrogates, > U+10FFFF).
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp >= 0xD800 && cp <= 0xDFFF) return false;
  if (cp > 0x10FFFF) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

}  // namespace

bool IsValidXmlName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsNameStartByte(static_cast<unsigned char>(name[0]))) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameByte(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

SaxParser::SaxParser(SaxHandler* handler, SaxParserOptions options)
    : handler_(handler), options_(options) {}

void SaxParser::Reset() {
  buffer_.clear();  // clear() keeps capacity
  pos_ = 0;
  line_ = 1;
  column_ = 1;
  bytes_consumed_ = 0;
  open_tags_.clear();
  seen_root_ = false;
  started_ = false;
  finished_ = false;
  error_ = Status::Ok();
  text_scratch_.clear();
  attr_decode_buf_.clear();
  attr_scratch_.clear();
  attr_fixups_.clear();
  // interner_ deliberately untouched: symbols are stable for the parser's
  // lifetime so machine label bindings survive across documents.
}

Status SaxParser::Feed(std::string_view chunk) {
  if (!error_.ok()) return error_;
  if (finished_) {
    error_ = Status::InvalidArgument("Feed() after Finish()");
    return error_;
  }
  if (!started_) {
    started_ = true;
    handler_->OnStartDocument();
  }
  buffer_.append(chunk.data(), chunk.size());
  error_ = Drain();
  if (error_.ok() && options_.max_buffer_bytes > 0 &&
      buffer_.size() - pos_ > options_.max_buffer_bytes) {
    // Everything complete was consumed by Drain, so whatever remains is one
    // incomplete construct that keeps growing — an unterminated tag, CDATA
    // section, comment or text run.
    error_ = Status::ResourceExhausted(
        "unterminated construct exceeds max_buffer_bytes=" +
        std::to_string(options_.max_buffer_bytes) + " (line " +
        std::to_string(line_) + ", column " + std::to_string(column_) + ")");
  }
  return error_;
}

Status SaxParser::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::Ok();
  if (!started_) {
    started_ = true;
    handler_->OnStartDocument();
  }
  finished_ = true;
  // Whatever remains must be trailing whitespace; anything else means the
  // document was truncated.
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  if (!rest.empty()) {
    if (!IsAllWhitespace(rest)) {
      return ErrorHere("unexpected end of document (unterminated construct)");
    }
  }
  if (!open_tags_.empty()) {
    return ErrorHere("document ended with unclosed element <" +
                     std::string(interner_.name(open_tags_.back())) + ">");
  }
  if (!seen_root_) {
    return ErrorHere("document contains no root element");
  }
  if (offset_slot_ != nullptr) *offset_slot_ = bytes_consumed_;
  handler_->OnEndDocument();
  return Status::Ok();
}

Status SaxParser::ParseAll(std::string_view doc) {
  TWIGM_RETURN_IF_ERROR(Feed(doc));
  return Finish();
}

Status SaxParser::Drain() {
  // A UTF-8 byte-order mark at the very start of the document is consumed
  // silently (common in real-world files).
  if (bytes_consumed_ == 0 && pos_ == 0) {
    constexpr std::string_view kBom = "\xEF\xBB\xBF";
    if (buffer_.size() < kBom.size()) {
      if (std::string_view(buffer_).substr(0, buffer_.size()) ==
          kBom.substr(0, buffer_.size())) {
        return Status::Ok();  // may still be a BOM prefix; wait
      }
    } else if (std::string_view(buffer_).substr(0, kBom.size()) == kBom) {
      pos_ = kBom.size();
      bytes_consumed_ = kBom.size();
    }
  }
  while (pos_ < buffer_.size()) {
    // Publish the construct-start offset before any handler fires for it.
    if (offset_slot_ != nullptr) *offset_slot_ = bytes_consumed_;
    if (buffer_[pos_] == '<') {
      bool made_progress = false;
      TWIGM_RETURN_IF_ERROR(ConsumeMarkup(&made_progress));
      if (!made_progress) break;  // construct incomplete; wait for more input
    } else {
      const size_t lt = FindByte(buffer_, '<', pos_, buffer_.size());
      if (lt == std::string_view::npos) {
        // Text may continue into the next chunk; emit nothing yet unless we
        // can prove there is no entity split across the boundary. We simply
        // wait — text runs are bounded by the next tag in practice.
        break;
      }
      TWIGM_RETURN_IF_ERROR(EmitText(lt));
    }
  }
  // Compact the buffer occasionally so long documents do not accumulate.
  if (pos_ > 65536 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::Ok();
}

Status SaxParser::EmitText(size_t lt) {
  std::string_view raw(buffer_.data() + pos_, lt - pos_);
  if (!raw.empty()) {
    if (open_tags_.empty()) {
      // Outside the root element only whitespace is allowed.
      if (!IsAllWhitespace(raw)) {
        return ErrorHere("character data outside the root element");
      }
    } else if (std::memchr(raw.data(), '&', raw.size()) == nullptr) {
      // Fast path: no entity references, so the raw bytes are the decoded
      // text — emit the buffer view directly, no copy.
      if (options_.emit_whitespace_text || !IsAllWhitespace(raw)) {
        handler_->OnCharacters(raw);
      }
    } else {
      text_scratch_.clear();
      TWIGM_RETURN_IF_ERROR(
          DecodeEntities(raw, "character data", &text_scratch_));
      if (options_.emit_whitespace_text || !IsAllWhitespace(text_scratch_)) {
        handler_->OnCharacters(text_scratch_);
      }
    }
  }
  AdvancePosition(pos_, lt);
  pos_ = lt;
  return Status::Ok();
}

size_t SaxParser::FindTagEnd(size_t start) const {
  const std::string_view buf(buffer_);
  size_t i = start;
  while (i < buf.size()) {
    const char c = buf[i];
    if (c == '"' || c == '\'') {
      // Skip the quoted value wholesale: memchr straight to the close quote.
      const size_t close = FindByte(buf, c, i + 1, buf.size());
      if (close == std::string_view::npos) return std::string_view::npos;
      i = close + 1;
      continue;
    }
    if (c == '>') return i;
    if (c == '<') return std::string_view::npos - 1;  // error: '<' inside tag
    ++i;
  }
  return std::string_view::npos;
}

Status SaxParser::ConsumeMarkup(bool* made_progress) {
  *made_progress = false;
  const size_t avail = buffer_.size() - pos_;
  std::string_view view(buffer_.data() + pos_, avail);

  // Comments: <!-- ... -->
  if (view.substr(0, 4) == "<!--" ||
      (avail < 4 && std::string_view("<!--").substr(0, avail) == view)) {
    if (avail < 4) return Status::Ok();  // prefix only; need more input
    const size_t end = buffer_.find("-->", pos_ + 4);
    if (end == std::string::npos) return Status::Ok();
    std::string_view body(buffer_.data() + pos_ + 4, end - pos_ - 4);
    if (body.find("--") != std::string_view::npos) {
      return ErrorHere("'--' is not allowed inside a comment");
    }
    handler_->OnComment(body);
    AdvancePosition(pos_, end + 3);
    pos_ = end + 3;
    *made_progress = true;
    return Status::Ok();
  }

  // CDATA: <![CDATA[ ... ]]>
  constexpr std::string_view kCdataOpen = "<![CDATA[";
  if (view.substr(0, kCdataOpen.size()) == kCdataOpen ||
      (avail < kCdataOpen.size() && kCdataOpen.substr(0, avail) == view)) {
    if (avail < kCdataOpen.size()) return Status::Ok();
    const size_t end = buffer_.find("]]>", pos_ + kCdataOpen.size());
    if (end == std::string::npos) return Status::Ok();
    if (open_tags_.empty()) {
      return ErrorHere("CDATA section outside the root element");
    }
    std::string_view body(buffer_.data() + pos_ + kCdataOpen.size(),
                          end - pos_ - kCdataOpen.size());
    handler_->OnCharacters(body);
    AdvancePosition(pos_, end + 3);
    pos_ = end + 3;
    *made_progress = true;
    return Status::Ok();
  }

  // DOCTYPE: skipped. May contain an [ internal subset ].
  constexpr std::string_view kDoctype = "<!DOCTYPE";
  if (view.substr(0, kDoctype.size()) == kDoctype ||
      (avail < kDoctype.size() && kDoctype.substr(0, avail) == view)) {
    if (avail < kDoctype.size()) return Status::Ok();
    if (seen_root_ || !open_tags_.empty()) {
      return ErrorHere("DOCTYPE must precede the root element");
    }
    int bracket_depth = 0;
    for (size_t i = pos_ + kDoctype.size(); i < buffer_.size(); ++i) {
      const char c = buffer_[i];
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        AdvancePosition(pos_, i + 1);
        pos_ = i + 1;
        *made_progress = true;
        return Status::Ok();
      }
    }
    return Status::Ok();  // incomplete
  }

  // Processing instruction / XML declaration: <? ... ?>
  if (view.substr(0, 2) == "<?" || (avail == 1)) {
    if (avail < 2) return Status::Ok();
    if (view.substr(0, 2) == "<?") {
      const size_t end = buffer_.find("?>", pos_ + 2);
      if (end == std::string::npos) return Status::Ok();
      std::string_view body(buffer_.data() + pos_ + 2, end - pos_ - 2);
      size_t name_end = 0;
      while (name_end < body.size() &&
             !IsWhitespace(body[name_end])) {
        ++name_end;
      }
      std::string_view target = body.substr(0, name_end);
      std::string_view data = body.substr(name_end);
      while (!data.empty() && IsWhitespace(data.front())) data.remove_prefix(1);
      if (target.empty() || !IsValidXmlName(target)) {
        return ErrorHere("invalid processing-instruction target");
      }
      // The XML declaration is consumed silently.
      if (target != "xml") {
        handler_->OnProcessingInstruction(target, data);
      } else if (seen_root_ || !open_tags_.empty() || bytes_consumed_ != 0 ||
                 pos_ != 0) {
        return ErrorHere("XML declaration must be at the start of the document");
      }
      AdvancePosition(pos_, end + 2);
      pos_ = end + 2;
      *made_progress = true;
      return Status::Ok();
    }
  }

  // Unknown "<!..." construct.
  if (view.size() >= 2 && view[1] == '!') {
    // Could still be the prefix of a comment/CDATA/DOCTYPE; if we already
    // have enough bytes to rule those out, it is an error.
    if (avail >= kCdataOpen.size()) {
      return ErrorHere("unrecognized markup declaration");
    }
    return Status::Ok();
  }

  // End tag: </name>
  if (view.size() >= 2 && view[1] == '/') {
    const size_t gt = buffer_.find('>', pos_ + 2);
    if (gt == std::string::npos) return Status::Ok();
    TWIGM_RETURN_IF_ERROR(ConsumeEndTag(gt));
    *made_progress = true;
    return Status::Ok();
  }

  // Start tag: <name attr="v" ...> or empty element <name ... />
  const size_t gt = FindTagEnd(pos_ + 1);
  if (gt == std::string::npos) return Status::Ok();
  if (gt == std::string::npos - 1) {
    return ErrorHere("'<' is not allowed inside a tag");
  }
  TWIGM_RETURN_IF_ERROR(ConsumeStartTag(gt));
  *made_progress = true;
  return Status::Ok();
}

Status SaxParser::ConsumeStartTag(size_t gt) {
  // buffer_[pos_] == '<', buffer_[gt] == '>'.
  size_t i = pos_ + 1;
  const size_t name_begin = i;
  while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
  std::string_view name(buffer_.data() + name_begin, i - name_begin);
  if (!IsValidXmlName(name)) {
    return ErrorHere("invalid element name");
  }
  if (open_tags_.empty() && seen_root_) {
    return ErrorHere("multiple root elements");
  }
  if (static_cast<int>(open_tags_.size()) >= options_.max_depth) {
    return Status::ResourceExhausted("maximum element depth exceeded");
  }

  attr_scratch_.clear();
  attr_fixups_.clear();
  attr_decode_buf_.clear();
  bool self_closing = false;
  while (i < gt) {
    // Skip whitespace.
    if (IsWhitespace(buffer_[i])) {
      ++i;
      continue;
    }
    if (buffer_[i] == '/') {
      if (i + 1 != gt) return ErrorHere("'/' must immediately precede '>'");
      self_closing = true;
      ++i;
      continue;
    }
    // Attribute name.
    const size_t an_begin = i;
    while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
    std::string_view attr_name(buffer_.data() + an_begin, i - an_begin);
    if (!IsValidXmlName(attr_name)) {
      return ErrorHere("invalid attribute name in <" + std::string(name) +
                       ">");
    }
    while (i < gt && IsWhitespace(buffer_[i])) ++i;
    if (i >= gt || buffer_[i] != '=') {
      return ErrorHere("expected '=' after attribute name '" +
                       std::string(attr_name) + "'");
    }
    ++i;
    while (i < gt && IsWhitespace(buffer_[i])) ++i;
    if (i >= gt || (buffer_[i] != '"' && buffer_[i] != '\'')) {
      return ErrorHere("attribute value must be quoted");
    }
    const char quote = buffer_[i];
    ++i;
    const size_t val_begin = i;
    const size_t val_end = FindByte(buffer_, quote, i, gt);
    if (val_end == std::string_view::npos) {
      return ErrorHere("unterminated attribute value");
    }
    if (FindByte(buffer_, '<', val_begin, val_end) != std::string_view::npos) {
      return ErrorHere("'<' is not allowed in an attribute value");
    }
    std::string_view raw_value(buffer_.data() + val_begin,
                               val_end - val_begin);
    i = val_end + 1;  // past the closing quote
    for (const Attribute& existing : attr_scratch_) {
      if (existing.name == attr_name) {
        return ErrorHere("duplicate attribute '" + std::string(attr_name) +
                         "'");
      }
    }
    Attribute attr;
    attr.name = attr_name;
    if (std::memchr(raw_value.data(), '&', raw_value.size()) == nullptr) {
      // Fast path: no entities, the raw bytes are the value.
      attr.value = raw_value;
    } else {
      // Decode into the shared side buffer; it may reallocate as later
      // values append, so park an (index, offset, length) fixup and patch
      // the view in after the loop.
      const size_t off = attr_decode_buf_.size();
      TWIGM_RETURN_IF_ERROR(
          DecodeEntities(raw_value, "attribute value", &attr_decode_buf_));
      attr_fixups_.push_back(
          {attr_scratch_.size(), off, attr_decode_buf_.size() - off});
    }
    attr_scratch_.push_back(attr);
  }
  for (const AttrFixup& fx : attr_fixups_) {
    attr_scratch_[fx.attr_index].value =
        std::string_view(attr_decode_buf_.data() + fx.offset, fx.length);
  }

  seen_root_ = true;
  const SymbolId sym = interner_.Intern(name);
  const TagToken tag(name, options_.intern_tags ? sym : kNoSymbol);
  handler_->OnStartElement(tag, attr_scratch_);
  if (self_closing) {
    handler_->OnEndElement(tag);
  } else {
    open_tags_.push_back(sym);
  }
  AdvancePosition(pos_, gt + 1);
  pos_ = gt + 1;
  return Status::Ok();
}

Status SaxParser::ConsumeEndTag(size_t gt) {
  // buffer_[pos_..pos_+1] == "</", buffer_[gt] == '>'.
  size_t i = pos_ + 2;
  const size_t name_begin = i;
  while (i < gt && IsNameByte(static_cast<unsigned char>(buffer_[i]))) ++i;
  std::string_view name(buffer_.data() + name_begin, i - name_begin);
  while (i < gt && IsWhitespace(buffer_[i])) ++i;
  if (i != gt || !IsValidXmlName(name)) {
    return ErrorHere("malformed end tag");
  }
  if (open_tags_.empty()) {
    return ErrorHere("end tag </" + std::string(name) +
                     "> with no open element");
  }
  const SymbolId sym = open_tags_.back();
  if (interner_.name(sym) != name) {
    return ErrorHere("mismatched end tag: expected </" +
                     std::string(interner_.name(sym)) + ">, found </" +
                     std::string(name) + ">");
  }
  open_tags_.pop_back();
  handler_->OnEndElement(
      TagToken(name, options_.intern_tags ? sym : kNoSymbol));
  AdvancePosition(pos_, gt + 1);
  pos_ = gt + 1;
  return Status::Ok();
}

Status SaxParser::DecodeEntities(std::string_view raw, const char* context,
                                 std::string* out) {
  out->reserve(out->size() + raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    const size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return ErrorHere(std::string("unterminated entity reference in ") +
                       context);
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && valid; ++k) {
          const char h = entity[k];
          uint32_t digit;
          if (h >= '0' && h <= '9') {
            digit = static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<uint32_t>(h - 'A' + 10);
          } else {
            valid = false;
            break;
          }
          cp = cp * 16 + digit;
          if (cp > 0x10FFFF) valid = false;
        }
        valid = valid && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && valid; ++k) {
          const char d = entity[k];
          if (d < '0' || d > '9') {
            valid = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(d - '0');
          if (cp > 0x10FFFF) valid = false;
        }
      }
      if (!valid || !AppendUtf8(cp, out)) {
        return ErrorHere(std::string("invalid character reference in ") +
                         context);
      }
    } else {
      return ErrorHere("unknown entity '&" + std::string(entity) + ";' in " +
                       context);
    }
    i = semi + 1;
  }
  return Status::Ok();
}

void SaxParser::AdvancePosition(size_t from, size_t to) {
  // memchr for newlines instead of testing every byte: typical runs (tag
  // bodies, text) contain none or few.
  size_t i = from;
  while (true) {
    const size_t nl = FindByte(buffer_, '\n', i, to);
    if (nl == std::string_view::npos) break;
    ++line_;
    column_ = 1;
    i = nl + 1;
  }
  column_ += to - i;
  bytes_consumed_ += to - from;
}

Status SaxParser::ErrorHere(const std::string& msg) {
  return Status::ParseError(msg + " (line " + std::to_string(line_) +
                            ", column " + std::to_string(column_) + ")");
}

}  // namespace twigm::xml
