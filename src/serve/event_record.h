// The unit shipped through the session → shard rings: one modified-SAX
// event with owning storage. The parser's TagToken/Attribute views die with
// the callback, so the routing session copies the bytes into the ring slot;
// slots are reused in place (SpscRing), so the copies amortize to zero
// allocations once every string has grown to its working size.

#ifndef TWIGM_SERVE_EVENT_RECORD_H_
#define TWIGM_SERVE_EVENT_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/sax_event.h"

namespace twigm::serve {

/// One owned attribute (the ring cannot carry parse-buffer views).
struct OwnedAttribute {
  std::string name;
  std::string value;
};

struct EventRecord {
  enum class Kind : uint8_t {
    /// Document boundary: the shard folds pending subscriptions whose epoch
    /// is <= route_epoch into its engine, then resets runtime state.
    kStartDocument,
    kStartElement,
    kEndElement,
    kText,
    /// End of the current document; the shard flushes its notification
    /// batch and acknowledges via the channel's docs_finished counter.
    kEndDocument,
    /// The stream is gone; the shard drops its per-session state.
    kCloseSession,
  };

  Kind kind = Kind::kStartDocument;
  int level = 0;
  xml::NodeId id = 0;
  /// Symbol in the *session parser's* dictionary; shards translate it into
  /// their engine-local dictionary through a dense map.
  xml::SymbolId symbol = xml::kNoSymbol;
  /// Byte offset of the construct (parser offset slot at event time), so
  /// shard-side MatchInfo::byte_offset matches the single-threaded flow.
  uint64_t byte_offset = 0;
  /// kStartDocument only: the registry epoch this document routes under.
  uint64_t route_epoch = 0;

  std::string tag;   // kStartElement / kEndElement
  std::string text;  // kText
  /// First `attr_count` entries are live; the rest keep their capacity.
  size_t attr_count = 0;
  std::vector<OwnedAttribute> attrs;

  void SetAttributes(const std::vector<xml::Attribute>& in) {
    if (attrs.size() < in.size()) attrs.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      attrs[i].name.assign(in[i].name);
      attrs[i].value.assign(in[i].value);
    }
    attr_count = in.size();
  }
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_EVENT_RECORD_H_
