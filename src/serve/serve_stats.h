// Cross-thread accounting for the subscription service. Shard workers and
// routing sessions update these with relaxed atomics; the control thread
// reads them at any time through SubscriptionServer::ExportMetrics, which
// copies the values into an obs::MetricsRegistry (the registry itself is
// single-threaded, so it never sees the worker threads directly).
//
// Atomics audit (DESIGN.md §14): every operation in this header is
// deliberately memory_order_relaxed, so none needs a `pairs-with`
// annotation. These are monitoring counters — each is written by one
// thread and read for display; no reader infers anything about *other*
// memory from a counter value, so there is no acquire/release edge to
// document. Synchronization between shards and readers rides on the
// barrier/close handshakes in shard.cc / server.cc instead.

#ifndef TWIGM_SERVE_SERVE_STATS_H_
#define TWIGM_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace twigm::serve {

/// Relaxed-max update (peak trackers).
inline void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (cur < value &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Fixed-bucket histogram over atomics: the multi-threaded sibling of
/// obs::Histogram (same cumulative-upper-bound layout, same snapshot names
/// once exported). Observe is wait-free; readers see a consistent-enough
/// view for monitoring (counts are monotone).
class AtomicHistogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit AtomicHistogram(std::vector<uint64_t> bounds)
      : bounds_(std::move(bounds)),
        counts_(bounds_.size() + 1) {}

  void Observe(uint64_t x) {
    size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
    AtomicMax(&max_, x);
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  uint64_t bucket(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Per-shard counters, updated only by that shard's worker (single writer,
/// so relaxed increments suffice) and read by the control thread.
struct ShardCounters {
  std::atomic<uint64_t> events{0};        // ring records dispatched
  std::atomic<uint64_t> start_events{0};  // element starts among them
  std::atomic<uint64_t> matches{0};       // engine emissions
  std::atomic<uint64_t> batches{0};       // notification batches flushed
  std::atomic<uint64_t> engine_rebuilds{0};
  std::atomic<uint64_t> documents{0};     // end-of-document markers seen
  std::atomic<uint64_t> ring_depth_peak{0};

  void NoteRingDepth(uint64_t depth) { AtomicMax(&ring_depth_peak, depth); }
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_SERVE_STATS_H_
