// SubscriptionServer — the multi-core pub/sub front end over the
// shared-prefix FilterEngine (DESIGN.md §11).
//
// Topology: N worker shards, each owning the event-fed engines for its
// partition of the query set (SubscriptionRegistry assigns each first-step
// tag name to one shard). A ServerStream is one XML document stream: its
// caller thread parses (once), assigns levels/pre-order ids, and fans the
// modified-SAX events out through per-shard SPSC rings — but only to the
// shards whose queries can be affected: an event is routed to shard s iff
// its tag is a first step of some query on s (interest), an ancestor
// already routed to s (open window: everything below a matched first step
// must be seen), or s holds a wildcard-first-step query (take-all).
//
// Delivery: shards batch matches into per-subscriber notifications and
// flush them to the server's Poll() queue (or the Options::on_batch
// callback) when the batch fills, at each document end, and when the shard
// goes idle. FinishDocument() is a barrier: when it returns, every match
// of that document is visible to Poll().
//
// Live churn: Subscribe/Unsubscribe at any time, from any thread, with no
// stop-the-world rebuild — changes are epoch-stamped in the registry and
// each shard folds them into its engine at the next document start it
// processes (see subscription_registry.h for the exact activation rule).

#ifndef TWIGM_SERVE_SERVER_H_
#define TWIGM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "obs/metrics.h"
#include "serve/notification.h"
#include "serve/shard.h"
#include "serve/subscription_registry.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::serve {

class SubscriptionServer;

/// One document stream bound to a server. Not thread-safe: feed each
/// stream from one thread at a time (different streams may be fed from
/// different threads concurrently). Destroy every stream before the server.
class ServerStream : private xml::StreamEventSink {
 public:
  ~ServerStream() override;

  ServerStream(const ServerStream&) = delete;
  ServerStream& operator=(const ServerStream&) = delete;

  /// Consumes one chunk of the current document (the first chunk after
  /// creation or after a document boundary starts a new document and fixes
  /// its route epoch). A chunk with last = true ends the document — the
  /// same barrier as FinishDocument. Parse errors are sticky for the
  /// document.
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Ends the current document and blocks until every shard has processed
  /// it — afterwards all its matches are Poll()-visible and the stream is
  /// ready for the next document.
  Status FinishDocument();

  /// Convenience: Consume({doc, last=true}).
  Status FeedDocument(std::string_view doc) { return Consume({doc, true}); }

  uint64_t stream_id() const { return stream_id_; }
  uint64_t documents_finished() const { return docs_; }

 private:
  friend class SubscriptionServer;
  ServerStream(SubscriptionServer* server, uint64_t stream_id);

  // xml::StreamEventSink (called by the driver on the feeding thread).
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  void BeginDocument();
  uint64_t MaskFor(const xml::TagToken& tag);
  EventRecord* BlockingBeginPush(int shard);
  void PushToAll(EventRecord::Kind kind, uint64_t route_epoch);

  SubscriptionServer* server_;
  const uint64_t stream_id_;

  std::vector<std::shared_ptr<SessionChannel>> channels_;  // one per shard

  xml::EventDriver driver_;
  xml::SaxParser parser_;
  uint64_t offset_ = 0;  // parser offset slot; copied into each record

  bool doc_open_ = false;
  uint64_t docs_ = 0;
  uint64_t route_epoch_ = 0;
  uint64_t take_all_mask_ = 0;

  /// Shard mask of every open element, innermost last. An element's mask is
  /// its parent's mask OR its own interest mask, so whole subtrees under a
  /// matched first step stay routed.
  std::vector<uint64_t> open_masks_;

  /// Per-session-symbol interest cache, invalidated per document (epoch
  /// tag), so the registry mutex is touched once per distinct tag per
  /// document instead of once per event.
  struct MaskCacheEntry {
    uint64_t mask = 0;
    uint64_t doc_gen = 0;
  };
  std::vector<MaskCacheEntry> mask_cache_;
  uint64_t doc_gen_ = 0;
};

class SubscriptionServer {
 public:
  struct Options {
    /// Worker shards, in [1, 64].
    int num_shards = 4;
    /// Capacity of each session→shard event ring (rounded up to a power of
    /// two). Producers block (spin/yield) when a ring is full.
    size_t ring_capacity = 1024;
    /// Notifications per delivery batch; flushes also happen at document
    /// end and when a shard goes idle.
    size_t notify_batch = 64;
    /// Tail-machine options for the shard engines (sax/instrumentation
    /// fields are ignored — shards never parse).
    core::EvaluatorOptions engine_options;
    /// Optional DTD summary: when engine_options.enable_early_decisions is
    /// not kOff, every folded shard engine gets earliest-decision tables
    /// compiled against it (sound on documents valid w.r.t. the DTD). Not
    /// owned; must outlive the server.
    const analysis::DtdStructure* dtd = nullptr;
    /// Optional push delivery: batches are handed to this callback on the
    /// shard worker thread instead of queueing for Poll(). Must be
    /// thread-safe.
    std::function<void(std::vector<Notification>&&)> on_batch;
  };

  static Result<std::unique_ptr<SubscriptionServer>> Create(Options options);
  static Result<std::unique_ptr<SubscriptionServer>> Create() {
    return Create(Options());
  }
  ~SubscriptionServer();  // joins the shard workers

  SubscriptionServer(const SubscriptionServer&) = delete;
  SubscriptionServer& operator=(const SubscriptionServer&) = delete;

  /// Registers a standing query (any thread). Takes effect, per stream, at
  /// the next document started at a later epoch.
  Result<SubscriptionId> Subscribe(const std::string& query);

  /// Deactivates a subscription; matches already proven for in-flight
  /// documents are still delivered through those documents' end.
  Status Unsubscribe(SubscriptionId id);

  /// Opens a document stream. The stream must be destroyed before the
  /// server.
  std::unique_ptr<ServerStream> OpenStream();

  /// Drains every flushed notification batch into `out` (appends).
  /// Returns the number appended. Non-blocking; after FinishDocument on a
  /// stream, all of that document's notifications are available.
  size_t Poll(std::vector<Notification>* out);

  /// Exports service metrics into `registry` (prefix "serve."): per-shard
  /// event/match/rebuild/document counters and ring-depth peaks, plus
  /// batch-size and notification-latency histograms. Same registered-once
  /// contract as FilterEngine::ExportMetrics.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t active_subscriptions() const { return registry_.active_count(); }
  const SubscriptionRegistry& registry() const { return registry_; }
  const Shard& shard(int i) const { return *shards_[i]; }

 private:
  friend class ServerStream;
  explicit SubscriptionServer(Options options);

  Options options_;
  SubscriptionRegistry registry_;
  DeliveryHub hub_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_stream_id_{1};
  std::atomic<uint64_t> streams_opened_{0};

  struct ExportHandles;
  mutable std::unique_ptr<ExportHandles> export_;
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_SERVER_H_
