// Fixed-capacity single-producer / single-consumer ring for the sharded
// subscription service (DESIGN.md §11): the stream's routing session is the
// producer, one shard worker is the consumer.
//
// Lock-free in the classic two-counter style: the producer owns `tail_`,
// the consumer owns `head_`, and each side caches the other's counter so
// the steady state touches one shared cache line only when its cached view
// runs out. Slots are default-constructed once and *reused in place* —
// BeginPush hands the producer a slot whose strings/vectors keep their
// capacity from earlier laps, so steady-state pushes are allocation-free
// (the same discipline as the parser's scratch buffers, DESIGN.md §10).
//
// Blocking policy lives with the callers: BeginPush returns null when full
// and Front returns null when empty; the session spins/yields on full rings
// and pokes the shard's parked-worker doorbell after a push.

#ifndef TWIGM_SERVE_SPSC_RING_H_
#define TWIGM_SERVE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace twigm::serve {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<T>(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // --- Producer side ----------------------------------------------------

  /// Slot to fill for the next push, or null when the ring is full. The
  /// slot's previous contents are intact (reuse its buffers). Publish with
  /// CommitPush; until then the consumer cannot see it.
  T* BeginPush() {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      // Acquire-consume the consumer's slot releases: once head_ covers a
      // slot, the consumer is done reading it and the producer may reuse
      // its buffers (the cached view makes re-reading head_ the slow path,
      // which is legal — a stale head_cache_ only under-reports free
      // slots, never hands out an unreleased one).
      // pairs-with: spsc_ring.h:SpscRing::Pop
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return nullptr;
    }
    return &slots_[tail & mask_];
  }

  /// Publishes the slot handed out by the latest BeginPush.
  void CommitPush() {
    // Release-publish the slot contents written since BeginPush; the
    // consumer's acquire load of tail_ makes them visible.
    // pairs-with: spsc_ring.h:SpscRing::Front
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // --- Consumer side ----------------------------------------------------

  /// Oldest unconsumed slot, or null when the ring is empty. The slot stays
  /// owned by the consumer until Pop.
  T* Front() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // Acquire-consume the producer's publish: everything written into a
      // slot before its CommitPush is visible once tail_ covers it (the
      // cached view is legal for the same reason as head_cache_ — it only
      // under-reports available records).
      // pairs-with: spsc_ring.h:SpscRing::CommitPush
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Releases the slot returned by Front back to the producer.
  void Pop() {
    // Release the slot: the consumer's reads of it happen-before the
    // producer's acquire load of head_ and the subsequent buffer reuse.
    // pairs-with: spsc_ring.h:SpscRing::BeginPush
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // --- Either side ------------------------------------------------------

  /// Approximate occupancy (exact when called by either endpoint's thread
  /// between its own operations).
  size_t SizeApprox() const {
    // Monitoring reads; acquire keeps the depth a consistent snapshot of
    // both endpoints' latest publishes.
    // pairs-with: spsc_ring.h:SpscRing::CommitPush
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    // pairs-with: spsc_ring.h:SpscRing::Pop
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  uint64_t mask_ = 0;

  // Producer-owned line: its counter plus its cached view of the consumer.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;

  // Consumer-owned line.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_SPSC_RING_H_
