// What the service delivers: one proven match, tagged with the
// subscription that owns the query and the stream it matched on.

#ifndef TWIGM_SERVE_NOTIFICATION_H_
#define TWIGM_SERVE_NOTIFICATION_H_

#include <cstdint>

#include "core/result_sink.h"
#include "serve/subscription_registry.h"

namespace twigm::serve {

struct Notification {
  SubscriptionId subscription = 0;
  /// ServerStream::stream_id() of the document stream that matched.
  uint64_t stream = 0;
  /// MatchInfo::query_node is engine-local (the shard's trie id) and not
  /// comparable across shard layouts; id and byte_offset are stream-global
  /// and identical to the single-threaded FilterEngine flow.
  core::MatchInfo match;
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_NOTIFICATION_H_
