// Shared registry of standing subscriptions for the sharded service.
//
// Partitioning rule (DESIGN.md §11): a query lives on exactly one shard,
// chosen by its *first location step*. All queries whose first step carries
// the same name test share a shard (so their trie trunks keep sharing), and
// a fresh first-step name is assigned to the least-loaded shard. Queries
// whose first step is a wildcard ('//*...') are round-robined and mark
// their shard take-all: every event must reach it.
//
// Epochs: every Subscribe/Unsubscribe bumps a global sequence number. A
// routing session samples the sequence once per document (its
// *route epoch*); a subscription is active for that document iff
//   sub_epoch <= route_epoch < unsub_epoch.
// Both the session's routing masks and the shard's fold at the
// kStartDocument marker evaluate this same predicate, so churn lands at
// document boundaries deterministically and with no stop-the-world rebuild
// — each shard folds its own pending changes, between documents, while the
// other shards keep streaming.
//
// Thread safety: every method is safe to call from any thread (one mutex;
// all calls are off the per-event hot path — sessions cache mask lookups
// per distinct tag per document).

#ifndef TWIGM_SERVE_SUBSCRIPTION_REGISTRY_H_
#define TWIGM_SERVE_SUBSCRIPTION_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace twigm::serve {

/// Stable handle for one registered query. Ids are never reused.
using SubscriptionId = uint64_t;

/// Epoch value meaning "never unsubscribed".
inline constexpr uint64_t kNeverEpoch = ~uint64_t{0};

class SubscriptionRegistry {
 public:
  /// `num_shards` in [1, 64] (shard sets travel as 64-bit masks).
  explicit SubscriptionRegistry(int num_shards);

  /// Validates the query (it must parse into the supported fragment),
  /// assigns its shard, and stamps its subscribe epoch.
  Result<SubscriptionId> Subscribe(const std::string& query)
      TWIGM_EXCLUDES(mu_);

  /// Stamps the unsubscribe epoch; the subscription stays active through
  /// the end of any document already routing under an older epoch.
  Status Unsubscribe(SubscriptionId id) TWIGM_EXCLUDES(mu_);

  /// Samples the current epoch — called by a session at document start; the
  /// returned value becomes the document's route epoch.
  uint64_t CurrentEpoch() const;

  /// Bitmask of shards that must see *every* event of a document routed at
  /// `epoch` (shards holding wildcard-first-step queries).
  uint64_t TakeAllMask(uint64_t epoch) const;

  /// Bitmask of shards interested in elements named `tag` as a *first*
  /// step, at `epoch`. Conservative across unsubscribes (a shard keeps its
  /// interest bit until re-registration policy changes; extra events are
  /// harmless, missed events are not).
  uint64_t MaskForTag(std::string_view tag, uint64_t epoch) const;

  struct ShardQuery {
    SubscriptionId id = 0;
    std::string query;
  };

  /// The queries active on `shard` at `epoch`, in subscription order (shard
  /// workers rebuild their engine from this at a fold).
  std::vector<ShardQuery> ShardSet(int shard, uint64_t epoch) const;

  /// Epoch of the latest subscribe/unsubscribe affecting `shard` that is
  /// <= `epoch` (0 if none). A shard engine built at fold F can be reused
  /// for route epoch E iff ShardLastChange(shard, F) == ShardLastChange(
  /// shard, E) — i.e. nothing relevant changed in between.
  uint64_t ShardLastChange(int shard, uint64_t epoch) const;

  int num_shards() const { return num_shards_; }
  size_t active_count() const;
  uint64_t subscribe_count() const;
  uint64_t unsubscribe_count() const;

 private:
  struct Sub {
    std::string query;
    int shard = 0;
    uint64_t sub_epoch = 0;
    uint64_t unsub_epoch = kNeverEpoch;
  };

  /// Picks the shard for a subscription being registered at `epoch` and
  /// updates the assignment tables (name map / take-all set / load counts).
  int AssignShard(bool wildcard_first, const std::string& first_name,
                  uint64_t epoch) TWIGM_REQUIRES(mu_);

  const int num_shards_;

  mutable common::Mutex mu_;
  // Bumped per subscribe/unsubscribe.
  uint64_t epoch_ TWIGM_GUARDED_BY(mu_) = 0;
  uint64_t unsubs_ TWIGM_GUARDED_BY(mu_) = 0;
  // SubscriptionId = index + 1.
  std::vector<Sub> subs_ TWIGM_GUARDED_BY(mu_);
  // First-step name -> (shard, epoch of first subscription with that name).
  struct NameEntry {
    int shard = 0;
    uint64_t first_epoch = 0;
  };
  std::unordered_map<std::string, NameEntry> name_shards_
      TWIGM_GUARDED_BY(mu_);
  // Shards holding wildcard-first-step queries, with first such epoch
  // (0 = none; per shard).
  std::vector<uint64_t> take_all_first_epoch_ TWIGM_GUARDED_BY(mu_);
  // Per-shard load, for least-loaded assignment.
  std::vector<uint64_t> shard_query_counts_ TWIGM_GUARDED_BY(mu_);
  // Change epochs per shard, ascending (push order).
  std::vector<std::vector<uint64_t>> shard_changes_ TWIGM_GUARDED_BY(mu_);
  int round_robin_ TWIGM_GUARDED_BY(mu_) = 0;
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_SUBSCRIPTION_REGISTRY_H_
