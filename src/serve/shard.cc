#include "serve/shard.h"

#include <chrono>
#include <cstdio>
#include <string>

#include "filter/early_decisions.h"
#include "obs/metrics.h"

namespace twigm::serve {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Events drained from one session before giving the next one a turn.
constexpr int kDrainBurst = 256;

}  // namespace

DeliveryHub::DeliveryHub(size_t batch_capacity_in)
    : batch_capacity(batch_capacity_in == 0 ? 1 : batch_capacity_in),
      // Batch sizes: 1..batch_capacity; a few doublings cover any config.
      batch_size(obs::ExponentialBuckets(1, 2, 12)),
      // Enqueue-to-flush latency in microseconds: 1us .. ~4s.
      notify_latency_us(obs::ExponentialBuckets(1, 4, 12)) {}

void DeliveryHub::NotifyBarrier() {
  common::MutexLock lock(&barrier_mu);
  barrier_cv.NotifyAll();
}

void DeliveryHub::WaitBarrier(const std::function<bool()>& pred) {
  common::MutexLock lock(&barrier_mu);
  barrier_cv.Wait(lock, pred);
}

Shard::Shard(int index, SubscriptionRegistry* registry, DeliveryHub* hub,
             core::EvaluatorOptions engine_options,
             const analysis::DtdStructure* dtd)
    : index_(index),
      registry_(registry),
      hub_(hub),
      engine_options_(engine_options),
      dtd_(dtd) {
  // Shard engines never parse; drop any caller instrumentation hook (it is
  // single-threaded plumbing and must not be shared across workers).
  engine_options_.instrumentation = nullptr;
}

Shard::~Shard() { Stop(); }

void Shard::Start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void Shard::Stop() {
  if (!thread_.joinable()) return;
  {
    common::MutexLock lock(&wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyOne();
  thread_.join();
}

void Shard::Attach(std::shared_ptr<SessionChannel> channel) {
  {
    common::MutexLock lock(&attach_mu_);
    pending_attach_.push_back(std::move(channel));
  }
  Wake();
}

void Shard::Wake() {
  if (!parked_.load(std::memory_order_relaxed)) return;
  common::MutexLock lock(&wake_mu_);
  wake_cv_.NotifyOne();
}

void Shard::Run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    AdoptPending();
    bool progress = false;
    for (std::unique_ptr<SessionState>& state : sessions_) {
      progress |= DrainSession(*state);
    }
    for (size_t i = sessions_.size(); i-- > 0;) {
      if (sessions_[i]->closed) {
        sessions_.erase(sessions_.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    if (progress) {
      // Earliest answering extends to delivery: matches proved mid-document
      // leave for the subscriber at the end of the drain pass instead of
      // aging until the batch fills or the document closes.
      FlushBatch();
    }
    if (!progress) {
      // Nothing in flight: deliver any partially filled batch rather than
      // letting it age, then park until a producer rings the doorbell.
      FlushBatch();
      Park();
    }
  }
  FlushBatch();
}

void Shard::AdoptPending() {
  std::vector<std::shared_ptr<SessionChannel>> incoming;
  {
    common::MutexLock lock(&attach_mu_);
    incoming.swap(pending_attach_);
  }
  for (std::shared_ptr<SessionChannel>& chan : incoming) {
    auto state = std::make_unique<SessionState>();
    state->chan = std::move(chan);
    state->sink = std::make_unique<SessionSink>(this, state.get());
    sessions_.push_back(std::move(state));
  }
}

bool Shard::DrainSession(SessionState& state) {
  SpscRing<EventRecord>& ring = state.chan->ring;
  counters_.NoteRingDepth(ring.SizeApprox());
  int drained = 0;
  EventRecord* rec;
  while (drained < kDrainBurst && (rec = ring.Front()) != nullptr) {
    Dispatch(state, *rec);
    ring.Pop();
    ++drained;
    if (state.closed) break;
  }
  if (drained > 0) {
    counters_.events.fetch_add(static_cast<uint64_t>(drained),
                               std::memory_order_relaxed);
  }
  return drained > 0;
}

void Shard::Dispatch(SessionState& state, EventRecord& rec) {
  filter::FilterEngine* engine = state.engine.get();
  switch (rec.kind) {
    case EventRecord::Kind::kStartDocument:
      FoldSubscriptions(state, rec.route_epoch);
      if (state.engine != nullptr) state.engine->Reset();
      break;
    case EventRecord::Kind::kStartElement: {
      counters_.start_events.fetch_add(1, std::memory_order_relaxed);
      if (engine == nullptr) break;
      *engine->offset_slot() = rec.byte_offset;
      xml::SymbolId local = xml::kNoSymbol;
      if (rec.symbol != xml::kNoSymbol) {
        if (state.sym_map.size() <= rec.symbol) {
          state.sym_map.resize(rec.symbol + 1, xml::kNoSymbol);
        }
        local = state.sym_map[rec.symbol];
        if (local == xml::kNoSymbol) {
          local = state.interner.Intern(rec.tag);
          state.sym_map[rec.symbol] = local;
        }
      }
      state.attr_scratch.clear();
      for (size_t i = 0; i < rec.attr_count; ++i) {
        state.attr_scratch.push_back(
            xml::Attribute{rec.attrs[i].name, rec.attrs[i].value});
      }
      engine->event_input()->StartElement(xml::TagToken(rec.tag, local),
                                          rec.level, rec.id,
                                          state.attr_scratch);
      break;
    }
    case EventRecord::Kind::kEndElement: {
      if (engine == nullptr) break;
      *engine->offset_slot() = rec.byte_offset;
      xml::SymbolId local = xml::kNoSymbol;
      if (rec.symbol != xml::kNoSymbol &&
          rec.symbol < state.sym_map.size()) {
        local = state.sym_map[rec.symbol];
      }
      engine->event_input()->EndElement(xml::TagToken(rec.tag, local),
                                        rec.level);
      break;
    }
    case EventRecord::Kind::kText:
      if (engine == nullptr) break;
      *engine->offset_slot() = rec.byte_offset;
      engine->event_input()->Text(rec.text, rec.level);
      break;
    case EventRecord::Kind::kEndDocument:
      if (engine != nullptr) {
        *engine->offset_slot() = rec.byte_offset;
        engine->event_input()->EndDocument();
      }
      // Flush before acknowledging: once FinishDocument returns, every
      // match of the document must be visible to Poll().
      FlushBatch();
      counters_.documents.fetch_add(1, std::memory_order_relaxed);
      // Release-publish the document's effects (flushed notifications,
      // counters) to the stream thread blocked on the barrier.
      // pairs-with: server.cc:ServerStream::FinishDocument
      state.chan->docs_finished.fetch_add(1, std::memory_order_release);
      hub_->NotifyBarrier();
      break;
    case EventRecord::Kind::kCloseSession:
      FlushBatch();
      state.closed = true;
      // Release-publish the session teardown to the destructor handshake.
      // pairs-with: server.cc:ServerStream::~ServerStream
      state.chan->closed.store(true, std::memory_order_release);
      hub_->NotifyBarrier();
      break;
  }
}

void Shard::FoldSubscriptions(SessionState& state, uint64_t route_epoch) {
  const uint64_t change = registry_->ShardLastChange(index_, route_epoch);
  if (change == state.built_change_epoch) return;

  const std::vector<SubscriptionRegistry::ShardQuery> set =
      registry_->ShardSet(index_, route_epoch);
  state.query_ids.clear();
  state.engine.reset();
  if (!set.empty()) {
    std::vector<std::string> queries;
    queries.reserve(set.size());
    state.query_ids.reserve(set.size());
    for (const SubscriptionRegistry::ShardQuery& q : set) {
      queries.push_back(q.query);
      state.query_ids.push_back(q.id);
    }
    Result<std::unique_ptr<filter::FilterEngine>> engine =
        filter::FilterEngine::CreateEventFed(queries, state.sink.get(),
                                             &state.interner, engine_options_);
    if (engine.ok()) {
      state.engine = std::move(engine).value();
      if (dtd_ != nullptr && engine_options_.enable_early_decisions !=
                                 core::EarlyDecisionMode::kOff) {
        // Compiled off the per-event path, once per fold; interning the
        // table's element names is safe here — the worker owns interner.
        filter::InstallEarlyDecisions(state.engine.get(), *dtd_);
      }
      counters_.engine_rebuilds.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Queries were validated at Subscribe; a failure here is a bug, but
      // the shard must keep serving its other sessions.
      std::fprintf(stderr, "serve: shard %d engine fold failed: %s\n", index_,
                   engine.status().ToString().c_str());
      state.query_ids.clear();
    }
  }
  state.built_change_epoch = change;
}

void Shard::OnMatch(SessionState& state, size_t query_index,
                    const core::MatchInfo& match) {
  counters_.matches.fetch_add(1, std::memory_order_relaxed);
  PendingNotification pending;
  pending.notification.subscription = state.query_ids[query_index];
  pending.notification.stream = state.chan->stream_id;
  pending.notification.match = match;
  pending.enqueue_ns = NowNs();
  batch_.push_back(pending);
  if (batch_.size() >= hub_->batch_capacity) FlushBatch();
}

void Shard::FlushBatch() {
  if (batch_.empty()) return;
  const uint64_t now = NowNs();
  hub_->batch_size.Observe(batch_.size());
  for (const PendingNotification& p : batch_) {
    hub_->notify_latency_us.Observe((now - p.enqueue_ns) / 1000);
  }
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  if (hub_->on_batch) {
    std::vector<Notification> out;
    out.reserve(batch_.size());
    for (const PendingNotification& p : batch_) out.push_back(p.notification);
    hub_->on_batch(std::move(out));
  } else {
    common::MutexLock lock(&hub_->mu);
    for (const PendingNotification& p : batch_) {
      hub_->pending.push_back(p.notification);
    }
  }
  batch_.clear();
}

void Shard::Park() {
  common::MutexLock lock(&wake_mu_);
  if (stop_.load(std::memory_order_relaxed)) return;
  parked_.store(true, std::memory_order_relaxed);
  // Producers that pushed just before seeing parked_ may skip the doorbell;
  // the bounded wait keeps that race harmless (one extra millisecond).
  wake_cv_.WaitFor(lock, std::chrono::milliseconds(1));
  parked_.store(false, std::memory_order_relaxed);
}

}  // namespace twigm::serve
