#include "serve/subscription_registry.h"

#include <algorithm>

#include "xpath/query_tree.h"

namespace twigm::serve {

SubscriptionRegistry::SubscriptionRegistry(int num_shards)
    : num_shards_(num_shards),
      take_all_first_epoch_(static_cast<size_t>(num_shards), 0),
      shard_query_counts_(static_cast<size_t>(num_shards), 0),
      shard_changes_(static_cast<size_t>(num_shards)) {}

Result<SubscriptionId> SubscriptionRegistry::Subscribe(
    const std::string& query) {
  // Parse outside the lock: validation is the expensive part, and a query
  // that fails here must leave no trace in the registry.
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  if (!tree.ok()) return tree.status();
  const xpath::QueryNode* first = tree.value().root();
  const bool wildcard_first = first->is_wildcard;
  const std::string first_name = first->name;

  common::MutexLock lock(&mu_);
  const uint64_t epoch = ++epoch_;
  const int shard = AssignShard(wildcard_first, first_name, epoch);
  ++shard_query_counts_[shard];
  shard_changes_[shard].push_back(epoch);
  subs_.push_back(Sub{query, shard, epoch, kNeverEpoch});
  return static_cast<SubscriptionId>(subs_.size());
}

int SubscriptionRegistry::AssignShard(bool wildcard_first,
                                      const std::string& first_name,
                                      uint64_t epoch) {
  if (wildcard_first) {
    const int shard = round_robin_;
    round_robin_ = (round_robin_ + 1) % num_shards_;
    if (take_all_first_epoch_[shard] == 0) {
      take_all_first_epoch_[shard] = epoch;
    }
    return shard;
  }
  auto it = name_shards_.find(first_name);
  if (it != name_shards_.end()) return it->second.shard;
  // Fresh first-step name: least-loaded shard keeps the partition
  // balanced while same-name queries still share one trie trunk.
  const int shard =
      static_cast<int>(std::min_element(shard_query_counts_.begin(),
                                        shard_query_counts_.end()) -
                       shard_query_counts_.begin());
  name_shards_.emplace(first_name, NameEntry{shard, epoch});
  return shard;
}

Status SubscriptionRegistry::Unsubscribe(SubscriptionId id) {
  common::MutexLock lock(&mu_);
  if (id == 0 || id > subs_.size()) {
    return Status::InvalidArgument("unknown subscription id");
  }
  Sub& sub = subs_[id - 1];
  if (sub.unsub_epoch != kNeverEpoch) {
    return Status::InvalidArgument("subscription already unsubscribed");
  }
  sub.unsub_epoch = ++epoch_;
  ++unsubs_;
  shard_changes_[sub.shard].push_back(sub.unsub_epoch);
  return Status::Ok();
}

uint64_t SubscriptionRegistry::CurrentEpoch() const {
  common::MutexLock lock(&mu_);
  return epoch_;
}

uint64_t SubscriptionRegistry::TakeAllMask(uint64_t epoch) const {
  common::MutexLock lock(&mu_);
  uint64_t mask = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const uint64_t first = take_all_first_epoch_[s];
    if (first != 0 && first <= epoch) mask |= uint64_t{1} << s;
  }
  return mask;
}

uint64_t SubscriptionRegistry::MaskForTag(std::string_view tag,
                                          uint64_t epoch) const {
  common::MutexLock lock(&mu_);
  auto it = name_shards_.find(std::string(tag));
  if (it == name_shards_.end() || it->second.first_epoch > epoch) return 0;
  return uint64_t{1} << it->second.shard;
}

std::vector<SubscriptionRegistry::ShardQuery> SubscriptionRegistry::ShardSet(
    int shard, uint64_t epoch) const {
  common::MutexLock lock(&mu_);
  std::vector<ShardQuery> out;
  for (size_t i = 0; i < subs_.size(); ++i) {
    const Sub& sub = subs_[i];
    if (sub.shard != shard) continue;
    if (sub.sub_epoch > epoch || sub.unsub_epoch <= epoch) continue;
    out.push_back(ShardQuery{static_cast<SubscriptionId>(i + 1), sub.query});
  }
  return out;
}

uint64_t SubscriptionRegistry::ShardLastChange(int shard,
                                               uint64_t epoch) const {
  common::MutexLock lock(&mu_);
  const std::vector<uint64_t>& changes = shard_changes_[shard];
  auto it = std::upper_bound(changes.begin(), changes.end(), epoch);
  return it == changes.begin() ? 0 : *(it - 1);
}

size_t SubscriptionRegistry::active_count() const {
  common::MutexLock lock(&mu_);
  size_t n = 0;
  for (const Sub& sub : subs_) n += sub.unsub_epoch == kNeverEpoch ? 1 : 0;
  return n;
}

uint64_t SubscriptionRegistry::subscribe_count() const {
  common::MutexLock lock(&mu_);
  return subs_.size();
}

uint64_t SubscriptionRegistry::unsubscribe_count() const {
  common::MutexLock lock(&mu_);
  return unsubs_;
}

}  // namespace twigm::serve
