// One worker shard of the subscription service: a thread that owns the
// event-fed FilterEngines for its slice of the query set (one engine per
// attached stream session, all compiled from the same shard-local query
// list) and drains the per-session SPSC rings.
//
// The shard thread is the *only* thread that touches its engines, its
// engine-local TagInterner, and its session states; everything shared with
// the control/session threads goes through atomics (ShardCounters, channel
// acks), the registry mutex (folds, off the per-event path), or the
// DeliveryHub mutex (batch flushes).

#ifndef TWIGM_SERVE_SHARD_H_
#define TWIGM_SERVE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/evaluator.h"
#include "filter/filter_engine.h"
#include "serve/event_record.h"
#include "serve/notification.h"
#include "serve/serve_stats.h"
#include "serve/spsc_ring.h"
#include "serve/subscription_registry.h"
#include "xml/tag_interner.h"

namespace twigm::analysis {
class DtdStructure;
}  // namespace twigm::analysis

namespace twigm::serve {

/// The producer/consumer pair for one (stream, shard) edge: the stream's
/// routing session pushes EventRecords, the shard worker pops them, and the
/// two acknowledgment atomics implement the document barrier
/// (ServerStream::FinishDocument) and the detach handshake (~ServerStream).
struct SessionChannel {
  SessionChannel(uint64_t stream, size_t ring_capacity)
      : stream_id(stream), ring(ring_capacity) {}

  const uint64_t stream_id;
  SpscRing<EventRecord> ring;
  /// Bumped by the shard after processing each kEndDocument marker.
  std::atomic<uint64_t> docs_finished{0};
  /// Set by the shard after processing kCloseSession.
  std::atomic<bool> closed{false};
};

/// Delivery plumbing shared by every shard, owned by SubscriptionServer:
/// the Poll() queue (or the caller's batch callback), the batch/latency
/// histograms, and the condition variable that document barriers and close
/// handshakes sleep on.
struct DeliveryHub {
  explicit DeliveryHub(size_t batch_capacity_in);

  const size_t batch_capacity;
  /// When set, batches are handed to this callback *on the shard thread*
  /// instead of being queued for Poll(). Written once, before the shard
  /// workers start; never mutated afterwards (so reads need no lock).
  std::function<void(std::vector<Notification>&&)> on_batch;

  common::Mutex mu;
  /// Flushed notifications awaiting Poll().
  std::vector<Notification> pending TWIGM_GUARDED_BY(mu);

  AtomicHistogram batch_size;
  AtomicHistogram notify_latency_us;

  common::Mutex barrier_mu;
  common::CondVar barrier_cv;

  /// Wakes every thread blocked in WaitBarrier (shards call this after
  /// bumping a channel's docs_finished / closed ack).
  void NotifyBarrier() TWIGM_EXCLUDES(barrier_mu);
  /// Blocks until `pred()` (which must read only atomics) holds.
  void WaitBarrier(const std::function<bool()>& pred)
      TWIGM_EXCLUDES(barrier_mu);
};

class Shard {
 public:
  /// `dtd` (may be null): DTD summary used to compile earliest-decision
  /// tables into each folded engine when engine_options enables them. Not
  /// owned; must outlive the shard.
  Shard(int index, SubscriptionRegistry* registry, DeliveryHub* hub,
        core::EvaluatorOptions engine_options,
        const analysis::DtdStructure* dtd = nullptr);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void Start();
  void Stop();

  /// Hands a new stream session to the worker (any thread). Records may be
  /// pushed into the channel's ring immediately; the worker adopts it on
  /// its next loop.
  void Attach(std::shared_ptr<SessionChannel> channel);

  /// Producer doorbell: wakes the worker if it is parked.
  void Wake();

  const ShardCounters& counters() const { return counters_; }
  int index() const { return index_; }

 private:
  struct SessionState;

  // Tags engine results with the owning session.
  class SessionSink : public core::MultiQueryResultSink {
   public:
    SessionSink(Shard* shard, SessionState* state)
        : shard_(shard), state_(state) {}
    void OnResult(size_t query_index, const core::MatchInfo& match) override {
      shard_->OnMatch(*state_, query_index, match);
    }

   private:
    Shard* shard_;
    SessionState* state_;
  };

  struct SessionState {
    std::shared_ptr<SessionChannel> chan;
    /// Engine-local tag dictionary: persists across engine rebuilds so
    /// sym_map entries (session symbol -> local symbol) stay valid.
    xml::TagInterner interner;
    std::unique_ptr<SessionSink> sink;
    std::unique_ptr<filter::FilterEngine> engine;
    /// Engine query_index -> subscription id, parallel to the engine's set.
    std::vector<SubscriptionId> query_ids;
    std::vector<xml::SymbolId> sym_map;
    std::vector<xml::Attribute> attr_scratch;
    /// Registry change epoch the current engine was folded at; kNeverEpoch
    /// = never folded (forces the first fold).
    uint64_t built_change_epoch = kNeverEpoch;
    bool closed = false;
  };

  struct PendingNotification {
    Notification notification;
    uint64_t enqueue_ns = 0;
  };

  void Run();
  void AdoptPending();
  bool DrainSession(SessionState& state);
  void Dispatch(SessionState& state, EventRecord& rec);
  void FoldSubscriptions(SessionState& state, uint64_t route_epoch);
  void OnMatch(SessionState& state, size_t query_index,
               const core::MatchInfo& match);
  void FlushBatch();
  void Park();

  const int index_;
  SubscriptionRegistry* registry_;
  DeliveryHub* hub_;
  core::EvaluatorOptions engine_options_;
  const analysis::DtdStructure* dtd_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> parked_{false};
  /// Serializes the park/wake handshake: Park re-checks stop_ and sets
  /// parked_ under this lock so a Stop or Wake between the check and the
  /// wait cannot be lost.
  common::Mutex wake_mu_;
  common::CondVar wake_cv_;

  common::Mutex attach_mu_;
  std::vector<std::shared_ptr<SessionChannel>> pending_attach_
      TWIGM_GUARDED_BY(attach_mu_);

  // Worker-thread-only state.
  std::vector<std::unique_ptr<SessionState>> sessions_;
  std::vector<PendingNotification> batch_;

  ShardCounters counters_;
};

}  // namespace twigm::serve

#endif  // TWIGM_SERVE_SHARD_H_
