#include "serve/server.h"

#include <bit>
#include <string>
#include <thread>
#include <utility>

namespace twigm::serve {

// ---------------------------------------------------------------------------
// ServerStream

ServerStream::ServerStream(SubscriptionServer* server, uint64_t stream_id)
    : server_(server),
      stream_id_(stream_id),
      driver_(this),
      parser_(&driver_, [&] {
        // The router needs symbols on every token for its mask cache.
        xml::SaxParserOptions sax = server->options_.engine_options.sax;
        sax.intern_tags = true;
        return sax;
      }()) {
  parser_.set_offset_slot(&offset_);
  channels_.reserve(server_->shards_.size());
  for (std::unique_ptr<Shard>& shard : server_->shards_) {
    auto chan = std::make_shared<SessionChannel>(
        stream_id_, server_->options_.ring_capacity);
    shard->Attach(chan);
    channels_.push_back(std::move(chan));
  }
}

ServerStream::~ServerStream() {
  for (size_t s = 0; s < channels_.size(); ++s) {
    EventRecord* rec = BlockingBeginPush(static_cast<int>(s));
    rec->kind = EventRecord::Kind::kCloseSession;
    channels_[s]->ring.CommitPush();
    server_->shards_[s]->Wake();
  }
  server_->hub_.WaitBarrier([this] {
    for (const std::shared_ptr<SessionChannel>& chan : channels_) {
      // Acquire-consume the shard's teardown of this session's state.
      // pairs-with: shard.cc:Shard::Dispatch
      if (!chan->closed.load(std::memory_order_acquire)) return false;
    }
    return true;
  });
}

Status ServerStream::Consume(const xml::InputChunk& chunk) {
  if (!doc_open_) BeginDocument();
  if (!chunk.last) return parser_.Consume(chunk);
  // A last chunk is the document boundary: deliver its bytes, then run the
  // FinishDocument barrier (which consumes the end-of-input marker itself).
  Status s = parser_.Consume({chunk.bytes, false});
  if (!s.ok()) {
    // Still run the boundary so the stream is reusable afterwards.
    (void)FinishDocument();
    return s;
  }
  return FinishDocument();
}

Status ServerStream::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

Status ServerStream::FinishDocument() {
  if (!doc_open_) {
    return Status::InvalidArgument("no document in progress on this stream");
  }
  Status finish = parser_.Consume({std::string_view(), true});  // fires EndDocument through the driver
  if (!finish.ok()) {
    // Poisoned document: shards never see an end marker for it, so close
    // the window explicitly to keep the barrier accounting in step.
    PushToAll(EventRecord::Kind::kEndDocument, 0);
    open_masks_.clear();
  }
  ++docs_;
  server_->hub_.WaitBarrier([this] {
    for (const std::shared_ptr<SessionChannel>& chan : channels_) {
      // Acquire-consume the shard's flushed matches for this document.
      // pairs-with: shard.cc:Shard::Dispatch
      if (chan->docs_finished.load(std::memory_order_acquire) < docs_) {
        return false;
      }
    }
    return true;
  });
  parser_.Reset();
  driver_.Reset();
  doc_open_ = false;
  return finish;
}

void ServerStream::BeginDocument() {
  route_epoch_ = server_->registry_.CurrentEpoch();
  take_all_mask_ = server_->registry_.TakeAllMask(route_epoch_);
  ++doc_gen_;
  PushToAll(EventRecord::Kind::kStartDocument, route_epoch_);
  doc_open_ = true;
}

uint64_t ServerStream::MaskFor(const xml::TagToken& tag) {
  if (tag.symbol == xml::kNoSymbol) {
    return take_all_mask_ |
           server_->registry_.MaskForTag(tag.text, route_epoch_);
  }
  if (mask_cache_.size() <= tag.symbol) {
    mask_cache_.resize(tag.symbol + 1);
  }
  MaskCacheEntry& entry = mask_cache_[tag.symbol];
  if (entry.doc_gen != doc_gen_) {
    entry.mask = server_->registry_.MaskForTag(tag.text, route_epoch_);
    entry.doc_gen = doc_gen_;
  }
  return take_all_mask_ | entry.mask;
}

EventRecord* ServerStream::BlockingBeginPush(int shard) {
  SpscRing<EventRecord>& ring = channels_[shard]->ring;
  EventRecord* rec;
  while ((rec = ring.BeginPush()) == nullptr) {
    // Full ring: the worker is behind (or parked in the instant before the
    // ring filled) — ring the doorbell and give it the core.
    server_->shards_[shard]->Wake();
    std::this_thread::yield();
  }
  return rec;
}

void ServerStream::PushToAll(EventRecord::Kind kind, uint64_t route_epoch) {
  for (size_t s = 0; s < channels_.size(); ++s) {
    EventRecord* rec = BlockingBeginPush(static_cast<int>(s));
    rec->kind = kind;
    rec->route_epoch = route_epoch;
    rec->byte_offset = offset_;
    channels_[s]->ring.CommitPush();
    server_->shards_[s]->Wake();
  }
}

void ServerStream::StartElement(const xml::TagToken& tag, int level,
                                xml::NodeId id,
                                const std::vector<xml::Attribute>& attrs) {
  const uint64_t parent = open_masks_.empty() ? 0 : open_masks_.back();
  const uint64_t mask = parent | MaskFor(tag);
  open_masks_.push_back(mask);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int s = std::countr_zero(rest);
    EventRecord* rec = BlockingBeginPush(s);
    rec->kind = EventRecord::Kind::kStartElement;
    rec->level = level;
    rec->id = id;
    rec->symbol = tag.symbol;
    rec->byte_offset = offset_;
    rec->tag.assign(tag.text);
    rec->SetAttributes(attrs);
    channels_[s]->ring.CommitPush();
    server_->shards_[s]->Wake();
  }
}

void ServerStream::EndElement(const xml::TagToken& tag, int level) {
  const uint64_t mask = open_masks_.back();
  open_masks_.pop_back();
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int s = std::countr_zero(rest);
    EventRecord* rec = BlockingBeginPush(s);
    rec->kind = EventRecord::Kind::kEndElement;
    rec->level = level;
    rec->symbol = tag.symbol;
    rec->byte_offset = offset_;
    rec->tag.assign(tag.text);
    channels_[s]->ring.CommitPush();
    server_->shards_[s]->Wake();
  }
}

void ServerStream::Text(std::string_view text, int level) {
  const uint64_t mask = open_masks_.empty() ? 0 : open_masks_.back();
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int s = std::countr_zero(rest);
    EventRecord* rec = BlockingBeginPush(s);
    rec->kind = EventRecord::Kind::kText;
    rec->level = level;
    rec->byte_offset = offset_;
    rec->text.assign(text);
    channels_[s]->ring.CommitPush();
    server_->shards_[s]->Wake();
  }
}

void ServerStream::EndDocument() {
  PushToAll(EventRecord::Kind::kEndDocument, 0);
}

// ---------------------------------------------------------------------------
// SubscriptionServer

SubscriptionServer::SubscriptionServer(Options options)
    : options_(std::move(options)),
      registry_(options_.num_shards),
      hub_(options_.notify_batch) {
  hub_.on_batch = options_.on_batch;
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, &registry_, &hub_, options_.engine_options, options_.dtd));
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->Start();
}

Result<std::unique_ptr<SubscriptionServer>> SubscriptionServer::Create(
    Options options) {
  if (options.num_shards < 1 || options.num_shards > 64) {
    return Status::InvalidArgument(
        "SubscriptionServer: num_shards must be in [1, 64]");
  }
  if (options.ring_capacity < 2) options.ring_capacity = 2;
  return std::unique_ptr<SubscriptionServer>(
      new SubscriptionServer(std::move(options)));
}

SubscriptionServer::~SubscriptionServer() {
  for (std::unique_ptr<Shard>& shard : shards_) shard->Stop();
}

Result<SubscriptionId> SubscriptionServer::Subscribe(
    const std::string& query) {
  return registry_.Subscribe(query);
}

Status SubscriptionServer::Unsubscribe(SubscriptionId id) {
  return registry_.Unsubscribe(id);
}

std::unique_ptr<ServerStream> SubscriptionServer::OpenStream() {
  streams_opened_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = next_stream_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ServerStream>(new ServerStream(this, id));
}

size_t SubscriptionServer::Poll(std::vector<Notification>* out) {
  common::MutexLock lock(&hub_.mu);
  const size_t n = hub_.pending.size();
  if (n == 0) return 0;
  if (out->empty()) {
    out->swap(hub_.pending);
  } else {
    out->insert(out->end(), hub_.pending.begin(), hub_.pending.end());
    hub_.pending.clear();
  }
  return n;
}

// Registered-once export instruments; values refreshed per call.
struct SubscriptionServer::ExportHandles {
  obs::MetricsRegistry* registry = nullptr;
  size_t registered_count = 0;
  obs::Counter* subscribes = nullptr;
  obs::Counter* unsubscribes = nullptr;
  obs::Counter* active = nullptr;
  obs::Counter* streams_opened = nullptr;
  struct PerShard {
    obs::Counter* events = nullptr;
    obs::Counter* start_events = nullptr;
    obs::Counter* matches = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* rebuilds = nullptr;
    obs::Counter* documents = nullptr;
    obs::Counter* ring_depth_peak = nullptr;
  };
  std::vector<PerShard> shards;
  struct Hist {
    obs::Counter* count = nullptr;
    obs::Counter* sum = nullptr;
    obs::Counter* max = nullptr;
    std::vector<obs::Counter*> buckets;
  };
  Hist batch_size;
  Hist latency;

  static void RegisterHist(obs::MetricsRegistry* registry,
                           const std::string& prefix,
                           const AtomicHistogram& hist, Hist* out) {
    out->count = registry->RegisterCounter(prefix + ".count");
    out->sum = registry->RegisterCounter(prefix + ".sum");
    out->max = registry->RegisterCounter(prefix + ".max");
    out->buckets.clear();
    for (uint64_t bound : hist.bounds()) {
      out->buckets.push_back(
          registry->RegisterCounter(prefix + ".le." + std::to_string(bound)));
    }
    out->buckets.push_back(registry->RegisterCounter(prefix + ".le.inf"));
  }

  static void RefreshHist(const AtomicHistogram& hist, Hist* out) {
    out->count->Set(hist.count());
    out->sum->Set(hist.sum());
    out->max->Set(hist.max());
    for (size_t i = 0; i < out->buckets.size(); ++i) {
      out->buckets[i]->Set(hist.bucket(i));
    }
  }
};

void SubscriptionServer::ExportMetrics(obs::MetricsRegistry* registry) const {
  if (export_ == nullptr || export_->registry != registry ||
      registry->instrument_count() < export_->registered_count) {
    export_ = std::make_unique<ExportHandles>();
    export_->registry = registry;
    export_->subscribes = registry->RegisterCounter("serve.subscribes");
    export_->unsubscribes = registry->RegisterCounter("serve.unsubscribes");
    export_->active = registry->RegisterCounter("serve.active_subscriptions");
    export_->streams_opened =
        registry->RegisterCounter("serve.streams_opened");
    for (size_t i = 0; i < shards_.size(); ++i) {
      const std::string prefix = "serve.shard" + std::to_string(i);
      ExportHandles::PerShard handles;
      handles.events = registry->RegisterCounter(prefix + ".events");
      handles.start_events =
          registry->RegisterCounter(prefix + ".start_events");
      handles.matches = registry->RegisterCounter(prefix + ".matches");
      handles.batches = registry->RegisterCounter(prefix + ".batches");
      handles.rebuilds =
          registry->RegisterCounter(prefix + ".engine_rebuilds");
      handles.documents = registry->RegisterCounter(prefix + ".documents");
      handles.ring_depth_peak =
          registry->RegisterCounter(prefix + ".ring_depth_peak");
      export_->shards.push_back(handles);
    }
    ExportHandles::RegisterHist(registry, "serve.batch_size", hub_.batch_size,
                                &export_->batch_size);
    ExportHandles::RegisterHist(registry, "serve.notify_latency_us",
                                hub_.notify_latency_us, &export_->latency);
    export_->registered_count = registry->instrument_count();
  }
  export_->subscribes->Set(registry_.subscribe_count());
  export_->unsubscribes->Set(registry_.unsubscribe_count());
  export_->active->Set(registry_.active_count());
  export_->streams_opened->Set(
      streams_opened_.load(std::memory_order_relaxed));
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardCounters& c = shards_[i]->counters();
    ExportHandles::PerShard& h = export_->shards[i];
    h.events->Set(c.events.load(std::memory_order_relaxed));
    h.start_events->Set(c.start_events.load(std::memory_order_relaxed));
    h.matches->Set(c.matches.load(std::memory_order_relaxed));
    h.batches->Set(c.batches.load(std::memory_order_relaxed));
    h.rebuilds->Set(c.engine_rebuilds.load(std::memory_order_relaxed));
    h.documents->Set(c.documents.load(std::memory_order_relaxed));
    h.ring_depth_peak->Set(c.ring_depth_peak.load(std::memory_order_relaxed));
  }
  ExportHandles::RefreshHist(hub_.batch_size, &export_->batch_size);
  ExportHandles::RefreshHist(hub_.notify_latency_us, &export_->latency);
}

}  // namespace twigm::serve
