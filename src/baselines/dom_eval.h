// Non-streaming baseline: evaluates the query over a fully materialized DOM
// with random access, in the style of the main-memory engines the paper
// compares against (Galax, XMLTaskForce). Also the correctness oracle for
// differential tests: its recursion + memoization is an independent,
// obviously-polynomial implementation of XP{/,//,*,[]} semantics.
//
// Memoization of "does node n satisfy query subtree q" keeps evaluation
// polynomial (the XMLTaskForce property); memory is proportional to
// |D| × |Q| on top of the DOM itself — exactly the footprint the paper's
// Figs. 8/10 show growing super-linearly for non-streaming engines.

#ifndef TWIGM_BASELINES_DOM_EVAL_H_
#define TWIGM_BASELINES_DOM_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "xml/dom.h"
#include "xpath/query_tree.h"

namespace twigm::baselines {

/// Memory accounting for a DomEvaluator run.
struct DomEvalStats {
  uint64_t dom_bytes = 0;        // materialized document
  uint64_t memo_bytes = 0;       // memo tables
  uint64_t subtree_checks = 0;   // SatisfiesSubtree invocations
};

/// Evaluates `query` over `doc`, returning result node ids in document
/// order. `stats` is optional.
Result<std::vector<xml::NodeId>> EvaluateOnDom(const xpath::QueryTree& query,
                                               const xml::DomDocument& doc,
                                               DomEvalStats* stats = nullptr);

/// Convenience: parse `document` into a DOM, then evaluate. This is the
/// whole-document-in-memory workflow of the non-streaming engines.
Result<std::vector<xml::NodeId>> EvaluateOnDom(const xpath::QueryTree& query,
                                               std::string_view document,
                                               DomEvalStats* stats = nullptr);

}  // namespace twigm::baselines

#endif  // TWIGM_BASELINES_DOM_EVAL_H_
