#include "baselines/lazy_dfa.h"

#include "core/machine_builder.h"

namespace twigm::baselines {

Result<std::unique_ptr<LazyDfaEngine>> LazyDfaEngine::Create(
    const xpath::QueryTree& query, core::MatchObserver* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("LazyDfaEngine requires a result sink");
  }
  if (query.has_predicates() || query.has_value_tests()) {
    return Status::NotSupported(
        "the lazy-DFA engine evaluates XP{/,//,*} only (no predicates)");
  }
  Result<core::MachineGraph> graph = core::MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();

  auto engine = std::unique_ptr<LazyDfaEngine>(new LazyDfaEngine());
  engine->sink_ = sink;

  // Compile the chain into an NFA. State 0 is the initial (document-root)
  // state; each chain step contributes k-1 wildcard hops plus the final
  // labeled hop; '≥' edges put a wildcard self-loop on the hop's source.
  auto add_state = [&]() -> int {
    engine->nfa_self_loop_.push_back(false);
    engine->nfa_out_.emplace_back();
    return static_cast<int>(engine->nfa_self_loop_.size()) - 1;
  };
  add_state();  // state 0
  int cur = 0;
  for (const core::MachineNode* v = graph.value().root(); v != nullptr;
       v = v->children.empty() ? nullptr : v->children.front()) {
    for (int hop = 1; hop < v->edge.distance; ++hop) {
      const int next = add_state();
      engine->nfa_out_[cur].push_back({"", next});
      cur = next;
    }
    if (!v->edge.exact) engine->nfa_self_loop_[cur] = true;
    const int next = add_state();
    engine->nfa_out_[cur].push_back({v->is_wildcard ? "" : v->label, next});
    cur = next;
    if (engine->nfa_self_loop_.size() > 63) {
      return Status::NotSupported("query too large for the lazy-DFA engine");
    }
  }
  engine->accept_mask_ = uint64_t{1} << cur;
  engine->initial_state_ = engine->InternDfaState(uint64_t{1} << 0);
  engine->run_stack_.push_back(engine->initial_state_);
  return engine;
}

int LazyDfaEngine::InternDfaState(uint64_t nfa_set) {
  auto it = dfa_index_.find(nfa_set);
  if (it != dfa_index_.end()) return it->second;
  DfaState state;
  state.nfa_set = nfa_set;
  state.accepting = (nfa_set & accept_mask_) != 0;
  const int id = static_cast<int>(dfa_.size());
  dfa_.push_back(std::move(state));
  dfa_index_.emplace(nfa_set, id);
  ++stats_.dfa_states;
  return id;
}

int LazyDfaEngine::Step(int from, std::string_view tag) {
  DfaState& state = dfa_[from];
  auto it = state.transitions.find(std::string(tag));
  if (it != state.transitions.end()) return it->second;

  uint64_t next_set = 0;
  for (int s = 0; s < static_cast<int>(nfa_self_loop_.size()); ++s) {
    if ((state.nfa_set & (uint64_t{1} << s)) == 0) continue;
    if (nfa_self_loop_[s]) next_set |= uint64_t{1} << s;
    for (const NfaTransition& t : nfa_out_[s]) {
      if (t.label.empty() || t.label == tag) {
        next_set |= uint64_t{1} << t.target;
      }
    }
  }
  const int next = InternDfaState(next_set);
  // `state` may be dangling after InternDfaState (vector growth): re-index.
  dfa_[from].transitions.emplace(std::string(tag), next);
  ++stats_.dfa_transitions;
  return next;
}

void LazyDfaEngine::StartElement(const xml::TagToken& tag, int level,
                                 xml::NodeId id,
                                 const std::vector<xml::Attribute>& attrs) {
  (void)level;
  (void)attrs;
  const int next = Step(run_stack_.back(), tag.text);
  run_stack_.push_back(next);
  if (run_stack_.size() > stats_.peak_stack_depth) {
    stats_.peak_stack_depth = run_stack_.size();
  }
  if (dfa_[next].accepting) {
    sink_->OnResult(core::MatchInfo{id});
    ++stats_.results;
  }
}

void LazyDfaEngine::EndElement(const xml::TagToken& tag, int level) {
  (void)tag;
  (void)level;
  run_stack_.pop_back();
}

void LazyDfaEngine::EndDocument() {}

void LazyDfaEngine::Reset() {
  run_stack_.clear();
  run_stack_.push_back(initial_state_);
  stats_.results = 0;
  stats_.peak_stack_depth = 0;
  // The DFA cache is retained deliberately: it belongs to the compiled
  // query, not to a document run.
}

uint64_t LazyDfaEngine::ApproximateMemoryBytes() const {
  uint64_t total = 0;
  for (const DfaState& s : dfa_) {
    total += sizeof(DfaState);
    for (const auto& [tag, target] : s.transitions) {
      (void)target;
      total += sizeof(int) + tag.capacity() + 32;  // hash-node overhead
    }
  }
  total += run_stack_.capacity() * sizeof(int);
  return total;
}

}  // namespace twigm::baselines
