#include "baselines/naive_enum.h"

#include "core/value_test.h"

namespace twigm::baselines {

Result<std::unique_ptr<NaiveEnumEngine>> NaiveEnumEngine::Create(
    const xpath::QueryTree& query, core::MatchObserver* sink,
    NaiveEnumOptions options) {
  if (sink == nullptr) {
    return Status::InvalidArgument("NaiveEnumEngine requires a result sink");
  }
  Result<core::MachineGraph> graph = core::MachineGraph::Build(query);
  if (!graph.ok()) return graph.status();
  for (const auto& node : graph.value().nodes()) {
    if (node->has_value_test) {
      return Status::NotSupported(
          "the enumeration engine does not support element value tests");
    }
  }
  auto engine = std::unique_ptr<NaiveEnumEngine>(new NaiveEnumEngine());
  engine->graph_ = std::move(graph).value();
  engine->sink_ = sink;
  engine->options_ = options;
  return engine;
}

void NaiveEnumEngine::StartElement(const xml::TagToken& tag, int level,
                                   xml::NodeId id,
                                   const std::vector<xml::Attribute>& attrs) {
  if (!status_.ok()) return;

  const size_t node_count = graph_.node_count();
  auto complete_or_store = [&](Match&& m) {
    ++stats_.matches_created;
    if (IsComplete(m)) {
      ++stats_.matches_completed;
      const xml::NodeId sol_id = m.ids[graph_.return_node()->id];
      if (emitted_.insert(sol_id).second) {
        sink_->OnResult(core::MatchInfo{sol_id});
        ++stats_.results;
      }
      return;  // complete matches need no further tracking
    }
    matches_.push_back(std::move(m));
  };

  for (const auto& node : graph_.nodes()) {
    const core::MachineNode* v = node.get();
    if (!v->MatchesTag(tag)) continue;

    // Attribute tests gate assignment: a pattern match through an element
    // failing them can never exist.
    bool attrs_ok = true;
    for (const core::AttributeTest& test : v->attr_tests) {
      bool found = false;
      std::string_view value;
      for (const xml::Attribute& a : attrs) {
        if (a.name == test.name) {
          found = true;
          value = a.value;
          break;
        }
      }
      bool pass = found;
      if (pass && test.has_value_test) {
        pass = core::EvalValueTest(value, test.op, test.literal,
                                   test.literal_is_number);
      }
      if (!pass) {
        attrs_ok = false;
        break;
      }
    }
    if (!attrs_ok) continue;

    if (v->parent == nullptr) {
      if (!v->edge.Satisfies(level)) continue;
      Match m;
      m.ids.assign(node_count, 0);
      m.levels.assign(node_count, -1);
      m.ids[v->id] = id;
      m.levels[v->id] = level;
      m.assigned = 1;
      complete_or_store(std::move(m));
    } else {
      // Fork every live match whose parent assignment can host this
      // element. The snapshot bound is taken per machine node so that forks
      // created by an ancestor node in this same event are extendable (an
      // element may be assigned to several query nodes of one match).
      const size_t snapshot = matches_.size();
      stats_.work += snapshot;
      for (size_t i = 0; i < snapshot; ++i) {
        const Match& m = matches_[i];
        if (m.ids[v->id] != 0) continue;
        const int parent_level = m.levels[v->parent->id];
        if (parent_level < 0 || !v->edge.Satisfies(level - parent_level)) {
          continue;
        }
        Match fork = m;
        fork.ids[v->id] = id;
        fork.levels[v->id] = level;
        ++fork.assigned;
        complete_or_store(std::move(fork));
      }
    }
    if (matches_.size() > options_.max_live_matches) {
      status_ = Status::ResourceExhausted(
          "explicit pattern-match enumeration exceeded " +
          std::to_string(options_.max_live_matches) + " live matches");
      matches_.clear();
      return;
    }
    if (options_.max_work != 0 && stats_.work > options_.max_work) {
      status_ = Status::ResourceExhausted(
          "explicit pattern-match enumeration exceeded the work budget");
      matches_.clear();
      return;
    }
  }
  if (matches_.size() > stats_.peak_live_matches) {
    stats_.peak_live_matches = matches_.size();
  }
  active_ids_.push_back(id);
}

void NaiveEnumEngine::EndElement(const xml::TagToken& tag, int level) {
  (void)tag;
  (void)level;
  if (!status_.ok()) return;
  const xml::NodeId closing_id = active_ids_.back();
  active_ids_.pop_back();

  // Garbage-collect matches that can no longer complete: some unassigned
  // query node's nearest assigned ancestor is the element closing now, so
  // no future element can fill it.
  stats_.work += matches_.size();
  if (options_.max_work != 0 && stats_.work > options_.max_work) {
    status_ = Status::ResourceExhausted(
        "explicit pattern-match enumeration exceeded the work budget");
    matches_.clear();
    return;
  }
  size_t keep = 0;
  for (size_t i = 0; i < matches_.size(); ++i) {
    const Match& m = matches_[i];
    bool dead = false;
    for (const auto& node : graph_.nodes()) {
      const core::MachineNode* v = node.get();
      if (m.ids[v->id] != 0) continue;  // assigned
      const core::MachineNode* anc = v->parent;
      while (anc != nullptr && m.ids[anc->id] == 0) anc = anc->parent;
      if (anc != nullptr && m.ids[anc->id] == closing_id) {
        dead = true;
        break;
      }
    }
    if (!dead) {
      if (keep != i) matches_[keep] = std::move(matches_[i]);
      ++keep;
    }
  }
  matches_.resize(keep);
}

void NaiveEnumEngine::EndDocument() {}

void NaiveEnumEngine::Reset() {
  matches_.clear();
  emitted_.clear();
  active_ids_.clear();
  stats_ = NaiveEnumStats();
  status_ = Status::Ok();
}

uint64_t NaiveEnumEngine::ApproximateMemoryBytes() const {
  const uint64_t per_match =
      sizeof(Match) +
      graph_.node_count() * (sizeof(xml::NodeId) + sizeof(int));
  return matches_.size() * per_match + emitted_.size() * sizeof(xml::NodeId);
}

}  // namespace twigm::baselines
