// XAOS-style baseline [6]: a streaming *input* engine with blocking
// *output*. It builds a matching structure (here: the full element tree
// with levels and ids) while the stream passes, and only materializes query
// results by traversing that structure when the document ends. The paper
// contrasts this with TwigM, which produces results incrementally
// (section 6: "XAOS produces query results by traversing the matching
// structure at the end of the stream. In contrast, TwigM can produce
// results incrementally."). bench_latency measures exactly that contrast.

#ifndef TWIGM_BASELINES_EOS_ENGINE_H_
#define TWIGM_BASELINES_EOS_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/result_sink.h"
#include "xml/dom.h"
#include "xml/sax_event.h"
#include "xpath/query_tree.h"

namespace twigm::baselines {

struct EosEngineStats {
  uint64_t buffered_nodes = 0;   // matching-structure size at end of stream
  uint64_t buffered_bytes = 0;   // its approximate heap footprint
  uint64_t results = 0;
};

/// End-of-stream evaluation engine. Accepts the full XP{/,//,*,[]} fragment
/// (it reuses the memoized tree evaluation of dom_eval).
class EosEngine : public xml::StreamEventSink {
 public:
  /// `sink` must outlive the engine; not owned. The query tree is copied
  /// into the engine (reparsed), so `query` need not outlive it.
  static Result<std::unique_ptr<EosEngine>> Create(std::string_view query,
                                                   core::MatchObserver* sink);

  EosEngine(const EosEngine&) = delete;
  EosEngine& operator=(const EosEngine&) = delete;

  // StreamEventSink: buffers structure; emits nothing until EndDocument.
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void Text(std::string_view text, int level) override;
  void EndDocument() override;

  void Reset();

  /// Set when evaluation at end-of-document failed.
  const Status& status() const { return status_; }
  const EosEngineStats& stats() const { return stats_; }

 private:
  EosEngine() = default;

  xpath::QueryTree query_;
  core::MatchObserver* sink_ = nullptr;
  Status status_;
  EosEngineStats stats_;

  // The matching structure: an element tree built directly from modified
  // SAX events.
  xml::DomAssembler assembler_;
};

}  // namespace twigm::baselines

#endif  // TWIGM_BASELINES_EOS_ENGINE_H_
