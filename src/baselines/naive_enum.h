// Streaming baseline that records query pattern matches EXPLICITLY, the
// strategy of XSQ [25, 26] and TurboXPath [20] that the paper identifies as
// exponential: every element that can extend a partial pattern match forks
// it, so on recursive data with '//' the number of live matches for one
// candidate grows as O((|D|/|Q|)^|Q|).
//
// The engine is exact (it produces the same results as TwigM on the queries
// it supports — no element value tests) but its state is the full set of
// partial pattern matches. A configurable cap aborts the run with
// ResourceExhausted when the match set explodes; the benchmark harness
// reports those aborts the way the paper reports baseline errors/timeouts.

#ifndef TWIGM_BASELINES_NAIVE_ENUM_H_
#define TWIGM_BASELINES_NAIVE_ENUM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/machine_builder.h"
#include "core/result_sink.h"
#include "xml/sax_event.h"
#include "xpath/query_tree.h"

namespace twigm::baselines {

struct NaiveEnumOptions {
  /// Abort with ResourceExhausted when live partial matches exceed this.
  uint64_t max_live_matches = 5'000'000;
  /// Abort when the total number of partial-match visits (extension scans +
  /// garbage-collection scans) exceeds this. Models the paper's "takes too
  /// long" baseline outcomes with a deterministic budget. 0 = unlimited.
  uint64_t max_work = 0;
};

struct NaiveEnumStats {
  uint64_t matches_created = 0;   // partial matches ever forked
  uint64_t matches_completed = 0; // matches that assigned every query node
  uint64_t peak_live_matches = 0;
  uint64_t results = 0;
  uint64_t work = 0;              // total partial-match visits
};

/// The explicit-enumeration engine.
class NaiveEnumEngine : public xml::StreamEventSink {
 public:
  /// Fails with NotSupported for queries with element value tests (the
  /// XSQ-style restriction: predicates are structural or attribute tests).
  static Result<std::unique_ptr<NaiveEnumEngine>> Create(
      const xpath::QueryTree& query, core::MatchObserver* sink,
      NaiveEnumOptions options = NaiveEnumOptions());

  NaiveEnumEngine(const NaiveEnumEngine&) = delete;
  NaiveEnumEngine& operator=(const NaiveEnumEngine&) = delete;

  // StreamEventSink:
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void EndDocument() override;

  void Reset();

  /// Non-OK when the match cap was exceeded mid-stream. Results emitted
  /// before the abort remain valid; later ones are missing.
  const Status& status() const { return status_; }
  const NaiveEnumStats& stats() const { return stats_; }

  /// Approximate bytes held in partial matches.
  uint64_t ApproximateMemoryBytes() const;

 private:
  // A partial pattern match: for each machine node (dense id), the id/level
  // of the element assigned to it, or kUnassigned.
  struct Match {
    std::vector<xml::NodeId> ids;  // per machine node; 0 = unassigned
    std::vector<int> levels;       // parallel; -1 = unassigned
    int assigned = 0;
  };

  NaiveEnumEngine() = default;

  bool IsComplete(const Match& m) const {
    return m.assigned == static_cast<int>(graph_.node_count());
  }

  core::MachineGraph graph_;
  core::MatchObserver* sink_ = nullptr;
  NaiveEnumOptions options_;
  NaiveEnumStats stats_;
  Status status_;

  std::vector<Match> matches_;
  std::vector<xml::NodeId> active_ids_;  // ids of currently open elements
  std::unordered_set<xml::NodeId> emitted_;
};

}  // namespace twigm::baselines

#endif  // TWIGM_BASELINES_NAIVE_ENUM_H_
