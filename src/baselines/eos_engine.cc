#include "baselines/eos_engine.h"

#include "baselines/dom_eval.h"

namespace twigm::baselines {

Result<std::unique_ptr<EosEngine>> EosEngine::Create(std::string_view query,
                                                     core::MatchObserver* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("EosEngine requires a result sink");
  }
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  if (!tree.ok()) return tree.status();
  auto engine = std::unique_ptr<EosEngine>(new EosEngine());
  engine->query_ = std::move(tree).value();
  engine->sink_ = sink;
  return engine;
}

void EosEngine::StartElement(const xml::TagToken& tag, int level,
                             xml::NodeId id,
                             const std::vector<xml::Attribute>& attrs) {
  (void)level;
  (void)id;
  assembler_.StartElement(tag.text, attrs);
}

void EosEngine::EndElement(const xml::TagToken& tag, int level) {
  (void)tag;
  (void)level;
  assembler_.EndElement();
}

void EosEngine::Text(std::string_view text, int level) {
  (void)level;
  assembler_.Text(text);
}

void EosEngine::EndDocument() {
  xml::DomDocument doc = assembler_.TakeDocument();
  stats_.buffered_nodes = doc.size();
  stats_.buffered_bytes = doc.ApproximateMemoryBytes();
  Result<std::vector<xml::NodeId>> results = EvaluateOnDom(query_, doc);
  if (!results.ok()) {
    status_ = results.status();
    return;
  }
  for (xml::NodeId id : results.value()) {
    sink_->OnResult(core::MatchInfo{id});
    ++stats_.results;
  }
}

void EosEngine::Reset() {
  assembler_ = xml::DomAssembler();
  stats_ = EosEngineStats();
  status_ = Status::Ok();
}

}  // namespace twigm::baselines
