// Streaming baseline for XP{/,//,*}: a lazily determinized automaton in the
// style of XMLTK [3]. The linear path is compiled to an NFA (one state per
// step; '//' edges add self-loops, collapsed '*' steps add wildcard
// transitions); at run time the engine keeps a stack of DFA states (sets of
// NFA states) and materializes transitions on demand, caching them per
// (state, tag). Results are emitted at startElement of any element reaching
// an accepting state.
//
// This reproduces the baseline's characteristic behaviour: fastest on
// predicate-free queries, no predicate support at all, and worst-case
// exponential DFA growth when many '*'s and '//'s mix (section 5.2).

#ifndef TWIGM_BASELINES_LAZY_DFA_H_
#define TWIGM_BASELINES_LAZY_DFA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/machine_stats.h"
#include "core/result_sink.h"
#include "xml/sax_event.h"
#include "xpath/query_tree.h"

namespace twigm::baselines {

/// Lazy-DFA statistics (the engine's memory story).
struct LazyDfaStats {
  uint64_t dfa_states = 0;        // materialized DFA states
  uint64_t dfa_transitions = 0;   // cached (state, tag) transitions
  uint64_t peak_stack_depth = 0;  // run-time DFA-state stack
  uint64_t results = 0;
};

/// The lazy-DFA engine. Only accepts linear queries (XP{/,//,*}).
class LazyDfaEngine : public xml::StreamEventSink {
 public:
  /// Fails with NotSupported for queries with predicates/value tests, or
  /// with more than 63 NFA states.
  static Result<std::unique_ptr<LazyDfaEngine>> Create(
      const xpath::QueryTree& query, core::MatchObserver* sink);

  LazyDfaEngine(const LazyDfaEngine&) = delete;
  LazyDfaEngine& operator=(const LazyDfaEngine&) = delete;

  // StreamEventSink:
  void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                    const std::vector<xml::Attribute>& attrs) override;
  void EndElement(const xml::TagToken& tag, int level) override;
  void EndDocument() override;

  void Reset();

  const LazyDfaStats& stats() const { return stats_; }

  /// Approximate bytes held by the DFA cache (for memory figures).
  uint64_t ApproximateMemoryBytes() const;

 private:
  // NFA: state i has optional self-loop (any tag) and labeled/wildcard
  // transitions to other states.
  struct NfaTransition {
    std::string label;  // empty = wildcard (any tag)
    int target = 0;
  };

  // One materialized DFA state: a set of NFA states (bitmask) plus a lazy
  // transition cache keyed by tag.
  struct DfaState {
    uint64_t nfa_set = 0;
    bool accepting = false;
    std::unordered_map<std::string, int> transitions;
  };

  LazyDfaEngine() = default;

  // Returns the id of the DFA state for `nfa_set`, creating it on demand.
  int InternDfaState(uint64_t nfa_set);
  // Computes/looks up the transition from DFA state `from` on `tag`.
  int Step(int from, std::string_view tag);

  std::vector<bool> nfa_self_loop_;                 // per NFA state
  std::vector<std::vector<NfaTransition>> nfa_out_; // per NFA state
  uint64_t accept_mask_ = 0;

  std::vector<DfaState> dfa_;
  std::unordered_map<uint64_t, int> dfa_index_;
  std::vector<int> run_stack_;  // DFA-state ids; bottom = initial state
  int initial_state_ = 0;

  core::MatchObserver* sink_ = nullptr;
  LazyDfaStats stats_;
};

}  // namespace twigm::baselines

#endif  // TWIGM_BASELINES_LAZY_DFA_H_
