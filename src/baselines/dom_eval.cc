#include "baselines/dom_eval.h"

#include <algorithm>

#include "core/value_test.h"

namespace twigm::baselines {

namespace {

using xml::DomDocument;
using xml::DomNode;
using xpath::Axis;
using xpath::QueryNode;

// Evaluator with per-(query node, dom node) memoization of subtree
// satisfaction.
class Evaluator {
 public:
  Evaluator(const xpath::QueryTree& query, const DomDocument& doc)
      : query_(query), doc_(doc) {
    // Memo tables indexed by query-node pre-order index × dom node id.
    memo_.assign(static_cast<size_t>(query.node_count()),
                 std::vector<int8_t>(doc.size() + 1, kUnknown));
    checks_ = 0;
  }

  std::vector<xml::NodeId> Run() {
    // Walk the output path top-down, binding each spine node to document
    // nodes; a visited set per spine position prevents re-expansion.
    std::vector<const QueryNode*> spine;
    for (const QueryNode* q = query_.root(); q != nullptr;) {
      spine.push_back(q);
      const QueryNode* next = nullptr;
      for (const auto& child : q->children) {
        if (child->on_output_path) {
          next = child.get();
          break;
        }
      }
      q = next;
    }

    std::vector<std::vector<char>> visited(
        spine.size(), std::vector<char>(doc_.size() + 1, 0));
    std::vector<xml::NodeId> results;

    // Frontier of (spine position, node) pairs.
    struct Item {
      size_t pos;
      const DomNode* node;
    };
    std::vector<Item> frontier;

    // Seed with bindings of the query root.
    const QueryNode* root_q = spine[0];
    for (const DomNode& n : doc_.nodes()) {
      const bool level_ok = root_q->axis == Axis::kChild ? n.level == 1
                                                         : n.level >= 1;
      if (level_ok && NameMatches(root_q, n) && SatisfiesSubtree(root_q, n)) {
        if (!visited[0][n.id]) {
          visited[0][n.id] = 1;
          frontier.push_back({0, &n});
        }
      }
    }

    while (!frontier.empty()) {
      const Item item = frontier.back();
      frontier.pop_back();
      if (item.pos + 1 == spine.size()) {
        results.push_back(item.node->id);
        continue;
      }
      const QueryNode* next_q = spine[item.pos + 1];
      auto consider = [&](const DomNode* n) {
        if (NameMatches(next_q, *n) && SatisfiesSubtree(next_q, *n) &&
            !visited[item.pos + 1][n->id]) {
          visited[item.pos + 1][n->id] = 1;
          frontier.push_back({item.pos + 1, n});
        }
      };
      if (next_q->axis == Axis::kChild) {
        for (const DomNode* c : item.node->children) consider(c);
      } else {
        ForEachDescendant(item.node, consider);
      }
    }

    std::sort(results.begin(), results.end());
    results.erase(std::unique(results.begin(), results.end()), results.end());
    return results;
  }

  uint64_t memo_bytes() const {
    uint64_t total = 0;
    for (const auto& row : memo_) total += row.size();
    return total;
  }
  uint64_t checks() const { return checks_; }

 private:
  static constexpr int8_t kUnknown = -1;

  static bool NameMatches(const QueryNode* q, const DomNode& n) {
    return q->is_wildcard || q->name == n.tag;
  }

  template <typename Fn>
  static void ForEachDescendant(const DomNode* n, Fn fn) {
    for (const DomNode* c : n->children) {
      fn(c);
      ForEachDescendant(c, fn);
    }
  }

  // Does `n` (already name-matched) satisfy q's predicates (all child
  // subtrees, attribute tests, value test)? Memoized.
  bool SatisfiesSubtree(const QueryNode* q, const DomNode& n) {
    int8_t& memo = memo_[static_cast<size_t>(q->index)][n.id];
    if (memo != kUnknown) return memo != 0;
    ++checks_;
    bool ok = true;
    if (q->has_value_test) {
      ok = core::EvalValueTest(n.text, q->op, q->literal, q->literal_is_number);
    }
    for (const auto& child : q->children) {
      if (!ok) break;
      if (child->is_attribute) {
        const std::string* value = n.FindAttribute(child->name);
        ok = value != nullptr &&
             (!child->has_value_test ||
              core::EvalValueTest(*value, child->op, child->literal,
                                  child->literal_is_number));
      } else if (child->axis == Axis::kChild) {
        ok = false;
        for (const DomNode* c : n.children) {
          if (NameMatches(child.get(), *c) &&
              SatisfiesSubtree(child.get(), *c)) {
            ok = true;
            break;
          }
        }
      } else {
        ok = ExistsDescendantSatisfying(child.get(), &n);
      }
    }
    memo = ok ? 1 : 0;
    return ok;
  }

  bool ExistsDescendantSatisfying(const QueryNode* q, const DomNode* n) {
    for (const DomNode* c : n->children) {
      if (NameMatches(q, *c) && SatisfiesSubtree(q, *c)) return true;
      if (ExistsDescendantSatisfying(q, c)) return true;
    }
    return false;
  }

  const xpath::QueryTree& query_;
  const DomDocument& doc_;
  std::vector<std::vector<int8_t>> memo_;
  uint64_t checks_ = 0;
};

}  // namespace

Result<std::vector<xml::NodeId>> EvaluateOnDom(const xpath::QueryTree& query,
                                               const DomDocument& doc,
                                               DomEvalStats* stats) {
  if (query.root() == nullptr) {
    return Status::InvalidArgument("empty query tree");
  }
  if (query.sol()->is_attribute) {
    return Status::NotSupported(
        "an attribute cannot be the return node of a query");
  }
  Evaluator evaluator(query, doc);
  std::vector<xml::NodeId> results = evaluator.Run();
  if (stats != nullptr) {
    stats->dom_bytes = doc.ApproximateMemoryBytes();
    stats->memo_bytes = evaluator.memo_bytes();
    stats->subtree_checks = evaluator.checks();
  }
  return results;
}

Result<std::vector<xml::NodeId>> EvaluateOnDom(const xpath::QueryTree& query,
                                               std::string_view document,
                                               DomEvalStats* stats) {
  Result<DomDocument> doc = DomDocument::Parse(document);
  if (!doc.ok()) return doc.status();
  return EvaluateOnDom(query, doc.value(), stats);
}

}  // namespace twigm::baselines
