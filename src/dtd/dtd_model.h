// Object model for a (simplified) DTD: element declarations with full
// content models (sequence, choice, repetition, #PCDATA, EMPTY, ANY) and
// attribute-list declarations. This is the input language of the dataset
// generator (src/dtd/dtd_generator.h), our stand-in for IBM's XML Generator
// which the paper drives with the Book DTD.

#ifndef TWIGM_DTD_DTD_MODEL_H_
#define TWIGM_DTD_DTD_MODEL_H_

#include <map>
#include <string>
#include <vector>

namespace twigm::dtd {

/// Repetition suffix on a content particle.
enum class Repeat {
  kOne,       // (no suffix)
  kOptional,  // ?
  kStar,      // *
  kPlus,      // +
};

/// A node of a content-model expression.
struct ContentExpr {
  enum class Kind {
    kElement,   // a child element reference
    kPcdata,    // #PCDATA
    kSequence,  // (a, b, c)
    kChoice,    // (a | b | c)
    kEmpty,     // EMPTY
    kAny,       // ANY
  };

  Kind kind = Kind::kEmpty;
  Repeat repeat = Repeat::kOne;
  std::string name;                   // kind == kElement
  std::vector<ContentExpr> children;  // kSequence / kChoice
};

/// How an attribute's value is declared.
enum class AttrDefault {
  kRequired,  // #REQUIRED
  kImplied,   // #IMPLIED
  kFixed,     // #FIXED "value"
  kValue,     // "value" (default)
};

struct AttrDecl {
  std::string name;
  /// "CDATA", "ID", "IDREF", "NMTOKEN", or "" for an enumerated type.
  std::string type;
  std::vector<std::string> enum_values;  // enumerated types
  AttrDefault default_kind = AttrDefault::kImplied;
  std::string default_value;  // for kFixed / kValue
};

struct ElementDecl {
  std::string name;
  ContentExpr content;
  /// True for mixed content (#PCDATA | a | ...)*.
  bool mixed = false;
};

/// A parsed DTD. The first declared element is the conventional root.
struct Dtd {
  std::map<std::string, ElementDecl> elements;
  std::map<std::string, std::vector<AttrDecl>> attlists;
  std::string first_element;

  const ElementDecl* FindElement(const std::string& name) const {
    auto it = elements.find(name);
    return it == elements.end() ? nullptr : &it->second;
  }
  const std::vector<AttrDecl>* FindAttlist(const std::string& name) const {
    auto it = attlists.find(name);
    return it == attlists.end() ? nullptr : &it->second;
  }
};

}  // namespace twigm::dtd

#endif  // TWIGM_DTD_DTD_MODEL_H_
