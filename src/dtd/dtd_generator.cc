#include "dtd/dtd_generator.h"

#include <algorithm>
#include <map>

#include "xml/xml_writer.h"

namespace twigm::dtd {

namespace {

// Word pool for #PCDATA and CDATA attribute content: a small vocabulary
// makes value predicates selective but satisfiable.
constexpr const char* kWords[] = {
    "data",   "stream",  "query",   "match",   "node",    "stack",
    "twig",   "pattern", "element", "path",    "branch",  "candidate",
    "level",  "xml",     "result",  "predicate", "axis",  "machine",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

class Generator {
 public:
  Generator(const Dtd& dtd, const GeneratorOptions& options)
      : dtd_(dtd), options_(options), rng_(options.seed) {
    ComputeMinDepths();
  }

  Status Emit(const std::string& element, int depth, xml::XmlWriter* w) {
    const ElementDecl* decl = dtd_.FindElement(element);
    if (decl == nullptr) {
      return Status::InvalidArgument("element '" + element +
                                     "' is not declared in the DTD");
    }
    w->Open(element);
    EmitAttributes(element, w);
    if (depth < options_.number_levels) {
      TWIGM_RETURN_IF_ERROR(
          EmitContent(decl->content, decl->mixed, depth, w, false));
    } else if (ElementMinDepth(element) < kInfiniteDepth) {
      // Past the depth cap, close the document *validly*: emit the smallest
      // completion the content model admits (required particles only, the
      // shallowest choice alternative) instead of suppressing children —
      // suppression would violate required particles and break every
      // consumer that trusts DTD validity (the static decision analysis in
      // particular).
      TWIGM_RETURN_IF_ERROR(
          EmitContent(decl->content, decl->mixed, depth, w, true));
    } else if (HasPcdata(decl->content)) {
      // A required cycle: no finite valid subtree exists, so truncation is
      // forced; keep text so these leaves are not all empty.
      w->Text(RandomText());
    }
    w->Close();
    return Status::Ok();
  }

  Rng& rng() { return rng_; }

 private:
  static bool HasPcdata(const ContentExpr& expr) {
    if (expr.kind == ContentExpr::Kind::kPcdata) return true;
    for (const ContentExpr& child : expr.children) {
      if (HasPcdata(child)) return true;
    }
    return false;
  }

  std::string RandomText() {
    std::string out;
    const int words = 1 + static_cast<int>(rng_.Below(
                              static_cast<uint64_t>(options_.text_words)));
    for (int i = 0; i < words; ++i) {
      if (i > 0) out.push_back(' ');
      out += kWords[rng_.Below(kWordCount)];
    }
    return out;
  }

  void EmitAttributes(const std::string& element, xml::XmlWriter* w) {
    const std::vector<AttrDecl>* attrs = dtd_.FindAttlist(element);
    if (attrs == nullptr) return;
    for (const AttrDecl& attr : *attrs) {
      const bool present =
          attr.default_kind == AttrDefault::kRequired ||
          attr.default_kind == AttrDefault::kFixed ||
          rng_.Chance(options_.optional_probability);
      if (!present) continue;
      if (attr.default_kind == AttrDefault::kFixed ||
          (attr.default_kind == AttrDefault::kValue && rng_.Chance(0.5))) {
        w->Attr(attr.name, attr.default_value);
      } else if (!attr.enum_values.empty()) {
        w->Attr(attr.name, attr.enum_values[rng_.Below(
                               attr.enum_values.size())]);
      } else if (attr.type == "ID") {
        w->Attr(attr.name, "id" + std::to_string(++id_counter_));
      } else if (attr.type == "IDREF") {
        w->Attr(attr.name,
                "id" + std::to_string(1 + rng_.Below(id_counter_ + 1)));
      } else {
        // CDATA / NMTOKEN: a short word or small number.
        if (rng_.Chance(0.5)) {
          w->Attr(attr.name, kWords[rng_.Below(kWordCount)]);
        } else {
          w->Attr(attr.name, std::to_string(rng_.Below(100)));
        }
      }
    }
  }

  int RepeatCount(Repeat repeat, bool minimal) {
    switch (repeat) {
      case Repeat::kOne:
        return 1;
      case Repeat::kOptional:
        return !minimal && rng_.Chance(options_.optional_probability) ? 1 : 0;
      case Repeat::kStar:
        return minimal ? 0
                       : static_cast<int>(rng_.Below(
                             static_cast<uint64_t>(options_.max_repeats) + 1));
      case Repeat::kPlus:
        return minimal ? 1
                       : 1 + static_cast<int>(rng_.Below(
                                 static_cast<uint64_t>(options_.max_repeats)));
    }
    return 1;
  }

  // `minimal` = past the depth cap: required particles only, shallowest
  // choice alternative — the smallest valid completion of the content model.
  Status EmitContent(const ContentExpr& expr, bool mixed, int depth,
                     xml::XmlWriter* w, bool minimal) {
    const int count = RepeatCount(expr.repeat, minimal);
    for (int rep = 0; rep < count; ++rep) {
      switch (expr.kind) {
        case ContentExpr::Kind::kEmpty:
          break;
        case ContentExpr::Kind::kAny:
          // ANY: emit text (arbitrary well-formed content is permitted).
          w->Text(RandomText());
          break;
        case ContentExpr::Kind::kPcdata:
          w->Text(RandomText());
          break;
        case ContentExpr::Kind::kElement:
          TWIGM_RETURN_IF_ERROR(Emit(expr.name, depth + 1, w));
          break;
        case ContentExpr::Kind::kSequence:
          for (const ContentExpr& child : expr.children) {
            TWIGM_RETURN_IF_ERROR(EmitContent(child, mixed, depth, w, minimal));
          }
          break;
        case ContentExpr::Kind::kChoice: {
          const ContentExpr& pick =
              minimal ? MinimalAlternative(expr)
                      : expr.children[rng_.Below(expr.children.size())];
          TWIGM_RETURN_IF_ERROR(EmitContent(pick, mixed, depth, w, minimal));
          break;
        }
      }
    }
    return Status::Ok();
  }

  // --- Minimal completion depth -------------------------------------------
  // min_depth_[e] = depth of the shallowest element chain an instance of e
  // must still contain when every omissible particle is omitted;
  // kInfiniteDepth when required particles cycle (no finite valid subtree).
  // Drives the past-the-cap completion: expanding along minimal choices
  // strictly decreases the remaining completion depth, so it terminates.

  static constexpr int kInfiniteDepth = 1 << 20;

  int ExprMinDepth(const ContentExpr& expr) const {
    if (expr.repeat == Repeat::kOptional || expr.repeat == Repeat::kStar) {
      return 0;
    }
    switch (expr.kind) {
      case ContentExpr::Kind::kEmpty:
      case ContentExpr::Kind::kAny:
      case ContentExpr::Kind::kPcdata:
        return 0;
      case ContentExpr::Kind::kElement:
        return ElementMinDepth(expr.name);
      case ContentExpr::Kind::kSequence: {
        int depth = 0;
        for (const ContentExpr& child : expr.children) {
          depth = std::max(depth, ExprMinDepth(child));
        }
        return depth;
      }
      case ContentExpr::Kind::kChoice: {
        int depth = kInfiniteDepth;
        for (const ContentExpr& child : expr.children) {
          depth = std::min(depth, ExprMinDepth(child));
        }
        return depth;
      }
    }
    return 0;
  }

  int ElementMinDepth(const std::string& element) const {
    auto it = min_depth_.find(element);
    return it != min_depth_.end() ? it->second : kInfiniteDepth;
  }

  const ContentExpr& MinimalAlternative(const ContentExpr& choice) const {
    const ContentExpr* best = &choice.children.front();
    int best_depth = kInfiniteDepth + 1;
    for (const ContentExpr& child : choice.children) {
      const int depth = ExprMinDepth(child);
      if (depth < best_depth) {
        best = &child;
        best_depth = depth;
      }
    }
    return *best;
  }

  void ComputeMinDepths() {
    for (const auto& [name, decl] : dtd_.elements) {
      min_depth_[name] = kInfiniteDepth;
    }
    // Fixpoint from above: each round can only lower depths, and each
    // element's depth is bounded below by 1, so it converges.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, decl] : dtd_.elements) {
        const int depth =
            decl.mixed ? 1
                       : std::min(kInfiniteDepth,
                                  1 + ExprMinDepth(decl.content));
        if (depth < min_depth_[name]) {
          min_depth_[name] = depth;
          changed = true;
        }
      }
    }
  }

  const Dtd& dtd_;
  const GeneratorOptions& options_;
  Rng rng_;
  uint64_t id_counter_ = 0;
  std::map<std::string, int> min_depth_;
};

}  // namespace

Result<std::string> GenerateDocument(const Dtd& dtd,
                                     std::string_view root_element,
                                     const GeneratorOptions& options) {
  const std::string root = root_element.empty()
                               ? dtd.first_element
                               : std::string(root_element);
  Generator gen(dtd, options);
  xml::XmlWriter writer;
  TWIGM_RETURN_IF_ERROR(gen.Emit(root, 1, &writer));
  return std::move(writer).TakeString();
}

Result<std::string> GenerateCollection(const Dtd& dtd,
                                       std::string_view root_element,
                                       const GeneratorOptions& options,
                                       int copies) {
  if (copies < 1) {
    return Status::InvalidArgument("copies must be >= 1");
  }
  const std::string root = root_element.empty()
                               ? dtd.first_element
                               : std::string(root_element);
  xml::XmlWriter writer;
  writer.Open("collection");
  for (int i = 0; i < copies; ++i) {
    // Copies are byte-identical (same seed), matching the paper's
    // "duplicated the Book dataset between 2 and 6 times": result counts
    // and work scale exactly linearly with `copies`.
    Generator gen(dtd, options);
    TWIGM_RETURN_IF_ERROR(gen.Emit(root, 2, &writer));
  }
  writer.Close();
  return std::move(writer).TakeString();
}

}  // namespace twigm::dtd
