#include "dtd/dtd_generator.h"

#include "xml/xml_writer.h"

namespace twigm::dtd {

namespace {

// Word pool for #PCDATA and CDATA attribute content: a small vocabulary
// makes value predicates selective but satisfiable.
constexpr const char* kWords[] = {
    "data",   "stream",  "query",   "match",   "node",    "stack",
    "twig",   "pattern", "element", "path",    "branch",  "candidate",
    "level",  "xml",     "result",  "predicate", "axis",  "machine",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

class Generator {
 public:
  Generator(const Dtd& dtd, const GeneratorOptions& options)
      : dtd_(dtd), options_(options), rng_(options.seed) {}

  Status Emit(const std::string& element, int depth, xml::XmlWriter* w) {
    const ElementDecl* decl = dtd_.FindElement(element);
    if (decl == nullptr) {
      return Status::InvalidArgument("element '" + element +
                                     "' is not declared in the DTD");
    }
    w->Open(element);
    EmitAttributes(element, w);
    if (depth < options_.number_levels) {
      TWIGM_RETURN_IF_ERROR(EmitContent(decl->content, decl->mixed, depth, w));
    } else if (HasPcdata(decl->content)) {
      // At the depth limit children are suppressed; keep text so leaves are
      // not all empty.
      w->Text(RandomText());
    }
    w->Close();
    return Status::Ok();
  }

  Rng& rng() { return rng_; }

 private:
  static bool HasPcdata(const ContentExpr& expr) {
    if (expr.kind == ContentExpr::Kind::kPcdata) return true;
    for (const ContentExpr& child : expr.children) {
      if (HasPcdata(child)) return true;
    }
    return false;
  }

  std::string RandomText() {
    std::string out;
    const int words = 1 + static_cast<int>(rng_.Below(
                              static_cast<uint64_t>(options_.text_words)));
    for (int i = 0; i < words; ++i) {
      if (i > 0) out.push_back(' ');
      out += kWords[rng_.Below(kWordCount)];
    }
    return out;
  }

  void EmitAttributes(const std::string& element, xml::XmlWriter* w) {
    const std::vector<AttrDecl>* attrs = dtd_.FindAttlist(element);
    if (attrs == nullptr) return;
    for (const AttrDecl& attr : *attrs) {
      const bool present =
          attr.default_kind == AttrDefault::kRequired ||
          attr.default_kind == AttrDefault::kFixed ||
          rng_.Chance(options_.optional_probability);
      if (!present) continue;
      if (attr.default_kind == AttrDefault::kFixed ||
          (attr.default_kind == AttrDefault::kValue && rng_.Chance(0.5))) {
        w->Attr(attr.name, attr.default_value);
      } else if (!attr.enum_values.empty()) {
        w->Attr(attr.name, attr.enum_values[rng_.Below(
                               attr.enum_values.size())]);
      } else if (attr.type == "ID") {
        w->Attr(attr.name, "id" + std::to_string(++id_counter_));
      } else if (attr.type == "IDREF") {
        w->Attr(attr.name,
                "id" + std::to_string(1 + rng_.Below(id_counter_ + 1)));
      } else {
        // CDATA / NMTOKEN: a short word or small number.
        if (rng_.Chance(0.5)) {
          w->Attr(attr.name, kWords[rng_.Below(kWordCount)]);
        } else {
          w->Attr(attr.name, std::to_string(rng_.Below(100)));
        }
      }
    }
  }

  int RepeatCount(Repeat repeat) {
    switch (repeat) {
      case Repeat::kOne:
        return 1;
      case Repeat::kOptional:
        return rng_.Chance(options_.optional_probability) ? 1 : 0;
      case Repeat::kStar:
        return static_cast<int>(
            rng_.Below(static_cast<uint64_t>(options_.max_repeats) + 1));
      case Repeat::kPlus:
        return 1 + static_cast<int>(rng_.Below(
                       static_cast<uint64_t>(options_.max_repeats)));
    }
    return 1;
  }

  Status EmitContent(const ContentExpr& expr, bool mixed, int depth,
                     xml::XmlWriter* w) {
    const int count = RepeatCount(expr.repeat);
    for (int rep = 0; rep < count; ++rep) {
      switch (expr.kind) {
        case ContentExpr::Kind::kEmpty:
          break;
        case ContentExpr::Kind::kAny:
          // ANY: emit text (arbitrary well-formed content is permitted).
          w->Text(RandomText());
          break;
        case ContentExpr::Kind::kPcdata:
          w->Text(RandomText());
          break;
        case ContentExpr::Kind::kElement:
          TWIGM_RETURN_IF_ERROR(Emit(expr.name, depth + 1, w));
          break;
        case ContentExpr::Kind::kSequence:
          for (const ContentExpr& child : expr.children) {
            TWIGM_RETURN_IF_ERROR(EmitContent(child, mixed, depth, w));
          }
          break;
        case ContentExpr::Kind::kChoice: {
          const ContentExpr& pick =
              expr.children[rng_.Below(expr.children.size())];
          TWIGM_RETURN_IF_ERROR(EmitContent(pick, mixed, depth, w));
          break;
        }
      }
    }
    return Status::Ok();
  }

  const Dtd& dtd_;
  const GeneratorOptions& options_;
  Rng rng_;
  uint64_t id_counter_ = 0;
};

}  // namespace

Result<std::string> GenerateDocument(const Dtd& dtd,
                                     std::string_view root_element,
                                     const GeneratorOptions& options) {
  const std::string root = root_element.empty()
                               ? dtd.first_element
                               : std::string(root_element);
  Generator gen(dtd, options);
  xml::XmlWriter writer;
  TWIGM_RETURN_IF_ERROR(gen.Emit(root, 1, &writer));
  return std::move(writer).TakeString();
}

Result<std::string> GenerateCollection(const Dtd& dtd,
                                       std::string_view root_element,
                                       const GeneratorOptions& options,
                                       int copies) {
  if (copies < 1) {
    return Status::InvalidArgument("copies must be >= 1");
  }
  const std::string root = root_element.empty()
                               ? dtd.first_element
                               : std::string(root_element);
  xml::XmlWriter writer;
  writer.Open("collection");
  for (int i = 0; i < copies; ++i) {
    // Copies are byte-identical (same seed), matching the paper's
    // "duplicated the Book dataset between 2 and 6 times": result counts
    // and work scale exactly linearly with `copies`.
    Generator gen(dtd, options);
    TWIGM_RETURN_IF_ERROR(gen.Emit(root, 2, &writer));
  }
  writer.Close();
  return std::move(writer).TakeString();
}

}  // namespace twigm::dtd
