#include "dtd/dtd_parser.h"

namespace twigm::dtd {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsNameChar(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '-' ||
         c == '.' || c >= 0x80;
}

class DtdParserImpl {
 public:
  explicit DtdParserImpl(std::string_view text) : text_(text) {}

  Result<Dtd> Run() {
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      if (!Consume("<!")) {
        return Error("expected a declaration starting with '<!'");
      }
      if (Consume("ELEMENT")) {
        TWIGM_RETURN_IF_ERROR(ParseElementDecl());
      } else if (Consume("ATTLIST")) {
        TWIGM_RETURN_IF_ERROR(ParseAttlistDecl());
      } else if (Consume("ENTITY") || Consume("NOTATION")) {
        // Skipped: consume to the closing '>'.
        while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated declaration");
        ++pos_;
      } else {
        return Error("unknown declaration");
      }
    }
    if (dtd_.elements.empty()) {
      return Error("DTD declares no elements");
    }
    return std::move(dtd_);
  }

 private:
  Status Error(const std::string& msg) {
    return Status::ParseError("DTD: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  }

  void SkipSpaceAndComments() {
    while (true) {
      SkipSpace();
      if (text_.substr(pos_, 4) == "<!--") {
        const size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      } else if (text_.substr(pos_, 2) == "<?") {
        const size_t end = text_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseName() {
    SkipSpace();
    const size_t begin = pos_;
    while (pos_ < text_.size() &&
           IsNameChar(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a name");
    return std::string(text_.substr(begin, pos_ - begin));
  }

  Repeat ParseRepeat() {
    if (pos_ < text_.size()) {
      switch (text_[pos_]) {
        case '?':
          ++pos_;
          return Repeat::kOptional;
        case '*':
          ++pos_;
          return Repeat::kStar;
        case '+':
          ++pos_;
          return Repeat::kPlus;
        default:
          break;
      }
    }
    return Repeat::kOne;
  }

  // Parses a parenthesized group; `mixed` is set when it is a mixed-content
  // model (#PCDATA | ...).
  Status ParseGroup(ContentExpr* out, bool* mixed) {
    SkipSpace();
    if (!Consume("(")) return Error("expected '('");
    SkipSpace();

    if (Consume("#PCDATA")) {
      // (#PCDATA) or (#PCDATA | a | b)*
      ContentExpr pcdata;
      pcdata.kind = ContentExpr::Kind::kPcdata;
      SkipSpace();
      if (Consume(")")) {
        ParseRepeat();  // (#PCDATA)* is legal; repetition is irrelevant
        *out = pcdata;
        return Status::Ok();
      }
      ContentExpr choice;
      choice.kind = ContentExpr::Kind::kChoice;
      choice.children.push_back(pcdata);
      while (true) {
        SkipSpace();
        if (Consume(")")) break;
        if (!Consume("|")) return Error("expected '|' in mixed content");
        Result<std::string> name = ParseName();
        if (!name.ok()) return name.status();
        ContentExpr child;
        child.kind = ContentExpr::Kind::kElement;
        child.name = std::move(name).value();
        choice.children.push_back(std::move(child));
      }
      ParseRepeat();  // the trailing '*' of mixed content
      choice.repeat = Repeat::kStar;
      *mixed = true;
      *out = std::move(choice);
      return Status::Ok();
    }

    // Ordinary group: particle (sep particle)* ')'
    std::vector<ContentExpr> particles;
    char separator = 0;
    while (true) {
      SkipSpace();
      ContentExpr particle;
      if (text_.substr(pos_, 1) == "(") {
        bool inner_mixed = false;
        TWIGM_RETURN_IF_ERROR(ParseGroup(&particle, &inner_mixed));
        particle.repeat = ParseRepeat();
      } else {
        Result<std::string> name = ParseName();
        if (!name.ok()) return name.status();
        particle.kind = ContentExpr::Kind::kElement;
        particle.name = std::move(name).value();
        particle.repeat = ParseRepeat();
      }
      particles.push_back(std::move(particle));
      SkipSpace();
      if (Consume(")")) break;
      char sep = 0;
      if (Consume(",")) {
        sep = ',';
      } else if (Consume("|")) {
        sep = '|';
      } else {
        return Error("expected ',', '|' or ')'");
      }
      if (separator != 0 && sep != separator) {
        return Error("cannot mix ',' and '|' in one group");
      }
      separator = sep;
    }

    if (particles.size() == 1 && separator == 0) {
      *out = std::move(particles.front());
      // A single-particle group's repetition applies to the group; caller
      // reads it via ParseRepeat after us, so wrap to preserve both.
      if (out->repeat == Repeat::kOne) return Status::Ok();
      ContentExpr wrap;
      wrap.kind = ContentExpr::Kind::kSequence;
      wrap.children.push_back(std::move(*out));
      *out = std::move(wrap);
      return Status::Ok();
    }
    ContentExpr group;
    group.kind = separator == '|' ? ContentExpr::Kind::kChoice
                                  : ContentExpr::Kind::kSequence;
    group.children = std::move(particles);
    *out = std::move(group);
    return Status::Ok();
  }

  Status ParseElementDecl() {
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    ElementDecl decl;
    decl.name = std::move(name).value();
    SkipSpace();
    if (Consume("EMPTY")) {
      decl.content.kind = ContentExpr::Kind::kEmpty;
    } else if (Consume("ANY")) {
      decl.content.kind = ContentExpr::Kind::kAny;
    } else {
      TWIGM_RETURN_IF_ERROR(ParseGroup(&decl.content, &decl.mixed));
      decl.content.repeat = decl.mixed ? decl.content.repeat : ParseRepeat();
    }
    SkipSpace();
    if (!Consume(">")) return Error("expected '>' after element declaration");
    if (dtd_.elements.count(decl.name) != 0) {
      return Error("duplicate declaration of element '" + decl.name + "'");
    }
    if (dtd_.first_element.empty()) dtd_.first_element = decl.name;
    dtd_.elements.emplace(decl.name, std::move(decl));
    return Status::Ok();
  }

  Status ParseAttlistDecl() {
    Result<std::string> element = ParseName();
    if (!element.ok()) return element.status();
    std::vector<AttrDecl>& attrs = dtd_.attlists[element.value()];
    while (true) {
      SkipSpace();
      if (Consume(">")) break;
      AttrDecl attr;
      Result<std::string> attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      attr.name = std::move(attr_name).value();
      SkipSpace();
      if (text_.substr(pos_, 1) == "(") {
        ++pos_;
        while (true) {
          SkipSpace();
          Result<std::string> value = ParseName();
          if (!value.ok()) return value.status();
          attr.enum_values.push_back(std::move(value).value());
          SkipSpace();
          if (Consume(")")) break;
          if (!Consume("|")) return Error("expected '|' in enumerated type");
        }
      } else {
        Result<std::string> type = ParseName();
        if (!type.ok()) return type.status();
        attr.type = std::move(type).value();
      }
      SkipSpace();
      if (Consume("#REQUIRED")) {
        attr.default_kind = AttrDefault::kRequired;
      } else if (Consume("#IMPLIED")) {
        attr.default_kind = AttrDefault::kImplied;
      } else if (Consume("#FIXED")) {
        attr.default_kind = AttrDefault::kFixed;
        TWIGM_RETURN_IF_ERROR(ParseQuoted(&attr.default_value));
      } else {
        attr.default_kind = AttrDefault::kValue;
        TWIGM_RETURN_IF_ERROR(ParseQuoted(&attr.default_value));
      }
      attrs.push_back(std::move(attr));
    }
    return Status::Ok();
  }

  Status ParseQuoted(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
      return Error("expected a quoted value");
    }
    const char quote = text_[pos_];
    ++pos_;
    const size_t end = text_.find(quote, pos_);
    if (end == std::string_view::npos) return Error("unterminated value");
    out->assign(text_.substr(pos_, end - pos_));
    pos_ = end + 1;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  Dtd dtd_;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view text) {
  DtdParserImpl impl(text);
  return impl.Run();
}

}  // namespace twigm::dtd
