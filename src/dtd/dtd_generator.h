// Random XML document generator driven by a DTD — the library's stand-in
// for IBM's XML Generator [18]. Walks the content models with a seeded RNG;
// the paper's two knobs are reproduced exactly:
//   * NumberLevels — maximum element depth of the generated document,
//   * MaxRepeats   — maximum number of times a '*' / '+' particle repeats.

#ifndef TWIGM_DTD_DTD_GENERATOR_H_
#define TWIGM_DTD_DTD_GENERATOR_H_

#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"
#include "dtd/dtd_model.h"

namespace twigm::dtd {

struct GeneratorOptions {
  uint64_t seed = 42;
  /// Maximum element depth (root = level 1). Paper setting: 20.
  int number_levels = 20;
  /// Maximum repetitions of a '*' or '+' particle. Paper setting: 9.
  int max_repeats = 9;
  /// Probability that a '?' particle is present / an #IMPLIED attribute is
  /// emitted.
  double optional_probability = 0.5;
  /// Average words of text per #PCDATA run.
  int text_words = 3;
};

/// Generates one document instance from `dtd` rooted at `root_element`
/// (empty = the DTD's first declared element). Deterministic for a fixed
/// seed. Fails if the root element is not declared.
Result<std::string> GenerateDocument(const Dtd& dtd,
                                     std::string_view root_element,
                                     const GeneratorOptions& options);

/// Concatenates `copies` generated instances (with distinct derived seeds)
/// under a synthetic <collection> root — how the paper's scalability
/// experiments duplicate the Book dataset 2–6x (section 5.4).
Result<std::string> GenerateCollection(const Dtd& dtd,
                                       std::string_view root_element,
                                       const GeneratorOptions& options,
                                       int copies);

}  // namespace twigm::dtd

#endif  // TWIGM_DTD_DTD_GENERATOR_H_
