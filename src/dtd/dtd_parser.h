// Parser for the simplified DTD language of dtd_model.h.
//
// Supports <!ELEMENT> declarations with nested sequence/choice groups and
// ?/*/+ repetition, #PCDATA (pure and mixed), EMPTY, ANY, and <!ATTLIST>
// declarations with CDATA / ID / IDREF / NMTOKEN / enumerated types and
// #REQUIRED / #IMPLIED / #FIXED / literal defaults. Comments and
// <?...?> processing instructions inside the DTD are skipped. Parameter
// entities are not supported (none of the paper's DTDs need them).

#ifndef TWIGM_DTD_DTD_PARSER_H_
#define TWIGM_DTD_DTD_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "dtd/dtd_model.h"

namespace twigm::dtd {

/// Parses DTD text (the *internal subset* syntax: a sequence of
/// declarations, without the surrounding <!DOCTYPE ... [ ]>).
Result<Dtd> ParseDtd(std::string_view text);

}  // namespace twigm::dtd

#endif  // TWIGM_DTD_DTD_PARSER_H_
