// The engine-facing observability hook.
//
// Every stream component (SaxParser via its offset slot, EventDriver, the
// three machines, MultiQueryProcessor, FilterEngine) accepts an
// `Instrumentation*` that defaults to null. Null means *off*: each
// instrumented site is a single predictable `if (instr_ == nullptr)` branch
// and nothing else — no clock reads, no stores, no virtual calls — so the
// default configuration stays within noise of the un-instrumented engine
// (bench_fig7_exec_time's Overhead pair verifies this; CI fails if the gap
// exceeds 5%).
//
// With an Instrumentation attached you get:
//   * a MetricsRegistry (counters/gauges/histograms; no allocation on the
//     hot path) that engines export their EngineStats-style accounting
//     into,
//   * per-stage wall time via RAII TimerScopes — kParse (bytes in, whole
//     Feed), kDrive (modified-SAX dispatch), kMachine (transition
//     functions), kEmit (result delivery). Stages nest in that order, so
//     exclusive times are pairwise differences (StageBreakdown computes
//     them),
//   * per-query-node peak stack depth — the observable form of the paper's
//     memory bound (|Q| stacks, each bounded by document depth),
//   * structured TraceEvents (push/pop/candidate/prune/emit with byte
//     offsets) when a TraceSink is attached; per-result emission latency in
//     bytes falls out of pairing kCandidate/kEmit offsets.

#ifndef TWIGM_OBS_INSTRUMENTATION_H_
#define TWIGM_OBS_INSTRUMENTATION_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace twigm::obs {

/// Pipeline stages, outermost first. Each recorded time is *inclusive* of
/// the stages below it.
enum class Stage : uint8_t { kParse = 0, kDrive, kMachine, kEmit };
inline constexpr size_t kStageCount = 4;

const char* StageName(Stage stage);

/// Accumulates wall time into a uint64_t nanosecond slot; a null slot makes
/// construction and destruction free of clock reads.
class TimerScope {
 public:
  explicit TimerScope(uint64_t* acc_ns) : acc_ns_(acc_ns) {
    if (acc_ns_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TimerScope() {
    if (acc_ns_ != nullptr) {
      *acc_ns_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }
  TimerScope(const TimerScope&) = delete;
  TimerScope& operator=(const TimerScope&) = delete;

 private:
  uint64_t* acc_ns_;
  std::chrono::steady_clock::time_point start_;
};

/// Exclusive per-stage times derived from the inclusive accumulators.
struct StageBreakdown {
  uint64_t parse_ns = 0;    // parse minus dispatch
  uint64_t drive_ns = 0;    // dispatch minus machine
  uint64_t machine_ns = 0;  // machine minus emit
  uint64_t emit_ns = 0;
  uint64_t total_ns = 0;    // inclusive parse time
};

class Instrumentation {
 public:
  Instrumentation() = default;
  Instrumentation(const Instrumentation&) = delete;
  Instrumentation& operator=(const Instrumentation&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
  TraceSink* trace_sink() const { return trace_sink_; }

  // --- Stream position ------------------------------------------------
  // The parser stores the byte offset of each SAX construct here before
  // firing its handler; machines stamp emissions and trace events with it.
  uint64_t* byte_offset_slot() { return &byte_offset_; }
  uint64_t byte_offset() const { return byte_offset_; }

  // --- Stage timers ---------------------------------------------------
  uint64_t* stage_slot(Stage s) { return &stage_ns_[static_cast<size_t>(s)]; }
  uint64_t stage_inclusive_ns(Stage s) const {
    return stage_ns_[static_cast<size_t>(s)];
  }
  StageBreakdown stages() const;

  // --- Per-query-node stack depth -------------------------------------
  /// Sizes the per-node depth table; called by a machine when attached.
  /// Grows only (several machines may share one Instrumentation).
  void EnsureNodeSlots(size_t node_count) {
    if (node_depth_peak_.size() < node_count) {
      node_depth_peak_.resize(node_count, 0);
    }
  }
  void NoteNodeDepth(int node, uint64_t depth) {
    if (static_cast<size_t>(node) < node_depth_peak_.size() &&
        depth > node_depth_peak_[node]) {
      node_depth_peak_[node] = depth;
    }
  }
  /// Peak stack depth per machine-node id (the paper's memory bound,
  /// observed: each entry is bounded by the document depth).
  const std::vector<uint64_t>& node_depth_peaks() const {
    return node_depth_peak_;
  }

  // --- Trace ----------------------------------------------------------
  bool tracing() const { return trace_sink_ != nullptr; }
  void Emit(const TraceEvent& event) {
    if (trace_sink_ != nullptr) trace_sink_->OnEvent(event);
  }
  /// Convenience used by machines; stamps the current byte offset.
  void Trace(TraceEvent::Kind kind, int query_node, int level,
             uint64_t node_id, uint64_t value) {
    if (trace_sink_ == nullptr) return;
    TraceEvent e;
    e.kind = kind;
    e.query_node = query_node;
    e.level = level;
    e.node_id = node_id;
    e.byte_offset = byte_offset_;
    e.value = value;
    trace_sink_->OnEvent(e);
  }

  /// Clears measured values (stage times, depth peaks, registry values and
  /// the offset slot); registrations and the trace sink are kept.
  void ResetValues();

 private:
  MetricsRegistry registry_;
  TraceSink* trace_sink_ = nullptr;
  uint64_t byte_offset_ = 0;
  uint64_t stage_ns_[kStageCount] = {0, 0, 0, 0};
  std::vector<uint64_t> node_depth_peak_;
};

}  // namespace twigm::obs

#endif  // TWIGM_OBS_INSTRUMENTATION_H_
