// Heap-allocation counting for hot-path tests and benchmarks.
//
// Linking `twigm_alloc_hook` into a binary replaces the global operator
// new/delete family with malloc-backed versions that bump process-wide
// atomic counters. The accessors below then report cumulative counts, so a
// test can assert that a measured region performed zero allocations:
//
//   const uint64_t before = obs::AllocHookNewCalls();
//   ... steady-state work ...
//   EXPECT_EQ(obs::AllocHookNewCalls(), before);
//
// Only link the hook into binaries whose purpose is allocation measurement
// (hotpath_alloc_test, bench_hotpath); everything else keeps the default
// allocator. Binaries that do not link the hook must not call these
// accessors — they are defined in the same translation unit as the
// replacement operators, so referencing them is what pulls the hook in.

#ifndef TWIGM_OBS_ALLOC_HOOK_H_
#define TWIGM_OBS_ALLOC_HOOK_H_

#include <cstdint>

namespace twigm::obs {

/// True when the counting replacements are linked into this binary.
bool AllocHookActive();

/// Cumulative operator-new calls (all variants) since process start.
uint64_t AllocHookNewCalls();

/// Cumulative operator-delete calls on non-null pointers.
uint64_t AllocHookDeleteCalls();

/// Cumulative bytes requested through operator new.
uint64_t AllocHookNewBytes();

}  // namespace twigm::obs

#endif  // TWIGM_OBS_ALLOC_HOOK_H_
