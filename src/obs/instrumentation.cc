#include "obs/instrumentation.h"

namespace twigm::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kDrive: return "drive";
    case Stage::kMachine: return "machine";
    case Stage::kEmit: return "emit";
  }
  return "?";
}

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kStackPush: return "push";
    case TraceEvent::Kind::kStackPop: return "pop";
    case TraceEvent::Kind::kCandidate: return "candidate";
    case TraceEvent::Kind::kPrune: return "prune";
    case TraceEvent::Kind::kEmit: return "emit";
  }
  return "?";
}

StageBreakdown Instrumentation::stages() const {
  const uint64_t parse = stage_inclusive_ns(Stage::kParse);
  const uint64_t drive = stage_inclusive_ns(Stage::kDrive);
  const uint64_t machine = stage_inclusive_ns(Stage::kMachine);
  const uint64_t emit = stage_inclusive_ns(Stage::kEmit);
  StageBreakdown out;
  out.total_ns = parse;
  // Inclusive times nest parse >= drive >= machine >= emit in a correctly
  // wired pipeline; clamp anyway so a partial wiring never underflows.
  out.parse_ns = parse > drive ? parse - drive : 0;
  out.drive_ns = drive > machine ? drive - machine : 0;
  out.machine_ns = machine > emit ? machine - emit : 0;
  out.emit_ns = emit;
  return out;
}

void Instrumentation::ResetValues() {
  registry_.ResetValues();
  byte_offset_ = 0;
  for (size_t i = 0; i < kStageCount; ++i) stage_ns_[i] = 0;
  for (uint64_t& d : node_depth_peak_) d = 0;
}

}  // namespace twigm::obs
