// Structured engine trace events.
//
// A `TraceSink` receives one `TraceEvent` per interesting machine
// transition: stack push/pop per query (machine) node, candidate creation,
// prune, and result emission — each stamped with the stream byte offset at
// which it happened and the document node id it concerns. Pairing a
// result's kEmit offset with its kCandidate offset gives the per-result
// *emission latency in bytes*: how much further the stream had to be read
// before membership was proven (the earliest-query-answering quality metric
// for streaming XPath).
//
// Node ids are plain uint64_t (== xml::NodeId) so this layer has no
// dependency on the xml layer; query_node is the dense MachineNode::id
// within the emitting machine's graph (or a trie-node id for the filter
// engine), -1 when not applicable.

#ifndef TWIGM_OBS_TRACE_H_
#define TWIGM_OBS_TRACE_H_

#include <cstdint>
#include <vector>

namespace twigm::obs {

struct TraceEvent {
  enum class Kind : uint8_t {
    kStackPush,  // entry pushed for query_node (value = new stack depth)
    kStackPop,   // entry popped from query_node (value = new stack depth)
    kCandidate,  // node_id recorded as a possible result at query_node
    kPrune,      // popped entry discarded: branch/value test failed
    kEmit,       // node_id proven and emitted as a result
  };

  Kind kind = Kind::kStackPush;
  int query_node = -1;       // MachineNode::id / trie node id
  int level = 0;             // document level of the element involved
  uint64_t node_id = 0;      // pre-order document node id (0 if n/a)
  uint64_t byte_offset = 0;  // stream offset of the triggering SAX construct
  uint64_t value = 0;        // kind-specific (stack depth, candidate count)
};

const char* TraceEventKindName(TraceEvent::Kind kind);

/// Receives trace events. Implementations may allocate/do work — the engine
/// only pays for tracing when a sink is attached.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Counts events per kind without storing them (overhead tests).
class CountingTraceSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override {
    ++counts_[static_cast<size_t>(event.kind)];
  }
  uint64_t count(TraceEvent::Kind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) t += c;
    return t;
  }

 private:
  uint64_t counts_[5] = {0, 0, 0, 0, 0};
};

/// Stores every event (tests / small documents only).
class VectorTraceSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace twigm::obs

#endif  // TWIGM_OBS_TRACE_H_
