// Counting replacements for the global allocation functions. Keeping the
// operators and the accessors in one translation unit guarantees that any
// binary calling an accessor links the operators too (a static-library
// object is only pulled in when something in it is referenced).

#include "obs/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_new_calls{0};
std::atomic<uint64_t> g_delete_calls{0};
std::atomic<uint64_t> g_new_bytes{0};

void* CountedAlloc(std::size_t size) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  g_new_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  g_new_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

void CountedFree(void* ptr) noexcept {
  if (ptr != nullptr) g_delete_calls.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  CountedFree(ptr);
}

namespace twigm::obs {

bool AllocHookActive() { return true; }

uint64_t AllocHookNewCalls() {
  return g_new_calls.load(std::memory_order_relaxed);
}

uint64_t AllocHookDeleteCalls() {
  return g_delete_calls.load(std::memory_order_relaxed);
}

uint64_t AllocHookNewBytes() {
  return g_new_bytes.load(std::memory_order_relaxed);
}

}  // namespace twigm::obs
