#include "obs/metrics.h"

namespace twigm::obs {

std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    // Saturate instead of overflowing for absurd (factor, count) pairs.
    if (b > UINT64_MAX / factor) break;
    b *= factor;
  }
  return bounds;
}

Counter* MetricsRegistry::RegisterCounter(std::string_view name) {
  counters_.emplace_back();
  order_.push_back({std::string(name), counters_.size() - 1, Named::kCounter});
  return &counters_.back();
}

Gauge* MetricsRegistry::RegisterGauge(std::string_view name) {
  gauges_.emplace_back();
  order_.push_back({std::string(name), gauges_.size() - 1, Named::kGauge});
  return &gauges_.back();
}

Histogram* MetricsRegistry::RegisterHistogram(std::string_view name,
                                              std::vector<uint64_t> bounds) {
  histograms_.emplace_back(std::move(bounds));
  order_.push_back(
      {std::string(name), histograms_.size() - 1, Named::kHistogram});
  return &histograms_.back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  out.reserve(order_.size() * 2);
  for (const Named& n : order_) {
    switch (n.kind) {
      case Named::kCounter:
        out.push_back({n.name, static_cast<double>(counters_[n.index].value())});
        break;
      case Named::kGauge: {
        const Gauge& g = gauges_[n.index];
        out.push_back({n.name, static_cast<double>(g.value())});
        out.push_back({n.name + ".peak", static_cast<double>(g.peak())});
        break;
      }
      case Named::kHistogram: {
        const Histogram& h = histograms_[n.index];
        out.push_back({n.name + ".count",
                       static_cast<double>(h.total_count())});
        out.push_back({n.name + ".sum", static_cast<double>(h.sum())});
        out.push_back({n.name + ".min", static_cast<double>(h.min())});
        out.push_back({n.name + ".max", static_cast<double>(h.max())});
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out.push_back({n.name + ".le." + std::to_string(h.bounds()[i]),
                         static_cast<double>(h.counts()[i])});
        }
        out.push_back({n.name + ".le.inf",
                       static_cast<double>(h.counts().back())});
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

}  // namespace twigm::obs
