// Metrics primitives for engine observability: counters, gauges and
// fixed-bucket histograms behind a `MetricsRegistry`.
//
// Design constraints (the hot path is a per-SAX-event loop):
//   * registration (naming, bucket layout) happens at setup time and may
//     allocate; Inc/Set/Observe never allocate and are header-inline;
//   * handles returned by Register* are stable for the registry's lifetime
//     (instruments live in a deque), so engines cache raw pointers;
//   * a snapshot is an ordered name -> value list, cheap to diff — the
//     Reset()-reuse tests compare snapshot deltas, and benches inline them
//     into `--json` records.

#ifndef TWIGM_OBS_METRICS_H_
#define TWIGM_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace twigm::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Instantaneous value with a high-water mark.
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  void Add(int64_t d) { Set(value_ + d); }
  int64_t value() const { return value_; }
  int64_t peak() const { return peak_; }
  void Reset() {
    value_ = 0;
    peak_ = 0;
  }

 private:
  int64_t value_ = 0;
  int64_t peak_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations x with
/// x <= bounds[i] (cumulative-style upper bounds); observations larger than
/// every bound land in the implicit overflow bucket. Bounds are fixed at
/// registration, so Observe is a branch-free-ish linear scan over a small
/// array — no allocation, no locks.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(uint64_t x) {
    size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    ++counts_[i];
    ++total_count_;
    sum_ += x;
    if (x > max_) max_ = x;
    if (total_count_ == 1 || x < min_) min_ = x;
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// counts()[bounds().size()] is the overflow bucket.
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total_count() const { return total_count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return total_count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return total_count_ ? static_cast<double>(sum_) / total_count_ : 0.0;
  }

  void Reset() {
    for (uint64_t& c : counts_) c = 0;
    total_count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// `count` upper bounds starting at `start`, each `factor` times the
/// previous (factor >= 2): the standard layout for latency-ish quantities.
std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count);

/// One snapshot entry; histograms expand into several entries
/// (name.count/.sum/.min/.max plus name.le.<bound> per bucket).
struct MetricValue {
  std::string name;
  double value = 0;
};

using MetricsSnapshot = std::vector<MetricValue>;

/// Owns instruments; names are not required to be unique (a second
/// registration with the same name is a distinct instrument — callers that
/// re-export per-document should Reset instead of re-registering).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(std::string_view name);
  Gauge* RegisterGauge(std::string_view name);
  Histogram* RegisterHistogram(std::string_view name,
                               std::vector<uint64_t> bounds);

  /// Flattens every instrument into (name, value) pairs, in registration
  /// order. Gauges contribute name and name.peak.
  MetricsSnapshot Snapshot() const;

  /// Resets every instrument's value (registrations are kept).
  void ResetValues();

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  struct Named {
    std::string name;
    size_t index;  // into the matching deque
    enum Kind { kCounter, kGauge, kHistogram } kind;
  };

  std::vector<Named> order_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace twigm::obs

#endif  // TWIGM_OBS_METRICS_H_
