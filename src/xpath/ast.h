// Abstract syntax for the supported XPath fragment.
//
// The paper's language is XP{/,//,*,[]}: child and descendant axes,
// wildcards, and predicates (branches), over element name tests. Following
// footnote 2 and the experimental queries (Q5–Q8), we additionally support
// attribute tests (@name), value comparisons against string/number literals,
// and self value tests ('.') inside predicates.
//
// Grammar (recursive descent, see parser.cc):
//
//   Query     := ('/' | '//')? Step (('/' | '//') Step)*
//   Step      := ('*' | Name | '@' Name) Predicate*
//   Predicate := '[' PredExpr ']'
//   PredExpr  := RelPath (CmpOp Literal)?
//              | '.' CmpOp Literal
//   RelPath   := ('.//')? Step (('/' | '//') Step)*
//   CmpOp     := '=' | '!=' | '<' | '<=' | '>' | '>='
//   Literal   := '"' chars '"' | "'" chars "'" | Number

#ifndef TWIGM_XPATH_AST_H_
#define TWIGM_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace twigm::xpath {

/// Axis of a location step, relative to its context node.
enum class Axis {
  kChild,       // '/'
  kDescendant,  // '//'
};

/// Comparison operator in a value test.
enum class CmpOp {
  kEq,   // =
  kNe,   // !=
  kLt,   // <
  kLe,   // <=
  kGt,   // >
  kGe,   // >=
};

/// Returns the XPath spelling of `op` ("=", "!=", ...).
const char* CmpOpToString(CmpOp op);

/// Kind of node test in a step.
enum class NodeTestKind {
  kName,       // element name test
  kWildcard,   // '*'
  kAttribute,  // '@name'
};

struct Predicate;  // forward: steps own predicates, predicates own paths

/// One location step: axis + node test + predicates.
struct Step {
  Axis axis = Axis::kChild;
  NodeTestKind kind = NodeTestKind::kName;
  std::string name;  // element or attribute name; empty for '*'
  std::vector<Predicate> predicates;
};

/// A (relative or absolute) path: a sequence of steps.
struct PathExpr {
  /// True for queries anchored at the document root with '/'; false when the
  /// query begins with '//' (descendant-or-self from the root) or, for
  /// relative paths inside predicates, from the context node.
  bool absolute_child_anchor = false;
  std::vector<Step> steps;
};

/// A predicate: an existential path test, optionally with a value
/// comparison applied to the final step (or to the context node itself when
/// `self_test` is set and `path.steps` is empty).
struct Predicate {
  PathExpr path;              // empty steps => self test ('.')
  bool self_test = false;     // '.' — compare the context node's own text
  bool has_value_test = false;
  CmpOp op = CmpOp::kEq;
  std::string literal;        // literal to compare against
  bool literal_is_number = false;
};

/// Renders the AST back to (canonical) XPath text.
std::string ToString(const PathExpr& path);
std::string ToString(const Step& step);
std::string ToString(const Predicate& pred);

}  // namespace twigm::xpath

#endif  // TWIGM_XPATH_AST_H_
