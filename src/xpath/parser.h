// Recursive-descent parser producing a PathExpr AST from XPath text.

#ifndef TWIGM_XPATH_PARSER_H_
#define TWIGM_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace twigm::xpath {

/// Parses a top-level query in XP{/,//,*,[]} (plus attribute and value
/// tests). The query must start with '/' or '//'.
Result<PathExpr> ParseQuery(std::string_view query);

}  // namespace twigm::xpath

#endif  // TWIGM_XPATH_PARSER_H_
