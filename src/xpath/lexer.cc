#include "xpath/lexer.h"

namespace twigm::xpath {

namespace {

bool IsNameStart(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_' ||
         c >= 0x80;
}

bool IsNameChar(unsigned char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.' ||
         c == ':';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

Status LexError(std::string_view query, size_t pos, const std::string& msg) {
  return Status::ParseError(msg + " at offset " + std::to_string(pos) +
                            " in query '" + std::string(query) + "'");
}

}  // namespace

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDoubleSlash: return "'//'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kName: return "name";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kNumber: return "number";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kEnd: return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t offset) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < query.size()) {
    const char c = query[i];
    const size_t start = i;
    switch (c) {
      case ' ':
      case '\t':
      case '\n':
      case '\r':
        ++i;
        break;
      case '/':
        if (i + 1 < query.size() && query[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, "//", start);
          i += 2;
        } else {
          push(TokenKind::kSlash, "/", start);
          ++i;
        }
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '@':
        push(TokenKind::kAt, "@", start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, "[", start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, "]", start);
        ++i;
        break;
      case '|':
        push(TokenKind::kPipe, "|", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < query.size() && query[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return LexError(query, i, "expected '=' after '!'");
        }
        break;
      case '<':
        if (i + 1 < query.size() && query[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < query.size() && query[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      case '"':
      case '\'': {
        const char quote = c;
        const size_t end = query.find(quote, i + 1);
        if (end == std::string_view::npos) {
          return LexError(query, i, "unterminated string literal");
        }
        push(TokenKind::kStringLiteral,
             std::string(query.substr(i + 1, end - i - 1)), start);
        i = end + 1;
        break;
      }
      default:
        if (IsDigit(c)) {
          size_t j = i;
          while (j < query.size() && IsDigit(query[j])) ++j;
          if (j < query.size() && query[j] == '.') {
            ++j;
            while (j < query.size() && IsDigit(query[j])) ++j;
          }
          push(TokenKind::kNumber, std::string(query.substr(i, j - i)), start);
          i = j;
        } else if (c == '.') {
          // Distinguish '.' (self) from a leading-dot number like ".5".
          if (i + 1 < query.size() && IsDigit(query[i + 1])) {
            size_t j = i + 1;
            while (j < query.size() && IsDigit(query[j])) ++j;
            push(TokenKind::kNumber, std::string(query.substr(i, j - i)),
                 start);
            i = j;
          } else {
            push(TokenKind::kDot, ".", start);
            ++i;
          }
        } else if (IsNameStart(static_cast<unsigned char>(c))) {
          size_t j = i;
          while (j < query.size() &&
                 IsNameChar(static_cast<unsigned char>(query[j]))) {
            ++j;
          }
          std::string name(query.substr(i, j - i));
          // "text()" and similar node-type tests are not in the supported
          // fragment; reject the '(' explicitly for a clearer error.
          if (j < query.size() && query[j] == '(') {
            return LexError(query, i,
                            "function calls / node-type tests are not "
                            "supported ('" + name + "(')");
          }
          push(TokenKind::kName, std::move(name), start);
          i = j;
        } else {
          return LexError(query, i,
                          std::string("unexpected character '") + c + "'");
        }
    }
  }
  push(TokenKind::kEnd, "", query.size());
  return tokens;
}

}  // namespace twigm::xpath
