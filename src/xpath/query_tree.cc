#include "xpath/query_tree.h"

#include "xpath/parser.h"

namespace twigm::xpath {

namespace {

// Builds the query subtree for one step and hangs predicate subtrees off it.
// Returns the new node (owned by *owner).
Result<QueryNode*> BuildStepNode(const Step& step,
                                 std::vector<std::unique_ptr<QueryNode>>* owner,
                                 QueryNode* parent);

// Appends the chain for `path` under `parent`; *out_last receives the final
// node of the chain.
Status BuildChain(const PathExpr& path, QueryNode* parent,
                  QueryNode** out_last) {
  QueryNode* current = parent;
  for (const Step& step : path.steps) {
    Result<QueryNode*> node =
        BuildStepNode(step, &current->children, current);
    if (!node.ok()) return node.status();
    current = node.value();
  }
  *out_last = current;
  return Status::Ok();
}

Status AttachValueTest(QueryNode* node, const Predicate& pred) {
  if (node->has_value_test) {
    return Status::NotSupported(
        "multiple value tests on the same query node");
  }
  node->has_value_test = true;
  node->op = pred.op;
  node->literal = pred.literal;
  node->literal_is_number = pred.literal_is_number;
  return Status::Ok();
}

Result<QueryNode*> BuildStepNode(const Step& step,
                                 std::vector<std::unique_ptr<QueryNode>>* owner,
                                 QueryNode* parent) {
  auto node = std::make_unique<QueryNode>();
  node->axis = step.axis;
  node->parent = parent;
  switch (step.kind) {
    case NodeTestKind::kName:
      node->name = step.name;
      break;
    case NodeTestKind::kWildcard:
      node->name = "*";
      node->is_wildcard = true;
      break;
    case NodeTestKind::kAttribute:
      node->name = step.name;
      node->is_attribute = true;
      break;
  }
  QueryNode* raw = node.get();
  owner->push_back(std::move(node));

  for (const Predicate& pred : step.predicates) {
    if (pred.self_test) {
      TWIGM_RETURN_IF_ERROR(AttachValueTest(raw, pred));
      continue;
    }
    QueryNode* last = nullptr;
    TWIGM_RETURN_IF_ERROR(BuildChain(pred.path, raw, &last));
    if (pred.has_value_test) {
      TWIGM_RETURN_IF_ERROR(AttachValueTest(last, pred));
    }
  }
  return raw;
}

void Classify(const QueryNode* node, bool is_root, QueryTree* tree,
              bool* has_predicates, bool* has_descendant, bool* has_wildcard,
              bool* has_value_tests, int* count) {
  (void)tree;
  ++*count;
  if (!is_root || node->axis == Axis::kDescendant) {
    if (node->axis == Axis::kDescendant) *has_descendant = true;
  }
  if (node->is_wildcard) *has_wildcard = true;
  if (node->has_value_test) *has_value_tests = true;
  for (const auto& child : node->children) {
    if (!child->on_output_path) *has_predicates = true;
    Classify(child.get(), false, tree, has_predicates, has_descendant,
             has_wildcard, has_value_tests, count);
  }
}

void AssignIndexes(QueryNode* node, int* next) {
  node->index = (*next)++;
  for (auto& child : node->children) AssignIndexes(child.get(), next);
}

void RenderNode(const QueryNode* node, std::string* out,
                bool in_predicate) {
  if (node->is_attribute) {
    out->push_back('@');
  }
  out->append(node->name);
  // Predicates first (off-path children), then the output-path continuation.
  const QueryNode* continuation = nullptr;
  for (const auto& child : node->children) {
    if (child->on_output_path) {
      continuation = child.get();
      continue;
    }
    out->push_back('[');
    const QueryNode* c = child.get();
    // Render the predicate chain (each predicate child is a chain possibly
    // with its own branches).
    std::string inner;
    if (c->axis == Axis::kDescendant) inner += "//";
    RenderNode(c, &inner, /*in_predicate=*/true);
    out->append(inner);
    out->push_back(']');
  }
  if (node->has_value_test) {
    // A leaf at the end of a predicate chain renders its value test inline
    // ("[b=\"x\"]"); everywhere else the self-test form is used.
    const bool inline_form =
        in_predicate && node->children.empty() && continuation == nullptr;
    if (inline_form) {
      out->append(CmpOpToString(node->op));
    } else {
      out->append("[.");
      out->append(CmpOpToString(node->op));
    }
    if (node->literal_is_number) {
      out->append(node->literal);
    } else {
      out->push_back('"');
      out->append(node->literal);
      out->push_back('"');
    }
    if (!inline_form) out->push_back(']');
  }
  if (continuation != nullptr) {
    out->append(continuation->axis == Axis::kChild ? "/" : "//");
    RenderNode(continuation, out, in_predicate);
  }
}

}  // namespace

Result<QueryTree> QueryTree::Compile(const PathExpr& ast) {
  if (ast.steps.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (ast.steps.back().kind == NodeTestKind::kAttribute) {
    return Status::NotSupported(
        "an attribute cannot be the return node of a query");
  }

  QueryTree tree;
  // Build the output-path spine. We create a synthetic holder for the root
  // by building the first step into a temporary owner list.
  std::vector<std::unique_ptr<QueryNode>> top;
  QueryNode* current = nullptr;
  for (size_t i = 0; i < ast.steps.size(); ++i) {
    Result<QueryNode*> node =
        i == 0 ? BuildStepNode(ast.steps[i], &top, nullptr)
               : BuildStepNode(ast.steps[i], &current->children, current);
    if (!node.ok()) return node.status();
    node.value()->on_output_path = true;
    current = node.value();
  }
  tree.root_ = std::move(top.front());
  tree.sol_ = current;

  int count = 0;
  Classify(tree.root_.get(), /*is_root=*/true, &tree, &tree.has_predicates_,
           &tree.has_descendant_axis_, &tree.has_wildcard_,
           &tree.has_value_tests_, &count);
  tree.node_count_ = count;

  int next_index = 0;
  AssignIndexes(tree.root_.get(), &next_index);
  return tree;
}

Result<QueryTree> QueryTree::Parse(std::string_view query) {
  Result<PathExpr> ast = ParseQuery(query);
  if (!ast.ok()) return ast.status();
  return Compile(ast.value());
}

std::string QueryTree::ToString() const {
  if (root_ == nullptr) return "";
  std::string out = root_->axis == Axis::kChild ? "/" : "//";
  RenderNode(root_.get(), &out, /*in_predicate=*/false);
  return out;
}

std::string QueryTree::RenderSubquery(const QueryNode* node) {
  if (node == nullptr) return "";
  std::string out = node->axis == Axis::kChild ? "/" : "//";
  RenderNode(node, &out, /*in_predicate=*/false);
  return out;
}

std::vector<const QueryNode*> QueryTree::NodesPreOrder() const {
  std::vector<const QueryNode*> out;
  out.reserve(static_cast<size_t>(node_count_));
  std::vector<const QueryNode*> stack;
  if (root_ != nullptr) stack.push_back(root_.get());
  while (!stack.empty()) {
    const QueryNode* node = stack.back();
    stack.pop_back();
    out.push_back(node);
    for (auto it = node->children.rbegin(); it != node->children.rend();
         ++it) {
      stack.push_back(it->get());
    }
  }
  return out;
}

}  // namespace xpath

