#include "xpath/parser.h"

#include <vector>

#include "xpath/lexer.h"

namespace twigm::xpath {

namespace {

/// Token-stream cursor with one-symbol lookahead.
class ParserImpl {
 public:
  ParserImpl(std::string_view query, std::vector<Token> tokens)
      : query_(query), tokens_(std::move(tokens)) {}

  Result<PathExpr> ParseTopLevel() {
    PathExpr path;
    // A top-level query must be anchored: '/step...' or '//step...'.
    if (Peek().kind == TokenKind::kSlash) {
      Advance();
      path.absolute_child_anchor = true;
    } else if (Peek().kind == TokenKind::kDoubleSlash) {
      Advance();
      path.absolute_child_anchor = false;
    } else {
      return Error("query must start with '/' or '//'");
    }
    TWIGM_RETURN_IF_ERROR(ParseSteps(/*first_axis=*/path.absolute_child_anchor
                                         ? Axis::kChild
                                         : Axis::kDescendant,
                                     &path));
    if (Peek().kind != TokenKind::kEnd) {
      return Error(std::string("unexpected ") +
                   TokenKindToString(Peek().kind));
    }
    return path;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " in query '" +
                              std::string(query_) + "'");
  }

  // Parses "Step (('/'|'//') Step)*" into `path`; the first step's axis is
  // `first_axis` (already consumed by the caller).
  Status ParseSteps(Axis first_axis, PathExpr* path) {
    Axis axis = first_axis;
    while (true) {
      Step step;
      step.axis = axis;
      TWIGM_RETURN_IF_ERROR(ParseStep(&step));
      const bool was_attribute = step.kind == NodeTestKind::kAttribute;
      path->steps.push_back(std::move(step));
      if (Peek().kind == TokenKind::kSlash) {
        axis = Axis::kChild;
      } else if (Peek().kind == TokenKind::kDoubleSlash) {
        axis = Axis::kDescendant;
      } else {
        return Status::Ok();
      }
      if (was_attribute) {
        return Error("an attribute test must be the last step of a path");
      }
      Advance();
    }
  }

  Status ParseStep(Step* step) {
    switch (Peek().kind) {
      case TokenKind::kStar:
        Advance();
        step->kind = NodeTestKind::kWildcard;
        break;
      case TokenKind::kName:
        step->kind = NodeTestKind::kName;
        step->name = Advance().text;
        break;
      case TokenKind::kAt: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected attribute name after '@'");
        }
        step->kind = NodeTestKind::kAttribute;
        step->name = Advance().text;
        if (step->axis == Axis::kDescendant) {
          return Error("'//@name' is not supported; attributes are reached "
                       "with '/@name'");
        }
        break;
      }
      default:
        return Error(std::string("expected a step, found ") +
                     TokenKindToString(Peek().kind));
    }
    while (Peek().kind == TokenKind::kLBracket) {
      if (step->kind == NodeTestKind::kAttribute) {
        return Error("predicates cannot be applied to an attribute test");
      }
      Advance();
      Predicate pred;
      TWIGM_RETURN_IF_ERROR(ParsePredicate(&pred));
      if (Peek().kind != TokenKind::kRBracket) {
        return Error(std::string("expected ']', found ") +
                     TokenKindToString(Peek().kind));
      }
      Advance();
      step->predicates.push_back(std::move(pred));
    }
    return Status::Ok();
  }

  Status ParsePredicate(Predicate* pred) {
    // '.' CmpOp Literal — self value test.
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      pred->self_test = true;
      TWIGM_RETURN_IF_ERROR(ParseValueTest(/*required=*/true, pred));
      return Status::Ok();
    }
    // Relative path, optionally './/'-anchored, optionally compared.
    Axis first_axis = Axis::kChild;
    if (Peek().kind == TokenKind::kDoubleSlash) {
      // Allow the common shorthand '[//x]' meaning a descendant of the
      // context node (XPath would spell it './/x').
      Advance();
      first_axis = Axis::kDescendant;
    } else if (Peek().kind == TokenKind::kSlash) {
      return Error("predicate paths are relative; remove the leading '/'");
    }
    TWIGM_RETURN_IF_ERROR(ParseSteps(first_axis, &pred->path));
    TWIGM_RETURN_IF_ERROR(ParseValueTest(/*required=*/false, pred));
    return Status::Ok();
  }

  Status ParseValueTest(bool required, Predicate* pred) {
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = CmpOp::kEq; break;
      case TokenKind::kNe: op = CmpOp::kNe; break;
      case TokenKind::kLt: op = CmpOp::kLt; break;
      case TokenKind::kLe: op = CmpOp::kLe; break;
      case TokenKind::kGt: op = CmpOp::kGt; break;
      case TokenKind::kGe: op = CmpOp::kGe; break;
      default:
        if (required) {
          return Error("expected a comparison operator after '.'");
        }
        return Status::Ok();
    }
    Advance();
    if (Peek().kind == TokenKind::kStringLiteral) {
      pred->literal = Advance().text;
      pred->literal_is_number = false;
    } else if (Peek().kind == TokenKind::kNumber) {
      pred->literal = Advance().text;
      pred->literal_is_number = true;
    } else {
      return Error("expected a string or number literal after comparison");
    }
    pred->has_value_test = true;
    pred->op = op;
    return Status::Ok();
  }

  std::string_view query_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParseQuery(std::string_view query) {
  Result<std::vector<Token>> tokens = Tokenize(query);
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(query, std::move(tokens).value());
  return impl.ParseTopLevel();
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string ToString(const Predicate& pred) {
  std::string out = "[";
  if (pred.self_test) {
    out += ".";
  } else {
    // Relative path: render without a leading axis for child, '//' for
    // descendant anchoring.
    bool first = true;
    for (const Step& s : pred.path.steps) {
      if (!first || s.axis == Axis::kDescendant) {
        out += s.axis == Axis::kChild ? "/" : "//";
      }
      out += ToString(s);
      first = false;
    }
  }
  if (pred.has_value_test) {
    out += CmpOpToString(pred.op);
    if (pred.literal_is_number) {
      out += pred.literal;
    } else {
      out += "\"" + pred.literal + "\"";
    }
  }
  out += "]";
  return out;
}

std::string ToString(const Step& step) {
  std::string out;
  switch (step.kind) {
    case NodeTestKind::kName:
      out = step.name;
      break;
    case NodeTestKind::kWildcard:
      out = "*";
      break;
    case NodeTestKind::kAttribute:
      out = "@" + step.name;
      break;
  }
  for (const Predicate& p : step.predicates) {
    out += ToString(p);
  }
  return out;
}

std::string ToString(const PathExpr& path) {
  std::string out;
  bool first = true;
  for (const Step& s : path.steps) {
    if (first) {
      out += (path.absolute_child_anchor ? "/" : "//");
    } else {
      out += (s.axis == Axis::kChild ? "/" : "//");
    }
    out += ToString(s);
    first = false;
  }
  return out;
}

}  // namespace twigm::xpath
