// Tokenizer for the supported XPath fragment.

#ifndef TWIGM_XPATH_LEXER_H_
#define TWIGM_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace twigm::xpath {

enum class TokenKind {
  kSlash,         // /
  kDoubleSlash,   // //
  kStar,          // *
  kName,          // element/attribute name
  kAt,            // @
  kDot,           // .
  kLBracket,      // [
  kRBracket,      // ]
  kEq,            // =
  kNe,            // !=
  kLt,            // <
  kLe,            // <=
  kGt,            // >
  kGe,            // >=
  kStringLiteral, // "..." or '...'
  kNumber,        // 123 or 1.5
  kPipe,          // | (top-level union separator)
  kEnd,           // end of input
};

/// Returns a short display name for `kind` ("'//'", "name", ...).
const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // name text, literal contents (unquoted), number text
  size_t offset = 0;  // byte offset in the query string, for errors
};

/// Tokenizes `query`. Fails on unknown characters or unterminated literals.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace twigm::xpath

#endif  // TWIGM_XPATH_LEXER_H_
