// Query-tree model of Definition 4.1.
//
// An XP{/,//,*,[]} query is a tree: nodes carry a name ('*' or a tag), an
// incoming-edge axis ('/' or '//'), and children (predicates plus the
// continuation of the output path). One node is the *return node* (sol);
// the root-to-sol spine is the output path, and every off-spine subtree is
// an existential predicate. Extensions per the paper's implementation notes:
// attribute nodes and value tests on nodes.

#ifndef TWIGM_XPATH_QUERY_TREE_H_
#define TWIGM_XPATH_QUERY_TREE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"

namespace twigm::xpath {

/// A node of the query tree. Owned by its parent (the root by QueryTree).
struct QueryNode {
  /// Element tag, attribute name, or "*" for a wildcard.
  std::string name;
  bool is_wildcard = false;
  bool is_attribute = false;

  /// ζ(v): label of the incoming edge (axis from the parent).
  Axis axis = Axis::kChild;

  QueryNode* parent = nullptr;
  std::vector<std::unique_ptr<QueryNode>> children;

  /// True iff this node lies on the root→sol output path.
  bool on_output_path = false;

  /// Optional value test: the node's direct text (or attribute value)
  /// compared against `literal` with `op`.
  bool has_value_test = false;
  CmpOp op = CmpOp::kEq;
  std::string literal;
  bool literal_is_number = false;

  /// Pre-order index within the tree, assigned at compile time.
  int index = -1;

  /// True iff the node has more than one child or is the return node
  /// (the paper's "branching node").
  bool IsBranching(const QueryNode* sol) const {
    return children.size() > 1 || this == sol;
  }
};

/// A compiled query: owns the node tree, identifies root and sol, and caches
/// structural classification used to pick evaluation machinery.
class QueryTree {
 public:
  QueryTree() = default;
  QueryTree(QueryTree&&) = default;
  QueryTree& operator=(QueryTree&&) = default;
  QueryTree(const QueryTree&) = delete;
  QueryTree& operator=(const QueryTree&) = delete;

  /// Builds a query tree from a parsed AST. Fails on constructs outside the
  /// supported fragment (e.g. an attribute as the return node).
  static Result<QueryTree> Compile(const PathExpr& ast);

  /// Convenience: parse + compile.
  static Result<QueryTree> Parse(std::string_view query);

  const QueryNode* root() const { return root_.get(); }
  const QueryNode* sol() const { return sol_; }

  /// Number of nodes, including attribute nodes.
  int node_count() const { return node_count_; }

  /// Structural classification (drives machine/baseline selection).
  bool has_predicates() const { return has_predicates_; }
  bool has_descendant_axis() const { return has_descendant_axis_; }
  bool has_wildcard() const { return has_wildcard_; }
  bool has_value_tests() const { return has_value_tests_; }
  /// True iff the query is a linear path (XP{/,//,*}; no branches).
  bool is_linear() const { return !has_predicates_; }

  /// Renders the tree back to XPath text.
  std::string ToString() const;

  /// Renders the subquery rooted at `node` (including its incoming axis) as
  /// a standalone XPath expression: reparsing the result yields the subtree
  /// as its own query with the same axis on its first step. Used by the
  /// filter subsystem (src/filter/) to demultiplex predicate tails off a
  /// shared trunk.
  static std::string RenderSubquery(const QueryNode* node);

  /// Nodes in pre-order (root first); pointers remain valid while the tree
  /// lives.
  std::vector<const QueryNode*> NodesPreOrder() const;

 private:
  std::unique_ptr<QueryNode> root_;
  QueryNode* sol_ = nullptr;
  int node_count_ = 0;
  bool has_predicates_ = false;
  bool has_descendant_axis_ = false;
  bool has_wildcard_ = false;
  bool has_value_tests_ = false;
};

}  // namespace twigm::xpath

#endif  // TWIGM_XPATH_QUERY_TREE_H_
