// Shared-prefix stream filter engine: evaluates a large set of XPath
// queries over one SAX pass with per-event cost proportional to the number
// of *distinct* active location steps, not the number of queries.
//
// The runtime advances every query simultaneously per modified-SAX event
// using the compiled FilterIndex: one stack of levels per *trie node*
// (rather than per query node per query, as in the product construction of
// MultiQueryProcessor), reusing the paper's level encoding so recursive
// '//' stays polynomial. On startElement(tag, level, id), the children of
// the virtual root and of every *active* trie node (non-empty stack) whose
// name test matches push `level`; a push onto an accepting node emits
// (query, id) immediately — linear queries keep the earliest-emission
// property of PathM. On endElement, stacks whose top carries the closing
// level pop. Queries with predicates demultiplex at their anchor node into
// a per-query BranchM/TwigM tail machine whose root is attached to the
// anchor's stack (set_root_context); a tail only receives events while it
// is *engaged* — its anchor stack is non-empty or it still holds live
// entries — so dormant subscriptions cost nothing per event.
//
// Correctness contract: FilterEngine emits exactly the same
// (query_index, id) set as MultiQueryProcessor over the same queries and
// document (emission order may differ; each pair is emitted once).
//
//   VectorMultiQuerySink sink;
//   auto engine = filter::FilterEngine::Create(queries, &sink);
//   for (chunk : stream) engine.value()->Consume({chunk, /*last=*/false});
//   engine.value()->Consume({{}, /*last=*/true});

#ifndef TWIGM_FILTER_FILTER_ENGINE_H_
#define TWIGM_FILTER_FILTER_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/branch_machine.h"
#include "core/evaluator.h"
#include "core/multi_query.h"
#include "core/twig_machine.h"
#include "filter/filter_index.h"
#include "filter/filter_stats.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace twigm::filter {

/// A compiled query set bound to one input stream. Drop-in replacement for
/// MultiQueryProcessor: same sink, same Consume/Pump/Reset surface.
class FilterEngine {
 public:
  /// Compiles the index and tail machines. `sink` must outlive the engine;
  /// not owned. `options.engine` is ignored (the plan picks per-query
  /// machinery); `options.twig` and `options.sax` apply.
  static Result<std::unique_ptr<FilterEngine>> Create(
      const std::vector<std::string>& queries,
      core::MultiQueryResultSink* sink,
      core::EvaluatorOptions options = core::EvaluatorOptions());

  /// Event-fed mode (the sharded subscription service, src/serve/): builds
  /// the engine WITHOUT an internal parser/driver. The caller delivers
  /// modified-SAX events directly through event_input(); trie and tail
  /// labels are bound to `interner` (not owned; must outlive the engine).
  /// The engine is single-threaded as ever — all event_input() calls,
  /// Intern calls on `interner`, and Reset() must come from one thread at a
  /// time (handoff between threads is fine, see the cross-thread Reset
  /// test). Consume/Pump error out in this mode; `options.sax` is ignored.
  static Result<std::unique_ptr<FilterEngine>> CreateEventFed(
      const std::vector<std::string>& queries,
      core::MultiQueryResultSink* sink, xml::TagInterner* interner,
      core::EvaluatorOptions options = core::EvaluatorOptions());

  FilterEngine(const FilterEngine&) = delete;
  FilterEngine& operator=(const FilterEngine&) = delete;
  ~FilterEngine();  // out-of-line: ExportHandles is incomplete here

  /// Consumes one chunk of the document (chunk.last declares end of input);
  /// results fan out to the sink tagged by query index, as soon as each
  /// query proves them. Errors out in event-fed mode.
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Clears all runtime state (and the parser, when the engine owns one)
  /// for a new document.
  void Reset();

  /// Modified-SAX entry point. In parser mode the internal driver feeds it;
  /// event-fed callers (src/serve/ shard workers) dispatch events here with
  /// levels and pre-order ids already assigned (EventDriver semantics).
  xml::StreamEventSink* event_input() { return event_sink_.get(); }

  /// The stream-offset word match emissions are stamped from. Event-fed
  /// callers store each event's byte offset here before dispatching it so
  /// MatchInfo::byte_offset matches the parser-owned flow.
  uint64_t* offset_slot() { return offset_slot_; }

  size_t query_count() const { return index_.plans().size(); }
  uint64_t total_results() const { return total_results_; }

  const FilterIndex& index() const { return index_; }
  const QueryPlan& plan(size_t query_index) const {
    return index_.plans()[query_index];
  }
  const FilterRuntimeStats& runtime_stats() const { return rstats_; }

  /// Exports the runtime accounting into `registry` (prefix "filter.").
  /// Registers instruments on first call, refreshes values on later calls
  /// (same contract as XPathStreamProcessor::ExportMetrics).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  /// Optional: per-trie-node level windows from static analysis, indexed by
  /// trie node id. Events outside a node's window skip its push. Windows
  /// must be conservative for the streamed documents (they are, for
  /// documents valid w.r.t. the analyzed DTD). Empty = no pruning.
  void set_trie_level_bounds(core::LevelBounds bounds) {
    trie_level_bounds_ = std::move(bounds);
  }

  /// Machine graph of the demultiplexed tail for `query_index`; null when
  /// the query is linear (fully absorbed by the trie) — such queries have
  /// no tail machine to bound.
  const core::MachineGraph* tail_graph(size_t query_index) const;

  /// Applies analyzer level windows (indexed by machine-node id, matching
  /// tail_graph(query_index)) to that query's tail machine. No-op for
  /// linear queries.
  void set_tail_level_bounds(size_t query_index, core::LevelBounds bounds);

  /// Optional: per-(trie-node, element) decision table (see
  /// filter/early_decisions.h). In kOn mode
  /// (EvaluatorOptions::enable_early_decisions), qualifying pushes the
  /// table marks kUseless are skipped — sound on documents valid w.r.t.
  /// the compiled DTD.
  void set_trie_decisions(std::shared_ptr<const core::DecisionTable> table);

  /// Installs an earliest-decision table on `query_index`'s tail machine
  /// (mode from EvaluatorOptions::enable_early_decisions). No-op for
  /// linear queries.
  void set_tail_decisions(size_t query_index,
                          std::shared_ptr<const core::DecisionTable> table);

 private:
  // Routes modified-SAX events into the engine.
  class EventSink : public xml::StreamEventSink {
   public:
    explicit EventSink(FilterEngine* owner) : owner_(owner) {}
    void StartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                      const std::vector<xml::Attribute>& attrs) override {
      owner_->OnStartElement(tag, level, id, attrs);
    }
    void EndElement(const xml::TagToken& tag, int level) override {
      owner_->OnEndElement(tag, level);
    }
    void Text(std::string_view text, int level) override {
      owner_->OnText(text, level);
    }
    void EndDocument() override { owner_->OnEndDocument(); }

   private:
    FilterEngine* owner_;
  };

  // Tags one tail machine's results with its query index.
  class TailSink : public core::MatchObserver {
   public:
    TailSink(FilterEngine* owner, size_t index)
        : owner_(owner), index_(index) {}
    void OnResult(const core::MatchInfo& match) override {
      ++owner_->total_results_;
      ++owner_->rstats_.results;
      owner_->sink_->OnResult(index_, match);
    }

   private:
    FilterEngine* owner_;
    size_t index_;
  };

  // One predicate query's demultiplexed tail.
  struct Tail {
    size_t query_index = 0;
    int anchor = -1;  // -1: unshared, always receives events
    bool engaged = false;
    std::unique_ptr<TailSink> sink;
    std::unique_ptr<core::TwigMachine> twig;
    std::unique_ptr<core::BranchMachine> branch;
    xml::StreamEventSink* machine = nullptr;

    uint64_t live_entries() const {
      return twig != nullptr ? twig->stats().live_stack_entries
                             : branch->stats().live_stack_entries;
    }
    void ResetMachine() {
      if (twig != nullptr) twig->Reset();
      if (branch != nullptr) branch->Reset();
    }
  };

  explicit FilterEngine(FilterIndex index);  // out-of-line, see ~FilterEngine

  // Shared construction. `external_interner` null => build and own a
  // parser/driver; non-null => event-fed mode bound to that interner.
  static Result<std::unique_ptr<FilterEngine>> Build(
      const std::vector<std::string>& queries,
      core::MultiQueryResultSink* sink, core::EvaluatorOptions options,
      xml::TagInterner* external_interner);

  void OnStartElement(const xml::TagToken& tag, int level, xml::NodeId id,
                      const std::vector<xml::Attribute>& attrs);
  void OnEndElement(const xml::TagToken& tag, int level);
  void OnText(std::string_view text, int level);
  void OnEndDocument();

  void Activate(int node);
  void Deactivate(int node);
  void Engage(int tail);

  /// Pushes `child` if its edge/level-window tests pass; `stack` is the
  /// parent's stack (null for the virtual root).
  void ConsiderChild(int child, const std::vector<int>* stack, int level);

  void RebuildSymToElem();

  FilterIndex index_;
  core::MultiQueryResultSink* sink_ = nullptr;
  core::EvaluatorOptions options_;

  // Symbol dispatch (DESIGN.md §10): the trie's labels are interned into
  // the parser's tag dictionary at Create. root_postings_[sym] lists the
  // labeled root children for that symbol (a tag interned later — i.e. one
  // appearing in no query — indexes past the vector and matches only
  // wildcards); root_wildcards_ is scanned on every event. Deeper children
  // match by SymbolId compare. trie_bound_ false ⇒ byte-compare fallback.
  bool trie_bound_ = false;
  std::vector<std::vector<int>> root_postings_;
  std::vector<int> root_wildcards_;

  // Runtime trie state: stacks_[n] holds the (ascending) levels of open
  // elements matched at trie node n; active_ lists nodes with non-empty
  // stacks (active_pos_[n] is n's slot in it, -1 when inactive).
  std::vector<std::vector<int>> stacks_;
  std::vector<int> active_;
  std::vector<int> active_pos_;
  core::LevelBounds trie_level_bounds_;
  uint64_t live_trie_entries_ = 0;

  std::vector<Tail> tails_;
  std::vector<std::vector<int>> tails_by_anchor_;  // trie node -> tail idxs
  std::vector<int> always_on_;  // tails with no trunk (anchor == -1)
  std::vector<int> engaged_;    // anchored tails currently receiving events

  std::vector<int> scratch_;  // per-event push/pop worklist

  // Trie decision table (see set_trie_decisions): sym_to_elem_ maps tag
  // symbols onto the table's dense element ids; cur_elem_ is resolved once
  // per start event (-1 = unknown element, no facts).
  std::shared_ptr<const core::DecisionTable> trie_decisions_;
  std::vector<int32_t> sym_to_elem_;
  int32_t cur_elem_ = -1;
  xml::TagInterner* interner_ = nullptr;

  std::unique_ptr<EventSink> event_sink_;
  std::unique_ptr<xml::EventDriver> driver_;
  std::unique_ptr<xml::SaxParser> parser_;

  uint64_t total_results_ = 0;
  FilterRuntimeStats rstats_;

  // Observability (null ⇒ disabled). Trace events use the trie node index
  // as query_node; tail-machine emissions keep their machine-local ids.
  obs::Instrumentation* instr_ = nullptr;
  // Shared stream position (see XPathStreamProcessor::stream_offset_);
  // offset_slot_ points at the instrumentation's slot when attached.
  uint64_t stream_offset_ = 0;
  uint64_t* offset_slot_ = &stream_offset_;

  // Lazily-registered export handles (see ExportMetrics).
  struct ExportHandles;
  mutable std::unique_ptr<ExportHandles> export_;
};

}  // namespace twigm::filter

#endif  // TWIGM_FILTER_FILTER_ENGINE_H_
