#include "filter/filter_index.h"

#include <string>

namespace twigm::filter {

namespace {

core::EdgeCondition EdgeForAxis(xpath::Axis axis) {
  core::EdgeCondition edge;
  edge.exact = axis == xpath::Axis::kChild;
  edge.distance = 1;
  return edge;
}

/// The root→sol output path, root first.
std::vector<const xpath::QueryNode*> Spine(const xpath::QueryTree& tree) {
  std::vector<const xpath::QueryNode*> spine;
  const xpath::QueryNode* node = tree.root();
  while (node != nullptr) {
    spine.push_back(node);
    const xpath::QueryNode* next = nullptr;
    for (const auto& child : node->children) {
      if (child->on_output_path) {
        next = child.get();
        break;
      }
    }
    node = next;
  }
  return spine;
}

/// A spine node is trunk-shareable iff it carries no predicate state of its
/// own: no value test, and its only child is the output-path continuation.
bool IsShareable(const xpath::QueryNode& node) {
  return !node.has_value_test && !node.is_attribute &&
         node.children.size() == 1 && node.children.front()->on_output_path;
}

}  // namespace

int FilterIndex::Intern(int parent, const xpath::QueryNode& step) {
  const core::EdgeCondition edge = EdgeForAxis(step.axis);
  std::vector<int>& siblings =
      parent < 0 ? root_children_ : nodes_[parent].children;
  for (int id : siblings) {
    const StepTrieNode& node = nodes_[id];
    if (node.edge.exact == edge.exact && node.is_wildcard == step.is_wildcard &&
        node.label == step.name) {
      return id;
    }
  }
  StepTrieNode node;
  node.label = step.name;
  node.is_wildcard = step.is_wildcard;
  node.edge = edge;
  node.parent = parent;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  // nodes_ may have reallocated; re-resolve the sibling list.
  (parent < 0 ? root_children_ : nodes_[parent].children).push_back(id);
  return id;
}

void FilterIndex::BindInterner(xml::TagInterner* interner) {
  for (StepTrieNode& node : nodes_) {
    if (!node.is_wildcard) node.symbol = interner->Intern(node.label);
  }
}

Result<FilterIndex> FilterIndex::Build(
    const std::vector<std::string>& queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries given");
  }
  FilterIndex index;
  index.plans_.reserve(queries.size());
  index.stats_.query_count = queries.size();

  for (size_t i = 0; i < queries.size(); ++i) {
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(queries[i]);
    if (!tree.ok()) {
      return Status::InvalidArgument(
          "query #" + std::to_string(i) + ": " + tree.status().ToString());
    }
    const std::vector<const xpath::QueryNode*> spine = Spine(tree.value());

    QueryPlan plan;
    if (tree.value().is_linear() && !tree.value().has_value_tests()) {
      // Fully shared: intern the whole spine; the last node accepts.
      int node = -1;
      for (const xpath::QueryNode* step : spine) {
        node = index.Intern(node, *step);
      }
      index.nodes_[node].accept.push_back(i);
      plan.linear = true;
      plan.anchor = node;
      plan.trunk_steps = static_cast<int>(spine.size());
      index.stats_.total_steps += spine.size();
      ++index.stats_.linear_query_count;
    } else {
      // Shared trunk: the maximal prefix of shareable spine nodes. The
      // first non-shareable node becomes the tail machine's root.
      size_t trunk = 0;
      while (trunk < spine.size() && IsShareable(*spine[trunk])) ++trunk;
      int node = -1;
      for (size_t s = 0; s < trunk; ++s) {
        node = index.Intern(node, *spine[s]);
      }
      plan.anchor = node;
      plan.trunk_steps = static_cast<int>(trunk);
      plan.tail = xpath::QueryTree::RenderSubquery(spine[trunk]);
      plan.tail_kind = !tree.value().has_descendant_axis() &&
                               !tree.value().has_wildcard()
                           ? core::EngineKind::kBranchM
                           : core::EngineKind::kTwigM;
      index.stats_.total_steps += trunk;
      if (node >= 0) {
        ++index.stats_.tail_query_count;
      } else {
        ++index.stats_.unshared_query_count;
      }
    }
    index.plans_.push_back(std::move(plan));
  }
  index.stats_.trie_node_count = index.nodes_.size();
  return index;
}

std::string FilterIndex::ToString() const {
  std::string out;
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const StepTrieNode& node = nodes_[id];
    out += "node " + std::to_string(id) + ": " + node.edge.ToString() + " " +
           node.label + " parent=" + std::to_string(node.parent);
    if (!node.accept.empty()) {
      out += " accepts={";
      for (size_t k = 0; k < node.accept.size(); ++k) {
        if (k > 0) out += ",";
        out += std::to_string(node.accept[k]);
      }
      out += "}";
    }
    out += "\n";
  }
  for (size_t i = 0; i < plans_.size(); ++i) {
    const QueryPlan& plan = plans_[i];
    out += "query " + std::to_string(i) +
           (plan.linear ? ": linear" : ": tail " + plan.tail) +
           " anchor=" + std::to_string(plan.anchor) +
           " trunk_steps=" + std::to_string(plan.trunk_steps) + "\n";
  }
  return out;
}

}  // namespace twigm::filter
