#include "filter/filter_engine.h"

#include <algorithm>

namespace twigm::filter {

Result<std::unique_ptr<FilterEngine>> FilterEngine::Create(
    const std::vector<std::string>& queries, core::MultiQueryResultSink* sink,
    core::EvaluatorOptions options) {
  if (sink == nullptr) {
    return Status::InvalidArgument("FilterEngine requires a result sink");
  }
  Result<FilterIndex> index = FilterIndex::Build(queries);
  if (!index.ok()) return index.status();

  auto engine =
      std::unique_ptr<FilterEngine>(new FilterEngine(std::move(index).value()));
  engine->sink_ = sink;
  engine->options_ = options;

  const size_t node_count = engine->index_.nodes().size();
  engine->stacks_.resize(node_count);
  engine->active_pos_.assign(node_count, -1);
  engine->tails_by_anchor_.resize(node_count);

  // Build the demultiplexed tail machines. stacks_ is never resized after
  // this point, so the root-context pointers stay valid.
  const std::vector<QueryPlan>& plans = engine->index_.plans();
  for (size_t i = 0; i < plans.size(); ++i) {
    const QueryPlan& plan = plans[i];
    if (plan.linear) continue;
    Result<xpath::QueryTree> tail_tree = xpath::QueryTree::Parse(plan.tail);
    if (!tail_tree.ok()) {
      return Status::Internal("query #" + std::to_string(i) +
                              ": tail re-parse failed: " + plan.tail + ": " +
                              tail_tree.status().ToString());
    }
    Tail tail;
    tail.query_index = i;
    tail.anchor = plan.anchor;
    tail.sink = std::make_unique<TailSink>(engine.get(), i);
    const std::vector<int>* context =
        plan.anchor >= 0 ? &engine->stacks_[plan.anchor] : nullptr;
    if (plan.tail_kind == core::EngineKind::kBranchM) {
      Result<std::unique_ptr<core::BranchMachine>> m =
          core::BranchMachine::Create(tail_tree.value(), tail.sink.get());
      if (!m.ok()) return m.status();
      tail.branch = std::move(m).value();
      tail.branch->set_root_context(context);
      tail.machine = tail.branch.get();
    } else {
      Result<std::unique_ptr<core::TwigMachine>> m = core::TwigMachine::Create(
          tail_tree.value(), tail.sink.get(), options.twig);
      if (!m.ok()) return m.status();
      tail.twig = std::move(m).value();
      tail.twig->set_root_context(context);
      tail.machine = tail.twig.get();
    }
    const int tail_index = static_cast<int>(engine->tails_.size());
    if (plan.anchor >= 0) {
      engine->tails_by_anchor_[plan.anchor].push_back(tail_index);
    } else {
      engine->always_on_.push_back(tail_index);
    }
    engine->tails_.push_back(std::move(tail));
  }

  engine->event_sink_ = std::make_unique<EventSink>(engine.get());
  engine->driver_ = std::make_unique<xml::EventDriver>(engine->event_sink_.get());
  engine->parser_ =
      std::make_unique<xml::SaxParser>(engine->driver_.get(), options.sax);
  return engine;
}

Status FilterEngine::Feed(std::string_view chunk) {
  return parser_->Feed(chunk);
}

Status FilterEngine::Finish() { return parser_->Finish(); }

void FilterEngine::Reset() {
  for (std::vector<int>& stack : stacks_) stack.clear();
  active_.clear();
  std::fill(active_pos_.begin(), active_pos_.end(), -1);
  live_trie_entries_ = 0;
  for (Tail& tail : tails_) {
    tail.engaged = false;
    tail.ResetMachine();
  }
  engaged_.clear();
  total_results_ = 0;
  rstats_ = FilterRuntimeStats();
  driver_ = std::make_unique<xml::EventDriver>(event_sink_.get());
  parser_ = std::make_unique<xml::SaxParser>(driver_.get(), options_.sax);
}

void FilterEngine::Activate(int node) {
  active_pos_[node] = static_cast<int>(active_.size());
  active_.push_back(node);
}

void FilterEngine::Deactivate(int node) {
  const int pos = active_pos_[node];
  const int last = active_.back();
  active_[pos] = last;
  active_pos_[last] = pos;
  active_.pop_back();
  active_pos_[node] = -1;
}

void FilterEngine::Engage(int tail) {
  Tail& t = tails_[tail];
  if (t.engaged) return;
  t.engaged = true;
  engaged_.push_back(tail);
}

void FilterEngine::OnStartElement(std::string_view tag, int level,
                                  xml::NodeId id,
                                  const std::vector<xml::Attribute>& attrs) {
  ++rstats_.start_events;
  const std::vector<StepTrieNode>& nodes = index_.nodes();

  // Collect the qualifying pushes first: an entry pushed by this event can
  // never enable another push at the same level (edge distances are ≥ 1),
  // and deferring keeps the active list stable while we scan it.
  scratch_.clear();
  for (int child : index_.root_children()) {
    const StepTrieNode& c = nodes[child];
    if (!c.is_wildcard && c.label != tag) continue;
    if (c.edge.Satisfies(level)) scratch_.push_back(child);
  }
  for (int n : active_) {
    const std::vector<int>& stack = stacks_[n];
    for (int child : nodes[n].children) {
      const StepTrieNode& c = nodes[child];
      if (!c.is_wildcard && c.label != tag) continue;
      // Stack levels are strictly increasing (open ancestors), so '≥'
      // edges test the shallowest entry and '=' edges binary-search.
      bool qualified;
      if (!c.edge.exact) {
        qualified = level - stack.front() >= c.edge.distance;
      } else {
        qualified = std::binary_search(stack.begin(), stack.end(),
                                       level - c.edge.distance);
      }
      if (qualified) scratch_.push_back(child);
    }
  }

  for (int n : scratch_) {
    std::vector<int>& stack = stacks_[n];
    stack.push_back(level);
    ++rstats_.trie_pushes;
    ++live_trie_entries_;
    if (stack.size() == 1) Activate(n);
    const StepTrieNode& node = nodes[n];
    for (size_t q : node.accept) {
      ++total_results_;
      ++rstats_.results;
      sink_->OnResult(q, id);
    }
    for (int t : tails_by_anchor_[n]) Engage(t);
  }

  for (int t : always_on_) tails_[t].machine->StartElement(tag, level, id, attrs);
  for (int t : engaged_) tails_[t].machine->StartElement(tag, level, id, attrs);

  rstats_.sum_active_nodes += active_.size();
  rstats_.peak_active_nodes =
      std::max<uint64_t>(rstats_.peak_active_nodes, active_.size());
  rstats_.peak_trie_entries =
      std::max(rstats_.peak_trie_entries, live_trie_entries_);
  rstats_.peak_engaged_tails = std::max<uint64_t>(
      rstats_.peak_engaged_tails, engaged_.size() + always_on_.size());
}

void FilterEngine::OnEndElement(std::string_view tag, int level) {
  ++rstats_.end_events;

  // Tails first: their entries are strictly deeper in the pattern than the
  // trunk entries they hang off, mirroring TwigM's leaves-first δe order.
  for (int t : always_on_) tails_[t].machine->EndElement(tag, level);
  for (int t : engaged_) tails_[t].machine->EndElement(tag, level);

  // Pop every trie stack whose top carries the closing level. Only the
  // element that pushed the entry can close at this level, so no tag check
  // is needed. Collect first: popping deactivates nodes mid-scan.
  scratch_.clear();
  for (int n : active_) {
    if (stacks_[n].back() == level) scratch_.push_back(n);
  }
  for (int n : scratch_) {
    stacks_[n].pop_back();
    ++rstats_.trie_pops;
    --live_trie_entries_;
    if (stacks_[n].empty()) Deactivate(n);
  }

  // Disengage drained tails: anchor gone and no live entries left. (All
  // tail entries are nested inside some anchor entry, so this converges.)
  for (size_t i = engaged_.size(); i-- > 0;) {
    Tail& t = tails_[engaged_[i]];
    if (stacks_[t.anchor].empty() && t.live_entries() == 0) {
      t.engaged = false;
      engaged_[i] = engaged_.back();
      engaged_.pop_back();
    }
  }
}

void FilterEngine::OnText(std::string_view text, int level) {
  for (int t : always_on_) tails_[t].machine->Text(text, level);
  for (int t : engaged_) tails_[t].machine->Text(text, level);
}

void FilterEngine::OnEndDocument() {
  for (Tail& tail : tails_) tail.machine->EndDocument();
}

}  // namespace twigm::filter
