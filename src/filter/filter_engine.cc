#include "filter/filter_engine.h"

#include <algorithm>

#include "core/invariants.h"

namespace twigm::filter {

// Registered-once export instruments; values are refreshed per call.
struct FilterEngine::ExportHandles {
  obs::MetricsRegistry* registry = nullptr;
  size_t registered_count = 0;  // registry size right after registration
  obs::Counter* start_events = nullptr;
  obs::Counter* end_events = nullptr;
  obs::Counter* trie_pushes = nullptr;
  obs::Counter* trie_pops = nullptr;
  obs::Counter* results = nullptr;
  obs::Counter* sum_active_nodes = nullptr;
  obs::Counter* peak_active_nodes = nullptr;
  obs::Counter* peak_trie_entries = nullptr;
  obs::Counter* peak_engaged_tails = nullptr;
  obs::Counter* trie_pushes_skipped = nullptr;
  obs::Counter* hotpath_interner_symbols = nullptr;
  obs::Counter* hotpath_pool_entries = nullptr;
};

FilterEngine::FilterEngine(FilterIndex index) : index_(std::move(index)) {}

FilterEngine::~FilterEngine() = default;

Result<std::unique_ptr<FilterEngine>> FilterEngine::Create(
    const std::vector<std::string>& queries, core::MultiQueryResultSink* sink,
    core::EvaluatorOptions options) {
  return Build(queries, sink, options, nullptr);
}

Result<std::unique_ptr<FilterEngine>> FilterEngine::CreateEventFed(
    const std::vector<std::string>& queries, core::MultiQueryResultSink* sink,
    xml::TagInterner* interner, core::EvaluatorOptions options) {
  if (interner == nullptr) {
    return Status::InvalidArgument(
        "FilterEngine::CreateEventFed requires a tag interner");
  }
  return Build(queries, sink, options, interner);
}

Result<std::unique_ptr<FilterEngine>> FilterEngine::Build(
    const std::vector<std::string>& queries, core::MultiQueryResultSink* sink,
    core::EvaluatorOptions options, xml::TagInterner* external_interner) {
  if (sink == nullptr) {
    return Status::InvalidArgument("FilterEngine requires a result sink");
  }
  Result<FilterIndex> index = FilterIndex::Build(queries);
  if (!index.ok()) return index.status();

  auto engine =
      std::unique_ptr<FilterEngine>(new FilterEngine(std::move(index).value()));
  engine->sink_ = sink;
  engine->options_ = options;
  engine->instr_ = options.instrumentation;
  engine->offset_slot_ = engine->instr_ != nullptr
                             ? engine->instr_->byte_offset_slot()
                             : &engine->stream_offset_;

  const size_t node_count = engine->index_.nodes().size();
  engine->stacks_.resize(node_count);
  engine->active_pos_.assign(node_count, -1);
  engine->tails_by_anchor_.resize(node_count);

  // Build the demultiplexed tail machines. stacks_ is never resized after
  // this point, so the root-context pointers stay valid.
  const std::vector<QueryPlan>& plans = engine->index_.plans();
  for (size_t i = 0; i < plans.size(); ++i) {
    const QueryPlan& plan = plans[i];
    if (plan.linear) continue;
    Result<xpath::QueryTree> tail_tree = xpath::QueryTree::Parse(plan.tail);
    if (!tail_tree.ok()) {
      return Status::Internal("query #" + std::to_string(i) +
                              ": tail re-parse failed: " + plan.tail + ": " +
                              tail_tree.status().ToString());
    }
    Tail tail;
    tail.query_index = i;
    tail.anchor = plan.anchor;
    tail.sink = std::make_unique<TailSink>(engine.get(), i);
    const std::vector<int>* context =
        plan.anchor >= 0 ? &engine->stacks_[plan.anchor] : nullptr;
    if (plan.tail_kind == core::EngineKind::kBranchM) {
      Result<std::unique_ptr<core::BranchMachine>> m =
          core::BranchMachine::Create(tail_tree.value(), tail.sink.get());
      if (!m.ok()) return m.status();
      tail.branch = std::move(m).value();
      tail.branch->set_root_context(context);
      tail.branch->set_stream_offset(engine->offset_slot_);
      tail.machine = tail.branch.get();
    } else {
      Result<std::unique_ptr<core::TwigMachine>> m = core::TwigMachine::Create(
          tail_tree.value(), tail.sink.get(), options.twig);
      if (!m.ok()) return m.status();
      tail.twig = std::move(m).value();
      tail.twig->set_root_context(context);
      tail.twig->set_stream_offset(engine->offset_slot_);
      tail.machine = tail.twig.get();
    }
    const int tail_index = static_cast<int>(engine->tails_.size());
    if (plan.anchor >= 0) {
      engine->tails_by_anchor_[plan.anchor].push_back(tail_index);
    } else {
      engine->always_on_.push_back(tail_index);
    }
    engine->tails_.push_back(std::move(tail));
  }

  engine->event_sink_ = std::make_unique<EventSink>(engine.get());
  xml::TagInterner* interner = external_interner;
  if (external_interner == nullptr) {
    engine->driver_ =
        std::make_unique<xml::EventDriver>(engine->event_sink_.get());
    engine->driver_->set_instrumentation(engine->instr_);
    engine->parser_ =
        std::make_unique<xml::SaxParser>(engine->driver_.get(), options.sax);
    engine->parser_->set_offset_slot(engine->offset_slot_);
    interner = engine->parser_->interner();
  }

  // Bind every trie label and tail machine to the stream's tag dictionary,
  // then build the root-children postings so each start event resolves its
  // candidate first steps by one indexed lookup instead of scanning (and
  // byte-comparing) the whole root fan-out.
  engine->index_.BindInterner(interner);
  engine->interner_ = interner;
  for (Tail& tail : engine->tails_) {
    if (tail.twig != nullptr) tail.twig->BindInterner(interner);
    if (tail.branch != nullptr) tail.branch->BindInterner(interner);
  }
  engine->root_postings_.assign(interner->size(), {});
  for (int child : engine->index_.root_children()) {
    const StepTrieNode& c = engine->index_.nodes()[child];
    if (c.is_wildcard) {
      engine->root_wildcards_.push_back(child);
    } else {
      engine->root_postings_[c.symbol].push_back(child);
    }
  }
  engine->trie_bound_ = true;

  if (engine->instr_ != nullptr) {
    engine->instr_->EnsureNodeSlots(node_count);
  }
  return engine;
}

Status FilterEngine::Consume(const xml::InputChunk& chunk) {
  if (parser_ == nullptr) {
    return Status::InvalidArgument(
        "event-fed FilterEngine has no parser; dispatch via event_input()");
  }
  obs::TimerScope parse(instr_ != nullptr
                            ? instr_->stage_slot(obs::Stage::kParse)
                            : nullptr);
  return parser_->Consume(chunk);
}

Status FilterEngine::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

void FilterEngine::Reset() {
  for (std::vector<int>& stack : stacks_) stack.clear();
  active_.clear();
  std::fill(active_pos_.begin(), active_pos_.end(), -1);
  live_trie_entries_ = 0;
  for (Tail& tail : tails_) {
    tail.engaged = false;
    tail.ResetMachine();
  }
  engaged_.clear();
  total_results_ = 0;
  rstats_ = FilterRuntimeStats();
  stream_offset_ = 0;
  cur_elem_ = -1;
  // Rewind the parser and driver in place: the parser's interner carries
  // the trie's and tail machines' symbol bindings, and its buffers (plus
  // every trie stack's capacity) stay warm across documents. Event-fed
  // engines own neither; their external interner outlives them.
  if (parser_ != nullptr) parser_->Reset();
  if (driver_ != nullptr) driver_->Reset();
}

// hotpath
void FilterEngine::Activate(int node) {
  active_pos_[node] = static_cast<int>(active_.size());
  active_.push_back(node);
}

// hotpath
void FilterEngine::Deactivate(int node) {
  const int pos = active_pos_[node];
  const int last = active_.back();
  active_[pos] = last;
  active_pos_[last] = pos;
  active_.pop_back();
  active_pos_[node] = -1;
}

// hotpath
void FilterEngine::Engage(int tail) {
  Tail& t = tails_[tail];
  if (t.engaged) return;
  t.engaged = true;
  engaged_.push_back(tail);
}

// hotpath
void FilterEngine::ConsiderChild(int child, const std::vector<int>* stack,
                                 int level) {
  const StepTrieNode& c = index_.nodes()[child];
  if (!trie_level_bounds_.empty() &&
      !trie_level_bounds_[static_cast<size_t>(child)].Allows(level)) {
    return;
  }
  bool qualified;
  if (stack == nullptr) {
    qualified = c.edge.Satisfies(level);
  } else if (!c.edge.exact) {
    // Stack levels are strictly increasing (open ancestors), so '≥' edges
    // test the shallowest entry and '=' edges binary-search.
    qualified = level - stack->front() >= c.edge.distance;
  } else {
    qualified = std::binary_search(stack->begin(), stack->end(),
                                   level - c.edge.distance);
  }
  if (!qualified) return;
  // Earliest-decision skip: the DTD proves no accept or tail anchor can
  // complete below this element, so the entry would only ever be popped.
  if (cur_elem_ >= 0 &&
      options_.enable_early_decisions == core::EarlyDecisionMode::kOn &&
      trie_decisions_->at(static_cast<size_t>(child),
                          static_cast<size_t>(cur_elem_))
          .useless()) {
    ++rstats_.trie_pushes_skipped;
    return;
  }
  scratch_.push_back(child);
}

// hotpath
void FilterEngine::OnStartElement(const xml::TagToken& tag, int level,
                                  xml::NodeId id,
                                  const std::vector<xml::Attribute>& attrs) {
  ++rstats_.start_events;
  cur_elem_ = -1;
  if (trie_decisions_ != nullptr && tag.symbol != xml::kNoSymbol &&
      tag.symbol < sym_to_elem_.size()) {
    cur_elem_ = sym_to_elem_[tag.symbol];
  }
  const std::vector<StepTrieNode>& nodes = index_.nodes();

  // Collect the qualifying pushes first: an entry pushed by this event can
  // never enable another push at the same level (edge distances are ≥ 1),
  // and deferring keeps the active list stable while we scan it.
  scratch_.clear();
  const bool have_symbol = trie_bound_ && tag.symbol != xml::kNoSymbol;
  if (have_symbol) {
    // Postings dispatch: a symbol past the bind-time range names a tag no
    // query mentions, so only wildcard first steps can match it.
    if (tag.symbol < root_postings_.size()) {
      for (int child : root_postings_[tag.symbol]) {
        ConsiderChild(child, nullptr, level);
      }
    }
    for (int child : root_wildcards_) ConsiderChild(child, nullptr, level);
  } else {
    for (int child : index_.root_children()) {
      const StepTrieNode& c = nodes[child];
      if (!c.is_wildcard && c.label != tag.text) continue;
      ConsiderChild(child, nullptr, level);
    }
  }
  for (int n : active_) {
    const std::vector<int>& stack = stacks_[n];
    for (int child : nodes[n].children) {
      const StepTrieNode& c = nodes[child];
      if (!c.is_wildcard) {
        if (have_symbol ? c.symbol != tag.symbol : c.label != tag.text) {
          continue;
        }
      }
      ConsiderChild(child, &stack, level);
    }
  }

  for (int n : scratch_) {
    std::vector<int>& stack = stacks_[n];
    // Ancestor-ordering lemma, trie form: a node's stack holds the levels
    // of open matched elements, strictly increasing bottom to top.
    TWIGM_INVARIANT(stack.empty() || stack.back() < level,
                    "trie stack levels not strictly increasing at push",
                    *offset_slot_);
    stack.push_back(level);
    ++rstats_.trie_pushes;
    ++live_trie_entries_;
    if (stack.size() == 1) Activate(n);
    if (instr_ != nullptr) {
      instr_->NoteNodeDepth(n, stack.size());
      instr_->Trace(obs::TraceEvent::Kind::kStackPush, n, level, id,
                    stack.size());
    }
    const StepTrieNode& node = nodes[n];
    for (size_t q : node.accept) {
      ++total_results_;
      ++rstats_.results;
      sink_->OnResult(q, core::MatchInfo{id, *offset_slot_, n});
      if (instr_ != nullptr) {
        instr_->Trace(obs::TraceEvent::Kind::kEmit, n, level, id, q);
      }
    }
    for (int t : tails_by_anchor_[n]) Engage(t);
  }

  for (int t : always_on_) tails_[t].machine->StartElement(tag, level, id, attrs);
  for (int t : engaged_) tails_[t].machine->StartElement(tag, level, id, attrs);

  rstats_.sum_active_nodes += active_.size();
  rstats_.peak_active_nodes =
      std::max<uint64_t>(rstats_.peak_active_nodes, active_.size());
  rstats_.peak_trie_entries =
      std::max(rstats_.peak_trie_entries, live_trie_entries_);
  rstats_.peak_engaged_tails = std::max<uint64_t>(
      rstats_.peak_engaged_tails, engaged_.size() + always_on_.size());
}

// hotpath
void FilterEngine::OnEndElement(const xml::TagToken& tag, int level) {
  ++rstats_.end_events;

  // Tails first: their entries are strictly deeper in the pattern than the
  // trunk entries they hang off, mirroring TwigM's leaves-first δe order.
  for (int t : always_on_) tails_[t].machine->EndElement(tag, level);
  for (int t : engaged_) tails_[t].machine->EndElement(tag, level);

  // Pop every trie stack whose top carries the closing level. Only the
  // element that pushed the entry can close at this level, so no tag check
  // is needed. Collect first: popping deactivates nodes mid-scan.
  scratch_.clear();
  for (int n : active_) {
    if (stacks_[n].back() == level) scratch_.push_back(n);
  }
  for (int n : scratch_) {
    stacks_[n].pop_back();
    ++rstats_.trie_pops;
    --live_trie_entries_;
    if (instr_ != nullptr) {
      instr_->Trace(obs::TraceEvent::Kind::kStackPop, n, level, 0,
                    stacks_[n].size());
    }
    if (stacks_[n].empty()) Deactivate(n);
  }

  // Disengage drained tails: anchor gone and no live entries left. (All
  // tail entries are nested inside some anchor entry, so this converges.)
  for (size_t i = engaged_.size(); i-- > 0;) {
    Tail& t = tails_[engaged_[i]];
    if (stacks_[t.anchor].empty() && t.live_entries() == 0) {
      t.engaged = false;
      engaged_[i] = engaged_.back();
      engaged_.pop_back();
    }
  }
}

// hotpath
void FilterEngine::OnText(std::string_view text, int level) {
  for (int t : always_on_) tails_[t].machine->Text(text, level);
  for (int t : engaged_) tails_[t].machine->Text(text, level);
}

void FilterEngine::OnEndDocument() {
  for (Tail& tail : tails_) tail.machine->EndDocument();
}

const core::MachineGraph* FilterEngine::tail_graph(size_t query_index) const {
  for (const Tail& tail : tails_) {
    if (tail.query_index != query_index) continue;
    return tail.twig != nullptr ? &tail.twig->graph() : &tail.branch->graph();
  }
  return nullptr;
}

void FilterEngine::set_tail_level_bounds(size_t query_index,
                                         core::LevelBounds bounds) {
  for (Tail& tail : tails_) {
    if (tail.query_index != query_index) continue;
    if (tail.twig != nullptr) {
      tail.twig->set_level_bounds(std::move(bounds));
    } else {
      tail.branch->set_level_bounds(std::move(bounds));
    }
    return;
  }
}

void FilterEngine::set_trie_decisions(
    std::shared_ptr<const core::DecisionTable> table) {
  trie_decisions_ = std::move(table);
  RebuildSymToElem();
}

void FilterEngine::set_tail_decisions(
    size_t query_index, std::shared_ptr<const core::DecisionTable> table) {
  for (Tail& tail : tails_) {
    if (tail.query_index != query_index) continue;
    if (tail.twig != nullptr) {
      tail.twig->set_decisions(std::move(table),
                               options_.enable_early_decisions);
    } else {
      tail.branch->set_decisions(std::move(table),
                                 options_.enable_early_decisions);
    }
    return;
  }
}

void FilterEngine::RebuildSymToElem() {
  sym_to_elem_.clear();
  if (trie_decisions_ == nullptr || interner_ == nullptr) return;
  const std::vector<std::string>& names = trie_decisions_->element_names();
  for (size_t e = 0; e < names.size(); ++e) {
    const xml::SymbolId s = interner_->Intern(names[e]);
    if (sym_to_elem_.size() <= s) sym_to_elem_.resize(s + 1, -1);
    sym_to_elem_[s] = static_cast<int32_t>(e);
  }
}

void FilterEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  // See XPathStreamProcessor::ExportMetrics for the re-registration guard.
  if (export_ == nullptr || export_->registry != registry ||
      registry->instrument_count() < export_->registered_count) {
    export_ = std::make_unique<ExportHandles>();
    export_->registry = registry;
    export_->start_events = registry->RegisterCounter("filter.start_events");
    export_->end_events = registry->RegisterCounter("filter.end_events");
    export_->trie_pushes = registry->RegisterCounter("filter.trie_pushes");
    export_->trie_pops = registry->RegisterCounter("filter.trie_pops");
    export_->results = registry->RegisterCounter("filter.results");
    export_->sum_active_nodes =
        registry->RegisterCounter("filter.sum_active_nodes");
    export_->peak_active_nodes =
        registry->RegisterCounter("filter.peak_active_nodes");
    export_->peak_trie_entries =
        registry->RegisterCounter("filter.peak_trie_entries");
    export_->peak_engaged_tails =
        registry->RegisterCounter("filter.peak_engaged_tails");
    export_->trie_pushes_skipped =
        registry->RegisterCounter("filter.trie_pushes_skipped");
    export_->hotpath_interner_symbols =
        registry->RegisterCounter("hotpath.interner_symbols");
    export_->hotpath_pool_entries =
        registry->RegisterCounter("hotpath.pool_entries");
    export_->registered_count = registry->instrument_count();
  }
  export_->start_events->Set(rstats_.start_events);
  export_->end_events->Set(rstats_.end_events);
  export_->trie_pushes->Set(rstats_.trie_pushes);
  export_->trie_pops->Set(rstats_.trie_pops);
  export_->results->Set(rstats_.results);
  export_->sum_active_nodes->Set(rstats_.sum_active_nodes);
  export_->peak_active_nodes->Set(rstats_.peak_active_nodes);
  export_->peak_trie_entries->Set(rstats_.peak_trie_entries);
  export_->peak_engaged_tails->Set(rstats_.peak_engaged_tails);
  export_->trie_pushes_skipped->Set(rstats_.trie_pushes_skipped);
  export_->hotpath_interner_symbols->Set(
      parser_ != nullptr ? parser_->interner()->size() : 0);
  uint64_t pool = 0;
  for (const Tail& tail : tails_) {
    if (tail.twig != nullptr) pool += tail.twig->pool_entries();
  }
  export_->hotpath_pool_entries->Set(pool);
}

}  // namespace twigm::filter
