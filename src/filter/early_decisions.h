// Earliest-query-answering for the shared-prefix filter engine.
//
// Two compiled artifacts (DESIGN.md §13):
//
//   * a trie decision table — per (step-trie node, DTD element) a kUseless
//     flag meaning "a push here can never matter below this element": the
//     node accepts no query, anchors no predicate tail, and no descendant
//     trie node that does is DTD-reachable below the element. The engine
//     skips such pushes in kOn mode, shrinking the active-node set.
//   * per-tail decision tables — the machine-level tables of
//     analysis::CompileDecisionTable for every demultiplexed predicate
//     tail, so tail machines emit and drop candidates at the first certain
//     event.
//
// Both trust the DTD exactly as level bounds do (sound on valid documents);
// InstallEarlyDecisions is the one-call hookup used by AnalyzedEngine and
// the subscription shards.

#ifndef TWIGM_FILTER_EARLY_DECISIONS_H_
#define TWIGM_FILTER_EARLY_DECISIONS_H_

#include "analysis/decision_analysis.h"
#include "analysis/dtd_structure.h"
#include "core/decision_table.h"
#include "filter/filter_index.h"

namespace twigm::filter {

class FilterEngine;

/// Compiles the per-(trie-node, element) table for `index` against `dtd`.
/// Only the kUseless flag is populated; rows are indexed by trie node id.
core::DecisionTable CompileTrieDecisions(
    const FilterIndex& index, const analysis::DtdStructure& dtd,
    const analysis::DecisionCompileOptions& options = {});

/// Compiles and installs the trie table plus one machine table per
/// predicate tail. The engine acts on them in the mode chosen by its
/// EvaluatorOptions::enable_early_decisions. Returns the total number of
/// non-default facts installed (for AnalysisStats reporting).
size_t InstallEarlyDecisions(FilterEngine* engine,
                             const analysis::DtdStructure& dtd,
                             const analysis::DecisionCompileOptions& options = {});

}  // namespace twigm::filter

#endif  // TWIGM_FILTER_EARLY_DECISIONS_H_
