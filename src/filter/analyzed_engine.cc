#include "filter/analyzed_engine.h"

#include <utility>

#include "analysis/decision_analysis.h"
#include "filter/early_decisions.h"

namespace twigm::filter {

struct AnalyzedEngine::ExportHandles {
  obs::MetricsRegistry* registry = nullptr;
  size_t registered_count = 0;
  obs::Counter* queries_total = nullptr;
  obs::Counter* queries_unsatisfiable = nullptr;
  obs::Counter* queries_forwarded = nullptr;
  obs::Counter* queries_pruned = nullptr;
  obs::Counter* branches_minimized = nullptr;
  obs::Counter* bounded_trie_nodes = nullptr;
  obs::Counter* bounded_machine_nodes = nullptr;
  obs::Counter* decision_facts = nullptr;
};

AnalyzedEngine::~AnalyzedEngine() = default;

namespace {

size_t CountConstraining(const core::LevelBounds& bounds) {
  size_t n = 0;
  for (const core::LevelRange& r : bounds) {
    if (r.min_level > 1 || r.max_level >= 0) ++n;
  }
  return n;
}

}  // namespace

Result<std::unique_ptr<AnalyzedEngine>> AnalyzedEngine::Create(
    const std::vector<std::string>& queries, core::MultiQueryResultSink* sink,
    const Options& options) {
  if (sink == nullptr) {
    return Status::InvalidArgument("AnalyzedEngine requires a result sink");
  }

  analysis::AnalyzerOptions aopts;
  aopts.dtd = options.dtd;
  aopts.minimize = options.minimize;
  aopts.detect_equivalent = options.detect_equivalent;
  Result<analysis::QuerySetAnalysis> analyzed =
      analysis::AnalyzeQuerySet(queries, aopts);
  if (!analyzed.ok()) return analyzed.status();

  auto engine = std::unique_ptr<AnalyzedEngine>(new AnalyzedEngine());
  engine->sink_ = sink;
  engine->analysis_ = std::move(analyzed).value();
  engine->stats_.queries_total = queries.size();
  engine->stats_.queries_unsatisfiable = engine->analysis_.unsatisfiable;
  engine->stats_.queries_forwarded = engine->analysis_.forwarded;
  engine->stats_.branches_minimized = engine->analysis_.branches_minimized;

  // Collect the surviving representatives and the inner→outer fan-out.
  std::vector<std::string> run_texts;
  std::vector<size_t> inner_of(queries.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < queries.size(); ++i) {
    const analysis::QuerySetAnalysis::PerQuery& per = engine->analysis_.queries[i];
    if (!per.satisfiable || per.forwarded_to != i) continue;
    inner_of[i] = run_texts.size();
    run_texts.push_back(per.minimized);
    engine->fanout_.emplace_back();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const analysis::QuerySetAnalysis::PerQuery& per = engine->analysis_.queries[i];
    if (!per.satisfiable) continue;
    engine->fanout_[inner_of[per.forwarded_to]].push_back(i);
  }

  if (run_texts.empty()) return engine;  // everything pruned: nothing streams

  engine->remap_ = std::make_unique<RemapSink>(engine.get());
  if (options.backend == Backend::kFilter) {
    Result<std::unique_ptr<FilterEngine>> inner = FilterEngine::Create(
        run_texts, engine->remap_.get(), options.evaluator);
    if (!inner.ok()) return inner.status();
    engine->filter_ = std::move(inner).value();
    if (options.dtd != nullptr && options.level_bounds) {
      engine->InstallFilterBounds(*options.dtd);
    }
    if (options.dtd != nullptr &&
        options.evaluator.enable_early_decisions !=
            core::EarlyDecisionMode::kOff) {
      engine->stats_.decision_facts =
          InstallEarlyDecisions(engine->filter_.get(), *options.dtd);
    }
  } else {
    Result<std::unique_ptr<core::MultiQueryProcessor>> inner =
        core::MultiQueryProcessor::Create(run_texts, engine->remap_.get(),
                                          options.evaluator);
    if (!inner.ok()) return inner.status();
    engine->product_ = std::move(inner).value();
    if (options.dtd != nullptr && options.level_bounds) {
      engine->InstallProductBounds(*options.dtd);
    }
    if (options.dtd != nullptr &&
        options.evaluator.enable_early_decisions !=
            core::EarlyDecisionMode::kOff) {
      for (size_t q = 0; q < engine->product_->query_count(); ++q) {
        auto table = std::make_shared<core::DecisionTable>(
            analysis::CompileDecisionTable(engine->product_->graph(q),
                                           *options.dtd));
        engine->stats_.decision_facts += table->facts();
        engine->product_->set_decision_table(q, std::move(table));
      }
    }
  }
  return engine;
}

void AnalyzedEngine::InstallFilterBounds(const analysis::DtdStructure& dtd) {
  // Level-window fixpoint over the step trie, mirroring
  // ComputeMachineLevelBounds: trie nodes are created parents-first, so one
  // index-order sweep sees every parent before its children.
  const std::vector<StepTrieNode>& nodes = filter_->index().nodes();
  core::LevelBounds trie_bounds(nodes.size(), core::LevelRange::Everything());
  std::vector<std::vector<bool>> feasible(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const StepTrieNode& v = nodes[i];
    const int k = v.edge.distance;
    std::vector<bool> base;
    core::LevelRange structural;
    if (v.parent < 0) {
      base = v.edge.exact ? dtd.AtDepthExact(k) : dtd.AtDepthAtLeast(k);
      structural.min_level = k;
      structural.max_level = v.edge.exact ? k : -1;
    } else {
      base = analysis::ReachableFromSet(
          dtd, feasible[static_cast<size_t>(v.parent)], k, v.edge.exact);
      const core::LevelRange& pb = trie_bounds[static_cast<size_t>(v.parent)];
      structural.min_level = pb.min_level + k;
      structural.max_level =
          (v.edge.exact && pb.max_level >= 0) ? pb.max_level + k : -1;
    }
    if (!v.is_wildcard) {
      const int id = dtd.Find(v.label);
      const bool keep = id >= 0 && base[static_cast<size_t>(id)];
      base.assign(dtd.element_count(), false);
      if (keep) base[static_cast<size_t>(id)] = true;
    }
    trie_bounds[i] = analysis::IntersectDepthRange(dtd, base, structural);
    feasible[i] = std::move(base);
  }

  // Predicate tails: anchored below their trunk node's element set and
  // window, or evaluated from the document root when they have no trunk.
  const std::vector<QueryPlan>& plans = filter_->index().plans();
  for (size_t q = 0; q < plans.size(); ++q) {
    const core::MachineGraph* graph = filter_->tail_graph(q);
    if (graph == nullptr) continue;
    core::LevelBounds tail_bounds =
        plans[q].anchor >= 0
            ? analysis::ComputeMachineLevelBounds(
                  *graph, dtd, feasible[static_cast<size_t>(plans[q].anchor)],
                  trie_bounds[static_cast<size_t>(plans[q].anchor)])
            : analysis::ComputeMachineLevelBounds(*graph, dtd);
    stats_.bounded_machine_nodes += CountConstraining(tail_bounds);
    filter_->set_tail_level_bounds(q, std::move(tail_bounds));
  }

  stats_.bounded_trie_nodes = CountConstraining(trie_bounds);
  filter_->set_trie_level_bounds(std::move(trie_bounds));
}

void AnalyzedEngine::InstallProductBounds(const analysis::DtdStructure& dtd) {
  for (size_t q = 0; q < product_->query_count(); ++q) {
    core::LevelBounds bounds =
        analysis::ComputeMachineLevelBounds(product_->graph(q), dtd);
    stats_.bounded_machine_nodes += CountConstraining(bounds);
    product_->set_level_bounds(q, std::move(bounds));
  }
}

Status AnalyzedEngine::Consume(const xml::InputChunk& chunk) {
  if (filter_ != nullptr) return filter_->Consume(chunk);
  if (product_ != nullptr) return product_->Consume(chunk);
  return Status::Ok();
}

Status AnalyzedEngine::Pump(xml::ByteSource* source) {
  xml::InputChunk chunk;
  while (source->Next(&chunk)) {
    TWIGM_RETURN_IF_ERROR(Consume(chunk));
  }
  return Status::Ok();
}

void AnalyzedEngine::Reset() {
  if (filter_ != nullptr) filter_->Reset();
  if (product_ != nullptr) product_->Reset();
  total_results_ = 0;
}

void AnalyzedEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  // See XPathStreamProcessor::ExportMetrics for the re-registration guard.
  if (export_ == nullptr || export_->registry != registry ||
      registry->instrument_count() < export_->registered_count) {
    export_ = std::make_unique<ExportHandles>();
    export_->registry = registry;
    export_->queries_total = registry->RegisterCounter("analysis.queries_total");
    export_->queries_unsatisfiable =
        registry->RegisterCounter("analysis.queries_unsatisfiable");
    export_->queries_forwarded =
        registry->RegisterCounter("analysis.queries_forwarded");
    export_->queries_pruned =
        registry->RegisterCounter("analysis.queries_pruned");
    export_->branches_minimized =
        registry->RegisterCounter("analysis.branches_minimized");
    export_->bounded_trie_nodes =
        registry->RegisterCounter("analysis.bounded_trie_nodes");
    export_->bounded_machine_nodes =
        registry->RegisterCounter("analysis.bounded_machine_nodes");
    export_->decision_facts =
        registry->RegisterCounter("analysis.decision_facts");
    export_->registered_count = registry->instrument_count();
  }
  export_->queries_total->Set(stats_.queries_total);
  export_->queries_unsatisfiable->Set(stats_.queries_unsatisfiable);
  export_->queries_forwarded->Set(stats_.queries_forwarded);
  export_->queries_pruned->Set(stats_.queries_pruned());
  export_->branches_minimized->Set(stats_.branches_minimized);
  export_->bounded_trie_nodes->Set(stats_.bounded_trie_nodes);
  export_->bounded_machine_nodes->Set(stats_.bounded_machine_nodes);
  export_->decision_facts->Set(stats_.decision_facts);
  if (filter_ != nullptr) filter_->ExportMetrics(registry);
}

}  // namespace twigm::filter
