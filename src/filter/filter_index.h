// Step-trie index for large XPath query sets (the filtering workload of the
// paper's related work, section 6: YFilter/XTrie/XPush match thousands of
// queries against one stream).
//
// FilterIndex compiles a set of XP{/,//,*,[]} queries into one shared
// structure. Every query contributes its *shareable prefix* — the chain of
// output-path location steps up to (but excluding) the first node carrying a
// predicate or value test — to a node-labeled trie whose nodes are keyed by
// (axis, name test): `/a` and `//a` at the same position are distinct nodes,
// as are `a` and `*`. Linear queries (no predicates anywhere — the dominant
// filtering workload) are absorbed entirely: their last step becomes an
// *accepting* node carrying the query ids to notify. Queries with predicates
// share their trunk and record a QueryPlan naming the trie node their tail
// machine anchors to; FilterEngine builds the tail machines (BranchM/TwigM
// via the existing machine construction) and attaches them with
// set_root_context. A query whose very first step already carries a
// predicate has no trunk (anchor = -1) and degenerates to the product
// construction for that one query.

#ifndef TWIGM_FILTER_FILTER_INDEX_H_
#define TWIGM_FILTER_FILTER_INDEX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/edge.h"
#include "core/evaluator.h"
#include "filter/filter_stats.h"
#include "xml/sax_event.h"
#include "xml/tag_interner.h"
#include "xpath/query_tree.h"

namespace twigm::filter {

/// One node of the step trie. The trie root is virtual (the document root,
/// at level 0); its children are listed by FilterIndex::root_children().
struct StepTrieNode {
  std::string label;         // tag, or "*"
  bool is_wildcard = false;
  core::EdgeCondition edge;  // (=,1) for '/', (>=,1) for '//'
  int parent = -1;           // trie-node id; -1 = the virtual root
  std::vector<int> children;
  /// Linear queries whose last step is this node: a push here is a result.
  std::vector<size_t> accept;
  /// `label` interned in the bound parser's tag dictionary (kNoSymbol for
  /// wildcards or before FilterIndex::BindInterner runs). Lets the engine
  /// match children by integer compare instead of byte compare.
  xml::SymbolId symbol = xml::kNoSymbol;
};

/// How one query of the set is evaluated.
struct QueryPlan {
  /// Fully shared: the query runs entirely in the trie.
  bool linear = false;
  /// Trie node the shared trunk ends at; -1 when the query has no trunk
  /// (linear queries record their accepting node here).
  int anchor = -1;
  /// Number of leading steps shared through the trie.
  int trunk_steps = 0;
  /// Rendered tail subquery (empty for linear queries). Its first step
  /// keeps the original axis into the tail root, evaluated against the
  /// anchor node's stack.
  std::string tail;
  /// Machine kind for the tail: kBranchM when the whole query is child-only
  /// and wildcard-free (so the anchor stack holds at most one level),
  /// kTwigM otherwise.
  core::EngineKind tail_kind = core::EngineKind::kTwigM;
};

/// The compiled index: trie + per-query plans. Structurally immutable once
/// built; BindInterner only stamps each node's label with its SymbolId in
/// the stream's tag dictionary.
class FilterIndex {
 public:
  FilterIndex() = default;  // empty index (Result<T> requires this)
  FilterIndex(FilterIndex&&) = default;
  FilterIndex& operator=(FilterIndex&&) = default;
  FilterIndex(const FilterIndex&) = delete;
  FilterIndex& operator=(const FilterIndex&) = delete;

  /// Compiles every query; fails on the first bad one (the error message
  /// names its index, like MultiQueryProcessor::Create).
  static Result<FilterIndex> Build(const std::vector<std::string>& queries);

  /// Interns every non-wildcard node label into `interner` (the parser's
  /// dictionary) and records the SymbolId on the node, so per-event child
  /// matching dispatches on dense ids (DESIGN.md §10). Idempotent; symbols
  /// stay valid for the interner's lifetime.
  void BindInterner(xml::TagInterner* interner);

  const std::vector<StepTrieNode>& nodes() const { return nodes_; }
  const std::vector<int>& root_children() const { return root_children_; }
  const std::vector<QueryPlan>& plans() const { return plans_; }
  const FilterIndexStats& stats() const { return stats_; }

  /// Human-readable dump of the trie and plans (tests/debugging).
  std::string ToString() const;

 private:
  /// Returns the child of `parent` (-1 = virtual root) matching the step,
  /// creating it if absent.
  int Intern(int parent, const xpath::QueryNode& step);

  std::vector<StepTrieNode> nodes_;
  std::vector<int> root_children_;
  std::vector<QueryPlan> plans_;
  FilterIndexStats stats_;
};

}  // namespace twigm::filter

#endif  // TWIGM_FILTER_FILTER_INDEX_H_
