#include "filter/early_decisions.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "filter/filter_engine.h"

namespace twigm::filter {

namespace {

// Memoized "a push at trie node n can matter below element e": the node
// accepts a query, anchors a predicate tail, or some matching child is
// DTD-reachable at its edge distance and is itself useful.
class TrieUsefulness {
 public:
  TrieUsefulness(const FilterIndex& index, const analysis::DtdStructure& dtd,
                 const std::vector<bool>& anchors)
      : index_(index), dtd_(dtd), anchors_(anchors),
        elems_(dtd.element_count()) {
    memo_.assign(index_.nodes().size() * elems_, 0);
  }

  bool Useful(int node, int e) {
    int8_t& memo = memo_[static_cast<size_t>(node) * elems_ +
                         static_cast<size_t>(e)];
    if (memo != 0) return memo == 1;
    const StepTrieNode& n = index_.nodes()[static_cast<size_t>(node)];
    bool useful = !n.accept.empty() || anchors_[static_cast<size_t>(node)];
    if (!useful) {
      for (int child : n.children) {
        const StepTrieNode& c = index_.nodes()[static_cast<size_t>(child)];
        const std::vector<bool>& reach = Reach(e, c.edge);
        for (size_t t = 0; t < elems_; ++t) {
          if (!reach[t]) continue;
          if (!c.is_wildcard &&
              c.label != dtd_.info(static_cast<int>(t)).name) {
            continue;
          }
          if (Useful(child, static_cast<int>(t))) {
            useful = true;
            break;
          }
        }
        if (useful) break;
      }
    }
    memo = useful ? 1 : 2;
    return useful;
  }

 private:
  const std::vector<bool>& Reach(int e, const core::EdgeCondition& edge) {
    auto key = std::make_tuple(e, edge.exact, edge.distance);
    auto it = reach_.find(key);
    if (it == reach_.end()) {
      it = reach_
               .emplace(key, edge.exact
                                 ? dtd_.ReachableExact(e, edge.distance)
                                 : dtd_.ReachableAtLeast(e, edge.distance))
               .first;
    }
    return it->second;
  }

  const FilterIndex& index_;
  const analysis::DtdStructure& dtd_;
  const std::vector<bool>& anchors_;
  const size_t elems_;
  std::vector<int8_t> memo_;  // 0 unknown, 1 useful, 2 useless
  std::map<std::tuple<int, bool, int>, std::vector<bool>> reach_;
};

}  // namespace

core::DecisionTable CompileTrieDecisions(
    const FilterIndex& index, const analysis::DtdStructure& dtd,
    const analysis::DecisionCompileOptions& options) {
  std::vector<std::string> names;
  names.reserve(dtd.element_count());
  for (size_t e = 0; e < dtd.element_count(); ++e) {
    names.push_back(dtd.info(static_cast<int>(e)).name);
  }
  core::DecisionTable table(index.nodes().size(), std::move(names));
  if (!options.assume_valid) return table;

  std::vector<bool> anchors(index.nodes().size(), false);
  for (const QueryPlan& plan : index.plans()) {
    if (!plan.linear && plan.anchor >= 0) {
      anchors[static_cast<size_t>(plan.anchor)] = true;
    }
  }
  TrieUsefulness useful(index, dtd, anchors);
  for (size_t n = 0; n < index.nodes().size(); ++n) {
    for (size_t e = 0; e < dtd.element_count(); ++e) {
      if (!useful.Useful(static_cast<int>(n), static_cast<int>(e))) {
        table.at(n, e).flags |= core::NodeDecision::kUseless;
      }
    }
  }
  return table;
}

size_t InstallEarlyDecisions(FilterEngine* engine,
                             const analysis::DtdStructure& dtd,
                             const analysis::DecisionCompileOptions& options) {
  size_t facts = 0;
  auto trie = std::make_shared<core::DecisionTable>(
      CompileTrieDecisions(engine->index(), dtd, options));
  facts += trie->facts();
  engine->set_trie_decisions(std::move(trie));
  for (size_t q = 0; q < engine->query_count(); ++q) {
    const core::MachineGraph* graph = engine->tail_graph(q);
    if (graph == nullptr) continue;  // linear: fully absorbed by the trie
    auto table = std::make_shared<core::DecisionTable>(
        analysis::CompileDecisionTable(*graph, dtd, options));
    facts += table->facts();
    engine->set_tail_decisions(q, std::move(table));
  }
  return facts;
}

}  // namespace twigm::filter
