// Statistics for the shared-prefix filter engine (src/filter/).
//
// `FilterIndexStats` is filled at compile time by FilterIndex::Build and
// quantifies how much of the query set the step trie shares: when queries
// overlap, `trie_node_count` is (much) smaller than `total_steps`, and
// per-event work tracks the former. `FilterRuntimeStats` is maintained by
// FilterEngine and records per-event active-stack counts — the number of
// trie nodes with a non-empty stack is the shared-machine analogue of the
// per-query live-entry counts in core::EngineStats.

#ifndef TWIGM_FILTER_FILTER_STATS_H_
#define TWIGM_FILTER_FILTER_STATS_H_

#include <cstddef>
#include <cstdint>

namespace twigm::filter {

/// Construction-time sharing statistics (FilterIndex::stats()).
struct FilterIndexStats {
  size_t query_count = 0;
  size_t linear_query_count = 0;    // fully shared: run entirely in the trie
  size_t tail_query_count = 0;      // shared trunk + per-query tail machine
  size_t unshared_query_count = 0;  // predicate on the first step: no trunk
  /// Location steps inserted into the trie across all queries (linear
  /// spines plus predicate-query trunks), counting repeats.
  size_t total_steps = 0;
  /// Distinct trie nodes. Sharing means trie_node_count < total_steps.
  size_t trie_node_count = 0;
};

/// Runtime statistics (FilterEngine::runtime_stats()).
struct FilterRuntimeStats {
  uint64_t start_events = 0;
  uint64_t end_events = 0;
  uint64_t trie_pushes = 0;
  uint64_t trie_pops = 0;
  uint64_t results = 0;  // across queries, trie accepts + tail emissions

  /// Trie nodes with a non-empty stack, sampled after every start event.
  uint64_t peak_active_nodes = 0;
  uint64_t sum_active_nodes = 0;  // average = sum / start_events

  /// Live trie stack entries (tail-machine entries are counted by the tail
  /// machines' own EngineStats).
  uint64_t peak_trie_entries = 0;
  /// Predicate tails currently receiving events, sampled per start event.
  uint64_t peak_engaged_tails = 0;

  /// Qualifying trie pushes skipped because the decision table proved no
  /// accept or anchor can complete below the opening element (kOn mode).
  uint64_t trie_pushes_skipped = 0;
};

}  // namespace twigm::filter

#endif  // TWIGM_FILTER_FILTER_STATS_H_
