// Analyzed multi-query evaluation: run the static analyzer (src/analysis/)
// over a query set, then stream only what survives.
//
// AnalyzedEngine is a front end over FilterEngine (shared-prefix trie) or
// MultiQueryProcessor (product construction) that applies the analyzer's
// three passes before any byte of the document is parsed:
//
//   * unsatisfiable queries (DTD proof) are dropped — they cost nothing per
//     event and simply never produce results;
//   * equivalent queries (mutual containment) collapse to one
//     representative; the representative's matches fan out to the whole
//     class through a remapping sink, so the outer sink still sees every
//     original query index;
//   * minimized query texts replace the originals (fewer machine nodes,
//     same results), and — given a DTD — per-node level windows are pushed
//     into the trie and the tail/product machines so structurally
//     impossible pushes are skipped.
//
// Correctness contract: on any document valid w.r.t. the analyzed DTD, the
// engine emits exactly the same (query_index, id) result set as an
// unanalyzed MultiQueryProcessor over the original query texts (emission
// order and MatchInfo byte offsets may differ). Without a DTD, the
// minimization and equivalence passes alone preserve that contract on
// every well-formed document. When the analyzer prunes *every* query, the
// stream is not parsed at all — Consume/Pump become no-ops (and parse
// errors are then not reported).

#ifndef TWIGM_FILTER_ANALYZED_ENGINE_H_
#define TWIGM_FILTER_ANALYZED_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dtd_structure.h"
#include "analysis/query_analysis.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/multi_query.h"
#include "filter/filter_engine.h"

namespace twigm::filter {

class AnalyzedEngine {
 public:
  /// Which runtime evaluates the surviving queries.
  enum class Backend {
    kFilter,   // shared-prefix FilterEngine (default)
    kProduct,  // one machine per query (MultiQueryProcessor)
  };

  struct Options {
    /// DTD summary for satisfiability + level bounds; null skips both (the
    /// rewrite passes still run). Not owned; must outlive the engine.
    const analysis::DtdStructure* dtd = nullptr;
    Backend backend = Backend::kFilter;
    /// Individual analyzer passes (see AnalyzerOptions).
    bool minimize = true;
    bool detect_equivalent = true;
    /// Derive level windows and install them into the runtime (needs dtd).
    bool level_bounds = true;
    /// Forwarded to the inner engine.
    core::EvaluatorOptions evaluator;
  };

  /// What the analysis bought, for reporting/benchmarks.
  struct AnalysisStats {
    size_t queries_total = 0;
    size_t queries_unsatisfiable = 0;
    size_t queries_forwarded = 0;
    size_t branches_minimized = 0;
    /// Trie / machine nodes whose level window actually constrains
    /// (min > 1 or a finite max) — a proxy for how much push work the DTD
    /// proofs can skip.
    size_t bounded_trie_nodes = 0;
    size_t bounded_machine_nodes = 0;
    /// Non-default earliest-decision facts installed into the runtime
    /// (trie kUseless cells + tail-machine table cells); 0 when
    /// enable_early_decisions is kOff or no DTD was given.
    size_t decision_facts = 0;

    size_t queries_pruned() const {
      return queries_unsatisfiable + queries_forwarded;
    }
  };

  /// Analyzes and compiles. `sink` must outlive the engine; not owned.
  /// Fails on the first syntactically-invalid query.
  static Result<std::unique_ptr<AnalyzedEngine>> Create(
      const std::vector<std::string>& queries,
      core::MultiQueryResultSink* sink, const Options& options);
  static Result<std::unique_ptr<AnalyzedEngine>> Create(
      const std::vector<std::string>& queries,
      core::MultiQueryResultSink* sink) {
    return Create(queries, sink, Options());
  }

  AnalyzedEngine(const AnalyzedEngine&) = delete;
  AnalyzedEngine& operator=(const AnalyzedEngine&) = delete;
  ~AnalyzedEngine();  // out-of-line: ExportHandles is incomplete here

  /// Consumes one chunk (chunk.last declares end of input).
  Status Consume(const xml::InputChunk& chunk);

  /// Pulls chunks from `source` until it is exhausted or a chunk fails.
  Status Pump(xml::ByteSource* source);

  /// Clears runtime state for a new document (the analysis is reused).
  void Reset();

  /// Number of *original* queries (the outer index space of the sink).
  size_t query_count() const { return analysis_.queries.size(); }
  uint64_t total_results() const { return total_results_; }

  const analysis::QuerySetAnalysis& analysis() const { return analysis_; }
  const AnalysisStats& analysis_stats() const { return stats_; }

  /// The inner runtime actually streaming; null when every query was
  /// pruned (or for the respectively other backend).
  const FilterEngine* filter_engine() const { return filter_.get(); }
  const core::MultiQueryProcessor* product() const { return product_.get(); }

  /// Exports the analysis accounting (prefix "analysis.") and, for the
  /// filter backend, the inner engine's runtime counters into `registry`
  /// (same re-registration contract as FilterEngine::ExportMetrics).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  // Fans one inner (post-analysis) query's results out to its whole
  // equivalence class in the outer index space.
  class RemapSink : public core::MultiQueryResultSink {
   public:
    explicit RemapSink(AnalyzedEngine* owner) : owner_(owner) {}
    void OnResult(size_t query_index, const core::MatchInfo& match) override {
      for (size_t outer : owner_->fanout_[query_index]) {
        ++owner_->total_results_;
        owner_->sink_->OnResult(outer, match);
      }
    }

   private:
    AnalyzedEngine* owner_;
  };

  AnalyzedEngine() = default;

  void InstallFilterBounds(const analysis::DtdStructure& dtd);
  void InstallProductBounds(const analysis::DtdStructure& dtd);

  core::MultiQueryResultSink* sink_ = nullptr;
  analysis::QuerySetAnalysis analysis_;
  AnalysisStats stats_;

  // fanout_[inner] = outer query indices sharing inner's results.
  std::vector<std::vector<size_t>> fanout_;
  std::unique_ptr<RemapSink> remap_;
  std::unique_ptr<FilterEngine> filter_;
  std::unique_ptr<core::MultiQueryProcessor> product_;
  uint64_t total_results_ = 0;

  struct ExportHandles;
  mutable std::unique_ptr<ExportHandles> export_;
};

}  // namespace twigm::filter

#endif  // TWIGM_FILTER_ANALYZED_ENGINE_H_
