// Small string helpers shared across the library. Kept deliberately minimal;
// anything XML-specific (escaping, name validation) lives in src/xml.

#ifndef TWIGM_COMMON_STRING_UTIL_H_
#define TWIGM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace twigm {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Returns `input` with ASCII whitespace removed from both ends.
std::string_view StripAsciiWhitespace(std::string_view input);

/// True iff `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a byte count as a human-readable string ("1.5 MB").
std::string HumanBytes(uint64_t bytes);

/// Formats `n` with thousands separators ("1,234,567").
std::string WithThousands(uint64_t n);

}  // namespace twigm

#endif  // TWIGM_COMMON_STRING_UTIL_H_
