// Deterministic pseudo-random number generator used by dataset generators
// and property-based tests. A fixed seed must always reproduce the same
// document byte-for-byte across platforms, so we implement the generator
// ourselves (xoshiro256**) instead of relying on std::mt19937 distribution
// details.

#ifndef TWIGM_COMMON_RANDOM_H_
#define TWIGM_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace twigm {

/// xoshiro256** PRNG with splitmix64 seeding. Not cryptographic.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via splitmix64.
  explicit Rng(uint64_t seed = 0x5eedf00ddeadbeefULL) { Reseed(seed); }

  /// Re-seeds the generator; equivalent to constructing a fresh Rng.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    const int len = static_cast<int>(Range(min_len, max_len));
    std::string out;
    out.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Below(26)));
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace twigm

#endif  // TWIGM_COMMON_RANDOM_H_
