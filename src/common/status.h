// Error-handling primitives for the twigm library.
//
// The library does not use exceptions. Fallible operations return a
// `twigm::Status`, or a `twigm::Result<T>` when they also produce a value
// (RocksDB-style). Both types are cheap to move and carry a code plus a
// human-readable message with, where applicable, an input position.

#ifndef TWIGM_COMMON_STATUS_H_
#define TWIGM_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace twigm {

/// Broad classification of failures surfaced by the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (bad query text)
  kParseError,        // malformed XML / DTD / XPath input
  kNotSupported,      // construct outside the supported language subset
  kOutOfRange,        // index/limit violation
  kResourceExhausted, // configured budget (memory/match) exceeded
  kInternal,          // invariant violation inside the library (a bug)
};

/// Returns a stable, lowercase name for `code` (e.g. "parse error").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. T must be movable.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;`.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  /// Implicit from an error status: allows `return Status::ParseError(...)`.
  /// Must not be OK (an OK status carries no value).
  Result(Status status)
      : status_(std::move(status)), value_(), has_value_(false) {}

  Result(Result&&) = default;
  Result& operator=(Result&&) = default;
  Result(const Result&) = default;
  Result& operator=(const Result&) = default;

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors for the contained value.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_;
  bool has_value_;
};

}  // namespace twigm

/// Propagates a non-OK Status from the enclosing function.
#define TWIGM_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::twigm::Status _twigm_status = (expr);  \
    if (!_twigm_status.ok()) {               \
      return _twigm_status;                  \
    }                                        \
  } while (false)

#endif  // TWIGM_COMMON_STATUS_H_
