#include "common/status.h"

namespace twigm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kInternal:
      return "internal error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace twigm
