// Process-level memory readings, used to reproduce the paper's memory-usage
// figures (Figs. 8 and 10). The paper read Redhat's system monitor; we read
// /proc/self/status, which reports the same resident-set numbers.

#ifndef TWIGM_COMMON_MEM_STATS_H_
#define TWIGM_COMMON_MEM_STATS_H_

#include <cstdint>

namespace twigm {

/// Resident-set readings for the current process, in bytes.
struct ProcessMemory {
  uint64_t rss_bytes = 0;       // current resident set (VmRSS)
  uint64_t peak_rss_bytes = 0;  // high-water mark (VmHWM)
};

/// Reads VmRSS/VmHWM from /proc/self/status. Returns zeros if unavailable
/// (non-Linux platforms), so callers can fall back to internal accounting.
ProcessMemory ReadProcessMemory();

}  // namespace twigm

#endif  // TWIGM_COMMON_MEM_STATS_H_
