#include "common/string_util.h"

#include <cstdio>

namespace twigm {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (begin < end && is_space(input[begin])) ++begin;
  while (end > begin && is_space(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

std::string WithThousands(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace twigm
