#include "common/mem_stats.h"

#include <cstdio>
#include <cstring>

namespace twigm {

namespace {

// Parses a "VmXXX:   1234 kB" line into bytes.
uint64_t ParseKbLine(const char* line) {
  const char* p = std::strchr(line, ':');
  if (p == nullptr) return 0;
  ++p;
  while (*p == ' ' || *p == '\t') ++p;
  uint64_t kb = 0;
  while (*p >= '0' && *p <= '9') {
    kb = kb * 10 + static_cast<uint64_t>(*p - '0');
    ++p;
  }
  return kb * 1024;
}

}  // namespace

ProcessMemory ReadProcessMemory() {
  ProcessMemory out;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      out.rss_bytes = ParseKbLine(line);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      out.peak_rss_bytes = ParseKbLine(line);
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace twigm
