// Clang Thread Safety Analysis annotations and the capability-annotated
// synchronization wrappers the rest of the codebase uses (DESIGN.md §14).
//
// The TWIGM_* macros expand to clang's thread-safety attributes when the
// compiler supports them and to nothing otherwise, so GCC builds are
// unaffected while the clang `-Wthread-safety -Werror=thread-safety` CI leg
// turns every unguarded access to a TWIGM_GUARDED_BY member into a build
// break. The wrappers below are the only way first-party code should take a
// lock: `scripts/analyze/project_analyzer.py` (check `mutex-wrapper`)
// refuses raw std::mutex / std::condition_variable members in src/serve/,
// because a raw mutex is invisible to the analysis.
//
// Usage:
//
//   class Registry {
//    public:
//     void Add(Item item) {
//       common::MutexLock lock(&mu_);
//       items_.push_back(std::move(item));   // clang proves mu_ is held
//     }
//    private:
//     mutable common::Mutex mu_;
//     std::vector<Item> items_ TWIGM_GUARDED_BY(mu_);
//   };
//
// Private helpers that assume the caller holds the lock are annotated
// TWIGM_REQUIRES(mu_); clang then checks every call site instead of trusting
// a "lock must be held" comment.

#ifndef TWIGM_COMMON_THREAD_ANNOTATIONS_H_
#define TWIGM_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TWIGM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TWIGM_THREAD_ANNOTATION
#define TWIGM_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define TWIGM_CAPABILITY(x) TWIGM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define TWIGM_SCOPED_CAPABILITY TWIGM_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be accessed while `x` is held.
#define TWIGM_GUARDED_BY(x) TWIGM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while `x` is held.
#define TWIGM_PT_GUARDED_BY(x) TWIGM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define TWIGM_REQUIRES(...) \
  TWIGM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define TWIGM_ACQUIRE(...) \
  TWIGM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define TWIGM_RELEASE(...) \
  TWIGM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// protection for public entry points of self-locking classes).
#define TWIGM_EXCLUDES(...) \
  TWIGM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime no-op that tells the analysis the capability is held here.
#define TWIGM_ASSERT_CAPABILITY(x) \
  TWIGM_THREAD_ANNOTATION(assert_capability(x))

/// Returns a reference to the capability guarding the returned value.
#define TWIGM_RETURN_CAPABILITY(x) TWIGM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the analysis cannot see the invariant.
#define TWIGM_NO_THREAD_SAFETY_ANALYSIS \
  TWIGM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace twigm::common {

class CondVar;

/// std::mutex with the capability attribute, so TWIGM_GUARDED_BY members
/// and TWIGM_REQUIRES functions can name it. Prefer MutexLock over manual
/// Lock/Unlock pairs.
class TWIGM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TWIGM_ACQUIRE() { mu_.lock(); }
  void Unlock() TWIGM_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock; a scoped capability, so clang tracks the held region exactly.
class TWIGM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TWIGM_ACQUIRE(mu) : lock_(mu->mu_) {}
  // Out-of-line-empty rather than `= default`: clang's analysis wants the
  // release attribute on a user-provided destructor.
  ~MutexLock() TWIGM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable working over MutexLock. Wait atomically releases and
/// reacquires the lock, so from the analysis' point of view the capability
/// is held across the call — which is exactly the caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace twigm::common

#endif  // TWIGM_COMMON_THREAD_ANNOTATIONS_H_
