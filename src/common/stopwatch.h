// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef TWIGM_COMMON_STOPWATCH_H_
#define TWIGM_COMMON_STOPWATCH_H_

#include <chrono>

namespace twigm {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace twigm

#endif  // TWIGM_COMMON_STOPWATCH_H_
