#include "analysis/query_analysis.h"

#include <algorithm>
#include <climits>
#include <map>
#include <memory>
#include <utility>

namespace twigm::analysis {

namespace {

using xpath::Axis;
using xpath::QueryNode;
using xpath::QueryTree;

// ---------------------------------------------------------------------------
// Pattern homomorphisms.
//
// Embeds(a, b) decides whether pattern subtree `a` maps into pattern
// subtree `b` with a ↦ b: label-compatible, and every child of `a` finds a
// target under `b` respecting its axis. A successful embedding proves that
// any document match of `b`'s subtree contains a match of `a`'s — the
// direction all the pruning below relies on. Wildcards and value tests are
// handled conservatively: `a` may be weaker than `b`, never stronger.
// ---------------------------------------------------------------------------

bool LabelCompatible(const QueryNode* a, const QueryNode* b) {
  if (a->is_attribute != b->is_attribute) return false;
  if (a->is_attribute) {
    if (a->name != b->name) return false;  // no attribute wildcards
  } else if (!a->is_wildcard) {
    if (b->is_wildcard || a->name != b->name) return false;
  }
  if (a->has_value_test) {
    // Conservative: require the identical test (no arithmetic implication).
    if (!b->has_value_test || a->op != b->op || a->literal != b->literal ||
        a->literal_is_number != b->literal_is_number) {
      return false;
    }
  }
  return true;
}

bool Embeds(const QueryNode* a, const QueryNode* b);

// Does some node below `b` accept `ca`? Child axis: a direct child of `b`
// reached by a child edge. Descendant axis: any node of `b`'s subtree
// strictly below `b` (every pattern edge implies >= 1 document level).
bool ExistsTarget(const QueryNode* ca, const QueryNode* b) {
  if (ca->axis == Axis::kChild) {
    for (const auto& cb : b->children) {
      if (cb->axis != Axis::kChild) continue;
      if (Embeds(ca, cb.get())) return true;
    }
    return false;
  }
  std::vector<const QueryNode*> stack;
  for (const auto& cb : b->children) stack.push_back(cb.get());
  while (!stack.empty()) {
    const QueryNode* node = stack.back();
    stack.pop_back();
    if (Embeds(ca, node)) return true;
    for (const auto& c : node->children) stack.push_back(c.get());
  }
  return false;
}

bool Embeds(const QueryNode* a, const QueryNode* b) {
  if (!LabelCompatible(a, b)) return false;
  for (const auto& ca : a->children) {
    if (!ExistsTarget(ca.get(), b)) return false;
  }
  return true;
}

// Does the existence of branch `q` (from some context node) imply the
// existence of branch `p` (from the same context)? Both are children of the
// same pattern node; axes are relative to that shared context.
bool BranchImplies(const QueryNode* q, const QueryNode* p) {
  if (p->axis == Axis::kChild) {
    // p needs an instance exactly one level below the context (or an
    // attribute of it); only q's own root can serve.
    return q->axis == Axis::kChild && Embeds(p, q);
  }
  // p accepts any strictly-lower instance: q's root (>= 1 level down under
  // either axis) or anything in q's subtree.
  if (Embeds(p, q)) return true;
  std::vector<const QueryNode*> stack;
  for (const auto& c : q->children) stack.push_back(c.get());
  while (!stack.empty()) {
    const QueryNode* node = stack.back();
    stack.pop_back();
    if (Embeds(p, node)) return true;
    for (const auto& c : node->children) stack.push_back(c.get());
  }
  return false;
}

// ---------------------------------------------------------------------------
// Cloning, minimization, canonicalization.
// ---------------------------------------------------------------------------

std::unique_ptr<QueryNode> CloneNode(const QueryNode* src, QueryNode* parent) {
  auto dst = std::make_unique<QueryNode>();
  dst->name = src->name;
  dst->is_wildcard = src->is_wildcard;
  dst->is_attribute = src->is_attribute;
  dst->axis = src->axis;
  dst->parent = parent;
  dst->on_output_path = src->on_output_path;
  dst->has_value_test = src->has_value_test;
  dst->op = src->op;
  dst->literal = src->literal;
  dst->literal_is_number = src->literal_is_number;
  dst->index = src->index;
  dst->children.reserve(src->children.size());
  for (const auto& child : src->children) {
    dst->children.push_back(CloneNode(child.get(), dst.get()));
  }
  return dst;
}

// Removes predicate branches of `v` implied by a sibling branch or by the
// output-path continuation (which includes every deeper spine predicate —
// any result witnesses it in full). Children are minimized first so
// implication is tested between already-minimal subtrees. Returns the
// number of branches removed in this subtree.
size_t MinimizeNode(QueryNode* v) {
  size_t removed = 0;
  for (auto& child : v->children) removed += MinimizeNode(child.get());

  std::vector<bool> alive(v->children.size(), true);
  for (size_t i = 0; i < v->children.size(); ++i) {
    QueryNode* p = v->children[i].get();
    if (p->on_output_path) continue;  // never remove the spine
    for (size_t j = 0; j < v->children.size(); ++j) {
      if (i == j || !alive[j]) continue;
      // Checking i ascending and skipping dead witnesses makes mutual
      // implication (duplicate predicates) keep the later copy's witness:
      // the earlier duplicate is removed first, the survivor stays.
      if (BranchImplies(v->children[j].get(), p)) {
        alive[i] = false;
        ++removed;
        break;
      }
    }
  }
  size_t w = 0;
  for (size_t i = 0; i < v->children.size(); ++i) {
    if (alive[i]) {
      if (w != i) v->children[w] = std::move(v->children[i]);
      ++w;
    }
  }
  v->children.resize(w);
  return removed;
}

// Orders predicate branches by their rendered text (spine child last) so
// equivalent queries that differ only in predicate order share one
// canonical rendering.
void CanonicalSort(QueryNode* v) {
  for (auto& child : v->children) CanonicalSort(child.get());
  std::stable_sort(v->children.begin(), v->children.end(),
                   [](const std::unique_ptr<QueryNode>& a,
                      const std::unique_ptr<QueryNode>& b) {
                     if (a->on_output_path != b->on_output_path) {
                       return !a->on_output_path;
                     }
                     if (a->on_output_path) return false;
                     return QueryTree::RenderSubquery(a.get()) <
                            QueryTree::RenderSubquery(b.get());
                   });
}

// ---------------------------------------------------------------------------
// DTD satisfiability.
// ---------------------------------------------------------------------------

std::string StepName(const QueryNode* node) {
  std::string out = node->axis == Axis::kChild ? "/" : "//";
  if (node->is_attribute) out += "@";
  out += node->name;
  return out;
}

// Checks the element node `node` (and recursively its subtree) against the
// DTD. `parent_feasible` is the element set the parent can bind, null for
// the query root. Returns an empty string when satisfiable.
std::string CheckSat(const QueryNode* node, const DtdStructure& dtd,
                     const std::vector<bool>* parent_feasible) {
  const size_t n = dtd.element_count();

  std::vector<bool> feasible(n, false);
  if (parent_feasible == nullptr) {
    feasible = node->axis == Axis::kChild ? dtd.AtDepthExact(1)
                                          : dtd.AtDepthAtLeast(1);
  } else {
    for (size_t p = 0; p < n; ++p) {
      if (!(*parent_feasible)[p]) continue;
      if (node->axis == Axis::kChild) {
        for (int c : dtd.info(static_cast<int>(p)).children) {
          feasible[static_cast<size_t>(c)] = true;
        }
      } else {
        for (size_t u = 0; u < n; ++u) {
          if (dtd.CanReach(static_cast<int>(p), static_cast<int>(u))) {
            feasible[u] = true;
          }
        }
      }
    }
  }
  if (!node->is_wildcard) {
    const int id = dtd.Find(node->name);
    if (id < 0) {
      return "step '" + StepName(node) + "': element '" + node->name +
             "' is not declared in the DTD";
    }
    const bool was_feasible = feasible[static_cast<size_t>(id)];
    feasible.assign(n, false);
    feasible[static_cast<size_t>(id)] = was_feasible;
  }
  bool any = false;
  for (size_t e = 0; e < n; ++e) any = any || feasible[e];
  if (!any) {
    return "step '" + StepName(node) +
           "': no DTD-valid document has this element at this position";
  }

  // A value test on direct text needs an element that can carry text (an
  // equality against "" still matches text-less elements).
  if (node->has_value_test && node->op == xpath::CmpOp::kEq &&
      !node->literal.empty()) {
    bool pcdata = false;
    for (size_t e = 0; e < n; ++e) {
      if (feasible[e] && dtd.info(static_cast<int>(e)).has_pcdata) {
        pcdata = true;
        break;
      }
    }
    if (!pcdata) {
      return "step '" + StepName(node) +
             "': value test against a text-less content model";
    }
  }

  for (const auto& child : node->children) {
    if (child->is_attribute) {
      // Parser guarantees attributes use the child axis.
      bool declared = false;
      const bool enum_checkable = child->has_value_test &&
                                  child->op == xpath::CmpOp::kEq &&
                                  !child->literal_is_number;
      bool value_possible = false;
      for (size_t p = 0; p < n; ++p) {
        if (!feasible[p] || !dtd.HasAttribute(static_cast<int>(p), child->name)) {
          continue;
        }
        declared = true;
        if (!enum_checkable) {
          value_possible = true;
        } else {
          const std::vector<std::string>* values =
              dtd.EnumValues(static_cast<int>(p), child->name);
          if (values == nullptr ||
              std::find(values->begin(), values->end(), child->literal) !=
                  values->end()) {
            value_possible = true;
          }
        }
      }
      if (!declared) {
        return "step '" + StepName(child.get()) + "': attribute '" + child->name +
               "' is not declared on any feasible element";
      }
      if (!value_possible) {
        return "step '" + StepName(child.get()) + "': literal \"" + child->literal +
               "\" is outside the attribute's enumerated type";
      }
      continue;
    }
    std::string diag = CheckSat(child.get(), dtd, &feasible);
    if (!diag.empty()) return diag;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Containment (spine dynamic program).
// ---------------------------------------------------------------------------

std::vector<const QueryNode*> Spine(const QueryTree& q) {
  std::vector<const QueryNode*> spine;
  const QueryNode* cur = q.root();
  while (cur != nullptr) {
    spine.push_back(cur);
    const QueryNode* next = nullptr;
    for (const auto& child : cur->children) {
      if (child->on_output_path) {
        next = child.get();
        break;
      }
    }
    cur = next;
  }
  return spine;
}

// Can super-spine node a_i map onto sub-spine node b_j? Labels must be
// compatible and every predicate branch of a_i must embed below b_j
// (targets include b_j's whole subtree — spine continuation included).
bool SpineNodeOk(const QueryNode* a, const QueryNode* b) {
  if (!LabelCompatible(a, b)) return false;
  for (const auto& ca : a->children) {
    if (ca->on_output_path) continue;
    if (!ExistsTarget(ca.get(), b)) return false;
  }
  return true;
}

bool SpineMatch(const std::vector<const QueryNode*>& a,
                const std::vector<const QueryNode*>& b, size_t i, size_t j) {
  if (!SpineNodeOk(a[i], b[j])) return false;
  if (i + 1 == a.size()) return j + 1 == b.size();  // sol must map to sol
  if (j + 1 == b.size()) return false;
  const QueryNode* next = a[i + 1];
  if (next->axis == Axis::kChild) {
    // Exactly one level down in every match: the sub-spine edge must be a
    // child edge too.
    return b[j + 1]->axis == Axis::kChild && SpineMatch(a, b, i + 1, j + 1);
  }
  for (size_t jj = j + 1; jj < b.size(); ++jj) {
    if (SpineMatch(a, b, i + 1, jj)) return true;
  }
  return false;
}

}  // namespace

bool QueryContains(const QueryTree& super, const QueryTree& sub) {
  if (super.root() == nullptr || sub.root() == nullptr) return false;
  const std::vector<const QueryNode*> a = Spine(super);
  const std::vector<const QueryNode*> b = Spine(sub);
  if (a.size() > b.size()) return false;
  if (a[0]->axis == Axis::kChild) {
    // The super root pins level 1; so must the sub root.
    return b[0]->axis == Axis::kChild && SpineMatch(a, b, 0, 0);
  }
  for (size_t j = 0; j + a.size() <= b.size(); ++j) {
    if (SpineMatch(a, b, 0, j)) return true;
  }
  return false;
}

QueryAnalysis AnalyzeQuery(const QueryTree& query,
                           const AnalyzerOptions& options) {
  QueryAnalysis out;
  std::unique_ptr<QueryNode> root = CloneNode(query.root(), nullptr);
  if (options.minimize) out.branches_removed = MinimizeNode(root.get());
  CanonicalSort(root.get());
  out.minimized = QueryTree::RenderSubquery(root.get());
  if (options.dtd != nullptr) {
    out.diagnostic = CheckSat(root.get(), *options.dtd, nullptr);
    out.satisfiable = out.diagnostic.empty();
  }
  return out;
}

Result<QuerySetAnalysis> AnalyzeQuerySet(
    const std::vector<std::string>& queries, const AnalyzerOptions& options) {
  QuerySetAnalysis out;
  out.queries.resize(queries.size());

  // Equivalence classing: exact canonical-text hits are free; syntactically
  // distinct representatives are compared by mutual containment within
  // small buckets (same sol label + node count — equivalent minimal
  // patterns agree on both).
  std::map<std::string, size_t> canon_to_rep;
  std::map<std::string, std::vector<size_t>> buckets;
  std::map<size_t, QueryTree> rep_trees;

  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryTree> tree = QueryTree::Parse(queries[i]);
    if (!tree.ok()) {
      return Status::InvalidArgument(
          "query #" + std::to_string(i) + ": " + tree.status().ToString());
    }
    QueryAnalysis a = AnalyzeQuery(tree.value(), options);
    QuerySetAnalysis::PerQuery& per = out.queries[i];
    per.satisfiable = a.satisfiable;
    per.diagnostic = std::move(a.diagnostic);
    per.minimized = a.minimized;
    per.branches_removed = a.branches_removed;
    per.forwarded_to = i;
    out.branches_minimized += a.branches_removed;
    if (!a.satisfiable) {
      ++out.unsatisfiable;
      continue;
    }
    if (!options.detect_equivalent) continue;

    auto [canon_it, inserted] = canon_to_rep.emplace(a.minimized, i);
    if (!inserted) {
      per.forwarded_to = canon_it->second;
      ++out.forwarded;
      continue;
    }
    Result<QueryTree> min_tree = QueryTree::Parse(a.minimized);
    if (!min_tree.ok()) {
      return Status::Internal("query #" + std::to_string(i) +
                              ": minimized form failed to re-parse: " +
                              a.minimized);
    }
    const std::string bucket_key =
        min_tree.value().sol()->name + "#" +
        std::to_string(min_tree.value().node_count());
    bool matched = false;
    for (size_t rep : buckets[bucket_key]) {
      const QueryTree& rep_tree = rep_trees.at(rep);
      if (QueryContains(rep_tree, min_tree.value()) &&
          QueryContains(min_tree.value(), rep_tree)) {
        per.forwarded_to = rep;
        ++out.forwarded;
        matched = true;
        break;
      }
    }
    if (!matched) {
      buckets[bucket_key].push_back(i);
      rep_trees.emplace(i, std::move(min_tree).value());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Level bounds over a machine graph.
// ---------------------------------------------------------------------------

std::vector<bool> ReachableFromSet(const DtdStructure& dtd,
                                   const std::vector<bool>& from, int k,
                                   bool exact) {
  const size_t n = dtd.element_count();
  std::vector<bool> out(n, false);
  for (size_t f = 0; f < n; ++f) {
    if (!from[f]) continue;
    const std::vector<bool> reach =
        exact ? dtd.ReachableExact(static_cast<int>(f), k)
              : dtd.ReachableAtLeast(static_cast<int>(f), k);
    for (size_t e = 0; e < n; ++e) {
      if (reach[e]) out[e] = true;
    }
  }
  return out;
}

core::LevelRange IntersectDepthRange(const DtdStructure& dtd,
                                     const std::vector<bool>& feasible,
                                     core::LevelRange structural) {
  int elem_min = INT_MAX;
  int elem_max = 0;
  bool elem_unbounded = false;
  bool any = false;
  for (size_t e = 0; e < feasible.size(); ++e) {
    if (!feasible[e]) continue;
    any = true;
    const ElementInfo& info = dtd.info(static_cast<int>(e));
    elem_min = std::min(elem_min, info.min_depth);
    if (info.max_depth == kUnboundedDepth) {
      elem_unbounded = true;
    } else {
      elem_max = std::max(elem_max, info.max_depth);
    }
  }
  if (!any) return core::LevelRange::Nothing();
  core::LevelRange r;
  r.min_level = std::max(structural.min_level, elem_min);
  const int e_max = elem_unbounded ? -1 : elem_max;
  if (structural.max_level < 0) {
    r.max_level = e_max;
  } else if (e_max < 0) {
    r.max_level = structural.max_level;
  } else {
    r.max_level = std::min(structural.max_level, e_max);
  }
  return r;
}

namespace {

core::LevelBounds ComputeBoundsImpl(const core::MachineGraph& graph,
                                    const DtdStructure& dtd,
                                    const std::vector<bool>* context_feasible,
                                    core::LevelRange context_bounds) {
  const size_t count = graph.node_count();
  std::vector<std::vector<bool>> feasible(count);
  core::LevelBounds out(count, core::LevelRange::Everything());

  for (const auto& node : graph.nodes()) {  // pre-order: parents first
    const core::MachineNode* v = node.get();
    const int k = v->edge.distance;

    std::vector<bool> base;
    core::LevelRange structural;
    if (v->parent == nullptr) {
      if (context_feasible == nullptr) {
        base = v->edge.exact ? dtd.AtDepthExact(k) : dtd.AtDepthAtLeast(k);
        structural.min_level = k;
        structural.max_level = v->edge.exact ? k : -1;
      } else {
        base = ReachableFromSet(dtd, *context_feasible, k, v->edge.exact);
        structural.min_level = context_bounds.min_level + k;
        structural.max_level =
            (v->edge.exact && context_bounds.max_level >= 0)
                ? context_bounds.max_level + k
                : -1;
      }
    } else {
      base = ReachableFromSet(dtd, feasible[static_cast<size_t>(v->parent->id)],
                              k, v->edge.exact);
      const core::LevelRange& pb = out[static_cast<size_t>(v->parent->id)];
      structural.min_level = pb.min_level + k;
      structural.max_level =
          (v->edge.exact && pb.max_level >= 0) ? pb.max_level + k : -1;
    }

    if (!v->is_wildcard) {
      const int id = dtd.Find(v->label);
      const bool keep = id >= 0 && base[static_cast<size_t>(id)];
      base.assign(dtd.element_count(), false);
      if (keep) base[static_cast<size_t>(id)] = true;
    }

    out[static_cast<size_t>(v->id)] = IntersectDepthRange(dtd, base, structural);
    feasible[static_cast<size_t>(v->id)] = std::move(base);
  }
  return out;
}

}  // namespace

core::LevelBounds ComputeMachineLevelBounds(const core::MachineGraph& graph,
                                            const DtdStructure& dtd) {
  return ComputeBoundsImpl(graph, dtd, nullptr, core::LevelRange());
}

core::LevelBounds ComputeMachineLevelBounds(
    const core::MachineGraph& graph, const DtdStructure& dtd,
    const std::vector<bool>& context_feasible,
    core::LevelRange context_bounds) {
  return ComputeBoundsImpl(graph, dtd, &context_feasible, context_bounds);
}

}  // namespace twigm::analysis
