#include "analysis/decision_analysis.h"

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/evaluator.h"
#include "core/multi_query.h"
#include "core/value_test.h"
#include "dtd/dtd_model.h"

namespace twigm::analysis {

namespace {

// Three-valued verdicts for static test evaluation.
enum Verdict : int { kRefutedV = -1, kOpenV = 0, kImpliedV = 1 };

class Compiler {
 public:
  Compiler(const core::MachineGraph& graph, const DtdStructure& dtd)
      : graph_(graph), dtd_(dtd), elems_(dtd.element_count()) {
    const size_t cells = graph_.node_count() * elems_;
    refuted_.assign(cells, 0);
    implied_.assign(cells, 0);
    output_.assign(cells, 0);
  }

  void Fill(core::DecisionTable* table) {
    for (const auto& node : graph_.nodes()) {
      const core::MachineNode* v = node.get();
      for (size_t e = 0; e < elems_; ++e) {
        core::NodeDecision& cell = table->at(static_cast<size_t>(v->id), e);
        const int elem = static_cast<int>(e);
        if (Refuted(v, elem)) {
          cell.flags |= core::NodeDecision::kRefuted;
          continue;
        }
        if (v->on_output_path && !OutputPossible(v, elem)) {
          cell.flags |= core::NodeDecision::kUseless;
        }
        if (v->has_value_test && StaticValueTest(v, elem) == kImpliedV) {
          cell.flags |= core::NodeDecision::kValueImplied;
        }
        uint64_t mask = 0;
        for (const core::MachineNode* c : v->children) {
          if (ImpliedBit(elem, c)) mask |= uint64_t{1} << c->branch_slot;
        }
        cell.implied_mask = mask;
      }
    }
  }

 private:
  size_t Cell(const core::MachineNode* v, int e) const {
    return static_cast<size_t>(v->id) * elems_ + static_cast<size_t>(e);
  }

  bool Matches(const core::MachineNode* c, int e) const {
    return c->is_wildcard || c->label == dtd_.info(e).name;
  }

  // Elements that *may* bind at a child with edge ζ below an instance of e.
  const std::vector<bool>& Reach(int e, const core::EdgeCondition& edge) {
    auto key = std::make_tuple(e, edge.exact, edge.distance);
    auto it = reach_.find(key);
    if (it == reach_.end()) {
      it = reach_
               .emplace(key, edge.exact
                                 ? dtd_.ReachableExact(e, edge.distance)
                                 : dtd_.ReachableAtLeast(e, edge.distance))
               .first;
    }
    return it->second;
  }

  // Elements *guaranteed* to occur at an edge-compatible depth below every
  // valid instance of e.
  const std::vector<bool>& Guaranteed(int e, const core::EdgeCondition& edge) {
    auto key = std::make_tuple(e, edge.exact, edge.distance);
    auto it = required_.find(key);
    if (it == required_.end()) {
      it = required_
               .emplace(key, edge.exact
                                 ? dtd_.RequiredExact(e, edge.distance)
                                 : dtd_.RequiredAtLeast(e, edge.distance))
               .first;
    }
    return it->second;
  }

  // v's value test against an instance of element e, before its content
  // streams. Element-only content means the direct text a machine
  // accumulates is whitespace at most, so equality against a literal with
  // substance is decided statically; anything subtler stays open.
  Verdict StaticValueTest(const core::MachineNode* v, int e) const {
    if (!v->has_value_test) return kImpliedV;
    if (dtd_.info(e).has_pcdata) return kOpenV;
    bool literal_has_ink = false;
    for (char ch : v->literal) {
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') {
        literal_has_ink = true;
        break;
      }
    }
    if (!literal_has_ink) return kOpenV;
    if (v->op == xpath::CmpOp::kEq) return kRefutedV;
    if (v->op == xpath::CmpOp::kNe) return kImpliedV;
    return kOpenV;
  }

  // An attribute test of a machine node against element e. Valid documents
  // only carry declared attributes, and #REQUIRED/#FIXED declarations
  // guarantee presence; value tests are decided through #FIXED defaults and
  // enumerated value sets.
  Verdict StaticAttrTest(const core::AttributeTest& t, int e) const {
    const std::vector<dtd::AttrDecl>* decls =
        dtd_.dtd().FindAttlist(dtd_.info(e).name);
    const dtd::AttrDecl* decl = nullptr;
    if (decls != nullptr) {
      for (const dtd::AttrDecl& d : *decls) {
        if (d.name == t.name) {
          decl = &d;
          break;
        }
      }
    }
    if (decl == nullptr) return kRefutedV;
    const bool present = decl->default_kind == dtd::AttrDefault::kRequired ||
                         decl->default_kind == dtd::AttrDefault::kFixed;
    if (!t.has_value_test) return present ? kImpliedV : kOpenV;
    if (decl->default_kind == dtd::AttrDefault::kFixed) {
      return core::EvalValueTest(decl->default_value, t.op, t.literal,
                                 t.literal_is_number)
                 ? kImpliedV
                 : kRefutedV;
    }
    if (!decl->enum_values.empty()) {
      size_t passing = 0;
      for (const std::string& value : decl->enum_values) {
        if (core::EvalValueTest(value, t.op, t.literal, t.literal_is_number)) {
          ++passing;
        }
      }
      if (passing == 0) return kRefutedV;
      if (passing == decl->enum_values.size() && present) return kImpliedV;
    }
    return kOpenV;
  }

  // No binding of e at v can ever pop satisfied, whatever streams below it.
  bool Refuted(const core::MachineNode* v, int e) {
    int8_t& memo = refuted_[Cell(v, e)];
    if (memo != 0) return memo == 1;
    memo = 2;  // open the cell optimistically; the machine tree is acyclic
    bool refuted = StaticValueTest(v, e) == kRefutedV;
    if (!refuted) {
      for (const core::AttributeTest& t : v->attr_tests) {
        if (StaticAttrTest(t, e) == kRefutedV) {
          refuted = true;
          break;
        }
      }
    }
    if (!refuted) {
      for (const core::MachineNode* c : v->children) {
        const std::vector<bool>& reach = Reach(e, c->edge);
        bool bindable = false;
        for (size_t t = 0; t < elems_; ++t) {
          if (reach[t] && Matches(c, static_cast<int>(t)) &&
              !Refuted(c, static_cast<int>(t))) {
            bindable = true;
            break;
          }
        }
        if (!bindable) {
          refuted = true;
          break;
        }
      }
    }
    memo = refuted ? 1 : 2;
    return refuted;
  }

  // Every obligation of v's subtree holds on every valid completion of e:
  // each branch bit is implied, attribute tests are implied, the value
  // test is implied. Mere existence of the binding then guarantees a
  // satisfied pop.
  bool FullyImplied(const core::MachineNode* v, int e) {
    int8_t& memo = implied_[Cell(v, e)];
    if (memo != 0) return memo == 1;
    bool ok = StaticValueTest(v, e) == kImpliedV;
    if (ok) {
      for (const core::AttributeTest& t : v->attr_tests) {
        if (StaticAttrTest(t, e) != kImpliedV) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (const core::MachineNode* c : v->children) {
        if (!ImpliedBit(e, c)) {
          ok = false;
          break;
        }
      }
    }
    memo = ok ? 1 : 2;
    return ok;
  }

  // The branch bit for child c is certain once an element e opens at c's
  // parent: some required descendant binds at c with a fully implied
  // subtree.
  bool ImpliedBit(int e, const core::MachineNode* c) {
    const std::vector<bool>& guaranteed = Guaranteed(e, c->edge);
    for (size_t t = 0; t < elems_; ++t) {
      if (guaranteed[t] && Matches(c, static_cast<int>(t)) &&
          FullyImplied(c, static_cast<int>(t))) {
        return true;
      }
    }
    return false;
  }

  // Some output chain can still complete below an instance of e bound at v.
  bool OutputPossible(const core::MachineNode* v, int e) {
    if (v->is_return) return true;
    int8_t& memo = output_[Cell(v, e)];
    if (memo != 0) return memo == 1;
    const core::MachineNode* spine = nullptr;
    for (const core::MachineNode* c : v->children) {
      if (c->on_output_path) {
        spine = c;
        break;
      }
    }
    bool possible = true;  // no spine child: stay conservative
    if (spine != nullptr) {
      possible = false;
      const std::vector<bool>& reach = Reach(e, spine->edge);
      for (size_t t = 0; t < elems_; ++t) {
        if (reach[t] && Matches(spine, static_cast<int>(t)) &&
            !Refuted(spine, static_cast<int>(t)) &&
            OutputPossible(spine, static_cast<int>(t))) {
          possible = true;
          break;
        }
      }
    }
    memo = possible ? 1 : 2;
    return possible;
  }

  const core::MachineGraph& graph_;
  const DtdStructure& dtd_;
  const size_t elems_;

  // Memo cells: 0 unknown, 1 true, 2 false, indexed node-major.
  std::vector<int8_t> refuted_;
  std::vector<int8_t> implied_;
  std::vector<int8_t> output_;

  // Reachability / requirement sets per (element, edge) — tiny maps, the
  // tables are compiled once per subscription.
  std::map<std::tuple<int, bool, int>, std::vector<bool>> reach_;
  std::map<std::tuple<int, bool, int>, std::vector<bool>> required_;
};

}  // namespace

core::DecisionTable CompileDecisionTable(const core::MachineGraph& graph,
                                         const DtdStructure& dtd,
                                         const DecisionCompileOptions& options) {
  std::vector<std::string> names;
  names.reserve(dtd.element_count());
  for (size_t e = 0; e < dtd.element_count(); ++e) {
    names.push_back(dtd.info(static_cast<int>(e)).name);
  }
  core::DecisionTable table(graph.node_count(), std::move(names));
  if (!options.assume_valid) return table;  // zero facts: dynamic-only mode
  Compiler compiler(graph, dtd);
  compiler.Fill(&table);
  return table;
}

void EnableEarlyDecisions(core::XPathStreamProcessor* processor,
                          const DtdStructure& dtd,
                          const DecisionCompileOptions& options) {
  processor->InstallDecisionTable(std::make_shared<core::DecisionTable>(
      CompileDecisionTable(processor->machine_graph(), dtd, options)));
}

void EnableEarlyDecisions(core::MultiQueryProcessor* processor,
                          const DtdStructure& dtd,
                          const DecisionCompileOptions& options) {
  for (size_t q = 0; q < processor->query_count(); ++q) {
    processor->set_decision_table(
        q, std::make_shared<core::DecisionTable>(
               CompileDecisionTable(processor->graph(q), dtd, options)));
  }
}

}  // namespace twigm::analysis
