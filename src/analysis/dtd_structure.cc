#include "analysis/dtd_structure.h"

#include <algorithm>
#include <deque>
#include <map>

namespace twigm::analysis {

namespace {

// Collects every element name referenced by a content model into `out`,
// and notes whether character data is possible.
void CollectContent(const dtd::ContentExpr& expr,
                    std::vector<std::string>* out, bool* pcdata) {
  switch (expr.kind) {
    case dtd::ContentExpr::Kind::kElement:
      out->push_back(expr.name);
      break;
    case dtd::ContentExpr::Kind::kPcdata:
      *pcdata = true;
      break;
    case dtd::ContentExpr::Kind::kSequence:
    case dtd::ContentExpr::Kind::kChoice:
      for (const dtd::ContentExpr& child : expr.children) {
        CollectContent(child, out, pcdata);
      }
      break;
    case dtd::ContentExpr::Kind::kEmpty:
      break;
    case dtd::ContentExpr::Kind::kAny:
      // Handled by the caller (needs the full element universe).
      break;
  }
}

// Element names guaranteed to occur as direct children in every valid
// instance of `expr`: kOne/kPlus element particles, unioned across sequence
// members, intersected across choice alternatives. Optional/starred
// particles (and anything below them) guarantee nothing.
std::vector<std::string> RequiredNames(const dtd::ContentExpr& expr) {
  std::vector<std::string> out;
  if (expr.repeat == dtd::Repeat::kOptional ||
      expr.repeat == dtd::Repeat::kStar) {
    return out;
  }
  switch (expr.kind) {
    case dtd::ContentExpr::Kind::kElement:
      out.push_back(expr.name);
      break;
    case dtd::ContentExpr::Kind::kSequence:
      for (const dtd::ContentExpr& child : expr.children) {
        std::vector<std::string> sub = RequiredNames(child);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
    case dtd::ContentExpr::Kind::kChoice: {
      bool first = true;
      for (const dtd::ContentExpr& child : expr.children) {
        std::vector<std::string> sub = RequiredNames(child);
        std::sort(sub.begin(), sub.end());
        if (first) {
          out = std::move(sub);
          first = false;
        } else {
          std::vector<std::string> kept;
          for (const std::string& name : out) {
            if (std::binary_search(sub.begin(), sub.end(), name)) {
              kept.push_back(name);
            }
          }
          out = std::move(kept);
        }
        if (out.empty()) break;
      }
      break;
    }
    default:
      break;
  }
  return out;
}

bool ContainsAny(const dtd::ContentExpr& expr) {
  if (expr.kind == dtd::ContentExpr::Kind::kAny) return true;
  for (const dtd::ContentExpr& child : expr.children) {
    if (ContainsAny(child)) return true;
  }
  return false;
}

}  // namespace

Result<DtdStructure> DtdStructure::Build(const dtd::Dtd& dtd,
                                         std::string_view root_element) {
  DtdStructure s;
  s.dtd_ = std::make_shared<const dtd::Dtd>(dtd);

  // Assign dense ids: declared elements first, then elements that are only
  // referenced inside content models (treated as EMPTY leaves).
  std::map<std::string, int, std::less<>> ids;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = ids.emplace(name, static_cast<int>(s.elements_.size()));
    if (inserted) {
      ElementInfo info;
      info.name = name;
      s.elements_.push_back(std::move(info));
    }
    return it->second;
  };
  for (const auto& [name, decl] : dtd.elements) intern(name);
  for (const auto& [name, decl] : dtd.elements) {
    std::vector<std::string> refs;
    bool pcdata = decl.mixed;
    CollectContent(decl.content, &refs, &pcdata);
    for (const std::string& ref : refs) intern(ref);
    const int id = ids.find(name)->second;
    s.elements_[static_cast<size_t>(id)].has_pcdata = pcdata;
  }

  const size_t n = s.elements_.size();

  // Child edges. ANY content points at the whole declared universe and
  // admits text.
  for (const auto& [name, decl] : dtd.elements) {
    const int id = ids.find(name)->second;
    ElementInfo& info = s.elements_[static_cast<size_t>(id)];
    if (ContainsAny(decl.content)) {
      info.has_pcdata = true;
      info.children.resize(n);
      for (size_t i = 0; i < n; ++i) info.children[i] = static_cast<int>(i);
      continue;
    }
    std::vector<std::string> refs;
    bool pcdata = false;
    CollectContent(decl.content, &refs, &pcdata);
    std::vector<int> child_ids;
    child_ids.reserve(refs.size());
    for (const std::string& ref : refs) child_ids.push_back(intern(ref));
    std::sort(child_ids.begin(), child_ids.end());
    child_ids.erase(std::unique(child_ids.begin(), child_ids.end()),
                    child_ids.end());
    info.children = std::move(child_ids);

    // Required children: guaranteed by every valid instance. Mixed content
    // ((#PCDATA | a)*) guarantees nothing — the star makes all optional.
    if (!decl.mixed) {
      std::vector<int> req_ids;
      for (const std::string& ref : RequiredNames(decl.content)) {
        req_ids.push_back(intern(ref));
      }
      std::sort(req_ids.begin(), req_ids.end());
      req_ids.erase(std::unique(req_ids.begin(), req_ids.end()),
                    req_ids.end());
      info.required_children = std::move(req_ids);
    }
  }

  // Root.
  const std::string root_name =
      root_element.empty() ? dtd.first_element : std::string(root_element);
  auto root_it = ids.find(root_name);
  if (root_name.empty() || root_it == ids.end()) {
    return Status::InvalidArgument("DTD analysis: unknown root element '" +
                                   root_name + "'");
  }
  s.root_ = root_it->second;

  // Descendant closure: BFS from every element (N is small — DTDs have tens
  // of elements, not thousands).
  s.descendants_.assign(n, std::vector<bool>(n, false));
  for (size_t from = 0; from < n; ++from) {
    std::vector<bool>& reach = s.descendants_[from];
    std::deque<int> queue(s.elements_[from].children.begin(),
                          s.elements_[from].children.end());
    for (int c : s.elements_[from].children) reach[static_cast<size_t>(c)] = true;
    while (!queue.empty()) {
      const int e = queue.front();
      queue.pop_front();
      for (int c : s.elements_[static_cast<size_t>(e)].children) {
        if (!reach[static_cast<size_t>(c)]) {
          reach[static_cast<size_t>(c)] = true;
          queue.push_back(c);
        }
      }
    }
  }

  // Reachability from the root + minimum depth (BFS, root at level 1).
  {
    ElementInfo& root_info = s.elements_[static_cast<size_t>(s.root_)];
    root_info.reachable = true;
    root_info.min_depth = 1;
    std::deque<int> queue = {s.root_};
    while (!queue.empty()) {
      const int e = queue.front();
      queue.pop_front();
      for (int c : s.elements_[static_cast<size_t>(e)].children) {
        ElementInfo& ci = s.elements_[static_cast<size_t>(c)];
        if (!ci.reachable) {
          ci.reachable = true;
          ci.min_depth = s.elements_[static_cast<size_t>(e)].min_depth + 1;
          queue.push_back(c);
        }
      }
    }
  }

  // Maximum depth. An element is depth-unbounded iff some element on a
  // content-model cycle (CanReach(v, v)) reaches it (or is it). The rest of
  // the reachable graph is a DAG: longest path from the root by relaxation
  // in <= n rounds.
  {
    std::vector<bool> unbounded(n, false);
    for (size_t v = 0; v < n; ++v) {
      if (!s.elements_[v].reachable) continue;
      if (!s.descendants_[v][v]) continue;  // not on a cycle
      unbounded[v] = true;
      for (size_t u = 0; u < n; ++u) {
        if (s.descendants_[v][u]) unbounded[u] = true;
      }
    }
    for (size_t v = 0; v < n; ++v) {
      if (s.elements_[v].reachable && !unbounded[v]) {
        s.elements_[v].max_depth = s.elements_[v].min_depth;
      }
    }
    bool changed = true;
    for (size_t round = 0; round < n && changed; ++round) {
      changed = false;
      for (size_t v = 0; v < n; ++v) {
        const ElementInfo& vi = s.elements_[v];
        if (!vi.reachable || unbounded[v]) continue;
        for (int c : vi.children) {
          ElementInfo& ci = s.elements_[static_cast<size_t>(c)];
          if (unbounded[static_cast<size_t>(c)] || !ci.reachable) continue;
          if (vi.max_depth + 1 > ci.max_depth) {
            ci.max_depth = vi.max_depth + 1;
            changed = true;
          }
        }
      }
    }
    s.max_document_depth_ = 0;
    for (size_t v = 0; v < n; ++v) {
      const ElementInfo& vi = s.elements_[v];
      if (!vi.reachable) continue;
      if (vi.max_depth == kUnboundedDepth) {
        s.max_document_depth_ = kUnboundedDepth;
        break;
      }
      s.max_document_depth_ = std::max(s.max_document_depth_, vi.max_depth);
    }
  }

  return s;
}

int DtdStructure::Find(std::string_view name) const {
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool DtdStructure::HasAttribute(int element, std::string_view attr) const {
  const std::vector<dtd::AttrDecl>* decls =
      dtd_->FindAttlist(elements_[static_cast<size_t>(element)].name);
  if (decls == nullptr) return false;
  for (const dtd::AttrDecl& d : *decls) {
    if (d.name == attr) return true;
  }
  return false;
}

const std::vector<std::string>* DtdStructure::EnumValues(
    int element, std::string_view attr) const {
  const std::vector<dtd::AttrDecl>* decls =
      dtd_->FindAttlist(elements_[static_cast<size_t>(element)].name);
  if (decls == nullptr) return nullptr;
  for (const dtd::AttrDecl& d : *decls) {
    if (d.name == attr) {
      return d.enum_values.empty() ? nullptr : &d.enum_values;
    }
  }
  return nullptr;
}

std::vector<bool> DtdStructure::ReachableExact(int from, int k) const {
  const size_t n = elements_.size();
  std::vector<bool> frontier(n, false);
  frontier[static_cast<size_t>(from)] = true;
  for (int step = 0; step < k; ++step) {
    std::vector<bool> next(n, false);
    for (size_t v = 0; v < n; ++v) {
      if (!frontier[v]) continue;
      for (int c : elements_[v].children) next[static_cast<size_t>(c)] = true;
    }
    frontier = std::move(next);
  }
  return frontier;
}

std::vector<bool> DtdStructure::ReachableAtLeast(int from, int k) const {
  // >= k steps == (k - 1 exact steps) then (>= 1 step, the closure).
  const size_t n = elements_.size();
  if (k <= 1) return descendants_[static_cast<size_t>(from)];
  const std::vector<bool> mid = ReachableExact(from, k - 1);
  std::vector<bool> out(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (!mid[v]) continue;
    for (size_t u = 0; u < n; ++u) {
      if (descendants_[v][u]) out[u] = true;
    }
  }
  return out;
}

std::vector<bool> DtdStructure::RequiredExact(int from, int k) const {
  // k-fold composition of required_children: if t is required under e and u
  // required under t, then u is guaranteed two levels below e, and so on.
  const size_t n = elements_.size();
  std::vector<bool> frontier(n, false);
  frontier[static_cast<size_t>(from)] = true;
  for (int step = 0; step < k; ++step) {
    std::vector<bool> next(n, false);
    for (size_t v = 0; v < n; ++v) {
      if (!frontier[v]) continue;
      for (int c : elements_[v].required_children) {
        next[static_cast<size_t>(c)] = true;
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

std::vector<bool> DtdStructure::RequiredAtLeast(int from, int k) const {
  // Union of exact depths k..k+n. A required-children cycle would force
  // infinite documents (the DTD admits no valid instance), so chains longer
  // than the element count only repeat elements already collected; the cap
  // keeps the walk finite and stays conservative either way.
  const size_t n = elements_.size();
  std::vector<bool> out(n, false);
  std::vector<bool> frontier(n, false);
  frontier[static_cast<size_t>(from)] = true;
  const int limit = k + static_cast<int>(n);
  for (int depth = 1; depth <= limit; ++depth) {
    std::vector<bool> next(n, false);
    bool any = false;
    for (size_t v = 0; v < n; ++v) {
      if (!frontier[v]) continue;
      for (int c : elements_[v].required_children) {
        next[static_cast<size_t>(c)] = true;
        any = true;
      }
    }
    frontier = std::move(next);
    if (!any) break;
    if (depth >= k) {
      for (size_t v = 0; v < n; ++v) {
        if (frontier[v]) out[v] = true;
      }
    }
  }
  return out;
}

std::vector<bool> DtdStructure::AtDepthExact(int k) const {
  if (k == 1) {
    std::vector<bool> out(elements_.size(), false);
    out[static_cast<size_t>(root_)] = true;
    return out;
  }
  return ReachableExact(root_, k - 1);
}

std::vector<bool> DtdStructure::AtDepthAtLeast(int k) const {
  std::vector<bool> out = AtDepthExact(k);
  if (k == 1) {
    // Every reachable element sits at depth >= 1.
    for (size_t v = 0; v < elements_.size(); ++v) {
      if (elements_[v].reachable) out[v] = true;
    }
    return out;
  }
  const std::vector<bool> deeper = ReachableAtLeast(root_, k - 1);
  for (size_t v = 0; v < elements_.size(); ++v) {
    if (deeper[v]) out[v] = true;
  }
  return out;
}

}  // namespace twigm::analysis
