// Reachability / depth summary of a DTD, precomputed for query analysis.
//
// DtdStructure flattens the content models of a dtd::Dtd into a plain
// element graph (who can be a direct child of whom), then closes it:
// transitive descendant sets, per-element document-depth bounds (root at
// level 1; elements on or below a content-model cycle are depth-unbounded),
// exact- and at-least-k-step reachability, attribute presence, and
// enumerated-attribute value sets. Every answer is *conservative for valid
// documents*: if the DTD admits a document in which the configuration
// occurs, the query returns true. Repetition counts (?, *, +) and particle
// order are deliberately ignored — they only restrict siblings, never which
// tags can nest, so dropping them keeps the summary sound and small.
//
// The analyzer (query_analysis.h) intersects query structure against this
// summary; engines then skip work the summary proves impossible. All such
// pruning assumes the streamed document is valid w.r.t. the DTD — on an
// invalid document, pruned queries may silently miss matches (they can
// never produce spurious ones).

#ifndef TWIGM_ANALYSIS_DTD_STRUCTURE_H_
#define TWIGM_ANALYSIS_DTD_STRUCTURE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dtd/dtd_model.h"

namespace twigm::analysis {

/// Depth is counted in document levels: the root element is at level 1.
/// `kUnboundedDepth` marks "no finite bound" (recursive content models).
inline constexpr int kUnboundedDepth = -1;

/// Flattened per-element facts. Indexed by dense element id.
struct ElementInfo {
  std::string name;
  /// Direct-child element ids (deduplicated, ascending). ANY expands to
  /// every declared element.
  std::vector<int> children;
  /// Direct-child element ids that occur in *every* valid instance of this
  /// element (deduplicated, ascending): particles with repetition kOne/kPlus,
  /// intersected across choice alternatives. Empty for mixed/ANY content.
  std::vector<int> required_children;
  /// True if the element can carry direct character data (#PCDATA, mixed,
  /// or ANY content).
  bool has_pcdata = false;
  /// True if the element can occur in a document rooted at the structure's
  /// root element.
  bool reachable = false;
  /// Document-depth bounds over all valid documents (only meaningful when
  /// `reachable`). max_depth == kUnboundedDepth when recursion allows
  /// arbitrarily deep occurrences.
  int min_depth = 0;
  int max_depth = kUnboundedDepth;
};

/// The precomputed summary. Immutable once built.
class DtdStructure {
 public:
  DtdStructure() = default;
  DtdStructure(DtdStructure&&) = default;
  DtdStructure& operator=(DtdStructure&&) = default;
  DtdStructure(const DtdStructure&) = delete;
  DtdStructure& operator=(const DtdStructure&) = delete;

  /// Builds the summary with `root_element` (empty = the DTD's first
  /// declared element) as the document root. Elements referenced in content
  /// models but never declared are treated as EMPTY leaves. Fails if the
  /// root element is unknown.
  static Result<DtdStructure> Build(const dtd::Dtd& dtd,
                                    std::string_view root_element = {});

  size_t element_count() const { return elements_.size(); }
  /// Dense id for `name`, -1 if the DTD never mentions it.
  int Find(std::string_view name) const;
  const ElementInfo& info(int id) const { return elements_[id]; }
  int root() const { return root_; }

  /// Greatest possible document depth, kUnboundedDepth when recursive.
  int max_document_depth() const { return max_document_depth_; }

  /// Can `to` occur strictly below `from` (at any depth >= 1)?
  bool CanReach(int from, int to) const {
    return descendants_[static_cast<size_t>(from)]
                       [static_cast<size_t>(to)];
  }

  /// Does the element declare attribute `attr` (ANY-content elements
  /// conservatively answer via their attlist only)?
  bool HasAttribute(int element, std::string_view attr) const;
  /// If `attr` on `element` is an enumerated type, returns its value set;
  /// null otherwise (including unknown attributes).
  const std::vector<std::string>* EnumValues(int element,
                                             std::string_view attr) const;

  /// Element-id characteristic vector of elements reachable from `from` in
  /// exactly `k` child steps (k >= 1).
  std::vector<bool> ReachableExact(int from, int k) const;
  /// ... in at least `k` child steps (k >= 1).
  std::vector<bool> ReachableAtLeast(int from, int k) const;

  /// Elements *guaranteed* to occur exactly `k` child steps below every
  /// valid instance of `from` (k >= 1): the k-fold composition of
  /// required_children. The dual of ReachableExact — "must" instead of
  /// "may" — so answers are conservative the other way: true only if every
  /// valid document contains the occurrence.
  std::vector<bool> RequiredExact(int from, int k) const;
  /// ... at least `k` child steps below (k >= 1). Required chains are
  /// acyclic in any DTD admitting finite documents, so the union over
  /// depths k..k+element_count() is exhaustive.
  std::vector<bool> RequiredAtLeast(int from, int k) const;

  /// The underlying DTD (attribute defaults, content models). Owned: Build
  /// copies it, so the structure never dangles when the parsed Dtd dies
  /// first (decision tables are compiled long after parse scopes close).
  const dtd::Dtd& dtd() const { return *dtd_; }

  /// Elements that can occur at document depth exactly `k` (k >= 1).
  std::vector<bool> AtDepthExact(int k) const;
  /// ... at document depth >= `k` (k >= 1).
  std::vector<bool> AtDepthAtLeast(int k) const;

 private:
  std::vector<ElementInfo> elements_;
  /// descendants_[a][b]: b reachable from a in >= 1 child steps.
  std::vector<std::vector<bool>> descendants_;
  int root_ = -1;
  int max_document_depth_ = kUnboundedDepth;
  std::shared_ptr<const dtd::Dtd> dtd_;  // owned copy, for attlist lookups
};

}  // namespace twigm::analysis

#endif  // TWIGM_ANALYSIS_DTD_STRUCTURE_H_
