// Earliest-query-answering decision tables (DESIGN.md §13).
//
// For every (machine node v, DTD element e) pair, the compiler derives
// facts that hold the moment an element named e opens and binds at v,
// before any of e's content has streamed:
//
//   * implied_mask — predicate branches of v that every valid completion of
//     e is guaranteed to satisfy: the branch's subtree is anchored on a
//     *required* descendant chain (content particles with repetition
//     one/plus, intersected across choice alternatives) whose own
//     obligations — attribute tests on #REQUIRED/#FIXED declarations,
//     value tests on element-only content — are themselves certain.
//   * kValueImplied — v's value test passes on every valid instance of e
//     (e admits no character data and the test accepts empty text).
//   * kRefuted — some obligation of v is impossible below e: a branch
//     whose every DTD-reachable binding is itself refuted, a value test
//     that cannot pass without character data, or an attribute test
//     against an attribute the DTD never declares for its element.
//   * kUseless — no output chain can complete below e (the spine child has
//     no reachable, non-refuted, output-possible binding), so an entry at
//     v would exist only to be discarded.
//
// Facts trust the DTD exactly as level bounds do: sound on valid
// documents, advisory otherwise. `assume_valid = false` compiles a
// zero-fact table — machines then fall back to the purely dynamic
// certainty cascade, which is exact on any well-formed input.

#ifndef TWIGM_ANALYSIS_DECISION_ANALYSIS_H_
#define TWIGM_ANALYSIS_DECISION_ANALYSIS_H_

#include "analysis/dtd_structure.h"
#include "core/decision_table.h"
#include "core/machine_builder.h"

namespace twigm::core {
class XPathStreamProcessor;
class MultiQueryProcessor;
}  // namespace twigm::core

namespace twigm::analysis {

struct DecisionCompileOptions {
  /// Trust the DTD: derive implied/refuted/useless facts that hold on every
  /// valid document. False compiles an empty table (no static facts), which
  /// keeps early-decision modes exact on arbitrary well-formed documents.
  bool assume_valid = true;
};

/// Compiles the per-(machine-node, element) decision table for `graph`
/// against `dtd`. The table indexes elements by the DtdStructure's dense
/// ids; machines map tag symbols onto them via the table's element names.
core::DecisionTable CompileDecisionTable(
    const core::MachineGraph& graph, const DtdStructure& dtd,
    const DecisionCompileOptions& options = {});

/// Compiles a table for `processor`'s machine graph and installs it. The
/// machine runs in the mode chosen by the processor's
/// EvaluatorOptions::enable_early_decisions.
void EnableEarlyDecisions(core::XPathStreamProcessor* processor,
                          const DtdStructure& dtd,
                          const DecisionCompileOptions& options = {});

/// Per-query variant: compiles and installs one table per compiled query.
void EnableEarlyDecisions(core::MultiQueryProcessor* processor,
                          const DtdStructure& dtd,
                          const DecisionCompileOptions& options = {});

}  // namespace twigm::analysis

#endif  // TWIGM_ANALYSIS_DECISION_ANALYSIS_H_
