// Static analysis over compiled queries: prove work away before streaming.
//
// Three cooperating passes, all *conservative* — they only claim a fact
// when it holds on every document (DTD passes: every document valid w.r.t.
// the analyzed DTD):
//
//   1. Tree-pattern minimization. A predicate branch implied by a sibling
//      branch or by the query's own output-path continuation is removed
//      (simulation/homomorphism redundancy test — cf. Hachicha & Darmont's
//      tree-pattern survey). Shrinks |Q| before machine construction; the
//      result set is provably unchanged because the removed branch is
//      entailed by what remains.
//
//   2. DTD-aware satisfiability & level bounds. A fixpoint over the
//      DtdStructure element graph computes, per query node, the set of
//      elements it can bind and the document-level window in which it can
//      do so. An empty set anywhere makes the query statically
//      unsatisfiable (rejected with a diagnostic); the windows become
//      core::LevelRange vectors that machines use to skip impossible
//      pushes.
//
//   3. Containment. QueryContains(A, B) runs the classic tree-pattern
//      homomorphism test (sound, incomplete — containment for XP{/,//,*,[]}
//      is coNP-hard, cf. Genevès' logics survey): true means every result
//      of B is a result of A on every document. AnalyzeQuerySet uses mutual
//      containment to group equivalent queries; only one representative per
//      class runs, the rest share its matches by result forwarding.

#ifndef TWIGM_ANALYSIS_QUERY_ANALYSIS_H_
#define TWIGM_ANALYSIS_QUERY_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dtd_structure.h"
#include "common/status.h"
#include "core/level_bounds.h"
#include "core/machine_builder.h"
#include "xpath/query_tree.h"

namespace twigm::analysis {

struct AnalyzerOptions {
  /// DTD summary; null skips satisfiability and level-bound derivation.
  /// Not owned; must outlive any use of the analysis results.
  const DtdStructure* dtd = nullptr;
  /// Run tree-pattern minimization (pass 1).
  bool minimize = true;
  /// Detect equivalent queries via mutual containment (pass 3; query-set
  /// analysis only).
  bool detect_equivalent = true;
};

/// Result of analyzing one query.
struct QueryAnalysis {
  /// False iff the DTD proves the query can never match; `diagnostic` then
  /// says which step is infeasible and why.
  bool satisfiable = true;
  std::string diagnostic;
  /// Canonical minimized query text (== canonical original when nothing was
  /// removed). Parse/compile this for evaluation.
  std::string minimized;
  /// Predicate branches removed by minimization.
  size_t branches_removed = 0;
};

/// Analyzes one query: minimization, then (with a DTD) satisfiability.
QueryAnalysis AnalyzeQuery(const xpath::QueryTree& query,
                           const AnalyzerOptions& options);

/// Conservative containment: true ⇒ every result of `sub` is a result of
/// `super` on every document (never claims containment that doesn't hold;
/// may miss containments — homomorphism is incomplete for this fragment).
bool QueryContains(const xpath::QueryTree& super, const xpath::QueryTree& sub);

/// Result of analyzing a whole query set (MultiQueryProcessor /
/// FilterEngine workloads).
struct QuerySetAnalysis {
  struct PerQuery {
    bool satisfiable = true;
    std::string diagnostic;
    std::string minimized;
    size_t branches_removed = 0;
    /// Index of the equivalence-class representative whose results this
    /// query shares (== its own index when it runs itself).
    size_t forwarded_to = 0;
  };
  std::vector<PerQuery> queries;

  size_t unsatisfiable = 0;       // statically rejected
  size_t forwarded = 0;           // equivalent, share a representative
  size_t branches_minimized = 0;  // total across queries
  /// unsatisfiable + forwarded: queries that cost nothing per event.
  size_t pruned() const { return unsatisfiable + forwarded; }
};

/// Analyzes every query. Fails on the first syntactically-invalid query
/// (the error names its index, like MultiQueryProcessor::Create).
Result<QuerySetAnalysis> AnalyzeQuerySet(
    const std::vector<std::string>& queries, const AnalyzerOptions& options);

/// Elements reachable from any element of `from` in exactly (`exact` true)
/// or at least `k` child steps. Characteristic vectors over dtd element
/// ids; building block for level-bound fixpoints over machine graphs and
/// the filter engine's step trie.
std::vector<bool> ReachableFromSet(const DtdStructure& dtd,
                                   const std::vector<bool>& from, int k,
                                   bool exact);

/// Intersects `structural` with the document-depth range of the elements
/// in `feasible`; LevelRange::Nothing() when `feasible` is empty.
core::LevelRange IntersectDepthRange(const DtdStructure& dtd,
                                     const std::vector<bool>& feasible,
                                     core::LevelRange structural);

/// Level windows for a machine graph evaluated from the document root.
/// Indexed by dense machine-node id; infeasible nodes get
/// LevelRange::Nothing() (sound only on DTD-valid documents).
core::LevelBounds ComputeMachineLevelBounds(const core::MachineGraph& graph,
                                            const DtdStructure& dtd);

/// Variant for a machine anchored below an external context (the filter
/// engine's predicate tails): `context_feasible` is the element set the
/// anchor can bind (characteristic vector over dtd element ids) and
/// `context_bounds` its level window.
core::LevelBounds ComputeMachineLevelBounds(
    const core::MachineGraph& graph, const DtdStructure& dtd,
    const std::vector<bool>& context_feasible,
    core::LevelRange context_bounds);

}  // namespace twigm::analysis

#endif  // TWIGM_ANALYSIS_QUERY_ANALYSIS_H_
