// xpathgrep — a command-line streaming XPath matcher built on the library.
//
//   usage: xpathgrep [-c|-x] '<query>' [file.xml]
//
// Reads the file (or stdin when no file is given) in chunks and prints the
// pre-order index of every matching element as soon as it is proven, plus a
// summary. With -x, the serialized XML fragment of each result is printed
// instead (single-branch queries only). Top-level unions ('|') are
// supported in id mode. Because evaluation is streaming, files far larger
// than memory work fine.
//
//   $ ./xpathgrep '//section[title]//figure | //image' book.xml
//   $ ./xpathgrep -x '//book/title' book.xml

#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "core/union_query.h"

namespace {

// One observer for both modes: prints ids (or just counts), and in -x mode
// asks the processor for fragment capture and prints each fragment.
class LineSink : public twigm::core::MatchObserver {
 public:
  LineSink(bool quiet, bool fragments)
      : quiet_(quiet), fragments_(fragments) {}

  bool wants_fragments() const override { return fragments_; }

  void OnResult(const twigm::core::MatchInfo& match) override {
    ++count_;
    if (!quiet_ && !fragments_) {
      std::printf("%llu\n", static_cast<unsigned long long>(match.id));
    }
  }

  void OnFragment(twigm::xml::NodeId id, std::string_view xml) override {
    (void)id;
    std::fwrite(xml.data(), 1, xml.size(), stdout);
    std::fputc('\n', stdout);
  }

  uint64_t count() const { return count_; }

 private:
  bool quiet_;
  bool fragments_;
  uint64_t count_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  bool fragments = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "-c") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[arg], "-x") == 0) {
      fragments = true;
    } else {
      break;
    }
    ++arg;
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: xpathgrep [-c|-x] '<xpath>' [file.xml]\n"
                 "  -c  print only the match count\n"
                 "  -x  print matching XML fragments\n");
    return 2;
  }
  const char* query = argv[arg++];

  std::FILE* in = stdin;
  if (arg < argc) {
    in = std::fopen(argv[arg], "rb");
    if (in == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[arg]);
      return 2;
    }
  }

  LineSink sink(quiet, fragments);
  std::unique_ptr<twigm::core::XPathStreamProcessor> processor;
  std::unique_ptr<twigm::core::UnionQueryProcessor> union_processor;
  if (fragments) {
    auto created = twigm::core::XPathStreamProcessor::Create(query, &sink);
    if (!created.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    processor = std::move(created).value();
  } else {
    auto created = twigm::core::UnionQueryProcessor::Create(query, &sink);
    if (!created.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    union_processor = std::move(created).value();
  }
  auto feed = [&](std::string_view chunk) {
    return processor != nullptr ? processor->Consume({chunk, false})
                                : union_processor->Consume({chunk, false});
  };
  auto finish = [&] {
    return processor != nullptr ? processor->Consume({std::string_view(), true})
                                : union_processor->Consume({std::string_view(), true});
  };

  char buffer[1 << 16];
  size_t total = 0;
  while (true) {
    const size_t n = std::fread(buffer, 1, sizeof(buffer), in);
    if (n == 0) break;
    total += n;
    twigm::Status s = feed(std::string_view(buffer, n));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  twigm::Status s = finish();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (in != stdin) std::fclose(in);

  std::fprintf(stderr, "%llu matches in %s of XML\n",
               static_cast<unsigned long long>(sink.count()),
               twigm::HumanBytes(total).c_str());
  if (quiet) std::printf("%llu\n",
                         static_cast<unsigned long long>(sink.count()));
  return 0;
}
