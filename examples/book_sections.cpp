// Recursive-data walkthrough on the paper's Book dataset: generates the
// XQuery-use-cases book data (recursive <section> nesting), runs one query
// from each class of Figure 6, and prints the engine statistics that make
// the paper's point — the number of stack entries TwigM keeps is tiny and
// bounded by query size × document depth even when the number of pattern
// matches is combinatorial.

#include <cstdio>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "data/book.h"
#include "data/datasets.h"

int main() {
  twigm::data::BookOptions options;
  options.seed = 11;
  options.min_bytes = 512 * 1024;
  auto doc = twigm::data::GenerateBook(options);
  if (!doc.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }

  auto features = twigm::data::ComputeFeatures(doc.value());
  if (!features.ok()) return 1;
  std::printf("book dataset: %s\n\n", features.value().ToString().c_str());

  std::printf("%-5s %-50s %10s %14s %12s\n", "name", "query", "results",
              "peak entries", "peak state");
  for (const twigm::data::QuerySpec& spec : twigm::data::BookQueries()) {
    twigm::core::VectorResultSink sink;
    auto processor =
        twigm::core::XPathStreamProcessor::Create(spec.text, &sink);
    if (!processor.ok()) {
      std::printf("%-5s %-50s %s\n", spec.name.c_str(), spec.text.c_str(),
                  processor.status().ToString().c_str());
      continue;
    }
    twigm::Status s = processor.value()->Consume({doc.value(), false});
    if (s.ok()) s = processor.value()->Consume({std::string_view(), true});
    if (!s.ok()) {
      std::printf("%-5s %-50s %s\n", spec.name.c_str(), spec.text.c_str(),
                  s.ToString().c_str());
      continue;
    }
    const twigm::core::EngineStats& stats = processor.value()->stats();
    std::printf("%-5s %-50s %10llu %14llu %12s\n", spec.name.c_str(),
                spec.text.c_str(),
                static_cast<unsigned long long>(stats.results),
                static_cast<unsigned long long>(stats.peak_stack_entries),
                twigm::HumanBytes(stats.peak_state_bytes).c_str());
  }
  return 0;
}
