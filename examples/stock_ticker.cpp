// Streaming scenario from the paper's introduction: stock-market data
// arriving continuously. The feed is an (in principle infinite) XML stream
// of <trade> records; we stand watch with the query
//
//   //trade[symbol="ACME"][price>100]/alert
//
// and print alert ids the moment the engine can prove them — while the
// stream is still flowing. The example synthesizes the feed with the
// deterministic RNG and pushes it through the processor in network-sized
// chunks.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "xml/xml_writer.h"

namespace {

class AlertSink : public twigm::core::MatchObserver {
 public:
  void OnResult(const twigm::core::MatchInfo& match) override {
    ++alerts_;
    if (alerts_ <= 5) {
      std::printf("  ALERT: element #%llu (delivered mid-stream)\n",
                  static_cast<unsigned long long>(match.id));
    }
  }
  uint64_t alerts() const { return alerts_; }

 private:
  uint64_t alerts_ = 0;
};

// Builds a feed of `trades` trade records.
std::string MakeFeed(int trades, uint64_t seed) {
  twigm::Rng rng(seed);
  twigm::xml::XmlWriter w(/*with_declaration=*/false);
  w.Open("feed");
  const char* symbols[] = {"ACME", "GLOBEX", "INITECH", "HOOLI"};
  for (int i = 0; i < trades; ++i) {
    w.Open("trade");
    w.Open("symbol").Text(symbols[rng.Below(4)]).Close();
    w.Open("price")
        .Text(std::to_string(50 + rng.Below(100)) + "." +
              std::to_string(10 + rng.Below(90)))
        .Close();
    w.Open("volume").Text(std::to_string(100 + rng.Below(10000))).Close();
    // The alert payload a downstream consumer would forward.
    w.Open("alert").Attr("seq", std::to_string(i)).Close();
    w.Close();
  }
  w.Close();
  return std::move(w).TakeString();
}

}  // namespace

int main() {
  const char* query = "//trade[symbol=\"ACME\"][price>100]/alert";
  std::printf("watching stream with query: %s\n", query);

  AlertSink sink;
  auto processor = twigm::core::XPathStreamProcessor::Create(query, &sink);
  if (!processor.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }

  const std::string feed = MakeFeed(20000, /*seed=*/7);
  // Simulate packet arrival: 1400-byte chunks.
  constexpr size_t kMtu = 1400;
  for (size_t pos = 0; pos < feed.size(); pos += kMtu) {
    twigm::Status s =
        processor.value()->Consume({std::string_view(feed).substr(pos, kMtu), false});
    if (!s.ok()) {
      std::fprintf(stderr, "stream error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!processor.value()->Consume({std::string_view(), true}).ok()) return 1;

  const twigm::core::EngineStats& stats = processor.value()->stats();
  std::printf("trades scanned: ~%llu, alerts raised: %llu\n",
              static_cast<unsigned long long>(stats.start_events / 5),
              static_cast<unsigned long long>(sink.alerts()));
  std::printf("peak engine state: %llu stack entries (%llu bytes) — "
              "constant regardless of stream length\n",
              static_cast<unsigned long long>(stats.peak_stack_entries),
              static_cast<unsigned long long>(stats.peak_state_bytes));
  return 0;
}
