// Large-scale publish/subscribe routing, now as a long-running daemon on
// the sharded subscription service (src/serve/): several generated feed
// streams are fed concurrently through serve::SubscriptionServer while
// subscriptions churn (periodic subscribe/unsubscribe) with no
// stop-the-world rebuild, and per-shard statistics are printed at the end.
//
// Flags:
//   --single-thread     route everything through one FilterEngine on the
//                       caller thread (the legacy mode of this example)
//   --shards=N          worker shards (default 4)
//   --streams=N         concurrent document streams (default 2)
//   --rounds=N          documents per stream (default 6)
//   --subscribers=N     initial subscriptions (default 500)
//   --churn=N           per round: unsubscribe N and subscribe N (default 8)
//
// Defaults are small enough that the example doubles as a ctest smoke test
// (both modes run in CI).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "filter/filter_engine.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "xml/xml_writer.h"

namespace {

// Subscriptions over the feed vocabulary. The small vocabulary means heavy
// prefix overlap — exactly the sharing the trie exploits — and the shared
// first-step names keep whole query families on the same shard.
std::string MakeSubscription(twigm::Rng* rng) {
  const char* sections[] = {"sports", "finance", "politics", "science"};
  switch (rng->Below(5)) {
    case 0: return "//item/headline";
    case 1: return "//item/body/p";
    case 2: return "/feed/item[@priority]/headline";
    case 3:
      return "/feed/item[category=\"" + std::string(sections[rng->Below(4)]) +
             "\"]/headline";
    default: return "//item//link";
  }
}

std::string MakeFeed(int items, uint64_t seed) {
  twigm::Rng rng(seed);
  twigm::xml::XmlWriter w(false);
  w.Open("feed");
  const char* categories[] = {"sports", "finance", "politics", "science"};
  for (int i = 0; i < items; ++i) {
    w.Open("item");
    if (rng.Chance(0.1)) w.Attr("priority", "1");
    w.Open("category").Text(categories[rng.Below(4)]).Close();
    w.Open("headline").Text("headline " + std::to_string(i)).Close();
    if (rng.Chance(0.4)) {
      w.Open("body");
      w.Open("p").Text(rng.Word(10, 40)).Close();
      if (rng.Chance(0.3)) w.Open("link").Text("#" + std::to_string(i)).Close();
      w.Close();
    }
    w.Close();
  }
  w.Close();
  return std::move(w).TakeString();
}

struct Config {
  bool single_thread = false;
  int shards = 4;
  int streams = 2;
  int rounds = 6;
  int subscribers = 500;
  int churn = 8;
};

int IntFlag(const char* arg, const char* name, int fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoi(arg + len + 1);
  }
  return fallback;
}

// Legacy mode: one FilterEngine, one thread, one stream.
int RunSingleThread(const Config& cfg) {
  twigm::Rng rng(7);
  std::vector<std::string> queries;
  for (int i = 0; i < cfg.subscribers; ++i) {
    queries.push_back(MakeSubscription(&rng));
  }

  class Router : public twigm::core::MultiQueryResultSink {
   public:
    void OnResult(size_t, const twigm::core::MatchInfo&) override {
      ++total_;
    }
    uint64_t total() const { return total_; }

   private:
    uint64_t total_ = 0;
  };
  Router router;
  auto engine = twigm::filter::FilterEngine::Create(queries, &router);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const twigm::filter::FilterIndexStats& istats =
      engine.value()->index().stats();
  std::printf("single-thread: %zu subscriptions, %llu steps -> %llu trie "
              "nodes (%zu linear, %zu tails)\n",
              istats.query_count,
              static_cast<unsigned long long>(istats.total_steps),
              static_cast<unsigned long long>(istats.trie_node_count),
              istats.linear_query_count, istats.tail_query_count);

  uint64_t fed_bytes = 0;
  for (int round = 0; round < cfg.rounds; ++round) {
    const std::string feed = MakeFeed(2000, 1234 + round);
    fed_bytes += feed.size();
    for (size_t pos = 0; pos < feed.size(); pos += 4096) {
      if (!engine.value()
               ->Consume({std::string_view(feed).substr(pos, 4096), false})
               .ok()) {
        return 1;
      }
    }
    if (!engine.value()->Consume({std::string_view(), true}).ok()) return 1;
    engine.value()->Reset();
  }
  std::printf("routed %llu KB over %d documents: %llu deliveries\n",
              static_cast<unsigned long long>(fed_bytes / 1024), cfg.rounds,
              static_cast<unsigned long long>(router.total()));
  return 0;
}

int RunServer(const Config& cfg) {
  twigm::serve::SubscriptionServer::Options options;
  options.num_shards = cfg.shards;
  auto server = twigm::serve::SubscriptionServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  twigm::Rng rng(7);
  std::vector<twigm::serve::SubscriptionId> live;
  for (int i = 0; i < cfg.subscribers; ++i) {
    auto id = server.value()->Subscribe(MakeSubscription(&rng));
    if (!id.ok()) {
      std::fprintf(stderr, "subscribe: %s\n", id.status().ToString().c_str());
      return 1;
    }
    live.push_back(id.value());
  }
  std::printf("serving %zu subscriptions on %d shards, %d streams\n",
              live.size(), cfg.shards, cfg.streams);

  // Feeder threads: each owns one stream and pushes `rounds` documents.
  std::atomic<uint64_t> bytes{0};
  std::atomic<bool> feed_failed{false};
  std::vector<std::unique_ptr<twigm::serve::ServerStream>> streams;
  for (int i = 0; i < cfg.streams; ++i) {
    streams.push_back(server.value()->OpenStream());
  }
  std::vector<std::thread> feeders;
  for (int i = 0; i < cfg.streams; ++i) {
    feeders.emplace_back([&, i] {
      for (int round = 0; round < cfg.rounds; ++round) {
        const std::string feed =
            MakeFeed(2000, 1234 + static_cast<uint64_t>(i * 1000 + round));
        bytes.fetch_add(feed.size(), std::memory_order_relaxed);
        if (!streams[static_cast<size_t>(i)]->FeedDocument(feed).ok()) {
          feed_failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  // Control loop: churn subscriptions while documents are in flight and
  // drain notifications. Churn lands at each stream's next document.
  uint64_t delivered = 0;
  uint64_t churned = 0;
  std::vector<twigm::serve::Notification> batch;
  auto drain = [&] {
    batch.clear();
    delivered += server.value()->Poll(&batch);
  };
  for (int round = 0; round < cfg.rounds; ++round) {
    for (int c = 0; c < cfg.churn && !live.empty(); ++c) {
      const size_t victim = rng.Below(live.size());
      if (server.value()->Unsubscribe(live[victim]).ok()) ++churned;
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      auto id = server.value()->Subscribe(MakeSubscription(&rng));
      if (id.ok()) live.push_back(id.value());
    }
    drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : feeders) t.join();
  drain();
  streams.clear();  // close the sessions before the server goes down
  drain();          // matches flushed by the close handshake

  if (feed_failed.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "error: a feeder stream failed\n");
    return 1;
  }

  std::printf("routed %llu KB over %d documents x %d streams "
              "(%llu churn ops): %llu deliveries\n",
              static_cast<unsigned long long>(bytes.load(std::memory_order_relaxed) / 1024),
              cfg.rounds, cfg.streams,
              static_cast<unsigned long long>(churned),
              static_cast<unsigned long long>(delivered));

  // Per-stage statistics through the obs export.
  twigm::obs::MetricsRegistry registry;
  server.value()->ExportMetrics(&registry);
  uint64_t total_events = 0;
  for (int s = 0; s < cfg.shards; ++s) {
    const twigm::serve::ShardCounters& c = server.value()->shard(s).counters();
    total_events += c.events.load(std::memory_order_relaxed);
  }
  for (int s = 0; s < cfg.shards; ++s) {
    const twigm::serve::ShardCounters& c = server.value()->shard(s).counters();
    std::printf("  shard %d: %8llu events (%4.1f%%), %7llu matches, "
                "%3llu rebuilds, ring depth peak %llu\n",
                s, static_cast<unsigned long long>(c.events.load(std::memory_order_relaxed)),
                total_events ? 100.0 * static_cast<double>(c.events.load(std::memory_order_relaxed)) /
                                   static_cast<double>(total_events)
                             : 0.0,
                static_cast<unsigned long long>(c.matches.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(c.engine_rebuilds.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(c.ring_depth_peak.load(std::memory_order_relaxed)));
  }
  for (const twigm::obs::MetricValue& mv : registry.Snapshot()) {
    if (mv.name == "serve.batch_size.count" ||
        mv.name == "serve.batch_size.sum" ||
        mv.name == "serve.notify_latency_us.max") {
      std::printf("  %s = %.0f\n", mv.name.c_str(), mv.value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--single-thread") == 0) {
      cfg.single_thread = true;
      continue;
    }
    cfg.shards = IntFlag(argv[i], "--shards", cfg.shards);
    cfg.streams = IntFlag(argv[i], "--streams", cfg.streams);
    cfg.rounds = IntFlag(argv[i], "--rounds", cfg.rounds);
    cfg.subscribers = IntFlag(argv[i], "--subscribers", cfg.subscribers);
    cfg.churn = IntFlag(argv[i], "--churn", cfg.churn);
  }
  return cfg.single_thread ? RunSingleThread(cfg) : RunServer(cfg);
}
