// Large-scale publish/subscribe routing with the shared-prefix filter
// engine (src/filter/). Where feed_router.cpp runs a handful of
// subscriptions through the product construction, this example registers
// hundreds of generated subscriptions and routes one stream through the
// step-trie: queries with common location-step prefixes share work, so the
// per-event cost depends on the number of distinct steps, not subscribers.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "filter/filter_engine.h"
#include "xml/xml_writer.h"

namespace {

// Subscriptions over the feed vocabulary. The small vocabulary means heavy
// prefix overlap — exactly the sharing the trie exploits.
std::vector<std::string> MakeSubscriptions(int count, uint64_t seed) {
  twigm::Rng rng(seed);
  const char* sections[] = {"sports", "finance", "politics", "science"};
  std::vector<std::string> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    std::string q;
    switch (rng.Below(5)) {
      case 0: q = "//item/headline"; break;
      case 1: q = "//item/body/p"; break;
      case 2: q = "/feed/item[@priority]/headline"; break;
      case 3:
        q = "/feed/item[category=\"" + std::string(sections[rng.Below(4)]) +
            "\"]/headline";
        break;
      case 4: q = "//item//link"; break;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

class Router : public twigm::core::MultiQueryResultSink {
 public:
  explicit Router(size_t queries) : counts_(queries) {}
  void OnResult(size_t query_index,
                const twigm::core::MatchInfo&) override {
    ++counts_[query_index];
    ++total_;
  }
  uint64_t total() const { return total_; }
  uint64_t matched_subscribers() const {
    uint64_t n = 0;
    for (uint64_t c : counts_) n += c > 0 ? 1 : 0;
    return n;
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

std::string MakeFeed(int items, uint64_t seed) {
  twigm::Rng rng(seed);
  twigm::xml::XmlWriter w(false);
  w.Open("feed");
  const char* categories[] = {"sports", "finance", "politics", "science"};
  for (int i = 0; i < items; ++i) {
    w.Open("item");
    if (rng.Chance(0.1)) w.Attr("priority", "1");
    w.Open("category").Text(categories[rng.Below(4)]).Close();
    w.Open("headline").Text("headline " + std::to_string(i)).Close();
    if (rng.Chance(0.4)) {
      w.Open("body");
      w.Open("p").Text(rng.Word(10, 40)).Close();
      if (rng.Chance(0.3)) w.Open("link").Text("#" + std::to_string(i)).Close();
      w.Close();
    }
    w.Close();
  }
  w.Close();
  return std::move(w).TakeString();
}

}  // namespace

int main() {
  constexpr int kSubscribers = 500;
  const std::vector<std::string> queries = MakeSubscriptions(kSubscribers, 7);

  Router router(queries.size());
  auto engine = twigm::filter::FilterEngine::Create(queries, &router);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const twigm::filter::FilterIndexStats& istats =
      engine.value()->index().stats();
  std::printf("compiled %zu subscriptions into a step trie:\n",
              istats.query_count);
  std::printf("  location steps across all queries: %llu\n",
              static_cast<unsigned long long>(istats.total_steps));
  std::printf("  distinct trie nodes after sharing: %llu\n",
              static_cast<unsigned long long>(istats.trie_node_count));
  std::printf("  fully shared (linear) queries:     %zu\n",
              istats.linear_query_count);
  std::printf("  trunk + per-query predicate tail:  %zu\n",
              istats.tail_query_count);
  std::printf("  unshared (predicate at step 1):    %zu\n",
              istats.unshared_query_count);

  const std::string feed = MakeFeed(5000, 1234);
  for (size_t pos = 0; pos < feed.size(); pos += 4096) {
    if (!engine.value()->Feed(std::string_view(feed).substr(pos, 4096)).ok()) {
      return 1;
    }
  }
  if (!engine.value()->Finish().ok()) return 1;

  const twigm::filter::FilterRuntimeStats& rstats =
      engine.value()->runtime_stats();
  std::printf("\nrouted %zu KB in one parse:\n", feed.size() / 1024);
  std::printf("  deliveries:                 %llu\n",
              static_cast<unsigned long long>(router.total()));
  std::printf("  subscribers matched:        %llu / %d\n",
              static_cast<unsigned long long>(router.matched_subscribers()),
              kSubscribers);
  std::printf("  peak simultaneously active trie nodes: %llu\n",
              static_cast<unsigned long long>(rstats.peak_active_nodes));
  std::printf("  peak engaged predicate tails:          %llu\n",
              static_cast<unsigned long long>(rstats.peak_engaged_tails));
  return 0;
}
