// xmlindex — build, query, and inspect persistent structural indexes
// (src/index/, DESIGN.md §15) for stored corpora: ingest a document once,
// then answer XP{/,//,*,[]} queries repeatedly without re-parsing it.
//
//   usage: xmlindex build <file.xml> <index.twgmidx>
//          xmlindex query [-c] <index.twgmidx> '<xpath>' [more queries...]
//          xmlindex stats <index.twgmidx>
//          xmlindex demo
//
//   $ ./xmlindex build book.xml book.twgmidx
//   $ ./xmlindex query book.twgmidx '//section[title]/figure'
//   $ ./xmlindex stats book.twgmidx
//
// `query` prints each match as "pre @byte-offset" (the element's start
// tag in the original document); -c prints only counts. `demo` runs the
// whole cycle on a small built-in document (it doubles as a smoke test).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/result_sink.h"
#include "index/index_builder.h"
#include "index/index_reader.h"
#include "index/indexed_evaluator.h"

namespace {

using twigm::Result;
using twigm::Status;
using twigm::index::IndexBuilder;
using twigm::index::IndexReader;
using twigm::index::IndexedEvaluator;

int Usage() {
  std::fprintf(stderr,
               "usage: xmlindex build <file.xml> <index.twgmidx>\n"
               "       xmlindex query [-c] <index.twgmidx> '<xpath>'...\n"
               "       xmlindex stats <index.twgmidx>\n"
               "       xmlindex demo\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Build(const char* xml_path, const char* index_path) {
  std::FILE* in = std::fopen(xml_path, "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", xml_path);
    return 1;
  }
  twigm::Stopwatch timer;
  IndexBuilder builder;
  char buffer[1 << 16];
  while (true) {
    const size_t n = std::fread(buffer, 1, sizeof(buffer), in);
    if (n == 0) break;
    const Status s = builder.Consume({std::string_view(buffer, n), false});
    if (!s.ok()) {
      std::fclose(in);
      return Fail(s);
    }
  }
  std::fclose(in);
  Status s = builder.Consume({std::string_view(), true});
  if (s.ok()) s = builder.WriteFile(index_path);
  if (!s.ok()) return Fail(s);
  const double seconds = timer.ElapsedSeconds();
  std::fprintf(
      stderr,
      "indexed %s: %llu elements, %llu symbols, %s of XML in %.3fs "
      "(%.2f GB/s)\n",
      xml_path, static_cast<unsigned long long>(builder.element_count()),
      static_cast<unsigned long long>(builder.symbol_count()),
      twigm::HumanBytes(builder.document_bytes()).c_str(), seconds,
      seconds > 0 ? builder.document_bytes() / seconds / 1e9 : 0.0);
  return 0;
}

int Query(bool count_only, const char* index_path, char** queries, int n) {
  Result<std::unique_ptr<IndexReader>> reader = IndexReader::Open(index_path);
  if (!reader.ok()) return Fail(reader.status());
  for (int i = 0; i < n; ++i) {
    Result<std::unique_ptr<IndexedEvaluator>> eval =
        IndexedEvaluator::Create(queries[i], reader.value().get());
    if (!eval.ok()) return Fail(eval.status());
    twigm::core::VectorResultSink sink;
    const Status s = eval.value()->Evaluate(&sink);
    if (!s.ok()) return Fail(s);
    if (!count_only) {
      for (const twigm::core::MatchInfo& match : sink.matches()) {
        std::printf("%llu @%llu\n",
                    static_cast<unsigned long long>(match.id),
                    static_cast<unsigned long long>(match.byte_offset));
      }
    }
    std::fprintf(stderr, "%s: %llu matches (%llu postings, %llu join steps)\n",
                 queries[i],
                 static_cast<unsigned long long>(sink.matches().size()),
                 static_cast<unsigned long long>(
                     eval.value()->stats().postings_touched),
                 static_cast<unsigned long long>(
                     eval.value()->stats().join_steps));
    if (count_only) {
      std::printf("%llu\n",
                  static_cast<unsigned long long>(sink.matches().size()));
    }
  }
  return 0;
}

int Stats(const char* index_path) {
  Result<std::unique_ptr<IndexReader>> opened = IndexReader::Open(index_path);
  if (!opened.ok()) return Fail(opened.status());
  const IndexReader& reader = *opened.value();
  std::printf("index file:     %s (%s)\n", index_path,
              twigm::HumanBytes(reader.file_bytes()).c_str());
  std::printf("document bytes: %s\n",
              twigm::HumanBytes(reader.document_bytes()).c_str());
  std::printf("elements:       %llu\n",
              static_cast<unsigned long long>(reader.element_count()));
  std::printf("symbols:        %llu (tags + attribute names)\n",
              static_cast<unsigned long long>(reader.symbol_count()));
  // Top tags by occurrence count.
  std::vector<std::pair<uint64_t, uint32_t>> by_count;
  for (uint32_t sym = 0; sym < reader.symbol_count(); ++sym) {
    const uint64_t count = reader.postings(sym).size;
    if (count > 0) by_count.emplace_back(count, sym);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  const size_t top = by_count.size() < 10 ? by_count.size() : 10;
  std::printf("top tags:\n");
  for (size_t i = 0; i < top; ++i) {
    const std::string_view name = reader.dictionary().name(by_count[i].second);
    std::printf("  %-20.*s %llu\n", static_cast<int>(name.size()), name.data(),
                static_cast<unsigned long long>(by_count[i].first));
  }
  return 0;
}

int Demo() {
  const char* doc =
      "<library><book year=\"2001\"><title>Stream Processing</title>"
      "<section><title>Intro</title><figure><image/>"
      "<title>fig one</title></figure></section></book>"
      "<book year=\"1999\"><title>Query Languages</title>"
      "<section><title>XPath</title></section></book></library>";
  const std::string xml_path = "/tmp/xmlindex_demo.xml";
  const std::string index_path = "/tmp/xmlindex_demo.twgmidx";
  std::FILE* f = std::fopen(xml_path.c_str(), "wb");
  if (f == nullptr) return 1;
  std::fwrite(doc, 1, std::strlen(doc), f);
  std::fclose(f);
  if (Build(xml_path.c_str(), index_path.c_str()) != 0) return 1;
  char query1[] = "//section[title]/figure";
  char query2[] = "//book[@year>2000]//title";
  char* queries[] = {query1, query2};
  if (Query(false, index_path.c_str(), queries, 2) != 0) return 1;
  if (Stats(index_path.c_str()) != 0) return 1;
  std::remove(xml_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "build") == 0) {
    if (argc != 4) return Usage();
    return Build(argv[2], argv[3]);
  }
  if (std::strcmp(cmd, "query") == 0) {
    int arg = 2;
    bool count_only = false;
    if (arg < argc && std::strcmp(argv[arg], "-c") == 0) {
      count_only = true;
      ++arg;
    }
    if (argc - arg < 2) return Usage();
    return Query(count_only, argv[arg], argv + arg + 1, argc - arg - 1);
  }
  if (std::strcmp(cmd, "stats") == 0) {
    if (argc != 3) return Usage();
    return Stats(argv[2]);
  }
  if (std::strcmp(cmd, "demo") == 0) return Demo();
  return Usage();
}
