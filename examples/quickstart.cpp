// Quickstart: compile an XPath query, stream a document through it, and
// receive results incrementally.
//
//   $ ./quickstart
//
// The query //book[year]/title is evaluated over a tiny catalog; note that
// the engine only decides membership once the predicate witness (<year>)
// has been seen — this buffering-under-uncertainty is the problem the
// TwigM algorithm solves with polynomial guarantees.

#include <cstdio>

#include "core/evaluator.h"

namespace {

// An observer that prints results the moment they are proven. MatchInfo
// also carries the stream byte offset at which membership became provable.
class PrintingObserver : public twigm::core::MatchObserver {
 public:
  void OnResult(const twigm::core::MatchInfo& match) override {
    std::printf("  result: element #%llu (proven at byte %llu)\n",
                static_cast<unsigned long long>(match.id),
                static_cast<unsigned long long>(match.byte_offset));
  }
};

constexpr const char kCatalog[] = R"(
<catalog>
  <book>
    <title>Streaming XML Processing</title>
    <year>2006</year>
  </book>
  <book>
    <title>No Year Here</title>
  </book>
  <book>
    <year>2005</year>
    <title>Year Before Title</title>
  </book>
</catalog>
)";

}  // namespace

int main() {
  const char* query = "//book[year]/title";
  std::printf("query: %s\n", query);

  PrintingObserver sink;
  auto processor =
      twigm::core::XPathStreamProcessor::Create(query, &sink);
  if (!processor.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: %s\n",
              twigm::core::EngineKindToString(processor.value()->engine_kind()));

  // Feed the document in small chunks, as a network stream would arrive.
  const std::string_view doc(kCatalog);
  for (size_t pos = 0; pos < doc.size(); pos += 16) {
    twigm::Status s = processor.value()->Consume({doc.substr(pos, 16), false});
    if (!s.ok()) {
      std::fprintf(stderr, "parse error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  twigm::Status s = processor.value()->Consume({std::string_view(), true});
  if (!s.ok()) {
    std::fprintf(stderr, "parse error: %s\n", s.ToString().c_str());
    return 1;
  }

  const twigm::core::EngineStats& stats = processor.value()->stats();
  std::printf("elements processed: %llu, results: %llu, peak stack "
              "entries: %llu\n",
              static_cast<unsigned long long>(stats.start_events),
              static_cast<unsigned long long>(stats.results),
              static_cast<unsigned long long>(stats.peak_stack_entries));
  return 0;
}
