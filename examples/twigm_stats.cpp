// twigm_stats — live observability demo: streams the Book dataset through
// an instrumented processor and prints, while the stream is flowing, the
// per-stage wall-time breakdown (parse / drive / machine / emit), then a
// final report with per-query-node peak stack depth (the paper's memory
// bound, observed) and the per-result emission latency in bytes — how much
// more of the stream had to be read between an element becoming a
// *candidate* and being proven a *result*.
//
// With an early-decision mode (observe/on), decision tables compiled from
// the Book DTD are installed and the report adds the earliest-answering
// section: the emission gap (bytes between a match becoming statically
// provable and its actual emission) and the early-emit/drop/skip counters.
//
//   usage: twigm_stats ['<xpath>' [min_bytes [off|observe|on]]]
//   default query: //section[title]//figure

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/decision_analysis.h"
#include "analysis/dtd_structure.h"
#include "common/string_util.h"
#include "core/evaluator.h"
#include "data/book.h"
#include "dtd/dtd_parser.h"
#include "obs/instrumentation.h"

namespace {

// Pairs each result's kEmit offset with its first kCandidate offset and
// feeds the difference (latency in bytes) into a histogram.
class LatencySink : public twigm::obs::TraceSink {
 public:
  LatencySink()
      : histogram_(twigm::obs::ExponentialBuckets(64, 4, 10)) {}

  void OnEvent(const twigm::obs::TraceEvent& event) override {
    using Kind = twigm::obs::TraceEvent::Kind;
    switch (event.kind) {
      case Kind::kCandidate:
        first_candidate_.emplace(event.node_id, event.byte_offset);
        break;
      case Kind::kEmit: {
        auto it = first_candidate_.find(event.node_id);
        const uint64_t candidate_offset =
            it != first_candidate_.end() ? it->second : event.byte_offset;
        histogram_.Observe(event.byte_offset - candidate_offset);
        break;
      }
      default:
        break;
    }
  }

  const twigm::obs::Histogram& histogram() const { return histogram_; }

 private:
  // node id -> offset of the earliest candidate announcement
  std::unordered_map<uint64_t, uint64_t> first_candidate_;
  twigm::obs::Histogram histogram_;
};

void PrintStages(const twigm::obs::Instrumentation& instr, double pct) {
  const twigm::obs::StageBreakdown b = instr.stages();
  std::printf(
      "  %5.1f%% streamed | parse %7.2f ms  drive %7.2f ms  machine %7.2f ms"
      "  emit %7.2f ms\n",
      pct, b.parse_ns / 1e6, b.drive_ns / 1e6, b.machine_ns / 1e6,
      b.emit_ns / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const char* query = argc > 1 ? argv[1] : "//section[title]//figure";
  const size_t min_bytes =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 512 * 1024;
  const char* mode_name = argc > 3 ? argv[3] : "observe";
  twigm::core::EarlyDecisionMode mode;
  if (std::strcmp(mode_name, "off") == 0) {
    mode = twigm::core::EarlyDecisionMode::kOff;
  } else if (std::strcmp(mode_name, "observe") == 0) {
    mode = twigm::core::EarlyDecisionMode::kObserve;
  } else if (std::strcmp(mode_name, "on") == 0) {
    mode = twigm::core::EarlyDecisionMode::kOn;
  } else {
    std::fprintf(stderr, "unknown mode '%s' (off|observe|on)\n", mode_name);
    return 1;
  }

  twigm::data::BookOptions book;
  book.seed = 11;
  book.min_bytes = min_bytes;
  auto doc = twigm::data::GenerateBook(book);
  if (!doc.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }

  twigm::obs::Instrumentation instr;
  LatencySink latency;
  instr.set_trace_sink(&latency);

  twigm::core::CountingResultSink results;
  twigm::core::EvaluatorOptions options;
  options.instrumentation = &instr;
  options.enable_early_decisions = mode;
  auto proc = twigm::core::XPathStreamProcessor::Create(query, &results,
                                                        options);
  if (!proc.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 proc.status().ToString().c_str());
    return 1;
  }

  // The size-targeted generator wraps the books under <collection>.
  twigm::Result<twigm::dtd::Dtd> dtd = twigm::dtd::ParseDtd(
      std::string("<!ELEMENT collection (book*)>\n") +
      twigm::data::kBookDtd);
  twigm::Result<twigm::analysis::DtdStructure> dtds =
      dtd.ok() ? twigm::analysis::DtdStructure::Build(dtd.value())
               : twigm::Result<twigm::analysis::DtdStructure>(dtd.status());
  if (mode != twigm::core::EarlyDecisionMode::kOff) {
    if (!dtds.ok()) {
      std::fprintf(stderr, "DTD summary failed: %s\n",
                   dtds.status().ToString().c_str());
      return 1;
    }
    twigm::analysis::EnableEarlyDecisions(proc.value().get(), dtds.value());
  }

  std::printf("query:   %s\n", query);
  std::printf("engine:  %s\n",
              twigm::core::EngineKindToString(proc.value()->engine_kind()));
  std::printf("mode:    early decisions %s\n", mode_name);
  std::printf("dataset: Book, %s\n\n",
              twigm::HumanBytes(doc.value().size()).c_str());

  // Stream in network-sized chunks; report the live stage breakdown at
  // every quarter of the document.
  const std::string_view data(doc.value());
  const size_t chunk = 64 * 1024;
  size_t next_report = data.size() / 4;
  std::printf("live per-stage wall time (cumulative, exclusive):\n");
  for (size_t pos = 0; pos < data.size(); pos += chunk) {
    twigm::Status s = proc.value()->Consume({data.substr(pos, chunk), false});
    if (!s.ok()) {
      std::fprintf(stderr, "parse error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (pos + chunk >= next_report) {
      const size_t streamed = pos + chunk < data.size() ? pos + chunk
                                                        : data.size();
      PrintStages(instr, 100.0 * static_cast<double>(streamed) /
                             static_cast<double>(data.size()));
      next_report += data.size() / 4;
    }
  }
  twigm::Status s = proc.value()->Consume({std::string_view(), true});
  if (!s.ok()) {
    std::fprintf(stderr, "parse error: %s\n", s.ToString().c_str());
    return 1;
  }

  const twigm::obs::StageBreakdown b = instr.stages();
  std::printf("\nfinal stage breakdown:\n");
  std::printf("  parse (tokenize + wf checks) %9.2f ms\n", b.parse_ns / 1e6);
  std::printf("  drive (modified-SAX events)  %9.2f ms\n", b.drive_ns / 1e6);
  std::printf("  machine (transitions)        %9.2f ms\n",
              b.machine_ns / 1e6);
  std::printf("  emit (result delivery)       %9.2f ms\n", b.emit_ns / 1e6);
  std::printf("  total                        %9.2f ms\n", b.total_ns / 1e6);

  std::printf("\npeak stack depth per query node (machine-node id):\n");
  const std::vector<uint64_t>& peaks = instr.node_depth_peaks();
  for (size_t i = 0; i < peaks.size(); ++i) {
    std::printf("  node %2zu: %" PRIu64 "\n", i, peaks[i]);
  }

  const twigm::obs::Histogram& h = latency.histogram();
  std::printf("\nper-result emission latency (bytes of stream between first"
              " candidate and proof):\n");
  std::printf("  results %" PRIu64 ", min %" PRIu64 " B, mean %.0f B, max %"
              PRIu64 " B\n",
              h.total_count(), h.min(), h.mean(), h.max());
  for (size_t i = 0; i < h.bounds().size(); ++i) {
    if (h.counts()[i] == 0) continue;
    std::printf("  <= %8" PRIu64 " B: %" PRIu64 "\n", h.bounds()[i],
                h.counts()[i]);
  }
  if (h.counts().back() != 0) {
    std::printf("  >  %8" PRIu64 " B: %" PRIu64 "\n", h.bounds().back(),
                h.counts().back());
  }

  if (mode != twigm::core::EarlyDecisionMode::kOff) {
    const twigm::core::EngineStats& es = proc.value()->stats();
    std::printf("\nearliest answering (%s):\n", mode_name);
    std::printf("  emission gap: %" PRIu64 " gaps, mean %.0f B, max %" PRIu64
                " B\n",
                es.gap_count,
                es.gap_count > 0 ? static_cast<double>(es.gap_sum_bytes) /
                                       static_cast<double>(es.gap_count)
                                 : 0.0,
                es.gap_max_bytes);
    std::printf("  early emitted %" PRIu64 ", early dropped %" PRIu64
                ", states skipped %" PRIu64 "\n",
                es.early_emitted, es.early_dropped, es.states_skipped);
  }

  // Engine accounting through the same registry surface the benches use.
  proc.value()->ExportMetrics(&instr.registry());
  std::printf("\nmetrics snapshot:\n");
  for (const twigm::obs::MetricValue& m : instr.registry().Snapshot()) {
    std::printf("  %-28s %.0f\n", m.name.c_str(), m.value);
  }
  return 0;
}
