// explain — shows how the library compiles a query: parsed form, query
// tree classification, machine-node graph with edge labels and branch
// slots, and which engine auto-selection picks.
//
//   $ ./explain '//a[d]//b[e]//c'
//   $ ./explain '//section[figure[image]][@id]//section[p]/title'

#include <cstdio>

#include "core/evaluator.h"
#include "core/machine_builder.h"
#include "core/union_query.h"
#include "xpath/query_tree.h"

namespace {

int ExplainBranch(const std::string& query) {
  auto tree = twigm::xpath::QueryTree::Parse(query);
  if (!tree.ok()) {
    std::fprintf(stderr, "parse error: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("canonical form : %s\n", tree.value().ToString().c_str());
  std::printf("query nodes    : %d\n", tree.value().node_count());
  std::printf("classification :%s%s%s%s\n",
              tree.value().has_descendant_axis() ? " descendant-axis" : "",
              tree.value().has_wildcard() ? " wildcard" : "",
              tree.value().has_predicates() ? " predicates" : " linear",
              tree.value().has_value_tests() ? " value-tests" : "");

  auto graph = twigm::core::MachineGraph::Build(tree.value());
  if (!graph.ok()) {
    std::fprintf(stderr, "machine construction failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("machine nodes  : %zu (interior '*' collapsed into edges)\n",
              graph.value().node_count());
  std::printf("%s", graph.value().ToString().c_str());

  twigm::core::VectorResultSink sink;
  auto proc = twigm::core::XPathStreamProcessor::Create(query, &sink);
  if (proc.ok()) {
    std::printf("selected engine: %s\n",
                twigm::core::EngineKindToString(proc.value()->engine_kind()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: explain '<xpath>'\n");
    return 2;
  }
  auto branches = twigm::core::SplitUnionQuery(argv[1]);
  if (!branches.ok()) {
    std::fprintf(stderr, "%s\n", branches.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  for (size_t i = 0; i < branches.value().size(); ++i) {
    if (branches.value().size() > 1) {
      std::printf("=== union branch %zu ===\n", i + 1);
    }
    rc |= ExplainBranch(branches.value()[i]);
    if (i + 1 < branches.value().size()) std::printf("\n");
  }
  return rc;
}
