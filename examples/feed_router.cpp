// Publish/subscribe routing — the filtering workload of the paper's
// related-work systems (YFilter/XTrie): many subscriptions, one stream,
// one parse. Each subscriber registers an XPath query over a news feed;
// items are routed to every subscriber whose query proves a match, while
// the feed streams through.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/multi_query.h"
#include "xml/xml_writer.h"

namespace {

struct Subscription {
  const char* name;
  const char* query;
};

constexpr Subscription kSubscriptions[] = {
    {"sports-desk", "//item[category=\"sports\"]/headline"},
    {"finance-desk", "//item[category=\"finance\"]/headline"},
    {"breaking", "//item[@priority=\"1\"]/headline"},
    {"long-reads", "//item[body]/headline"},
    {"everything", "//item/headline"},
};
constexpr size_t kSubscriptionCount =
    sizeof(kSubscriptions) / sizeof(kSubscriptions[0]);

class Router : public twigm::core::MultiQueryResultSink {
 public:
  void OnResult(size_t query_index,
                const twigm::core::MatchInfo& match) override {
    ++counts_[query_index];
    if (delivered_ < 8) {
      std::printf("  -> %-13s headline #%llu\n",
                  kSubscriptions[query_index].name,
                  static_cast<unsigned long long>(match.id));
      ++delivered_;
    }
  }

  uint64_t count(size_t i) const { return counts_[i]; }

 private:
  uint64_t counts_[kSubscriptionCount] = {};
  int delivered_ = 0;
};

std::string MakeFeed(int items, uint64_t seed) {
  twigm::Rng rng(seed);
  twigm::xml::XmlWriter w(false);
  w.Open("feed");
  const char* categories[] = {"sports", "finance", "politics", "science"};
  for (int i = 0; i < items; ++i) {
    w.Open("item");
    if (rng.Chance(0.1)) w.Attr("priority", "1");
    w.Open("category").Text(categories[rng.Below(4)]).Close();
    w.Open("headline").Text("headline " + std::to_string(i)).Close();
    if (rng.Chance(0.3)) {
      w.Open("body").Text(rng.Word(20, 60)).Close();
    }
    w.Close();
  }
  w.Close();
  return std::move(w).TakeString();
}

}  // namespace

int main() {
  std::printf("subscriptions:\n");
  std::vector<std::string> queries;
  for (const Subscription& sub : kSubscriptions) {
    std::printf("  %-13s %s\n", sub.name, sub.query);
    queries.emplace_back(sub.query);
  }

  Router router;
  auto proc = twigm::core::MultiQueryProcessor::Create(queries, &router);
  if (!proc.ok()) {
    std::fprintf(stderr, "error: %s\n", proc.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrouting (first deliveries shown):\n");
  const std::string feed = MakeFeed(5000, 1234);
  for (size_t pos = 0; pos < feed.size(); pos += 2048) {
    if (!proc.value()->Consume({std::string_view(feed).substr(pos, 2048), false}).ok()) {
      return 1;
    }
  }
  if (!proc.value()->Consume({std::string_view(), true}).ok()) return 1;

  std::printf("\ndeliveries per subscriber (one parse of %zu KB):\n",
              feed.size() / 1024);
  for (size_t i = 0; i < kSubscriptionCount; ++i) {
    std::printf("  %-13s %llu\n", kSubscriptions[i].name,
                static_cast<unsigned long long>(router.count(i)));
  }
  return 0;
}
