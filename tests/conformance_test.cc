// Encoding/robustness conformance for the ByteSource front end (DESIGN.md
// §12): BOM detection (UTF-8, UTF-16 LE/BE, split across chunks), UTF-16
// transcoding (surrogate pairs, split code units), NUL and malformed
// character-reference rejection, XML-declaration placement, split-buffer
// edge cases, the canonical-buffer max_buffer_bytes cap — and the
// SIMD-vs-scalar differential fuzz: both structural scanners must produce
// byte-offset-identical event streams over randomly chunked documents.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "xml/byte_source.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xml/structural_scan.h"

namespace twigm::xml {
namespace {

// Records every event as a compact trace string, each prefixed with the
// stream byte offset published through the parser's offset slot — so two
// traces compare equal only if the event streams are byte-offset-identical.
class OffsetTraceHandler : public SaxHandler {
 public:
  void OnStartDocument() override { Stamp("D+"); }
  void OnEndDocument() override { Stamp("D-"); }
  void OnStartElement(const TagToken& tag,
                      const std::vector<Attribute>& attrs) override {
    Stamp("<" + std::string(tag.text));
    for (const Attribute& a : attrs) {
      trace_ += " " + std::string(a.name) + "='" + std::string(a.value) + "'";
    }
  }
  void OnEndElement(const TagToken& tag) override {
    Stamp("</" + std::string(tag.text) + ">");
  }
  void OnCharacters(std::string_view text) override {
    Stamp("T(" + std::string(text) + ")");
  }
  void OnComment(std::string_view text) override {
    Stamp("C(" + std::string(text) + ")");
  }
  void OnProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    Stamp("PI(" + std::string(target) + "," + std::string(data) + ")");
  }

  const std::string& trace() const { return trace_; }
  uint64_t* offset_slot() { return &offset_; }

 private:
  void Stamp(const std::string& event) {
    trace_ += "@" + std::to_string(offset_) + event + " ";
  }
  uint64_t offset_ = 0;
  std::string trace_;
};

struct ParseOutcome {
  std::string trace;
  Status status;
};

// Parses `doc` in chunks of `chunk_size` bytes (0 = one last chunk).
ParseOutcome Parse(std::string_view doc, size_t chunk_size = 0,
                   SaxParserOptions options = SaxParserOptions()) {
  OffsetTraceHandler handler;
  SaxParser parser(&handler, options);
  parser.set_offset_slot(handler.offset_slot());
  StringByteSource source(doc, chunk_size);
  ParseOutcome out;
  out.status = parser.Pump(&source);
  out.trace = handler.trace();
  return out;
}

// --- byte order marks -----------------------------------------------------

std::string EncodeUtf16(const std::u32string& cps, bool le, bool bom) {
  std::string out;
  auto push_unit = [&](uint32_t u) {
    if (le) {
      out += static_cast<char>(u & 0xFF);
      out += static_cast<char>(u >> 8);
    } else {
      out += static_cast<char>(u >> 8);
      out += static_cast<char>(u & 0xFF);
    }
  };
  if (bom) push_unit(0xFEFF);
  for (char32_t c : cps) {
    const uint32_t cp = static_cast<uint32_t>(c);
    if (cp >= 0x10000) {
      push_unit(0xD800 + ((cp - 0x10000) >> 10));
      push_unit(0xDC00 + ((cp - 0x10000) & 0x3FF));
    } else {
      push_unit(cp);
    }
  }
  return out;
}

std::u32string ToU32(std::string_view ascii) {
  return std::u32string(ascii.begin(), ascii.end());
}

TEST(ConformanceBom, Utf8BomIsStripped) {
  const ParseOutcome plain = Parse("<a>x</a>");
  const ParseOutcome bommed = Parse("\xEF\xBB\xBF<a>x</a>");
  EXPECT_TRUE(bommed.status.ok()) << bommed.status.message();
  // Offsets count canonical bytes, BOM excluded — traces are identical.
  EXPECT_EQ(bommed.trace, plain.trace);
}

TEST(ConformanceBom, Utf8BomFollowedByXmlDeclaration) {
  // Regression: the pre-ByteSource parser counted the BOM as consumed
  // bytes, so a following XML declaration was wrongly rejected as "not at
  // the start of the document".
  const ParseOutcome out =
      Parse("\xEF\xBB\xBF<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
  EXPECT_TRUE(out.status.ok()) << out.status.message();
}

TEST(ConformanceBom, BomSplitAcrossChunks) {
  const std::string doc = "\xEF\xBB\xBF<a>x</a>";
  const ParseOutcome whole = Parse(doc);
  for (size_t chunk = 1; chunk <= 4; ++chunk) {
    const ParseOutcome split = Parse(doc, chunk);
    EXPECT_TRUE(split.status.ok()) << split.status.message();
    EXPECT_EQ(split.trace, whole.trace) << "chunk=" << chunk;
  }
}

TEST(ConformanceBom, PartialBomLookalikeIsContent) {
  // 0xEF 0xBB not followed by 0xBF is ordinary (malformed) content, not a
  // BOM — the parser must decide UTF-8 and then fail on the garbage, not
  // wait forever or misinterpret.
  const ParseOutcome out = Parse("\xEF\xBB<a/>");
  EXPECT_FALSE(out.status.ok());
  // A lone potential-BOM byte at end of input is content too.
  const ParseOutcome lone = Parse("\xFE");
  EXPECT_FALSE(lone.status.ok());
}

TEST(ConformanceBom, Utf16LittleEndian) {
  const ParseOutcome plain = Parse("<a y='2'>hi</a>");
  const std::string doc =
      EncodeUtf16(ToU32("<a y='2'>hi</a>"), /*le=*/true, /*bom=*/true);
  const ParseOutcome out = Parse(doc);
  EXPECT_TRUE(out.status.ok()) << out.status.message();
  // Offsets count canonical (transcoded UTF-8) bytes, so the trace equals
  // the plain UTF-8 parse exactly.
  EXPECT_EQ(out.trace, plain.trace);
}

TEST(ConformanceBom, Utf16BigEndian) {
  const ParseOutcome plain = Parse("<a>hi</a>");
  const std::string doc =
      EncodeUtf16(ToU32("<a>hi</a>"), /*le=*/false, /*bom=*/true);
  const ParseOutcome out = Parse(doc);
  EXPECT_TRUE(out.status.ok()) << out.status.message();
  EXPECT_EQ(out.trace, plain.trace);
}

TEST(ConformanceBom, Utf16NonAsciiAndSurrogatePairs) {
  // é (U+00E9, 2 UTF-8 bytes) and 𝄞 (U+1D11E, a surrogate pair, 4 UTF-8
  // bytes) must transcode correctly in both endiannesses.
  std::u32string cps = ToU32("<a>");
  cps += U'é';
  cps += U'\U0001D11E';
  cps += ToU32("</a>");
  for (bool le : {true, false}) {
    const ParseOutcome out = Parse(EncodeUtf16(cps, le, /*bom=*/true));
    EXPECT_TRUE(out.status.ok()) << out.status.message();
    EXPECT_NE(out.trace.find("T(\xC3\xA9\xF0\x9D\x84\x9E)"),
              std::string::npos)
        << out.trace;
  }
}

TEST(ConformanceBom, Utf16SplitAtEveryChunkSize) {
  std::u32string cps = ToU32("<a b='1'>x");
  cps += U'\U0001D11E';
  cps += ToU32("y</a>");
  for (bool le : {true, false}) {
    const std::string doc = EncodeUtf16(cps, le, /*bom=*/true);
    const ParseOutcome whole = Parse(doc);
    ASSERT_TRUE(whole.status.ok()) << whole.status.message();
    // Chunk size 1 splits the BOM, every code unit, and the surrogate pair.
    for (size_t chunk = 1; chunk <= 5; ++chunk) {
      const ParseOutcome split = Parse(doc, chunk);
      EXPECT_TRUE(split.status.ok()) << split.status.message();
      EXPECT_EQ(split.trace, whole.trace) << "le=" << le << " chunk=" << chunk;
    }
  }
}

TEST(ConformanceBom, TruncatedUtf16IsRejected) {
  // Odd byte count: the document ends mid code unit.
  std::string doc = EncodeUtf16(ToU32("<a/>"), /*le=*/true, /*bom=*/true);
  doc.pop_back();
  const ParseOutcome out = Parse(doc);
  EXPECT_FALSE(out.status.ok());
  EXPECT_NE(out.status.message().find("UTF-16"), std::string::npos)
      << out.status.message();
}

TEST(ConformanceBom, UnpairedSurrogatesAreRejected) {
  // A high surrogate followed by a non-low unit.
  std::string high = EncodeUtf16(ToU32("<a>"), true, true);
  high += EncodeUtf16({0xD800, 'x'}, true, false);
  EXPECT_FALSE(Parse(high).status.ok());
  // A lone low surrogate.
  std::string low = EncodeUtf16(ToU32("<a>"), true, true);
  low += EncodeUtf16({0xDC00}, true, false);
  EXPECT_FALSE(Parse(low).status.ok());
  // A high surrogate left dangling at end of input.
  std::string dangling = EncodeUtf16(ToU32("<a>x</a>"), true, true);
  dangling += EncodeUtf16({0xD800}, true, false);
  EXPECT_FALSE(Parse(dangling).status.ok());
}

// --- NUL and character-reference rejection --------------------------------

TEST(ConformanceNul, NulByteIsRejectedEverywhere) {
  const std::string docs[] = {
      std::string("<a>x\0y</a>", 10),          // in text
      std::string("<a b=\"x\0\"/>", 11),       // in an attribute value
      std::string("<a><![CDATA[\0]]></a>", 20),  // in CDATA
      std::string("\0<a/>", 5),                // before the root
  };
  for (const std::string& doc : docs) {
    const ParseOutcome out = Parse(doc);
    EXPECT_FALSE(out.status.ok());
    EXPECT_NE(out.status.message().find("NUL"), std::string::npos)
        << out.status.message();
  }
}

TEST(ConformanceNul, NulRejectionIsChunkInvariant) {
  // The same error must surface no matter where chunk boundaries fall, and
  // no event may be emitted for constructs at or past the NUL.
  const std::string doc("<a><b>ok</b>\0<c/></a>", 21);
  const ParseOutcome whole = Parse(doc);
  ASSERT_FALSE(whole.status.ok());
  EXPECT_NE(whole.trace.find("<b"), std::string::npos);
  EXPECT_EQ(whole.trace.find("<c"), std::string::npos);
  for (size_t chunk = 1; chunk <= 6; ++chunk) {
    const ParseOutcome split = Parse(doc, chunk);
    EXPECT_EQ(split.status.message(), whole.status.message())
        << "chunk=" << chunk;
    EXPECT_EQ(split.trace, whole.trace) << "chunk=" << chunk;
  }
}

TEST(ConformanceCharRef, ReferencesToNonXmlCharsAreRejected) {
  // NUL, other C0 controls, surrogates and the FFFE/FFFF non-characters
  // are not XML Chars; references to them are malformed.
  for (const char* doc :
       {"<a>&#0;</a>", "<a>&#x0;</a>", "<a>&#1;</a>", "<a>&#x1F;</a>",
        "<a>&#xD800;</a>", "<a>&#xFFFE;</a>", "<a>&#xFFFF;</a>",
        "<a>&#1114112;</a>", "<a b='&#0;'/>"}) {
    const ParseOutcome out = Parse(doc);
    EXPECT_FALSE(out.status.ok()) << doc;
    EXPECT_NE(out.status.message().find("character reference"),
              std::string::npos)
        << doc << ": " << out.status.message();
  }
}

TEST(ConformanceCharRef, ValidBoundaryReferencesAreAccepted) {
  // Tab, newline, CR, the basic-plane edges and the astral plane are fine.
  for (const char* doc :
       {"<a>&#9;</a>", "<a>&#xA;</a>", "<a>&#xD;</a>", "<a>&#x20;</a>",
        "<a>&#xD7FF;</a>", "<a>&#xE000;</a>", "<a>&#xFFFD;</a>",
        "<a>&#x10FFFF;</a>"}) {
    EXPECT_TRUE(Parse(doc).status.ok()) << doc;
  }
}

// --- XML declaration placement --------------------------------------------

TEST(ConformanceDecl, DeclarationAtStartIsAccepted) {
  EXPECT_TRUE(Parse("<?xml version=\"1.0\"?><a/>").status.ok());
}

TEST(ConformanceDecl, MisplacedDeclarationsAreRejected) {
  for (const char* doc :
       {" <?xml version=\"1.0\"?><a/>",          // after whitespace
        "<!--c--><?xml version=\"1.0\"?><a/>",   // after a comment
        "<a><?xml version=\"1.0\"?></a>",        // inside the root
        "<a/><?xml version=\"1.0\"?>",           // after the root
        "<?xml?><?xml?><a/>"}) {                 // duplicated
    const ParseOutcome out = Parse(doc);
    EXPECT_FALSE(out.status.ok()) << doc;
    EXPECT_NE(out.status.message().find("XML declaration"), std::string::npos)
        << doc << ": " << out.status.message();
  }
}

// --- split-buffer edge cases ----------------------------------------------

TEST(ConformanceSplit, CorpusIsChunkInvariant) {
  // Every construct kind, split at every small chunk size: the event
  // streams (offsets included) must be identical to the whole-document
  // parse.
  const char* corpus[] = {
      "<?xml version=\"1.0\"?><a/>",
      "<!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a>",
      "<!--x--><a b=\"1\" c='2'>mid<!-- in --><b/>tail</a><!--y-->",
      "<a><![CDATA[raw <>&'\" ]] text]]></a>",
      "<r><?pi some data?>x&amp;y&#65;&#x42;<e f='&lt;&gt;'/></r>",
      "<a>\n line2\n line3 <b\n  c='multi\nline'/>\n</a>",
      "<a>\xC3\xA9\xE4\xB8\x80\xF0\x9D\x84\x9E</a>",  // 2/3/4-byte UTF-8
      "<a><b><c><d><e>deep</e></d></c></b></a>",
  };
  for (const char* doc : corpus) {
    const ParseOutcome whole = Parse(doc);
    ASSERT_TRUE(whole.status.ok())
        << doc << ": " << whole.status.message();
    for (size_t chunk = 1; chunk <= 7; ++chunk) {
      const ParseOutcome split = Parse(doc, chunk);
      EXPECT_TRUE(split.status.ok()) << split.status.message();
      EXPECT_EQ(split.trace, whole.trace) << doc << " chunk=" << chunk;
    }
  }
}

TEST(ConformanceSplit, ErrorsAreChunkInvariantToo) {
  const char* corpus[] = {
      "<a><b></a></b>",       // mismatched tags
      "<a>&bogus;</a>",       // unknown entity
      "<a><b x=y></b></a>",   // unquoted attribute
      "<a/><b/>",             // multiple roots
  };
  for (const char* doc : corpus) {
    const ParseOutcome whole = Parse(doc);
    ASSERT_FALSE(whole.status.ok()) << doc;
    for (size_t chunk = 1; chunk <= 5; ++chunk) {
      const ParseOutcome split = Parse(doc, chunk);
      EXPECT_EQ(split.status.message(), whole.status.message())
          << doc << " chunk=" << chunk;
      EXPECT_EQ(split.trace, whole.trace) << doc << " chunk=" << chunk;
    }
  }
}

// --- canonical-buffer cap -------------------------------------------------

TEST(ConformanceBuffer, MaxBufferBindsOnCanonicalBytes) {
  // 600 × U+4E00: 1200 raw UTF-16 bytes but 1800 canonical UTF-8 bytes.
  // With the cap at 1500 the raw stream alone would fit — the cap must
  // bind on the post-transcode buffer.
  std::u32string cps = ToU32("<a>");
  cps.append(600, U'一');
  const std::string doc = EncodeUtf16(cps, /*le=*/true, /*bom=*/true);

  SaxParserOptions options;
  options.max_buffer_bytes = 1500;
  OffsetTraceHandler handler;
  SaxParser parser(&handler, options);
  const Status s = parser.Consume({doc, false});  // no last chunk: text stays buffered
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("max_buffer_bytes"), std::string::npos)
      << s.message();
}

// --- SIMD vs scalar differential fuzz -------------------------------------

// Generates a random well-formed document exercising every construct kind.
void BuildElement(Rng& rng, int depth, std::string* out) {
  const std::string name = rng.Word(1, 8);
  *out += "<" + name;
  const int nattrs = static_cast<int>(rng.Below(3));
  for (int a = 0; a < nattrs; ++a) {
    const char quote = rng.Chance(0.5) ? '"' : '\'';
    *out += " " + std::string(1, static_cast<char>('p' + a)) +
            rng.Word(0, 4) + "=" + quote;
    switch (rng.Below(4)) {
      case 0: *out += rng.Word(0, 6); break;
      case 1: *out += "v&amp;w"; break;
      case 2: *out += "&#233;"; break;
      default: *out += "a b\tc"; break;
    }
    *out += quote;
  }
  if (rng.Chance(0.2)) {
    *out += "/>";
    return;
  }
  *out += ">";
  const int nchildren = depth >= 4 ? 0 : static_cast<int>(rng.Below(4));
  for (int c = 0; c < nchildren; ++c) {
    switch (rng.Below(6)) {
      case 0: BuildElement(rng, depth + 1, out); break;
      case 1: *out += rng.Word(1, 12); break;
      case 2: *out += "x&lt;" + rng.Word(0, 4) + "&gt;&#x42;"; break;
      case 3: *out += "<!--" + rng.Word(0, 8) + "-->"; break;
      case 4: *out += "<![CDATA[" + rng.Word(0, 6) + " <>&'\" ]]>"; break;
      default: *out += "<?pi" + rng.Word(1, 3) + " " + rng.Word(0, 5) + "?>";
    }
  }
  *out += "</" + name + ">";
}

std::string BuildDocument(Rng& rng) {
  std::string doc;
  if (rng.Chance(0.3)) doc += "\xEF\xBB\xBF";
  if (rng.Chance(0.5)) doc += "<?xml version=\"1.0\"?>";
  if (rng.Chance(0.3)) doc += "<!--head-->\n";
  BuildElement(rng, 0, &doc);
  if (rng.Chance(0.3)) doc += "\n<!--tail-->";
  return doc;
}

ParseOutcome ParseRandomChunks(std::string_view doc, bool scalar,
                               uint64_t seed) {
  Rng rng(seed);
  SaxParserOptions options;
  options.force_scalar_scan = scalar;
  OffsetTraceHandler handler;
  SaxParser parser(&handler, options);
  parser.set_offset_slot(handler.offset_slot());
  size_t offset = 0;
  ParseOutcome out;
  while (offset < doc.size()) {
    const size_t n =
        std::min<size_t>(1 + rng.Below(9), doc.size() - offset);
    out.status = parser.Consume({doc.substr(offset, n), false});
    if (!out.status.ok()) break;
    offset += n;
  }
  if (out.status.ok()) out.status = parser.Consume({std::string_view(), true});
  out.trace = handler.trace();
  return out;
}

TEST(ConformanceDifferential, SimdAndScalarScannersAreIndistinguishable) {
  // 100 random documents, random chunk splits: the build-selected scanner
  // and the byte-loop reference must yield byte-offset-identical event
  // streams. (Under -DTWIGM_FORCE_SCALAR_SCAN both sides run SWAR and this
  // degenerates to a chunking-invariance check, which is still useful.)
  Rng doc_rng(0xC0FFEE);
  for (int i = 0; i < 100; ++i) {
    const std::string doc = BuildDocument(doc_rng);
    const uint64_t chunk_seed = 0x5EED0000 + static_cast<uint64_t>(i);
    const ParseOutcome fast = ParseRandomChunks(doc, false, chunk_seed);
    const ParseOutcome scalar = ParseRandomChunks(doc, true, chunk_seed);
    ASSERT_TRUE(fast.status.ok())
        << "doc " << i << ": " << fast.status.message() << "\n" << doc;
    ASSERT_TRUE(scalar.status.ok())
        << "doc " << i << ": " << scalar.status.message() << "\n" << doc;
    ASSERT_EQ(fast.trace, scalar.trace) << "doc " << i << "\n" << doc;
    // Whole-document parse must agree as well (chunking invariance).
    const ParseOutcome whole = Parse(doc, 0);
    ASSERT_EQ(whole.trace, fast.trace) << "doc " << i << "\n" << doc;
  }
}

TEST(ConformanceDifferential, ScannersAgreeOnTheRawIndex) {
  // Below the parser: both scanners must produce identical mark streams
  // over random binary-ish buffers, at every split of the two-call append.
  Rng rng(0xBADF00D);
  for (int round = 0; round < 20; ++round) {
    std::string buf;
    const size_t len = 1 + rng.Below(257);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward structural characters so blocks have dense hits.
      static const char kPool[] = "<>&\"'\nx =ab/!?-[]";
      buf += kPool[rng.Below(sizeof(kPool) - 1)];
    }
    StructuralIndex fast, scalar;
    const size_t split = rng.Below(len + 1);
    ScanStructural(buf, 0, split, &fast);
    ScanStructural(buf, split, buf.size(), &fast);
    ScanStructuralScalar(buf, 0, split, &scalar);
    ScanStructuralScalar(buf, split, buf.size(), &scalar);
    ASSERT_EQ(fast.marks, scalar.marks) << "round " << round;
  }
}

TEST(ConformanceApi, PumpMatchesPushedChunks) {
  const std::string doc = "<a><b>x</b><c d='1'/></a>";
  const ParseOutcome pushed = Parse(doc, 3);
  OffsetTraceHandler handler;
  SaxParser parser(&handler);
  parser.set_offset_slot(handler.offset_slot());
  StringByteSource source(doc, 3);
  ASSERT_TRUE(parser.Pump(&source).ok());
  EXPECT_EQ(handler.trace(), pushed.trace);
}

TEST(ConformanceApi, ConsumeAfterLastChunkIsRejected) {
  OffsetTraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Consume({"<a/>", true}).ok());
  EXPECT_TRUE(parser.Consume({std::string_view(), true}).ok());  // idempotent end-of-input marker
  EXPECT_FALSE(parser.Consume({"<b/>", false}).ok());
}

}  // namespace
}  // namespace twigm::xml
